"""Figure 12 — Open and Closed World Assumptions.

Regenerates the open- vs closed-world RLE comparison and benchmarks
building the open-world analysis stack (the incremental cost of the
Section 4 conservatism).
"""

from repro.analysis.openworld import AnalysisContext
from repro.bench import tables


def test_figure12(benchmark, suite, emit):
    program = suite.program("m3cg")

    def build_open_world_analysis():
        ctx = AnalysisContext(program.checked, open_world=True)
        return ctx.build("SMFieldTypeRefs")

    analysis = benchmark.pedantic(build_open_world_analysis, rounds=3, iterations=1)
    assert analysis.name == "SMFieldTypeRefs"

    table = tables.figure12(suite)
    emit("figure12", table.text)

    # Paper's claim: 'the open-world assumption has an insignificant
    # impact on the effectiveness of TBAA with respect to RLE.'
    for row in table.rows:
        closed, opened = row[1], row[2]
        assert opened >= closed - 0.01      # open world can't be better
        assert opened - closed <= 3.0       # ...and is barely worse

    pairs = tables.open_world_pairs(suite)
    emit("figure12_pairs", pairs.text)
    # Statically the open world may add alias pairs (the paper saw ~80
    # extra on m3cg) without hurting RLE.
    for row in pairs.rows:
        assert row[2] >= row[1]
