"""Table 6 — Number of Redundant Loads Removed Statically.

Regenerates the per-analysis static RLE counts and benchmarks a full RLE
pass (lower + analyze + rewrite) on one benchmark.
"""

from repro.analysis.modref import ModRefAnalysis
from repro.bench import tables
from repro.ir.lowering import lower_module
from repro.opt.rle import RedundantLoadElimination


def test_table6(benchmark, suite, emit):
    program_obj = suite.program("k-tree")

    def full_rle_pass():
        program = lower_module(program_obj.checked)
        analysis = program_obj.analysis("SMFieldTypeRefs")
        rle = RedundantLoadElimination(program, analysis, ModRefAnalysis(program))
        return rle.run()

    stats = benchmark.pedantic(full_rle_pass, rounds=3, iterations=1)
    assert stats.eliminated_loads > 0

    table = tables.table6(suite)
    emit("table6", table.text)

    # Paper shapes: FieldTypeDecl ≥ TypeDecl everywhere (strictly more
    # somewhere); SMFieldTypeRefs adds nothing over FieldTypeDecl.
    assert all(row[2] >= row[1] for row in table.rows)
    assert any(row[2] > row[1] for row in table.rows)
    assert all(row[3] == row[2] for row in table.rows)
