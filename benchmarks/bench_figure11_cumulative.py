"""Figure 11 — Cumulative Impact of Optimizations.

Regenerates the Base / RLE / Minv+Inlining / RLE+Minv+Inlining relative
running times and benchmarks the full combined pipeline build.
"""

from repro.bench import tables
from repro.bench.suite import RunConfig


def test_figure11(benchmark, suite, emit):
    program = suite.program("pp")

    def full_pipeline():
        return program.pipeline.build(
            analysis="SMFieldTypeRefs", minv_inline=True
        )

    result = benchmark.pedantic(full_pipeline, rounds=3, iterations=1)
    assert result.rle is not None and result.inline is not None

    table = tables.figure11(suite)
    emit("figure11", table.text)

    # Paper shapes: Minv+Inlining gives larger wins than RLE alone on
    # dispatch-heavy code; the combination is at least as good as either.
    for row in table.rows:
        base, rle, minv, both = row[1], row[2], row[3], row[4]
        assert rle <= base
        assert both <= rle + 0.01
        assert both <= minv + 0.01
    wins = sum(1 for row in table.rows if row[3] < row[2])
    assert wins >= 2  # Minv+Inlining beats RLE somewhere (pp/dformat-like)
