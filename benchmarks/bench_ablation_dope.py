"""Ablation (beyond the paper) — letting RLE see dope-vector loads.

The paper's Figure 10 blames most residual redundancy on 'Encapsulation':
implicit dope-vector loads its AST-level optimizer cannot express.  Our
IR *can* expose them, so we can measure what a lower-level RLE would buy —
quantifying the cost of the paper's representation choice.
"""

from repro.bench import tables
from repro.bench.suite import RunConfig
from repro.runtime.limit import Category
from repro.util.tables import render_table


def test_dope_ablation(benchmark, suite, emit):
    config = RunConfig(analysis="SMFieldTypeRefs", see_dope_loads=True)

    def build_ablated():
        return suite.program("k-tree").pipeline.build(
            analysis="SMFieldTypeRefs", see_dope_loads=True
        )

    result = benchmark.pedantic(build_ablated, rounds=3, iterations=1)
    assert result.rle is not None

    names = ["format", "dformat", "k-tree", "m2tom3", "m3cg"]
    normal = tables.figure10(suite, names)
    ablated = tables.figure10(suite, names, see_dope_loads=True)
    enc = normal.headers.index(Category.ENCAPSULATION.value)

    rows = []
    for n_row, a_row in zip(normal.rows, ablated.rows):
        speed_n = suite.relative_time(n_row[0], RunConfig(analysis="SMFieldTypeRefs"))
        speed_a = suite.relative_time(
            n_row[0], RunConfig(analysis="SMFieldTypeRefs", see_dope_loads=True)
        )
        rows.append(
            [
                n_row[0],
                n_row[enc],
                a_row[enc],
                round(100 * speed_n, 1),
                round(100 * speed_a, 1),
            ]
        )
    text = render_table(
        ["Program", "Encaps (AST RLE)", "Encaps (low-level RLE)",
         "% time (AST RLE)", "% time (low-level RLE)"],
        rows,
        title="Ablation: exposing dope-vector loads to RLE",
    )
    emit("ablation_dope", text)

    # Exposing dope loads must shrink Encapsulation and never slow us down.
    for row in rows:
        assert row[2] <= row[1]
        assert row[4] <= row[3] + 0.2
    assert any(row[2] < row[1] for row in rows)
