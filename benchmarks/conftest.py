"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper and
times its dominant computation with pytest-benchmark.  The regenerated
tables are printed straight to the terminal (bypassing capture, so they
appear in ``pytest benchmarks/ --benchmark-only`` transcripts) and also
written under ``benchmarks/results/``.
"""

import os

import pytest

from repro.bench.suite import BenchmarkSuite

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def suite():
    return BenchmarkSuite()


@pytest.fixture
def emit(capfd):
    """emit(name, text): print *text* uncaptured and save it to results/."""

    def _emit(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as f:
            f.write(text + "\n")
        with capfd.disabled():
            print()
            print(text)

    return _emit
