"""Table 4 — Description of Benchmark Programs.

Regenerates the suite-description table (lines of code, IR instructions
executed, % heap loads, % other loads) and benchmarks the simulated
execution of a representative program (the dominant cost behind every
dynamic number in the paper).
"""

from repro.bench import tables
from repro.bench.suite import BASE
from repro.runtime import Interpreter, MachineModel


def test_table4(benchmark, suite, emit):
    result = suite.build("write-pickle", BASE)

    def run_once():
        return Interpreter(result.program, machine=MachineModel()).run()

    stats = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert stats.instructions > 0

    table = tables.table4(suite)
    emit("table4", table.text)

    # Paper shape: heap loads are a noticeable minority of instructions.
    for row in table.rows:
        if row[2] != "-":
            assert 0 < int(row[3]) < 40
