"""Ablation (beyond the paper) — PRE of loads.

The paper: "Conditional: RLE did not eliminate a redundant expression
because it was only partially redundant ... Partial redundancy
elimination would catch these", and Section 3.7 plans PRE of memory
expressions as future work.  `repro.opt.rle` implements a simplified
downward-safe PRE (entry-anticipated paths, edge splitting, no back-edge
insertion); this bench measures how much of the Conditional residue it
actually recovers.
"""

from repro.bench.suite import RunConfig
from repro.runtime.limit import Category
from repro.util.tables import render_table

NAMES = ["format", "dformat", "k-tree", "m2tom3", "m3cg"]

PLAIN = RunConfig(analysis="SMFieldTypeRefs")
WITH_PRE = RunConfig(analysis="SMFieldTypeRefs", pre=True)


def test_pre_ablation(benchmark, suite, emit):
    program = suite.program("format")

    def build_with_pre():
        return program.pipeline.build(analysis="SMFieldTypeRefs", pre=True)

    result = benchmark.pedantic(build_with_pre, rounds=3, iterations=1)
    assert result.rle is not None

    rows = []
    for name in NAMES:
        plain = suite.limit_study(name, PLAIN)
        pre = suite.limit_study(name, WITH_PRE)
        base = suite.run(name)
        assert suite.run(name, WITH_PRE).output_text() == base.output_text()
        rows.append(
            [
                name,
                plain.by_category[Category.CONDITIONAL],
                pre.by_category[Category.CONDITIONAL],
                plain.redundant_loads,
                pre.redundant_loads,
            ]
        )
    text = render_table(
        ["Program", "Conditional (RLE)", "Conditional (RLE+PRE)",
         "redundant (RLE)", "redundant (RLE+PRE)"],
        rows,
        title="Ablation: simplified PRE of loads vs the Conditional residue",
    )
    emit("ablation_pre", text)

    # PRE must never increase the Conditional residue or total redundancy,
    # and must recover some of it somewhere.
    for row in rows:
        assert row[2] <= row[1]
        assert row[4] <= row[3]
    assert any(row[2] < row[1] for row in rows)
