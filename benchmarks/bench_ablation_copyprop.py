"""Ablation (beyond the paper) — copy propagation.

Figure 10's 'Breakup' category and the Figure 11 analysis both trace back
to the paper's missing copy propagation ("our optimizer does not do copy
propagation"; "inlining exposes more redundant expressions but they are
usually conditional").  With `repro.opt.copyprop` in the pipeline, the
parameter-binding copies introduced by inlining become transparent to
RLE, so RLE+Minv+Inlining+CopyProp eliminates loads the paper's pipeline
could not.
"""

from repro.bench.suite import RunConfig
from repro.util.tables import render_table

NAMES = ["format", "dformat", "k-tree", "slisp", "pp", "m2tom3", "m3cg"]

WITHOUT = RunConfig(analysis="SMFieldTypeRefs", minv_inline=True)
WITH_CP = RunConfig(analysis="SMFieldTypeRefs", minv_inline=True, copyprop=True)


def test_copyprop_ablation(benchmark, suite, emit):
    program = suite.program("pp")

    def build_with_copyprop():
        return program.pipeline.build(
            analysis="SMFieldTypeRefs", minv_inline=True, copyprop=True
        )

    result = benchmark.pedantic(build_with_copyprop, rounds=3, iterations=1)
    assert result.copyprop is not None and result.copyprop.facts_created > 0

    rows = []
    for name in NAMES:
        plain = suite.run(name, WITHOUT)
        cp = suite.run(name, WITH_CP)
        base = suite.run(name)
        assert cp.output_text() == base.output_text()
        rows.append(
            [
                name,
                plain.heap_loads,
                cp.heap_loads,
                round(100.0 * suite.relative_time(name, WITHOUT), 1),
                round(100.0 * suite.relative_time(name, WITH_CP), 1),
            ]
        )
    text = render_table(
        ["Program", "heap loads (no CP)", "heap loads (+CP)",
         "% time (no CP)", "% time (+CP)"],
        rows,
        title="Ablation: copy propagation under RLE+Minv+Inlining",
    )
    emit("ablation_copyprop", text)

    # Copy propagation must never add loads, and must pay somewhere.
    for row in rows:
        assert row[2] <= row[1]
    assert any(row[2] < row[1] for row in rows)
