"""Table 5 — Alias Pairs.

Regenerates the static alias-pair counts for all three analyses over the
whole suite, and benchmarks the O(e²) pair enumeration (the paper's
Section 2.5 cost discussion) on the largest benchmark.
"""

from repro.analysis import AliasPairCounter
from repro.bench import tables
from repro.bench.suite import BASE


def test_table5(benchmark, suite, emit):
    program = suite.program("m3cg")
    base = suite.build("m3cg", BASE)

    def count_pairs():
        analysis = program.analysis("SMFieldTypeRefs")
        return AliasPairCounter(base.program, analysis, engine="fast").count()

    report = benchmark.pedantic(count_pairs, rounds=3, iterations=1)
    assert report.references > 0

    # The reference engine must agree with the timed fast engine.
    analysis = program.analysis("SMFieldTypeRefs")
    reference = AliasPairCounter(
        base.program, analysis, engine="reference"
    ).count()
    assert reference.counts() == report.counts()

    table = tables.table5(suite)
    emit("table5", table.text)
    summary = tables.table5_summary(suite)
    emit("table5_summary", summary.text)
    # The paper's ordering of the per-reference averages.
    local = summary.column("Local per ref")
    global_ = summary.column("Global per ref")
    assert local[2] <= local[1] < local[0]
    assert global_[2] <= global_[1] < global_[0]

    # Paper shapes: TypeDecl is much worse; SMFieldTypeRefs ≈ FieldTypeDecl;
    # global pairs exceed local pairs.
    td_l = sum(row[2] for row in table.rows)
    ftd_l = sum(row[4] for row in table.rows)
    smftr_l = sum(row[6] for row in table.rows)
    assert smftr_l <= ftd_l < td_l
    for row in table.rows:
        assert row[3] >= row[2] and row[5] >= row[4] and row[7] >= row[6]
