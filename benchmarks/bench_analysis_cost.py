"""Analysis cost (Section 2.5) — TBAA is fast.

The paper's complexity argument: SMTypeRefs makes a single linear pass
over the program unioning type sets, so TBAA is O(n) bit-vector steps;
computing all may-alias pairs is O(e²) but each query is cheap.  This
bench measures construction time for all three analyses and the raw
query throughput over the largest benchmark, and emits the numbers both
as an aligned table and as machine-readable JSON (the same schema
``make bench-quick`` writes to ``BENCH_alias.json``).
"""

import json

from repro.analysis.openworld import AnalysisContext
from repro.bench.perfjson import (
    measure_construction,
    measure_query_throughput,
    measure_serve,
    measure_table5_engines,
    validate_report,
    SCHEMA_VERSION,
)
from repro.util.tables import render_table


def test_analysis_construction(benchmark, suite, emit):
    program = suite.program("m3cg")

    def build_all_three():
        ctx = AnalysisContext(program.checked)
        return [ctx.build(n) for n in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs")]

    analyses = benchmark.pedantic(build_all_three, rounds=5, iterations=1)
    assert len(analyses) == 3

    # Query throughput over real references, with memo-cache statistics.
    throughput = measure_query_throughput(suite, "m3cg", rounds=3)
    rows = []
    for name in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
        entry = throughput[name]
        cache = entry["cache"]
        rows.append([name, entry["queries"], entry["ms"], entry["kqps"],
                     cache["hits"], cache["misses"]])
    text = render_table(
        ["Analysis", "Queries", "ms", "kq/s", "Cache hits", "Cache misses"],
        rows,
        title="May-alias query cost on m3cg (all reference pairs)",
    )
    emit("analysis_cost", text)
    assert all(row[3] > 0 for row in rows)

    # Table 5 wall time under both counting engines.
    table5 = measure_table5_engines(suite, rounds=3)
    report = {
        "schema": SCHEMA_VERSION,
        "query_benchmark": "m3cg",
        "construction_ms": measure_construction(suite, "m3cg", rounds=3),
        "query_throughput": throughput,
        "table5": table5,
        "serve": measure_serve(["m3cg"], rounds=2),
    }
    validate_report(report)
    emit("analysis_cost_json", json.dumps(report, indent=2, sort_keys=True))
    # The partition-based engine must clearly beat the per-pair loop.
    assert table5["speedup"] > 1.0
