"""Analysis cost (Section 2.5) — TBAA is fast.

The paper's complexity argument: SMTypeRefs makes a single linear pass
over the program unioning type sets, so TBAA is O(n) bit-vector steps;
computing all may-alias pairs is O(e²) but each query is cheap.  This
bench measures construction time for all three analyses and the raw
query throughput, over the largest benchmark.
"""

import time

from repro.analysis import AliasPairCounter, collect_heap_references
from repro.analysis.openworld import AnalysisContext
from repro.bench.suite import BASE
from repro.util.tables import render_table


def test_analysis_construction(benchmark, suite, emit):
    program = suite.program("m3cg")

    def build_all_three():
        ctx = AnalysisContext(program.checked)
        return [ctx.build(n) for n in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs")]

    analyses = benchmark.pedantic(build_all_three, rounds=5, iterations=1)
    assert len(analyses) == 3

    # Query throughput table over real references.
    base = suite.build("m3cg", BASE)
    refs = [ap for aps in collect_heap_references(base.program).values() for ap in aps]
    rows = []
    ctx = AnalysisContext(program.checked)
    for name in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
        analysis = ctx.build(name)
        start = time.perf_counter()
        queries = 0
        for i in range(len(refs)):
            for j in range(i + 1, len(refs)):
                analysis.may_alias(refs[i], refs[j])
                queries += 1
        elapsed = time.perf_counter() - start
        rows.append([name, queries, round(elapsed * 1000, 1),
                     round(queries / max(elapsed, 1e-9) / 1000, 1)])
    text = render_table(
        ["Analysis", "Queries", "ms", "kq/s"],
        rows,
        title="May-alias query cost on m3cg (all reference pairs)",
    )
    emit("analysis_cost", text)
    assert all(row[1] > 0 for row in rows)
