"""Figure 8 — Impact of RLE on simulated execution time.

Regenerates the relative-running-time figure for the three TBAA levels
and benchmarks the optimized simulated execution.
"""

from repro.bench import tables
from repro.bench.suite import RunConfig
from repro.runtime import Interpreter, MachineModel


def test_figure8(benchmark, suite, emit):
    optimized = suite.build("format", RunConfig(analysis="SMFieldTypeRefs"))

    def run_optimized():
        return Interpreter(optimized.program, machine=MachineModel()).run()

    stats = benchmark.pedantic(run_optimized, rounds=3, iterations=1)
    assert stats.cycles > 0

    table = tables.figure8(suite)
    emit("figure8", table.text)

    # Paper shapes: RLE improves every benchmark modestly; the three TBAA
    # levels perform roughly the same; the mean improvement is modest
    # (the paper: 1-8%, average 4%; we allow a wider band since the
    # substrate differs).
    improvements = []
    for row in table.rows:
        base, td, ftd, smftr = row[1], row[2], row[3], row[4]
        assert smftr <= base
        assert abs(td - smftr) <= 8.0
        improvements.append(base - smftr)
    mean = sum(improvements) / len(improvements)
    assert 0.5 <= mean <= 20.0
