"""Figure 10 — Source of Redundant Loads after Optimizations.

Regenerates the five-way classification (Encapsulation / Conditional /
Breakup / Alias failure / Rest) of the post-RLE redundancy and benchmarks
the classifying traced run.
"""

from repro.bench import tables
from repro.bench.suite import RunConfig
from repro.runtime import LimitStudy
from repro.runtime.limit import Category


def test_figure10(benchmark, suite, emit):
    config = RunConfig(analysis="SMFieldTypeRefs")
    result = suite.build("k-tree", config)

    def classified_run():
        return LimitStudy(result.program, result.load_status).run()

    report = benchmark.pedantic(classified_run, rounds=3, iterations=1)
    assert report.total_heap_loads > 0

    table = tables.figure10(suite)
    emit("figure10", table.text)

    enc = table.headers.index(Category.ENCAPSULATION.value)
    fail = table.headers.index(Category.ALIAS_FAILURE.value)
    rest = table.headers.index(Category.REST.value)

    # Paper's headline claims:
    # 1. Encapsulation (dope vectors) is the dominant residue.
    # 2. Alias failures are (almost) nonexistent — TBAA is near-optimal
    #    for RLE; 'Rest' is small (paper: <= 2.5% on average).
    total_residue = sum(row[-1] for row in table.rows)
    total_enc = sum(row[enc] for row in table.rows)
    if total_residue > 0.05:
        assert total_enc >= 0.5 * total_residue
    mean_fail = sum(row[fail] for row in table.rows) / len(table.rows)
    mean_rest = sum(row[rest] for row in table.rows) / len(table.rows)
    assert mean_fail <= 0.025
    assert mean_rest <= 0.025
