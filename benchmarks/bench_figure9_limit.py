"""Figure 9 — Comparing TBAA to an Upper Bound.

Regenerates the dynamic redundant-load fractions before and after RLE
(the ATOM-style limit study) and benchmarks one traced run.
"""

from repro.bench import tables
from repro.bench.suite import BASE, RunConfig
from repro.runtime import LimitStudy


def test_figure9(benchmark, suite, emit):
    result = suite.build("write-pickle", BASE)

    def traced_run():
        return LimitStudy(result.program, {}).run()

    report = benchmark.pedantic(traced_run, rounds=3, iterations=1)
    assert report.total_heap_loads > 0

    table = tables.figure9(suite)
    emit("figure9", table.text)

    # Paper shapes: RLE removes a substantial part of the dynamic
    # redundancy on every benchmark; several programs end up with little
    # or none, while array-heavy ones (k-tree analogue) retain more.
    removed_something = 0
    for row in table.rows:
        before, after = row[1], row[2]
        assert after <= before
        if before > 0 and (before - after) / before >= 0.2:
            removed_something += 1
    assert removed_something >= len(table.rows) // 2
