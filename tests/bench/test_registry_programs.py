"""Benchmark registry and per-program sanity tests."""

import pytest

from repro.bench import registry
from repro.bench.suite import BASE


def test_registry_matches_paper_suite():
    names = registry.benchmark_names()
    assert names == [
        "format", "dformat", "write-pickle", "k-tree", "slisp",
        "pp", "dom", "postcard", "m2tom3", "m3cg",
    ]


def test_static_only_flags():
    dynamic = set(registry.dynamic_benchmark_names())
    assert "dom" not in dynamic
    assert "postcard" not in dynamic
    assert len(dynamic) == 8


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        registry.info("nonesuch")


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_sources_load(name):
    source = registry.load_source(name)
    assert source.startswith("(*")
    assert "MODULE" in source


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_programs_compile_and_run(suite, name):
    stats = suite.run(name, BASE)
    assert stats.instructions > 0
    assert stats.output_text()  # every benchmark reports something


EXPECTED_OUTPUT_PREFIX = {
    "format": "words=",
    "dformat": "puts=",
    "write-pickle": "pickled=",
    "k-tree": "len=",
    "slisp": "fib11=89",
    "pp": "chars=",
    "dom": "registered=",
    "postcard": "folders=",
    "m2tom3": "tokens=",
    "m3cg": "exprs=",
}


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_expected_output_shape(suite, name):
    stats = suite.run(name, BASE)
    assert stats.output_text().startswith(EXPECTED_OUTPUT_PREFIX[name])


@pytest.mark.parametrize("name", registry.dynamic_benchmark_names())
def test_dynamic_benchmarks_do_real_work(suite, name):
    stats = suite.run(name, BASE)
    assert stats.instructions > 10_000, "workload too small to measure"
    assert stats.heap_loads > 500


@pytest.mark.parametrize("name", registry.dynamic_benchmark_names())
def test_heap_load_fractions_plausible(suite, name):
    """Table 4's shape: heap loads are 8-27% of instructions in the paper;
    we accept a slightly wider band."""
    stats = suite.run(name, BASE)
    assert 0.04 <= stats.heap_load_fraction <= 0.35
