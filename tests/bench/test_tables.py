"""Table/figure generators: structure and the paper's qualitative shapes.

These tests assert the *claims* of the paper hold in the reproduction:
who wins, orderings, near-zero categories — not absolute numbers.
"""

import pytest

from repro.bench import registry, tables
from repro.bench.tables import count_source_lines
from repro.runtime.limit import Category

FAST = ["format", "write-pickle", "k-tree"]


class TestLineCounter:
    def test_skips_comments_and_blanks(self):
        source = "(* c *)\n\nVAR x: INTEGER;\n(* multi\nline *)\ny := 1;\n"
        assert count_source_lines(source) == 2

    def test_nested_comments(self):
        assert count_source_lines("(* a (* b *) c *)\nx;\n") == 1

    def test_code_and_comment_same_line(self):
        assert count_source_lines("x := 1; (* trailing *)\n") == 1


class TestTable4:
    def test_structure(self, suite):
        result = tables.table4(suite)
        assert result.headers[0] == "Name"
        assert len(result.rows) == 10
        assert result.row("dom")[2] == "-"  # static-only

    def test_dynamic_rows_have_numbers(self, suite):
        result = tables.table4(suite)
        row = result.row("format")
        assert isinstance(row[2], int) and row[2] > 0


class TestTable5:
    def test_typedecl_much_worse(self, suite):
        """'TypeDecl performs a lot worse than FieldTypeDecl.'"""
        result = tables.table5(suite, FAST)
        for row in result.rows:
            td_local, ftd_local = row[2], row[4]
            assert ftd_local <= td_local
        total_td = sum(r[2] for r in result.rows)
        total_ftd = sum(r[4] for r in result.rows)
        assert total_ftd < total_td / 2  # a big gap, as in the paper

    def test_smftr_close_to_ftd(self, suite):
        """'flow-insensitive merging ... offers little improvement.'"""
        result = tables.table5(suite, FAST)
        for row in result.rows:
            assert row[6] <= row[4]
            assert row[7] <= row[5]

    def test_global_exceeds_local(self, suite):
        result = tables.table5(suite, FAST)
        for row in result.rows:
            assert row[3] >= row[2]
            assert row[5] >= row[4]

    def test_postcard_smftr_improves(self, suite):
        """The paper: 'SMFieldTypeRefs improves ... on postcard.'"""
        result = tables.table5(suite, ["postcard"])
        row = result.rows[0]
        assert row[6] + row[7] < row[4] + row[5]


class TestTable6:
    def test_fieldtypedecl_finds_more(self, suite):
        """'differences between TypeDecl and FieldTypeDecl result in an
        increase in the number of redundant loads found by RLE.'"""
        result = tables.table6(suite, FAST)
        for row in result.rows:
            assert row[2] >= row[1]
        assert any(row[2] > row[1] for row in result.rows)

    def test_smftr_adds_nothing(self, suite):
        """'reductions ... between FieldTypeDecl and SMFieldTypeRefs does
        not change the number of redundant loads found by RLE.'"""
        result = tables.table6(suite, FAST)
        for row in result.rows:
            assert row[3] == row[2]


class TestFigure8:
    def test_improvements_modest_and_ordered(self, suite):
        result = tables.figure8(suite, FAST)
        for row in result.rows:
            base, td, ftd, smftr = row[1], row[2], row[3], row[4]
            assert td <= base
            assert smftr <= ftd <= td + 0.01  # stronger analysis no worse
            assert smftr >= 50  # sanity: not absurdly fast

    def test_all_three_roughly_equal(self, suite):
        """'the three variants of TBAA have roughly the same performance
        as far as RLE is concerned.'"""
        result = tables.figure8(suite, FAST)
        for row in result.rows:
            assert row[2] - row[4] <= 8.0  # within a few percent


class TestFigure9:
    def test_rle_reduces_redundancy(self, suite):
        result = tables.figure9(suite, FAST)
        for row in result.rows:
            assert row[2] <= row[1]

    def test_fractions_are_fractions(self, suite):
        result = tables.figure9(suite, FAST)
        for row in result.rows:
            assert 0.0 <= row[2] <= row[1] <= 1.0


class TestFigure10:
    def test_alias_failure_negligible(self, suite):
        """The paper's headline: imprecision of TBAA costs at most a few
        percent of heap references."""
        result = tables.figure10(suite, FAST)
        alias_col = result.headers.index(Category.ALIAS_FAILURE.value)
        for row in result.rows:
            assert row[alias_col] <= 0.05

    def test_categories_sum_to_total(self, suite):
        result = tables.figure10(suite, FAST)
        for row in result.rows:
            assert sum(row[1:6]) == pytest.approx(row[6], abs=0.01)

    def test_encapsulation_dominates_where_residue_exists(self, suite):
        """'Encapsulation ... is the most significant source of the
        remaining redundant loads.'"""
        result = tables.figure10(suite, ["format", "k-tree"])
        enc = result.headers.index(Category.ENCAPSULATION.value)
        for row in result.rows:
            if row[6] > 0.05:
                assert row[enc] >= max(row[2], row[3], row[4], row[5])

    def test_dope_ablation_kills_encapsulation(self, suite):
        result = tables.figure10(suite, ["k-tree"], see_dope_loads=True)
        enc = result.headers.index(Category.ENCAPSULATION.value)
        normal = tables.figure10(suite, ["k-tree"])
        assert result.rows[0][enc] < normal.rows[0][enc]


class TestFigure11:
    def test_combination_at_least_as_good(self, suite):
        result = tables.figure11(suite, FAST)
        for row in result.rows:
            base, rle, minv, both = row[1], row[2], row[3], row[4]
            assert rle <= base
            assert both <= minv + 0.01
            assert both <= rle + 0.01


class TestFigure12:
    def test_open_world_insignificant(self, suite):
        """'the open-world assumption has an insignificant impact.'"""
        result = tables.figure12(suite, FAST)
        for row in result.rows:
            assert abs(row[1] - row[2]) <= 3.0

    def test_open_world_never_beats_closed(self, suite):
        result = tables.figure12(suite, FAST)
        for row in result.rows:
            assert row[2] >= row[1] - 0.01


class TestRendering:
    def test_text_renders(self, suite):
        result = tables.table4(suite)
        text = result.text
        assert "Table 4" in text
        assert "format" in text

    def test_column_and_row_access(self, suite):
        result = tables.table4(suite)
        assert "format" in result.column("Name")
        with pytest.raises(KeyError):
            result.row("nope")
