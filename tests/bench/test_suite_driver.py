"""BenchmarkSuite driver tests: caching and config identity."""

from repro.bench.suite import BASE, BenchmarkSuite, RunConfig


def test_program_cached(suite):
    assert suite.program("format") is suite.program("format")


def test_build_cached_per_config(suite):
    a = suite.build("write-pickle", BASE)
    b = suite.build("write-pickle", BASE)
    assert a is b
    c = suite.build("write-pickle", RunConfig(analysis="TypeDecl"))
    assert c is not a


def test_run_cached(suite):
    a = suite.run("write-pickle", BASE)
    b = suite.run("write-pickle", BASE)
    assert a is b


def test_config_keys_distinguish_options():
    keys = {
        RunConfig().key(),
        RunConfig(analysis="TypeDecl").key(),
        RunConfig(analysis="TypeDecl", hoist=False).key(),
        RunConfig(analysis="TypeDecl", see_dope_loads=True).key(),
        RunConfig(analysis="TypeDecl", open_world=True).key(),
        RunConfig(minv_inline=True).key(),
        RunConfig(copyprop=True).key(),
        RunConfig(analysis="TypeDecl", pre=True).key(),
    }
    assert len(keys) == 8


def test_is_base():
    assert RunConfig().is_base
    assert not RunConfig(analysis="TypeDecl").is_base
    assert not RunConfig(minv_inline=True).is_base
    assert not RunConfig(copyprop=True).is_base


def test_relative_time_base_is_one(suite):
    assert suite.relative_time("write-pickle", BASE) == 1.0


def test_relative_time_bounded(suite):
    rel = suite.relative_time("write-pickle", RunConfig(analysis="SMFieldTypeRefs"))
    assert 0.5 < rel <= 1.0


def test_fresh_suite_isolated():
    s1 = BenchmarkSuite()
    s2 = BenchmarkSuite()
    assert s1.program("dom") is not s2.program("dom")
