"""Smoke test for the machine-readable benchmark report.

Runs the real measurement code with a minimal configuration (one round,
two programs) so the ``BENCH_alias.json`` schema cannot rot without a
test failing, then checks the CLI writer round-trips through JSON.
"""

import json

from repro.bench import perfjson


def test_quick_bench_schema(tmp_path):
    report = perfjson.run_quick_bench(
        query_benchmark="format",
        table5_names=["format", "m3cg"],
        rounds=1,
    )
    perfjson.validate_report(report)
    assert report["table5"]["programs"] == ["format", "m3cg"]

    # The report must be valid JSON and survive a round trip.
    path = tmp_path / "BENCH_alias.json"
    path.write_text(json.dumps(report))
    assert json.loads(path.read_text()) == report


def test_validate_rejects_missing_keys():
    import pytest

    with pytest.raises(AssertionError):
        perfjson.validate_report({"schema": perfjson.SCHEMA_VERSION})
