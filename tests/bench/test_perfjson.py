"""Smoke test for the machine-readable benchmark report.

Runs the real measurement code with a minimal configuration (one round,
two programs) so the ``BENCH_alias.json`` schema cannot rot without a
test failing, then checks the CLI writer round-trips through JSON.
"""

import json

from repro.bench import perfjson


def test_quick_bench_schema(tmp_path):
    report = perfjson.run_quick_bench(
        query_benchmark="format",
        table5_names=["format", "m3cg"],
        rounds=1,
    )
    perfjson.validate_report(report)
    assert report["table5"]["programs"] == ["format", "m3cg"]

    # The report must be valid JSON and survive a round trip.
    path = tmp_path / "BENCH_alias.json"
    path.write_text(json.dumps(report))
    assert json.loads(path.read_text()) == report


def test_validate_rejects_missing_keys():
    import pytest

    with pytest.raises(AssertionError):
        perfjson.validate_report({"schema": perfjson.SCHEMA_VERSION})


def test_normalize_report_rounds_floats_recursively():
    report = {"a": 1.23456789, "b": {"c": [2.00004, "s", 3]},
              "d": 0.1234999}
    assert perfjson.normalize_report(report) == {
        "a": 1.235, "b": {"c": [2.0, "s", 3]}, "d": 0.123}


def test_report_phases_maps_report_numbers_to_seconds():
    from repro.obs.history import SUITE_BUCKET

    report = {
        "query_benchmark": "m3cg",
        "construction_ms": {"TypeDecl": 2.5},
        "query_throughput": {"TypeDecl": {"ms": 10.0}},
        "table5": {"reference_ms": 100.0, "fast_ms": 20.0,
                   "bulk_build_ms": 5.0, "bulk_ms": 2.0},
        "serve": {"cold_ms": 50.0, "warm_ms": 1.0},
    }
    phases = perfjson.report_phases(report)
    assert phases["m3cg"]["quick.construction.TypeDecl"] == 0.0025
    assert phases["m3cg"]["quick.query.TypeDecl"] == 0.01
    assert phases[SUITE_BUCKET]["quick.table5.reference"] == 0.1
    assert phases[SUITE_BUCKET]["quick.table5.fast"] == 0.02
    assert phases[SUITE_BUCKET]["quick.table5.bulk_build"] == 0.005
    assert phases[SUITE_BUCKET]["quick.table5.bulk"] == 0.002
    assert phases[SUITE_BUCKET]["serve.cold"] == 0.05
    assert phases[SUITE_BUCKET]["serve.warm"] == 0.001


def test_perfjson_main_appends_history(tmp_path, capsys):
    from repro.obs import history

    out = str(tmp_path / "BENCH_alias.json")
    hist = str(tmp_path / "hist.jsonl")
    assert perfjson.main(["-o", out, "--rounds", "1",
                          "--history", hist]) == 0
    report = json.loads(open(out).read())
    perfjson.validate_report(report)
    [record] = history.read_history(hist)
    assert record["label"] == "bench-quick"
    # The report's own numbers became phase series next to the spans.
    bench = report["query_benchmark"]
    assert any(p.startswith("quick.query.")
               for p in record["phases"][bench])
    captured = capsys.readouterr()
    assert "appended bench-quick record" in captured.out
