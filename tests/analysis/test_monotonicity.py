"""Cross-analysis invariants over the whole benchmark suite.

The paper states SMFieldTypeRefs is *strictly more powerful* than
FieldTypeDecl, and FieldTypeDecl than TypeDecl — so their alias relations
must be ordered by inclusion, and their pair counts monotone.  We verify
this on every benchmark (the paper uses this ordering to justify static
comparison in Table 5).
"""

import pytest

from repro.analysis import AliasPairCounter, collect_heap_references
from repro.bench import registry
from repro.bench.suite import BASE


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_pair_counts_monotone(suite, name):
    program = suite.program(name)
    base = suite.build(name, BASE)
    td = AliasPairCounter(base.program, program.analysis("TypeDecl")).count()
    ftd = AliasPairCounter(base.program, program.analysis("FieldTypeDecl")).count()
    smftr = AliasPairCounter(base.program, program.analysis("SMFieldTypeRefs")).count()
    assert smftr.local_pairs <= ftd.local_pairs <= td.local_pairs
    assert smftr.global_pairs <= ftd.global_pairs <= td.global_pairs


@pytest.mark.parametrize("name", ["format", "slisp", "k-tree"])
def test_relation_inclusion_pointwise(suite, name):
    """may-alias(SMFTR) ⊆ may-alias(FTD) ⊆ may-alias(TD), pair by pair."""
    program = suite.program(name)
    base = suite.build(name, BASE)
    td = program.analysis("TypeDecl")
    ftd = program.analysis("FieldTypeDecl")
    smftr = program.analysis("SMFieldTypeRefs")
    refs = [
        ap for aps in collect_heap_references(base.program).values() for ap in aps
    ]
    refs = refs[:60]  # bound the quadratic loop
    for i, p in enumerate(refs):
        for q in refs[i:]:
            if smftr.may_alias(p, q):
                assert ftd.may_alias(p, q), (str(p), str(q))
            if ftd.may_alias(p, q):
                assert td.may_alias(p, q), (str(p), str(q))


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_open_world_is_more_conservative(suite, name):
    """Open-world may-alias must include closed-world may-alias."""
    program = suite.program(name)
    base = suite.build(name, BASE)
    closed = program.analysis("SMFieldTypeRefs")
    opened = program.analysis("SMFieldTypeRefs", open_world=True)
    refs = [
        ap for aps in collect_heap_references(base.program).values() for ap in aps
    ]
    refs = refs[:45]
    for i, p in enumerate(refs):
        for q in refs[i:]:
            if closed.may_alias(p, q):
                assert opened.may_alias(p, q), (str(p), str(q))


@pytest.mark.parametrize("name", ["format", "k-tree"])
def test_alias_relation_reflexive_symmetric(suite, name):
    program = suite.program(name)
    base = suite.build(name, BASE)
    analysis = program.analysis("SMFieldTypeRefs")
    refs = [
        ap for aps in collect_heap_references(base.program).values() for ap in aps
    ][:40]
    for p in refs:
        assert analysis.may_alias(p, p)
    for i, p in enumerate(refs):
        for q in refs[i:]:
            assert analysis.may_alias(p, q) == analysis.may_alias(q, p)
