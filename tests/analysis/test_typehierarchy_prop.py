"""Property tests over random type hierarchies.

Hypothesis builds random single-inheritance forests and checks the
algebraic laws the analyses rely on: Subtypes is reflexive and downward
closed, compatibility is symmetric, and SMTypeRefs under random
assignments stays inside TypeDecl (table(t) ⊆ Subtypes(t) by Step 3).
"""

from hypothesis import given, strategies as st

from repro.analysis import SubtypeOracle
from repro.analysis.smtyperefs import SMTypeRefsOracle
from repro.lang import check_module, parse_module


@st.composite
def hierarchies(draw):
    """A random MiniM3 module with a random object forest + assignments."""
    n = draw(st.integers(min_value=2, max_value=8))
    parents = [draw(st.integers(min_value=-1, max_value=i - 1)) for i in range(n)]
    lines = ["MODULE H;", "TYPE"]
    for i, parent in enumerate(parents):
        sup = "" if parent < 0 else "T{} ".format(parent)
        lines.append("  T{} = {}OBJECT f{}: INTEGER; END;".format(i, sup, i))
    lines.append("VAR")
    for i in range(n):
        lines.append("  v{}: T{};".format(i, i))
    lines.append("BEGIN")
    # Random *legal* assignments: v_a := v_b needs related types.
    n_assign = draw(st.integers(min_value=0, max_value=6))
    related = [
        (a, b)
        for a in range(n)
        for b in range(n)
        if a != b and (_is_ancestor(parents, a, b) or _is_ancestor(parents, b, a))
    ]
    if related:
        for _ in range(n_assign):
            a, b = draw(st.sampled_from(related))
            lines.append("  v{} := v{};".format(a, b))
    lines.append("END H.")
    return "\n".join(lines), parents, n


def _is_ancestor(parents, anc, node):
    while node != -1:
        if node == anc:
            return True
        node = parents[node]
    return False


@given(hierarchies())
def test_subtype_sets_laws(case):
    source, parents, n = case
    checked = check_module(parse_module(source))
    oracle = SubtypeOracle(checked)
    types = [checked.named_types["T{}".format(i)] for i in range(n)]

    for i, t in enumerate(types):
        subs = oracle.subtypes(t)
        # reflexive
        assert t in subs
        # exactly the declared descendants
        expected = {types[j] for j in range(n) if _is_ancestor(parents, i, j)}
        assert set(subs) == expected

    for a in types:
        for b in types:
            assert oracle.compatible(a, b) == oracle.compatible(b, a)
            # compatibility iff one is an ancestor of the other
    for i, a in enumerate(types):
        for j, b in enumerate(types):
            related = _is_ancestor(parents, i, j) or _is_ancestor(parents, j, i)
            assert oracle.compatible(a, b) == related


@given(hierarchies())
def test_typerefs_table_subset_of_subtypes(case):
    """Figure 2, Step 3: TypeRefsTable(t) ⊆ Subtypes(t), always."""
    source, parents, n = case
    checked = check_module(parse_module(source))
    sub = SubtypeOracle(checked)
    oracle = SMTypeRefsOracle(checked, sub)
    for i in range(n):
        t = checked.named_types["T{}".format(i)]
        assert oracle.type_refs(t) <= sub.subtype_set(t)
        # and reflexive: t can always reference its own objects
        assert id(t) in oracle.type_refs(t)


@given(hierarchies())
def test_assignments_monotone(case):
    """Adding merges can only grow the tables (monotonicity)."""
    source, parents, n = case
    checked = check_module(parse_module(source))
    sub = SubtypeOracle(checked)
    from repro.analysis.smtyperefs import collect_pointer_assignments

    assignments = collect_pointer_assignments(checked)
    empty = SMTypeRefsOracle(checked, sub, assignments=[])
    full = SMTypeRefsOracle(checked, sub, assignments=assignments)
    for i in range(n):
        t = checked.named_types["T{}".format(i)]
        assert empty.type_refs(t) <= full.type_refs(t)
