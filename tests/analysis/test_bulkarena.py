"""mmap matrix arenas: layout, lazy views, kernel agreement, sharing."""

import pickle

import pytest

from repro import compile_program
from repro.analysis import ANALYSIS_NAMES
from repro.analysis.bulk import build_matrix
from repro.analysis.bulkarena import (
    ARENA_VERSION,
    MAGIC,
    _MmapIntSeq,
    open_arena,
    write_arena,
)

SOURCE = """
MODULE Arena;

TYPE
  T = OBJECT f: T; n: INTEGER; END;
  S = T OBJECT g: T; END;

VAR root: T;

PROCEDURE Link (a: T; b: S) =
BEGIN
  a.f := b;
  b.g := a.f;
END Link;

BEGIN
  root := NEW (S);
  Link (root, NEW (S));
END Arena.
"""


@pytest.fixture(scope="module")
def matrices():
    program = compile_program(SOURCE, "arena.m3")
    base = program.base().program
    return [build_matrix(base, program.analysis(name))
            for name in ANALYSIS_NAMES]


def test_arena_roundtrips_counts_and_rows(tmp_path, matrices):
    path = tmp_path / "m.arena"
    write_arena(path, matrices)
    with open_arena(path) as arena:
        assert len(arena) == len(matrices)
        for original, view in zip(matrices, arena.matrices()):
            assert view.analysis_name == original.analysis_name
            assert list(view.class_rows) == list(original.class_rows)
            assert list(view.class_members) == list(original.class_members)
            assert list(view.path_proc_masks) == \
                list(original.path_proc_masks)
            for backend in ("python", None):
                assert view.count_pairs(backend=backend).counts() == \
                    original.count_pairs(backend=backend).counts()


def test_mmap_seq_slices_negatives_and_pickles(tmp_path, matrices):
    path = tmp_path / "m.arena"
    write_arena(path, matrices)
    with open_arena(path) as arena:
        view = arena.matrix(0)
        seq = view.class_rows
        assert isinstance(seq, _MmapIntSeq)
        values = list(seq)
        assert seq[-1] == values[-1]
        assert seq[1:3] == values[1:3]
        with pytest.raises(IndexError):
            seq[len(seq)]
        # Pickling forfeits sharing but stays correct (plain list).
        clone = pickle.loads(pickle.dumps(view))
        assert list(clone.class_rows) == values
        assert clone.count_pairs().counts() == view.count_pairs().counts()


def test_arena_rejects_bad_magic_and_version(tmp_path, matrices):
    bogus = tmp_path / "bogus.arena"
    bogus.write_bytes(b"NOTANARE" + b"\x00" * 64)
    with pytest.raises(ValueError, match="not a matrix arena"):
        open_arena(bogus)

    path = tmp_path / "m.arena"
    write_arena(path, matrices[:1])
    data = bytearray(path.read_bytes())
    # Corrupt the version field inside the JSON header (same length, so
    # the u64 header-size prefix stays valid).
    marker = ('"version": {}'.format(ARENA_VERSION)).encode()
    index = bytes(data).find(marker)
    assert index >= 0
    data[index:index + len(marker)] = \
        ('"version": {}'.format(ARENA_VERSION + 1)).encode()
    path.write_bytes(bytes(data))
    with pytest.raises(ValueError, match="unknown arena version"):
        open_arena(path)
    assert bytes(data[:8]) == MAGIC
