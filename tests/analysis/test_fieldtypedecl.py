"""FieldTypeDecl tests — one test per case of the paper's Table 2."""

import pytest

from repro.analysis import (
    FieldTypeDeclAnalysis,
    SubtypeOracle,
    collect_address_taken,
)
from repro.analysis.typedecl import TypeDeclOracle
from repro.ir.access_path import (
    ConstIndex,
    Deref,
    Qualify,
    Subscript,
    VarIndex,
    VarRoot,
)
from repro.lang import check_module, parse_module
from repro.lang import types as ty

SOURCE = """
MODULE M;
TYPE
  T = OBJECT f, g: T; n: INTEGER; END;
  S = T OBJECT extra: INTEGER; END;
  IntRef = REF INTEGER;
  Buf = REF ARRAY OF INTEGER;
  CharBuf = REF ARRAY OF CHAR;
VAR
  t, t2: T; s: S; p: IntRef; buf, buf2: Buf; cbuf: CharBuf;
  i, j: INTEGER;

PROCEDURE TakeInt (VAR v: INTEGER) = BEGIN v := v + 1; END TakeInt;

BEGIN
  (* address of an INTEGER object field and of a Buf element are taken *)
  TakeInt (t.n);
  TakeInt (buf^[0]);
END M.
"""

SOURCE_NO_TAKEN = """
MODULE M;
TYPE
  T = OBJECT f: T; n: INTEGER; END;
  IntRef = REF INTEGER;
  Buf = REF ARRAY OF INTEGER;
VAR t: T; p: IntRef; buf: Buf;
BEGIN
END M.
"""


def build(source):
    checked = check_module(parse_module(source))
    sub = SubtypeOracle(checked)
    taken = collect_address_taken(checked, sub)
    analysis = FieldTypeDeclAnalysis(TypeDeclOracle(sub), taken)
    roots = {g.name: VarRoot(g) for g in checked.globals}
    return checked, analysis, roots


@pytest.fixture(scope="module")
def env():
    return build(SOURCE)


def q(roots, base, field, checked):
    base_root = roots[base]
    base_type = base_root.type
    ftype = base_type.field_type(field)
    return Qualify(base_root, field, ftype, base_type.field_owner(field))


def deref(roots, name):
    root = roots[name]
    return Deref(root, root.type.target)


def sub_elem(roots, name, index_term):
    root = roots[name]
    arr = root.type.target
    return Subscript(Deref(root, arr), index_term, arr.element)


class TestCase1Identity:
    def test_identical_paths_alias(self, env):
        checked, analysis, roots = env
        p1 = q(roots, "t", "f", checked)
        p2 = q(roots, "t", "f", checked)
        assert analysis.may_alias(p1, p2)


class TestCase2QualifyQualify:
    def test_same_field_compatible_bases(self, env):
        checked, analysis, roots = env
        assert analysis.may_alias(q(roots, "t", "f", checked), q(roots, "t2", "f", checked))

    def test_same_field_sub_and_supertype_bases(self, env):
        checked, analysis, roots = env
        assert analysis.may_alias(q(roots, "t", "f", checked), q(roots, "s", "f", checked))

    def test_different_fields_never_alias(self, env):
        """This is the distinction TypeDecl misses: t.f vs t.g."""
        checked, analysis, roots = env
        assert not analysis.may_alias(q(roots, "t", "f", checked), q(roots, "t", "g", checked))

    def test_same_field_incompatible_bases(self, env):
        checked, analysis, roots = env
        # t.n vs s.extra: different fields anyway; build unrelated same-name
        # case via n on T vs n on... only one n; check recursion instead:
        # s.extra vs s.extra trivially aliases.
        p = q(roots, "s", "extra", checked)
        assert analysis.may_alias(p, p)


class TestCase3QualifyDeref:
    def test_taken_field_aliases_deref(self, env):
        checked, analysis, roots = env
        # address of t.n was taken; p: REF INTEGER
        assert analysis.may_alias(q(roots, "t", "n", checked), deref(roots, "p"))

    def test_untaken_field_does_not_alias_deref(self):
        checked, analysis, roots = build(SOURCE_NO_TAKEN)
        assert not analysis.may_alias(q(roots, "t", "n", checked), deref(roots, "p"))

    def test_type_incompatible_field_does_not_alias_deref(self, env):
        checked, analysis, roots = env
        # t.f has type T, p^ has type INTEGER
        assert not analysis.may_alias(q(roots, "t", "f", checked), deref(roots, "p"))


class TestCase4DerefSubscript:
    def test_taken_element_aliases_deref(self, env):
        checked, analysis, roots = env
        elem = sub_elem(roots, "buf", ConstIndex(0))
        assert analysis.may_alias(deref(roots, "p"), elem)

    def test_untaken_element_no_alias(self):
        checked, analysis, roots = build(SOURCE_NO_TAKEN)
        elem = sub_elem(roots, "buf", ConstIndex(0))
        assert not analysis.may_alias(deref(roots, "p"), elem)

    def test_char_elements_type_incompatible(self, env):
        checked, analysis, roots = env
        elem = sub_elem(roots, "cbuf", ConstIndex(0))
        assert not analysis.may_alias(deref(roots, "p"), elem)


class TestCase5QualifySubscript:
    def test_never_alias(self, env):
        checked, analysis, roots = env
        elem = sub_elem(roots, "buf", ConstIndex(0))
        assert not analysis.may_alias(q(roots, "t", "n", checked), elem)
        # even though t.n's address is taken and both are INTEGER locations


class TestCase6SubscriptSubscript:
    def test_same_array_type_aliases(self, env):
        checked, analysis, roots = env
        e1 = sub_elem(roots, "buf", ConstIndex(0))
        e2 = sub_elem(roots, "buf2", ConstIndex(5))
        assert analysis.may_alias(e1, e2)

    def test_subscripts_ignored(self, env):
        checked, analysis, roots = env
        sym_i = next(g for g in checked.globals if g.name == "i")
        sym_j = next(g for g in checked.globals if g.name == "j")
        e1 = sub_elem(roots, "buf", VarIndex(sym_i))
        e2 = sub_elem(roots, "buf", VarIndex(sym_j))
        assert analysis.may_alias(e1, e2)

    def test_different_element_types_no_alias(self, env):
        checked, analysis, roots = env
        e1 = sub_elem(roots, "buf", ConstIndex(0))
        e2 = sub_elem(roots, "cbuf", ConstIndex(0))
        assert not analysis.may_alias(e1, e2)


class TestCase7Fallback:
    def test_two_derefs_same_type(self, env):
        checked, analysis, roots = env
        assert analysis.may_alias(deref(roots, "p"), deref(roots, "p"))

    def test_roots_by_typedecl(self, env):
        checked, analysis, roots = env
        assert analysis.may_alias(roots["t"], roots["s"])
        assert not analysis.may_alias(roots["t"], roots["p"])


class TestRecursionThroughBases:
    def test_deep_paths(self, env):
        checked, analysis, roots = env
        # t.f.f vs s.f.f : same fields all the way; bases compatible
        t_ff = Qualify(q(roots, "t", "f", checked), "f",
                       checked.named_types["T"], checked.named_types["T"])
        s_ff = Qualify(q(roots, "s", "f", checked), "f",
                       checked.named_types["T"], checked.named_types["T"])
        assert analysis.may_alias(t_ff, s_ff)

    def test_deep_paths_field_mismatch(self, env):
        checked, analysis, roots = env
        T = checked.named_types["T"]
        t_ff = Qualify(q(roots, "t", "f", checked), "f", T, T)
        t_gf = Qualify(q(roots, "t", "g", checked), "f", T, T)
        # same final field, bases differ in field: recursion distinguishes
        assert not analysis.may_alias(
            Qualify(t_ff, "n", ty.INTEGER, T), Qualify(t_gf, "g", T, T)
        )


def test_cache_consistency(env):
    checked, analysis, roots = env
    p1 = q(roots, "t", "f", checked)
    p2 = q(roots, "s", "f", checked)
    first = analysis.may_alias(p1, p2)
    second = analysis.may_alias(p2, p1)
    assert first == second
    analysis.cache_clear()
    assert analysis.may_alias(p1, p2) == first
