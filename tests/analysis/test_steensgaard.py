"""Steensgaard-on-types baseline tests (the paper's footnote 4).

    "If we took Steensgaard's algorithm and applied it to user defined
     types, it would not discover this asymmetry."
"""

import pytest

from repro.analysis import (
    AliasPairCounter,
    SteensgaardTypesOracle,
    SubtypeOracle,
    collect_address_taken,
    collect_heap_references,
)
from repro.analysis.smtyperefs import SMTypeRefsOracle
from repro.analysis.steensgaard import SteensgaardFieldTypeRefsAnalysis
from repro.ir.access_path import VarRoot
from repro.lang import check_module, parse_module

PAPER_EXAMPLE = """
MODULE M;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
VAR
  s1: S1 := NEW (S1);
  s2: S2 := NEW (S2);
  s3: S3 := NEW (S3);
  t: T;
BEGIN
  t := s1;
  t := s2;
END M.
"""


def build(source):
    checked = check_module(parse_module(source))
    sub = SubtypeOracle(checked)
    steens = SteensgaardTypesOracle(checked, sub)
    smtr = SMTypeRefsOracle(checked, sub)
    return checked, sub, steens, smtr


def test_misses_the_asymmetry():
    """After t := s1; t := s2, SMTypeRefs proves S1 paths cannot reference
    S2 objects; symmetric Steensgaard classes cannot."""
    checked, sub, steens, smtr = build(PAPER_EXAMPLE)
    roots = {g.name: VarRoot(g) for g in checked.globals}
    s1, s2 = roots["s1"], roots["s2"]
    # SMTypeRefs: no alias (the asymmetric table separates the siblings).
    assert smtr.types_compatible(s1, s2) is False
    # Steensgaard classes merged S1, S2 and T into one class: may-alias.
    assert steens.types_compatible(s1, s2) is True


def test_unmerged_types_still_separate():
    checked, sub, steens, smtr = build(PAPER_EXAMPLE)
    roots = {g.name: VarRoot(g) for g in checked.globals}
    # S3 was never assigned anywhere: both oracles keep it apart from the
    # S1/S2 class... except TypeDecl-style subtype closure keeps T~S3.
    assert steens.types_compatible(roots["s3"], roots["s1"]) is False
    assert steens.types_compatible(roots["s3"], roots["t"]) is True


def test_weaker_or_equal_to_smtyperefs_everywhere():
    checked, sub, steens, smtr = build(PAPER_EXAMPLE)
    roots = [VarRoot(g) for g in checked.globals]
    for i, p in enumerate(roots):
        for q in roots[i:]:
            if smtr.types_compatible(p, q):
                assert steens.types_compatible(p, q)


@pytest.mark.parametrize("name", ["format", "slisp", "postcard"])
def test_suite_pair_counts_ordered(suite, name):
    """SMFieldTypeRefs ⊆ SteensgaardFTR (pairs) on real programs."""
    program = suite.program(name)
    checked = program.checked
    base = suite.build(name)
    sub = SubtypeOracle(checked)
    taken = collect_address_taken(checked, sub)
    steens_analysis = SteensgaardFieldTypeRefsAnalysis(checked, sub, taken)
    smftr = program.analysis("SMFieldTypeRefs")
    steens_pairs = AliasPairCounter(base.program, steens_analysis).count()
    smftr_pairs = AliasPairCounter(base.program, smftr).count()
    assert smftr_pairs.local_pairs <= steens_pairs.local_pairs
    assert smftr_pairs.global_pairs <= steens_pairs.global_pairs


@pytest.mark.parametrize("name", ["slisp", "k-tree"])
def test_sound_against_dynamic_truth(suite, name):
    """The baseline must still be sound: dynamic aliases predicted."""
    from collections import defaultdict
    from repro.ir.access_path import strip_index
    from repro.runtime import Interpreter

    program = suite.program(name)
    checked = program.checked
    sub = SubtypeOracle(checked)
    taken = collect_address_taken(checked, sub)
    analysis = SteensgaardFieldTypeRefsAnalysis(checked, sub, taken)

    by_address = defaultdict(set)

    class Tracer:
        def on_load(self, instr, addr, value, activation):
            if instr.ap is not None:
                by_address[addr].add(strip_index(instr.ap))

        on_store = on_load

    result = suite.build(name)
    Interpreter(result.program, tracer=Tracer()).run()
    for aps in by_address.values():
        aps = sorted(aps, key=str)
        for i, p in enumerate(aps):
            for q in aps[i + 1 :]:
                assert analysis.may_alias(p, q), (str(p), str(q))


def test_factory_exposes_baseline():
    from repro.analysis import make_analysis

    checked = check_module(parse_module(PAPER_EXAMPLE))
    analysis = make_analysis(checked, "SteensgaardFieldTypeRefs")
    assert analysis.name == "SteensgaardFieldTypeRefs"
