"""Fact serialization: hashes, flattened exports, bundle versioning."""

import pickle

import pytest

from repro import compile_program
from repro.analysis.facts import (
    FACTS_SCHEMA_VERSION,
    bundle_is_current,
    collect_world_facts,
    diff_proc_hashes,
    new_bundle,
    proc_ir_hashes,
    source_hash,
)

SOURCE = """
MODULE Facts;

TYPE
  T = OBJECT f: T; n: INTEGER; END;
  S = T OBJECT g: T; END;

VAR root: T;

PROCEDURE Alpha (p: T) =
BEGIN
  p.f := p;
END Alpha;

PROCEDURE Beta (p: T; VAR k: INTEGER) =
BEGIN
  k := p.n;
END Beta;

VAR n: INTEGER;

BEGIN
  root := NEW (S);
  Alpha (root);
  Beta (root, n);
END Facts.
"""


def test_source_hash_is_content_addressed():
    assert source_hash(SOURCE) == source_hash(SOURCE)
    assert source_hash(SOURCE) != source_hash(SOURCE + " ")
    assert len(source_hash(SOURCE)) == 64


def test_proc_hashes_stable_across_compiles_and_edit_localised():
    base1 = compile_program(SOURCE, "f1").base().program
    base2 = compile_program(SOURCE, "f2").base().program
    h1, h2 = proc_ir_hashes(base1), proc_ir_hashes(base2)
    # Pure function of the lowered IR: no ids/addresses leak in.
    assert h1 == h2
    assert {"Alpha", "Beta"} <= set(h1)

    edited = SOURCE.replace("k := p.n;", "k := p.n + 1;")
    h3 = proc_ir_hashes(compile_program(edited, "f3").base().program)
    changed, unchanged = diff_proc_hashes(h1, h3)
    assert changed == ["Beta"]
    assert "Alpha" in unchanged


def test_diff_counts_added_and_removed_as_changed():
    old = {"A": "1", "B": "2"}
    new = {"B": "2", "C": "3"}
    changed, unchanged = diff_proc_hashes(old, new)
    assert changed == ["A", "C"]
    assert unchanged == ["B"]


def test_collect_world_facts_summary_shapes():
    program = compile_program(SOURCE, "facts.m3")
    for open_world in (False, True):
        facts = collect_world_facts(program.pipeline.context(open_world))
        assert facts.open_world is open_world
        summary = facts.summary()
        assert summary["open_world"] is open_world
        assert summary["object_types"] >= 2       # T, S at least
        assert summary["pointer_types"] >= 2
        assert summary["steensgaard_classes"] >= 1
        # The exports are deterministic: rebuild and compare.
        again = collect_world_facts(program.pipeline.context(open_world))
        assert again.subtype_masks == facts.subtype_masks
        assert again.typerefs_masks == facts.typerefs_masks
        assert again.steensgaard_classes == facts.steensgaard_classes
        assert again.address_taken == facts.address_taken


def test_open_world_facts_differ_from_closed():
    program = compile_program(SOURCE, "facts.m3")
    closed = collect_world_facts(program.pipeline.context(False))
    opened = collect_world_facts(program.pipeline.context(True))
    assert closed.address_taken != opened.address_taken


def test_bundle_versioning_and_pickle_roundtrip():
    key = source_hash(SOURCE)
    bundle = new_bundle("Facts", key, {"Alpha": "aa", "Beta": "bb"})
    assert bundle.schema == FACTS_SCHEMA_VERSION
    assert bundle_is_current(bundle)
    clone = pickle.loads(pickle.dumps(bundle))
    assert bundle_is_current(clone)
    assert clone.proc_hashes == bundle.proc_hashes

    stale = new_bundle("Facts", key, {})
    stale.schema = FACTS_SCHEMA_VERSION + 1
    assert not bundle_is_current(stale)
    from_old_build = new_bundle("Facts", key, {})
    from_old_build.repro_version = "0.0.0"
    assert not bundle_is_current(from_old_build)
    assert not bundle_is_current("not a bundle")


@pytest.mark.parametrize("analysis", ["TypeDecl", "SMFieldTypeRefs"])
def test_config_facts_store_counts_per_configuration(analysis):
    from repro.analysis.alias_pairs import AliasPairCounter
    from repro.analysis.bulk import build_matrix
    from repro.analysis.facts import ConfigFacts

    program = compile_program(SOURCE, "facts.m3")
    base = program.base().program
    alias = program.analysis(analysis)
    matrix = build_matrix(base, alias)
    counts = matrix.count_pairs()
    facts = ConfigFacts(
        analysis=analysis, open_world=False, matrix=matrix,
        references=counts.references, local_pairs=counts.local_pairs,
        global_pairs=counts.global_pairs)
    assert facts.counts() == \
        AliasPairCounter(base, alias, engine="fast").count().counts()

    bundle = new_bundle("Facts", source_hash(SOURCE), {})
    bundle.add_config(facts)
    assert bundle.config(analysis, False) is facts
    assert bundle.config(analysis, True) is None
    # The matrix's transient caches stay out of the pickle payload.
    restored = pickle.loads(pickle.dumps(bundle))
    assert restored.config(analysis, False).counts() == facts.counts()
