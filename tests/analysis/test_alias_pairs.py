"""Static alias-pair metric tests (Table 5)."""

from repro.analysis import AliasPairCounter, collect_heap_references, make_analysis
from repro.ir.lowering import lower_module
from repro.lang import check_module, parse_module


SOURCE = """
MODULE M;
TYPE
  T = OBJECT f, g: T; END;
  S = T OBJECT a: INTEGER; END;
VAR t: T; s: S; x: INTEGER;

PROCEDURE P1 () =
BEGIN
  t.f := t.g;
END P1;

PROCEDURE P2 () =
BEGIN
  s.f := NIL;
  x := s.a;
END P2;

BEGIN
  P1 ();
  P2 ();
END M.
"""


def build():
    checked = check_module(parse_module(SOURCE))
    program = lower_module(checked)
    return checked, program


def test_reference_collection_dedupes_per_proc():
    checked, program = build()
    refs = collect_heap_references(program)
    assert {str(ap) for ap in refs["P1"]} == {"t.f", "t.g"}
    assert {str(ap) for ap in refs["P2"]} == {"s.f", "s.a"}
    assert refs["<main>"] == []


def test_dope_loads_not_counted_as_references():
    source = """
    MODULE M;
    TYPE B = REF ARRAY OF CHAR;
    VAR b: B; c: CHAR;
    BEGIN c := b^[0]; END M.
    """
    program = lower_module(check_module(parse_module(source)))
    refs = collect_heap_references(program)
    assert {str(ap) for ap in refs["<main>"]} == {"b^[0]"}


def test_var_param_access_not_a_reference():
    source = """
    MODULE M;
    VAR x: INTEGER;
    PROCEDURE P (VAR v: INTEGER) = BEGIN v := v + 1; END P;
    BEGIN P (x); END M.
    """
    program = lower_module(check_module(parse_module(source)))
    refs = collect_heap_references(program)
    assert refs["P"] == []


def test_local_vs_global_pairs():
    checked, program = build()
    analysis = make_analysis(checked, "TypeDecl")
    report = AliasPairCounter(program, analysis).count()
    assert report.references == 4
    # TypeDecl: all four T-typed refs alias each other except the INTEGER
    # field s.a, which only matches itself.
    # within P1: (t.f, t.g) -> 1 local pair
    # within P2: s.f vs s.a -> no (INTEGER vs T)
    assert report.local_pairs == 1
    # across procs additionally: t.f~s.f, t.f~s.... all T-typed pairs:
    # {t.f, t.g, s.f} -> 3 pairs total, 1 of them local
    assert report.global_pairs == 3


def test_fieldtypedecl_refines():
    checked, program = build()
    td = AliasPairCounter(program, make_analysis(checked, "TypeDecl")).count()
    ftd = AliasPairCounter(program, make_analysis(checked, "FieldTypeDecl")).count()
    # t.f vs t.g distinguished by field name now
    assert ftd.local_pairs == 0
    assert ftd.global_pairs <= td.global_pairs
    assert ftd.global_pairs == 1  # only t.f ~ s.f


def test_per_reference_averages():
    checked, program = build()
    report = AliasPairCounter(program, make_analysis(checked, "TypeDecl")).count()
    assert report.local_per_reference == 2 * 1 / 4
    assert report.global_per_reference == 2 * 3 / 4


def test_cache_stats_and_clear():
    checked, program = build()
    analysis = make_analysis(checked, "FieldTypeDecl")
    stats = analysis.cache_stats()
    assert stats == {"hits": 0, "misses": 0, "size": 0}

    AliasPairCounter(program, analysis, engine="reference").count()
    stats = analysis.cache_stats()
    assert stats["misses"] == stats["size"] > 0

    # A repeated query is a pure cache hit.
    hits_before = stats["hits"]
    refs = [ap for aps in collect_heap_references(program).values() for ap in aps]
    analysis.may_alias(refs[0], refs[1])
    assert analysis.cache_stats()["hits"] == hits_before + 1

    analysis.cache_clear()
    assert analysis.cache_stats() == {"hits": 0, "misses": 0, "size": 0}


def test_engines_agree_and_fast_queries_less():
    checked, program = build()
    reference = make_analysis(checked, "FieldTypeDecl")
    fast = make_analysis(checked, "FieldTypeDecl")
    ref_report = AliasPairCounter(program, reference, engine="reference").count()
    fast_report = AliasPairCounter(program, fast, engine="fast").count()
    assert ref_report.counts() == fast_report.counts()
    ref_stats, fast_stats = reference.cache_stats(), fast.cache_stats()
    ref_queries = ref_stats["hits"] + ref_stats["misses"]
    fast_queries = fast_stats["hits"] + fast_stats["misses"]
    assert fast_queries < ref_queries
