"""Differential test for the three alias-pair counting engines.

The partition-based ``fast`` engine and the bitset-matrix ``bulk``
engine must produce byte-identical Table 5 counts to the per-pair
``reference`` loop, for every bundled benchmark, every analysis
(including the Steensgaard baseline and the trivial analyses exercising
the generic fallback), closed and open world.  The ``differential``
engine runs all three and raises AssertionError on any mismatch.
(``tests/analysis/test_bulk.py`` covers the matrix object itself and a
200-seed generated-program sweep.)
"""

import pytest

from repro.analysis import (
    ANALYSIS_NAMES,
    EXTRA_ANALYSIS_NAMES,
    AliasPairCounter,
    AlwaysAliasAnalysis,
    NeverAliasAnalysis,
)
from repro.analysis.openworld import AnalysisContext
from repro.bench import registry
from repro.bench.suite import BASE


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_engines_agree_closed_world(suite, name):
    program = suite.program(name)
    base = suite.build(name, BASE)
    for analysis_name in ANALYSIS_NAMES + EXTRA_ANALYSIS_NAMES:
        analysis = AnalysisContext(program.checked).build(analysis_name)
        report = AliasPairCounter(
            base.program, analysis, engine="differential"
        ).count()
        assert report.references > 0


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_engines_agree_open_world(suite, name):
    program = suite.program(name)
    base = suite.build(name, BASE)
    for analysis_name in ANALYSIS_NAMES:
        analysis = program.analysis(analysis_name, open_world=True)
        AliasPairCounter(base.program, analysis, engine="differential").count()


@pytest.mark.parametrize("analysis", [AlwaysAliasAnalysis(), NeverAliasAnalysis()])
def test_generic_fallback_agrees(suite, analysis):
    """Analyses without Table 2 structure go through the generic path."""
    base = suite.build("slisp", BASE)
    AliasPairCounter(base.program, analysis, engine="differential").count()


def test_unknown_engine_rejected(suite):
    base = suite.build("format", BASE)
    program = suite.program("format")
    with pytest.raises(ValueError):
        AliasPairCounter(
            base.program, program.analysis("TypeDecl"), engine="bogus"
        )
