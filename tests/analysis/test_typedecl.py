"""TypeDecl tests — the paper's Section 2.2 examples."""

from repro.analysis import SubtypeOracle, TypeDeclAnalysis
from repro.ir.access_path import VarRoot
from repro.lang import parse_module, check_module


HIERARCHY = """
MODULE M;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
  Other = OBJECT z: INTEGER; END;
VAR t: T; s: S1; u: S2; o: Other; x: INTEGER;
END M.
"""


def setup_module(module):
    module.checked = check_module(parse_module(HIERARCHY))
    module.analysis = TypeDeclAnalysis(SubtypeOracle(module.checked))
    module.roots = {
        g.name: VarRoot(g) for g in module.checked.globals
    }


def may_alias(a, b):
    import sys

    mod = sys.modules[__name__]
    return mod.analysis.may_alias(mod.roots[a], mod.roots[b])


def test_paper_example_t_and_s():
    """Subtypes(T) ∩ Subtypes(S1) ≠ ∅ — t and s may reference the same
    location (the paper's Figure 1 discussion)."""
    assert may_alias("t", "s")


def test_paper_example_t_and_u():
    assert may_alias("t", "u")


def test_paper_example_s_and_u_independent():
    """s: S1 and u: S2 have disjoint subtype sets — never aliased."""
    assert not may_alias("s", "u")


def test_not_transitive():
    """The paper notes TypeDecl is not transitive: t~s and t~u but not s~u."""
    assert may_alias("t", "s") and may_alias("t", "u") and not may_alias("s", "u")


def test_unrelated_hierarchies():
    assert not may_alias("t", "o")
    assert not may_alias("s", "o")


def test_reflexive():
    for name in ("t", "s", "u", "o"):
        assert may_alias(name, name)


def test_symmetric():
    assert may_alias("s", "t") == may_alias("t", "s")
    assert may_alias("u", "s") == may_alias("s", "u")


def test_subtype_oracle_sets():
    import sys

    mod = sys.modules[__name__]
    sub = SubtypeOracle(mod.checked)
    t = mod.checked.named_types["T"]
    s1 = mod.checked.named_types["S1"]
    names = {o.name for o in sub.subtypes(t)}
    assert names == {"T", "S1", "S2", "S3"}
    assert {o.name for o in sub.subtypes(s1)} == {"S1"}


def test_root_contains_all_objects():
    import sys
    from repro.lang.types import ROOT

    mod = sys.modules[__name__]
    sub = SubtypeOracle(mod.checked)
    names = {o.name for o in sub.subtypes(ROOT)}
    assert {"T", "S1", "S2", "S3", "Other", "ROOT"} <= names
