"""SMTypeRefs tests — the paper's Figure 2 / Figure 3 / Table 3."""

import pytest

from repro.analysis import (
    SMTypeRefsOracle,
    SubtypeOracle,
    collect_pointer_assignments,
)
from repro.lang import check_module, parse_module


def build(source):
    checked = check_module(parse_module(source))
    sub = SubtypeOracle(checked)
    return checked, SMTypeRefsOracle(checked, sub)


def refs(checked, oracle, name):
    return sorted(
        t.name for t in oracle.type_refs_types(checked.named_types[name])
    )


PAPER_EXAMPLE = """
MODULE M;
TYPE
  T = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;
VAR
  s1: S1 := NEW (S1);
  s2: S2 := NEW (S2);
  s3: S3 := NEW (S3);
  t: T;
BEGIN
  t := s1; (* Statement 1 *)
  t := s2; (* Statement 2 *)
END M.
"""


class TestPaperExample:
    """Figure 3 / Figure 4 / Table 3, verbatim."""

    def test_table3(self):
        checked, oracle = build(PAPER_EXAMPLE)
        assert refs(checked, oracle, "T") == ["S1", "S2", "T"]
        assert refs(checked, oracle, "S1") == ["S1"]
        assert refs(checked, oracle, "S2") == ["S2"]
        assert refs(checked, oracle, "S3") == ["S3"]

    def test_asymmetry(self):
        """T may reference S1 objects but S1 paths may not reference T —
        the pruning of Step 3 that plain Steensgaard merging misses
        (the paper's footnote 4)."""
        checked, oracle = build(PAPER_EXAMPLE)
        t = checked.named_types["T"]
        s1 = checked.named_types["S1"]
        assert id(s1) in oracle.type_refs(t)
        assert id(t) not in oracle.type_refs(s1)

    def test_s3_never_merged(self):
        """TypeDecl must assume T may reference S3; SMTypeRefs proves not."""
        checked, oracle = build(PAPER_EXAMPLE)
        t = checked.named_types["T"]
        s3 = checked.named_types["S3"]
        assert id(s3) not in oracle.type_refs(t)
        assert SubtypeOracle(checked).compatible(t, s3)  # TypeDecl says yes


class TestNoAssignments:
    def test_every_type_singleton(self):
        source = """
        MODULE M;
        TYPE T = OBJECT END; S = T OBJECT END;
        VAR t: T; s: S;
        END M.
        """
        checked, oracle = build(source)
        assert refs(checked, oracle, "T") == ["T"]
        assert refs(checked, oracle, "S") == ["S"]


class TestImplicitAssignments:
    def test_parameter_binding_merges(self):
        source = """
        MODULE M;
        TYPE T = OBJECT END; S = T OBJECT END;
        VAR s: S;
        PROCEDURE P (x: T) = BEGIN END P;
        BEGIN P (s); END M.
        """
        checked, oracle = build(source)
        assert refs(checked, oracle, "T") == ["S", "T"]

    def test_return_merges(self):
        source = """
        MODULE M;
        TYPE T = OBJECT END; S = T OBJECT END;
        VAR t: T;
        PROCEDURE Make (): T =
        BEGIN
          RETURN NEW (S);
        END Make;
        BEGIN t := Make (); END M.
        """
        checked, oracle = build(source)
        assert refs(checked, oracle, "T") == ["S", "T"]

    def test_new_field_init_merges(self):
        source = """
        MODULE M;
        TYPE T = OBJECT link: T; END; S = T OBJECT END;
        VAR t: T;
        BEGIN t := NEW (T, link := NEW (S)); END M.
        """
        checked, oracle = build(source)
        assert "S" in refs(checked, oracle, "T")

    def test_narrow_merges(self):
        source = """
        MODULE M;
        TYPE T = OBJECT END; S = T OBJECT END;
        VAR t: T; s: S;
        BEGIN s := NARROW (t, S); END M.
        """
        checked, oracle = build(source)
        assert "S" in refs(checked, oracle, "T")

    def test_method_receiver_merges(self):
        source = """
        MODULE M;
        TYPE T = OBJECT METHODS m () := P; END;
             S = T OBJECT END;
        VAR s: S;
        PROCEDURE P (self: T) = BEGIN END P;
        BEGIN s.m (); END M.
        """
        checked, oracle = build(source)
        # receiver s (S) binds to P's formal of type T
        assert "S" in refs(checked, oracle, "T")

    def test_nil_assignment_does_not_merge(self):
        source = """
        MODULE M;
        TYPE T = OBJECT END; S = T OBJECT END;
        VAR t: T; s: S;
        BEGIN t := NIL; s := NIL; END M.
        """
        checked, oracle = build(source)
        assert refs(checked, oracle, "T") == ["T"]

    def test_var_decl_initialiser_merges(self):
        source = """
        MODULE M;
        TYPE T = OBJECT END; S = T OBJECT END;
        VAR t: T := NEW (S);
        END M.
        """
        checked, oracle = build(source)
        assert "S" in refs(checked, oracle, "T")


class TestAssignmentCollector:
    def test_kinds_collected(self):
        source = """
        MODULE M;
        TYPE T = OBJECT link: T; END; S = T OBJECT END;
        VAR t: T; s: S;
        PROCEDURE P (x: T): T = BEGIN RETURN x; END P;
        BEGIN
          t := s;
          t := NEW (T, link := NEW (S));
          t := P (s);
          s := NARROW (t, S);
        END M.
        """
        checked = check_module(parse_module(source))
        kinds = {a.kind for a in collect_pointer_assignments(checked)}
        assert {"assign", "new-field", "param", "return", "narrow"} <= kinds

    def test_scalar_assignments_ignored(self):
        source = """
        MODULE M;
        VAR x, y: INTEGER;
        BEGIN x := y; END M.
        """
        checked = check_module(parse_module(source))
        assert collect_pointer_assignments(checked) == []

    def test_merge_requires_distinct_types(self):
        source = """
        MODULE M;
        TYPE T = OBJECT END;
        VAR a, b: T;
        BEGIN a := b; END M.
        """
        checked = check_module(parse_module(source))
        assignments = collect_pointer_assignments(checked)
        assert assignments and not any(a.is_merge() for a in assignments)


class TestTransitiveMerging:
    def test_chain_merges_into_one_group(self):
        source = """
        MODULE M;
        TYPE A = OBJECT END; B = A OBJECT END; C = B OBJECT END;
        VAR a: A; b: B; c: C;
        BEGIN
          b := c;
          a := b;
        END M.
        """
        checked, oracle = build(source)
        assert refs(checked, oracle, "A") == ["A", "B", "C"]
        assert refs(checked, oracle, "B") == ["B", "C"]
        assert refs(checked, oracle, "C") == ["C"]

    def test_pruning_by_subtypes(self):
        """Merging unrelated siblings via a common supertype variable must
        not let a sibling reference the other sibling."""
        source = """
        MODULE M;
        TYPE T = OBJECT END; S1 = T OBJECT END; S2 = T OBJECT END;
        VAR t: T; s1: S1; s2: S2;
        BEGIN
          t := s1;
          t := s2;
        END M.
        """
        checked, oracle = build(source)
        assert refs(checked, oracle, "S1") == ["S1"]
        assert refs(checked, oracle, "S2") == ["S2"]
