"""Call graph and mod-ref summary tests."""

from repro.analysis import CallGraph, ModRefAnalysis
from repro.ir.lowering import lower_program


def lower(source):
    return lower_program(source)


SOURCE = """
MODULE M;
TYPE
  T = OBJECT n: INTEGER; METHODS m () := PImpl; END;
  S = T OBJECT OVERRIDES m := SImpl; END;
VAR t: T; g: INTEGER;

PROCEDURE PImpl (self: T) = BEGIN self.n := 1; END PImpl;
PROCEDURE SImpl (self: S) = BEGIN g := 2; END SImpl;

PROCEDURE Leaf () = BEGIN END Leaf;

PROCEDURE WritesField () =
BEGIN
  t.n := 3;
END WritesField;

PROCEDURE Middle () =
BEGIN
  WritesField ();
  Leaf ();
END Middle;

PROCEDURE Bump (VAR v: INTEGER) =
BEGIN
  v := v + 1;
END Bump;

PROCEDURE CallsBumpOnGlobal () =
BEGIN
  Bump (g);
END CallsBumpOnGlobal;

PROCEDURE Dispatch () =
BEGIN
  t.m ();
END Dispatch;

BEGIN
  Middle ();
  Dispatch ();
  CallsBumpOnGlobal ();
END M.
"""


class TestCallGraph:
    def test_direct_edges(self):
        program = lower(SOURCE)
        graph = CallGraph(program)
        assert graph.callees["Middle"] == {"WritesField", "Leaf"}
        assert "Middle" in graph.callers["Leaf"]

    def test_method_targets_bounded_by_static_type(self):
        program = lower(SOURCE)
        graph = CallGraph(program)
        t = program.checked.named_types["T"]
        s = program.checked.named_types["S"]
        assert set(graph.method_targets(t, "m")) == {"PImpl", "SImpl"}
        assert set(graph.method_targets(s, "m")) == {"SImpl"}

    def test_dispatch_edges_in_graph(self):
        program = lower(SOURCE)
        graph = CallGraph(program)
        assert {"PImpl", "SImpl"} <= graph.callees["Dispatch"]


class TestModRef:
    def test_direct_heap_write(self):
        program = lower(SOURCE)
        modref = ModRefAnalysis(program)
        writes = modref.summary("WritesField").heap_writes
        assert any(str(ap) == "t.n" for ap in writes)

    def test_transitive_heap_write(self):
        program = lower(SOURCE)
        modref = ModRefAnalysis(program)
        writes = modref.summary("Middle").heap_writes
        assert any(str(ap) == "t.n" for ap in writes)

    def test_leaf_writes_nothing(self):
        program = lower(SOURCE)
        modref = ModRefAnalysis(program)
        summary = modref.summary("Leaf")
        assert not summary.heap_writes
        assert not summary.global_writes

    def test_global_write_transitive_through_methods(self):
        program = lower(SOURCE)
        modref = ModRefAnalysis(program)
        g = next(s for s in program.checked.globals if s.name == "g")
        # Dispatch may reach SImpl which writes g.
        assert g in modref.summary("Dispatch").global_writes

    def test_var_param_write_detected(self):
        program = lower(SOURCE)
        modref = ModRefAnalysis(program)
        assert modref.summary("Bump").param_writes == {0}

    def test_var_param_write_resolves_to_global_at_call_site(self):
        program = lower(SOURCE)
        modref = ModRefAnalysis(program)
        g = next(s for s in program.checked.globals if s.name == "g")
        assert g in modref.summary("CallsBumpOnGlobal").global_writes

    def test_call_site_kill_queries(self):
        program = lower(SOURCE)
        modref = ModRefAnalysis(program)
        from repro.ir import instructions as ins

        main = program.main
        calls = [i for i in main.all_instrs() if isinstance(i, ins.Call)]
        by_name = {c.proc_name: c for c in calls}
        g = next(s for s in program.checked.globals if s.name == "g")
        assert modref.call_may_write_global(by_name["CallsBumpOnGlobal"], g)
        assert not modref.call_may_write_global(by_name["Middle"], g)
        heap = modref.call_heap_writes(by_name["Middle"])
        assert any(str(ap) == "t.n" for ap in heap)

    def test_reads_tracked(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T; x: INTEGER;
        PROCEDURE Read () = BEGIN x := t.n; END Read;
        BEGIN Read (); END M.
        """
        program = lower(source)
        modref = ModRefAnalysis(program)
        reads = modref.summary("Read").heap_reads
        assert any(str(ap) == "t.n" for ap in reads)

    def test_recursion_terminates(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; f: T; END;
        VAR t: T;
        PROCEDURE Walk (p: T) =
        BEGIN
          IF p # NIL THEN
            p.n := 1;
            Walk (p.f);
          END;
        END Walk;
        BEGIN Walk (t); END M.
        """
        program = lower(source)
        modref = ModRefAnalysis(program)
        assert any(str(ap) == "p.n" for ap in modref.summary("Walk").heap_writes)

    def test_with_handle_to_global_counts_as_global_write(self):
        source = """
        MODULE M;
        VAR g: INTEGER;
        PROCEDURE P () =
        BEGIN
          WITH w = g DO
            w := 1;
          END;
        END P;
        BEGIN P (); END M.
        """
        program = lower(source)
        modref = ModRefAnalysis(program)
        g = next(s for s in program.checked.globals if s.name == "g")
        assert g in modref.summary("P").global_writes
