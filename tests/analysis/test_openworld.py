"""Open-world analysis tests (Section 4)."""

import pytest

from repro.analysis import AliasPairCounter, make_analysis
from repro.analysis.openworld import AnalysisContext
from repro.analysis.smtyperefs import SMTypeRefsOracle
from repro.analysis.typehierarchy import SubtypeOracle
from repro.lang import check_module, parse_module


LIBRARY = """
MODULE Lib;
TYPE
  Node = OBJECT v: INTEGER; next: Node; END;
  Wide = Node OBJECT extra: INTEGER; END;
  Secret = BRANDED "lib.secret" OBJECT v: INTEGER; next: Secret; END;
  SecretKid = Secret OBJECT w: INTEGER; END;
VAR n: Node; s: Secret;
BEGIN
  n := NEW (Node, v := 1);
  s := NEW (Secret, v := 2);
END Lib.
"""


def oracles():
    checked = check_module(parse_module(LIBRARY))
    sub = SubtypeOracle(checked)
    closed = SMTypeRefsOracle(checked, sub)
    opened = SMTypeRefsOracle(checked, sub, open_world=True)
    return checked, closed, opened


class TestConservativeMerging:
    def test_structural_subtype_merged_in_open_world(self):
        checked, closed, opened = oracles()
        node = checked.named_types["Node"]
        wide = checked.named_types["Wide"]
        assert id(wide) not in closed.type_refs(node)
        assert id(wide) in opened.type_refs(node)

    def test_branded_types_stay_separate(self):
        """Unavailable code cannot reconstruct a BRANDED type, so brands
        keep their observed-assignment-only merging even open-world."""
        checked, closed, opened = oracles()
        secret = checked.named_types["Secret"]
        kid = checked.named_types["SecretKid"]
        assert id(kid) not in opened.type_refs(secret)

    def test_open_world_is_superset(self):
        checked, closed, opened = oracles()
        for name in ("Node", "Wide", "Secret", "SecretKid"):
            t = checked.named_types[name]
            assert closed.type_refs(t) <= opened.type_refs(t)


class TestFactory:
    def test_make_analysis_names(self):
        checked = check_module(parse_module(LIBRARY))
        for name in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
            assert make_analysis(checked, name).name == name

    def test_unknown_name(self):
        checked = check_module(parse_module(LIBRARY))
        with pytest.raises(ValueError):
            make_analysis(checked, "Magic")

    def test_context_shares_facts(self):
        checked = check_module(parse_module(LIBRARY))
        ctx = AnalysisContext(checked)
        a = ctx.build("FieldTypeDecl")
        b = ctx.build("SMFieldTypeRefs")
        assert a.address_taken is b.address_taken


class TestSuiteLevel:
    @pytest.mark.parametrize("name", ["dom", "postcard"])
    def test_open_world_adds_pairs_on_branded_programs(self, suite, name):
        """dom/postcard declare unexercised subtypes; the open world must
        assume clients exercise them (except behind brands)."""
        program = suite.program(name)
        base = suite.build(name)
        closed = AliasPairCounter(
            base.program, program.analysis("SMFieldTypeRefs")
        ).count()
        opened = AliasPairCounter(
            base.program, program.analysis("SMFieldTypeRefs", open_world=True)
        ).count()
        assert opened.global_pairs >= closed.global_pairs

    def test_open_world_rle_never_better(self, suite):
        from repro.bench.suite import RunConfig

        for name in ("format", "m3cg"):
            closed = suite.run(name, RunConfig(analysis="SMFieldTypeRefs"))
            opened = suite.run(
                name, RunConfig(analysis="SMFieldTypeRefs", open_world=True)
            )
            assert opened.heap_loads >= closed.heap_loads
            assert opened.output_text() == closed.output_text()
