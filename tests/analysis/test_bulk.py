"""The bitset-matrix bulk engine: kernels, backends, pickling, fuzz.

``test_engine_differential.py`` already pins bulk == fast == reference
on every bundled benchmark (the ``differential`` engine runs all
three).  This module covers what that sweep cannot: the matrix object
itself (point queries, schemes, pickling, the python/numpy backends)
and a wide net of generated programs.
"""

import pickle

import pytest

from repro import compile_program
from repro.analysis import (
    ANALYSIS_NAMES,
    AliasPairCounter,
    AlwaysAliasAnalysis,
    BulkAliasMatrix,
    build_matrix,
    collect_heap_references,
)
from repro.analysis import bulk as bulk_mod
from repro.analysis.bulk import BACKEND_ENV, HAVE_NUMPY, default_backend
from repro.bench.suite import BASE
from repro.qa.generator import GenConfig, generate_program

FUZZ_SEEDS = 200
FUZZ_CONFIG = GenConfig(max_object_types=4, max_procs=3, max_stmts=14)


def _matrix(suite, bench="slisp", analysis_name="FieldTypeDecl"):
    base = suite.build(bench, BASE)
    program = suite.program(bench)
    analysis = program.analysis(analysis_name)
    return base.program, analysis, build_matrix(base.program, analysis)


def test_fuzz_seeds_all_engines_agree():
    """bulk == fast == reference over a wide range of generated shapes."""
    for seed in range(FUZZ_SEEDS):
        generated = generate_program(seed, FUZZ_CONFIG)
        program = compile_program(generated.render(), generated.name)
        ir = program.pipeline.base().program
        for analysis_name in ANALYSIS_NAMES:
            analysis = program.analysis(analysis_name)
            # The differential engine raises AssertionError on any
            # disagreement between the three engines.
            AliasPairCounter(ir, analysis, engine="differential").count()


def test_point_queries_match_analysis(suite):
    ir, analysis, matrix = _matrix(suite)
    refs = collect_heap_references(ir)
    paths = [ap for aps in refs.values() for ap in aps][:60]
    for p in paths:
        for q in paths:
            assert matrix.may_alias_path(p, q) == analysis.may_alias(p, q)


def test_scheme_selection(suite):
    _, _, typedecl = _matrix(suite, analysis_name="TypeDecl")
    assert typedecl.scheme == "typedecl"
    _, _, field = _matrix(suite, analysis_name="FieldTypeDecl")
    assert field.scheme == "field"
    base = suite.build("slisp", BASE)
    generic = build_matrix(base.program, AlwaysAliasAnalysis())
    assert generic.scheme == "generic"
    # AlwaysAlias: every class adjacent to every class, itself included.
    k = generic.n_classes
    assert generic.adjacent_pairs() == k * (k + 1) // 2


def test_backends_agree(suite):
    _, _, matrix = _matrix(suite)
    python = matrix.count_pairs(backend="python")
    assert matrix.count_pairs(backend="python") == python  # deterministic
    if HAVE_NUMPY:
        assert matrix.count_pairs(backend="numpy") == python
    with pytest.raises(ValueError):
        matrix.count_pairs(backend="cuda")


def test_default_backend_env_override(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "python")
    assert default_backend() == "python"
    monkeypatch.setenv(BACKEND_ENV, "fortran")
    with pytest.raises(ValueError):
        default_backend()
    monkeypatch.delenv(BACKEND_ENV)
    assert default_backend() == ("numpy" if HAVE_NUMPY else "python")
    # Small matrices fall back to the big-int kernel: numpy's per-call
    # dispatch overhead swamps the O(k^2) work below the threshold.
    assert default_backend(n_classes=4) == "python"
    big = bulk_mod.NUMPY_MIN_CLASSES
    assert default_backend(n_classes=big) == \
        ("numpy" if HAVE_NUMPY else "python")
    monkeypatch.setenv(BACKEND_ENV, "numpy")
    assert default_backend(n_classes=4) == "numpy"  # forced wins


def test_numpy_backend_requires_numpy(suite, monkeypatch):
    _, _, matrix = _matrix(suite)
    monkeypatch.setattr(bulk_mod, "HAVE_NUMPY", False)
    with pytest.raises(RuntimeError):
        matrix.count_pairs(backend="numpy")


def test_pickle_round_trip(suite):
    """Matrices ship between processes: counts and queries survive."""
    _, analysis, matrix = _matrix(suite)
    before = matrix.count_pairs(backend="python")
    clone = pickle.loads(pickle.dumps(matrix))
    assert clone.analysis_name == matrix.analysis_name
    assert clone.n_paths == matrix.n_paths
    assert clone.n_classes == matrix.n_classes
    assert clone.count_pairs(backend="python") == before
    if HAVE_NUMPY:
        assert clone.count_pairs(backend="numpy") == before
    # Index-level queries survive; the uid -> index map is a transient
    # tied to the building process's interned paths, so path lookups
    # fail loudly rather than silently misresolving.
    for i in range(min(clone.n_paths, 20)):
        for j in range(min(clone.n_paths, 20)):
            assert clone.may_alias_index(i, j) == matrix.may_alias_index(i, j)
    some_path = next(
        ap
        for aps in collect_heap_references(suite.build("slisp", BASE).program).values()
        for ap in aps
    )
    with pytest.raises(LookupError):
        clone.index_of(some_path)


def test_from_references_matches_build_matrix(suite):
    ir, analysis, matrix = _matrix(suite)
    refs = collect_heap_references(ir)
    direct = BulkAliasMatrix.from_references(refs, analysis)
    assert direct.count_pairs() == matrix.count_pairs()


def test_adjacent_pairs_counts_unordered(suite):
    _, _, matrix = _matrix(suite)
    pairs = matrix.adjacent_pairs()
    brute = sum(
        1
        for i in range(matrix.n_classes)
        for j in range(i, matrix.n_classes)
        if (matrix.class_rows[i] >> j) & 1
    )
    assert pairs == brute
