"""Tests for the explain() query tracer."""

import pytest

from repro.analysis import (
    FieldTypeDeclAnalysis,
    SubtypeOracle,
    collect_address_taken,
)
from repro.analysis.typedecl import TypeDeclOracle
from repro.ir.access_path import ConstIndex, Deref, Qualify, Subscript, VarRoot
from repro.lang import check_module, parse_module

SOURCE = """
MODULE M;
TYPE
  T = OBJECT f, g: T; n: INTEGER; END;
  IntRef = REF INTEGER;
  Buf = REF ARRAY OF INTEGER;
  Rec = REF RECORD n: INTEGER; END;
VAR t, u: T; p: IntRef; buf: Buf; r, s: Rec;
PROCEDURE Take (VAR v: INTEGER) = BEGIN END Take;
BEGIN
  Take (t.n);
END M.
"""


@pytest.fixture(scope="module")
def env():
    checked = check_module(parse_module(SOURCE))
    sub = SubtypeOracle(checked)
    analysis = FieldTypeDeclAnalysis(
        TypeDeclOracle(sub), collect_address_taken(checked, sub)
    )
    roots = {g.name: VarRoot(g) for g in checked.globals}
    return checked, analysis, roots


def qual(checked, roots, base, field):
    t = roots[base].type
    return Qualify(roots[base], field, t.field_type(field), t.field_owner(field))


def test_case1_identity(env):
    checked, analysis, roots = env
    p = qual(checked, roots, "t", "f")
    text = analysis.explain(p, p)
    assert "[case 1]" in text and "MAY alias" in text


def test_case2_field_mismatch(env):
    checked, analysis, roots = env
    text = analysis.explain(
        qual(checked, roots, "t", "f"), qual(checked, roots, "t", "g")
    )
    assert "[case 2]" in text and "do NOT alias" in text


def test_case2_implicit_deref_shown(env):
    checked, analysis, roots = env
    text = analysis.explain(
        qual(checked, roots, "t", "f"), qual(checked, roots, "u", "f")
    )
    # Object field selection derefs implicitly: the bases are compared
    # as pointer values by the type oracle, not recursed as locations.
    assert "[case 2]" in text and "implicit deref" in text
    assert "MAY alias" in text


def test_case2_recursion_shown(env):
    checked, analysis, roots = env
    rec = roots["r"].type.target
    p = Qualify(Deref(roots["r"], rec), "n", rec.field_type("n"), None)
    q = Qualify(Deref(roots["s"], rec), "n", rec.field_type("n"), None)
    text = analysis.explain(p, q)
    # Record fields are embedded (no implicit deref): case 2 recurses on
    # the bases, bottoming out in case 7 on the two dereferences.
    assert "[case 2]" in text and "[case 7]" in text
    assert "MAY alias" in text


def test_case3_address_taken(env):
    checked, analysis, roots = env
    deref = Deref(roots["p"], roots["p"].type.target)
    text = analysis.explain(qual(checked, roots, "t", "n"), deref)
    assert "[case 3]" in text and "AddressTaken" in text
    assert "MAY alias" in text


def test_case5_qualify_subscript(env):
    checked, analysis, roots = env
    arr = roots["buf"].type.target
    sub = Subscript(Deref(roots["buf"], arr), ConstIndex(0), arr.element)
    text = analysis.explain(qual(checked, roots, "t", "n"), sub)
    assert "[case 5]" in text and "do NOT alias" in text


def test_explain_matches_may_alias(env):
    checked, analysis, roots = env
    paths = [
        qual(checked, roots, "t", "f"),
        qual(checked, roots, "t", "n"),
        qual(checked, roots, "u", "f"),
        Deref(roots["p"], roots["p"].type.target),
    ]
    for p in paths:
        for q in paths:
            verdict = analysis.may_alias(p, q)
            text = analysis.explain(p, q)
            assert ("MAY alias" in text) == verdict
