"""AddressTaken tests (Sections 2.3 and 4)."""

from repro.analysis import SubtypeOracle, collect_address_taken
from repro.lang import check_module, parse_module
from repro.lang import types as ty


def build(source, open_world=False):
    checked = check_module(parse_module(source))
    sub = SubtypeOracle(checked)
    return checked, collect_address_taken(checked, sub, open_world=open_world)


SOURCE = """
MODULE M;
TYPE
  T = OBJECT n: INTEGER; f: T; END;
  S = T OBJECT m: INTEGER; END;
  Buf = REF ARRAY OF INTEGER;
  CBuf = REF ARRAY OF CHAR;
VAR t: T; s: S; buf: Buf; cbuf: CBuf; x: INTEGER;

PROCEDURE TakeInt (VAR v: INTEGER) = BEGIN v := 0; END TakeInt;

BEGIN
  TakeInt (t.n);          (* field n of a T *)
  TakeInt (buf^[2]);      (* element of a Buf array *)
  TakeInt (x);            (* a variable *)
  WITH w = s.m DO w := 1; END;   (* WITH takes an address too *)
END M.
"""


class TestClosedWorld:
    def test_field_taken(self):
        checked, info = build(SOURCE)
        t = checked.named_types["T"]
        assert info.qualify_taken("n", t, ty.INTEGER)

    def test_field_taken_via_subtype_compatibility(self):
        """AddressTaken(p.f) is true for any base in TypeDecl(p): taking
        &t.n also covers s.n for s: S <: T."""
        checked, info = build(SOURCE)
        s = checked.named_types["S"]
        assert info.qualify_taken("n", s, ty.INTEGER)

    def test_other_field_not_taken(self):
        checked, info = build(SOURCE)
        t = checked.named_types["T"]
        assert not info.qualify_taken("f", t, t)

    def test_with_statement_takes_address(self):
        checked, info = build(SOURCE)
        s = checked.named_types["S"]
        assert info.qualify_taken("m", s, ty.INTEGER)

    def test_array_element_taken_by_type_identity(self):
        checked, info = build(SOURCE)
        buf = checked.named_types["Buf"]
        cbuf = checked.named_types["CBuf"]
        assert info.subscript_taken(buf.target, ty.INTEGER)
        assert not info.subscript_taken(cbuf.target, ty.CHAR)

    def test_variable_taken(self):
        checked, info = build(SOURCE)
        x = next(g for g in checked.globals if g.name == "x")
        t = next(g for g in checked.globals if g.name == "t")
        assert info.var_taken(x)
        assert not info.var_taken(t)

    def test_nothing_taken_in_clean_program(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T;
        BEGIN t.n := 1; END M.
        """
        checked, info = build(source)
        t = checked.named_types["T"]
        assert not info.qualify_taken("n", t, ty.INTEGER)


class TestOpenWorld:
    """Section 4: AddressTaken(p) also holds when a VAR formal of p's
    exact type exists anywhere (unavailable callers may pass addresses)."""

    def test_var_formal_type_taken(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T;
        PROCEDURE P (VAR v: INTEGER) = BEGIN v := 1; END P;
        BEGIN t.n := 1; END M.
        """
        checked, closed = build(source)
        _, opened = build(source, open_world=True)
        t = checked.named_types["T"]
        # closed world: address never taken (P is never called with t.n)
        assert not closed.qualify_taken("n", t, ty.INTEGER)
        # open world: some unavailable caller may pass any INTEGER location
        _, opened = build(source, open_world=True)
        t2 = opened  # silence lint
        checked2 = check_module(parse_module(source))
        assert opened.qualify_taken("n", checked2.named_types["T"], ty.INTEGER)

    def test_type_equality_not_compatibility(self):
        """Modula-3 VAR formals require *identical* types, so a VAR T
        formal does not open up INTEGER locations."""
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T;
        PROCEDURE P (VAR v: T) = BEGIN END P;
        BEGIN t.n := 1; END M.
        """
        checked, opened = build(source, open_world=True)
        t = checked.named_types["T"]
        assert not opened.qualify_taken("n", t, ty.INTEGER)  # n: INTEGER ≠ T
        assert opened.qualify_taken("f", t, t)  # a T-typed path is open
