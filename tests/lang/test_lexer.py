"""Lexer tests, incl. a hypothesis round-trip on identifiers/numbers."""

import pytest
from hypothesis import given, strategies as st

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind as TK


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input(self):
        assert kinds("") == [TK.EOF]

    def test_whitespace_only(self):
        assert kinds(" \t\n\r ") == [TK.EOF]

    def test_identifier(self):
        toks = tokenize("hello")
        assert toks[0].kind is TK.IDENT
        assert toks[0].value == "hello"

    def test_identifier_with_digits_and_underscore(self):
        assert values("a_1b2") == ["a_1b2"]

    def test_keywords_upper_case_only(self):
        toks = tokenize("MODULE module")
        assert toks[0].kind is TK.KW_MODULE
        assert toks[1].kind is TK.IDENT

    def test_integer(self):
        toks = tokenize("12345")
        assert toks[0].kind is TK.INT
        assert toks[0].value == 12345

    def test_malformed_number(self):
        with pytest.raises(LexError):
            tokenize("12ab")

    def test_text_literal(self):
        toks = tokenize('"hi there"')
        assert toks[0].kind is TK.TEXT
        assert toks[0].value == "hi there"

    def test_text_escapes(self):
        toks = tokenize(r'"a\n\t\\\""')
        assert toks[0].value == 'a\n\t\\"'

    def test_unterminated_text(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_char_literal(self):
        toks = tokenize("'x'")
        assert toks[0].kind is TK.CHAR
        assert toks[0].value == "x"

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == "\n"

    def test_char_too_long(self):
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestOperators:
    def test_two_char_operators(self):
        assert kinds(":= .. <= >= =>")[:-1] == [
            TK.ASSIGN,
            TK.DOTDOT,
            TK.LE,
            TK.GE,
            TK.ARROW,
        ]

    def test_single_char_operators(self):
        assert kinds("+ - * / & # ^ | . : = < >")[:-1] == [
            TK.PLUS, TK.MINUS, TK.STAR, TK.SLASH, TK.AMP, TK.NE,
            TK.CARET, TK.BAR, TK.DOT, TK.COLON, TK.EQ, TK.LT, TK.GT,
        ]

    def test_brackets(self):
        assert kinds("()[]{}")[:-1] == [
            TK.LPAREN, TK.RPAREN, TK.LBRACKET, TK.RBRACKET,
            TK.LBRACE, TK.RBRACE,
        ]

    def test_unexpected_char(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestComments:
    def test_simple_comment(self):
        assert kinds("(* anything *) x") == [TK.IDENT, TK.EOF]

    def test_nested_comment(self):
        assert kinds("(* a (* b *) c *) y") == [TK.IDENT, TK.EOF]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("(* never closed")

    def test_comment_containing_quotes(self):
        assert kinds('(* "not a string *) z') == [TK.IDENT, TK.EOF]


class TestLocations:
    def test_line_and_column(self):
        toks = tokenize("a\n  b")
        assert (toks[0].loc.line, toks[0].loc.column) == (1, 1)
        assert (toks[1].loc.line, toks[1].loc.column) == (2, 3)

    def test_unit_name(self):
        toks = tokenize("x", unit="file.m3")
        assert toks[0].loc.unit == "file.m3"


_ident = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper() != s  # avoid accidental keywords (all upper)
)


@given(st.lists(_ident, min_size=1, max_size=10))
def test_identifier_roundtrip(names):
    source = " ".join(names)
    toks = tokenize(source)
    assert [t.value for t in toks[:-1]] == names
    assert all(t.kind is TK.IDENT for t in toks[:-1])


@given(st.lists(st.integers(0, 10**9), min_size=1, max_size=10))
def test_integer_roundtrip(numbers):
    source = " ".join(str(n) for n in numbers)
    toks = tokenize(source)
    assert [t.value for t in toks[:-1]] == numbers


@given(st.text(alphabet=st.characters(blacklist_characters='"\\\n', codec="ascii"), max_size=30))
def test_text_roundtrip(payload):
    toks = tokenize('"{}"'.format(payload))
    assert toks[0].value == payload
