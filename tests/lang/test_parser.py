"""Parser tests: declarations, statements, expressions, error cases."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_module


def parse(source):
    return parse_module(source)


def parse_stmts(body):
    module = parse(
        "MODULE M; VAR a, b, c, i, n: INTEGER; t: TEXT; BEGIN {} END M.".format(body)
    )
    return module.body


def parse_expr(expr):
    stmts = parse_stmts("a := {};".format(expr))
    return stmts[0].value


class TestModuleStructure:
    def test_empty_module(self):
        m = parse("MODULE Empty; END Empty.")
        assert m.name == "Empty"
        assert m.body == []

    def test_module_name_mismatch(self):
        with pytest.raises(ParseError):
            parse("MODULE A; END B.")

    def test_missing_final_dot(self):
        with pytest.raises(ParseError):
            parse("MODULE A; END A")

    def test_interleaved_sections(self):
        m = parse(
            """
            MODULE M;
            TYPE T1 = INTEGER;
            VAR x: INTEGER;
            TYPE T2 = BOOLEAN;
            CONST K = 3;
            END M.
            """
        )
        assert [d.name for d in m.type_decls] == ["T1", "T2"]
        assert m.const_decls[0].name == "K"


class TestTypeExpressions:
    def _type(self, text):
        return parse("MODULE M; TYPE T = {}; END M.".format(text)).type_decls[0].type_expr

    def test_named(self):
        t = self._type("INTEGER")
        assert isinstance(t, ast.NamedTypeExpr)

    def test_ref(self):
        t = self._type("REF INTEGER")
        assert isinstance(t, ast.RefTypeExpr)

    def test_branded_ref(self):
        t = self._type('BRANDED "b" REF INTEGER')
        assert isinstance(t, ast.RefTypeExpr)
        assert t.brand == "b"

    def test_open_array(self):
        t = self._type("ARRAY OF CHAR")
        assert isinstance(t, ast.ArrayTypeExpr)
        assert t.length is None

    def test_fixed_array(self):
        t = self._type("ARRAY [0..9] OF CHAR")
        assert t.length == 10

    def test_fixed_array_must_be_zero_based(self):
        with pytest.raises(ParseError):
            self._type("ARRAY [1..9] OF CHAR")

    def test_record(self):
        t = self._type("RECORD a: INTEGER; b: BOOLEAN; END")
        assert isinstance(t, ast.RecordTypeExpr)
        assert [f for f, _ in t.fields] == ["a", "b"]

    def test_object_with_super(self):
        m = parse(
            """
            MODULE M;
            TYPE
              A = OBJECT x: INTEGER; END;
              B = A OBJECT y: INTEGER; END;
            END M.
            """
        )
        b = m.type_decls[1].type_expr
        assert isinstance(b, ast.ObjectTypeExpr)
        assert isinstance(b.supertype, ast.NamedTypeExpr)

    def test_root_object(self):
        t = self._type("ROOT OBJECT END")
        assert isinstance(t, ast.ObjectTypeExpr)
        assert t.supertype is None

    def test_plain_root(self):
        t = self._type("ROOT")
        assert isinstance(t, ast.NamedTypeExpr)
        assert t.name == "ROOT"

    def test_object_methods_and_overrides(self):
        t = self._type(
            "OBJECT f: INTEGER; METHODS m (): INTEGER := P; OVERRIDES n := Q; END"
        )
        assert t.methods[0].name == "m"
        assert t.methods[0].default_impl == "P"
        assert t.overrides == [("n", "Q")]

    def test_multi_name_fields(self):
        t = self._type("RECORD a, b: INTEGER; END")
        assert [f for f, _ in t.fields] == ["a", "b"]


class TestStatements:
    def test_assignment(self):
        (s,) = parse_stmts("a := 1;")
        assert isinstance(s, ast.AssignStmt)

    def test_assign_requires_designator(self):
        with pytest.raises(ParseError):
            parse_stmts("1 := a;")

    def test_call_statement(self):
        (s,) = parse_stmts("PutInt (a);")
        assert isinstance(s, ast.CallStmt)

    def test_bare_expression_rejected(self):
        with pytest.raises(ParseError):
            parse_stmts("a + 1;")

    def test_if_elsif_else(self):
        (s,) = parse_stmts("IF a = 1 THEN b := 1; ELSIF a = 2 THEN b := 2; ELSE b := 3; END;")
        assert isinstance(s, ast.IfStmt)
        assert len(s.arms) == 2
        assert len(s.else_body) == 1

    def test_while(self):
        (s,) = parse_stmts("WHILE a < 3 DO INC (a); END;")
        assert isinstance(s, ast.WhileStmt)

    def test_repeat(self):
        (s,) = parse_stmts("REPEAT INC (a); UNTIL a = 3;")
        assert isinstance(s, ast.RepeatStmt)

    def test_loop_exit(self):
        (s,) = parse_stmts("LOOP EXIT; END;")
        assert isinstance(s, ast.LoopStmt)
        assert isinstance(s.body[0], ast.ExitStmt)

    def test_for_with_by(self):
        (s,) = parse_stmts("FOR i := 0 TO 9 BY 2 DO b := i; END;")
        assert isinstance(s, ast.ForStmt)
        assert s.by is not None

    def test_return_value(self):
        (s,) = parse_stmts("RETURN;")
        assert isinstance(s, ast.ReturnStmt)
        assert s.value is None

    def test_with_multiple_bindings(self):
        (s,) = parse_stmts("WITH x = a, y = b DO c := x + y; END;")
        assert isinstance(s, ast.WithStmt)
        assert [bind.name for bind in s.bindings] == ["x", "y"]

    def test_case(self):
        (s,) = parse_stmts(
            "CASE a OF | 1, 2 => b := 1; | 3 => b := 2; ELSE b := 0; END;"
        )
        assert isinstance(s, ast.CaseStmt)
        assert len(s.arms) == 2
        assert len(s.arms[0].labels) == 2

    def test_eval(self):
        (s,) = parse_stmts("EVAL a;")
        assert isinstance(s, ast.EvalStmt)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmts("a := 1 b := 2;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinaryExpr)
        assert e.op == "+"
        assert isinstance(e.right, ast.BinaryExpr)
        assert e.right.op == "*"

    def test_precedence_rel_over_and(self):
        e = parse_expr("a < b AND c > 0")
        assert e.op == "AND"

    def test_or_lower_than_and(self):
        e = parse_expr("a = 1 OR b = 2 AND c = 3")
        assert e.op == "OR"

    def test_not(self):
        e = parse_expr("NOT (a = b)")
        assert isinstance(e, ast.UnaryExpr)

    def test_unary_minus(self):
        e = parse_expr("-a")
        assert isinstance(e, ast.UnaryExpr)
        assert e.op == "-"

    def test_parens(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"

    def test_postfix_chain(self):
        e = parse_expr("a")
        assert isinstance(e, ast.NameRef)
        # full chain via a statement in a richer module
        m = parse(
            """
            MODULE M;
            TYPE T = OBJECT f: T; END;
            VAR t: T; x: INTEGER;
            BEGIN
              t := t.f.f;
            END M.
            """
        )
        value = m.body[0].value
        assert isinstance(value, ast.FieldRef)
        assert isinstance(value.obj, ast.FieldRef)

    def test_deref_and_subscript(self):
        m = parse(
            """
            MODULE M;
            TYPE B = REF ARRAY OF CHAR;
            VAR b: B; c: CHAR;
            BEGIN
              c := b^[3];
            END M.
            """
        )
        value = m.body[0].value
        assert isinstance(value, ast.IndexExpr)
        assert isinstance(value.array, ast.DerefExpr)

    def test_new_with_field_inits(self):
        e = parse_expr("1")  # placeholder; NEW needs type context
        m = parse(
            """
            MODULE M;
            TYPE T = OBJECT f: INTEGER; END;
            VAR t: T;
            BEGIN
              t := NEW (T, f := 3);
            END M.
            """
        )
        new = m.body[0].value
        assert isinstance(new, ast.NewExpr)
        assert new.field_inits[0][0] == "f"

    def test_new_with_size(self):
        m = parse(
            """
            MODULE M;
            TYPE B = REF ARRAY OF CHAR;
            VAR b: B;
            BEGIN
              b := NEW (B, 10);
            END M.
            """
        )
        new = m.body[0].value
        assert new.size is not None

    def test_istype_and_narrow(self):
        m = parse(
            """
            MODULE M;
            TYPE A = OBJECT END; B = A OBJECT END;
            VAR a: A; b: B; ok: BOOLEAN;
            BEGIN
              ok := ISTYPE (a, B);
              b := NARROW (a, B);
            END M.
            """
        )
        assert isinstance(m.body[0].value, ast.IsTypeExpr)
        assert isinstance(m.body[1].value, ast.NarrowExpr)

    def test_literals(self):
        assert isinstance(parse_expr("42"), ast.IntLit)
        assert isinstance(parse_expr("TRUE"), ast.BoolLit)
        assert isinstance(parse_expr("FALSE"), ast.BoolLit)
        assert isinstance(parse_expr("NIL"), ast.NilLit)
        assert isinstance(parse_expr("'x'"), ast.CharLit)
        assert isinstance(parse_expr('"s"'), ast.TextLit)

    def test_text_concat(self):
        e = parse_expr('t & "x"')
        assert e.op == "&"


class TestProcedures:
    def test_signature_modes(self):
        m = parse(
            """
            MODULE M;
            PROCEDURE P (a: INTEGER; VAR b: INTEGER; READONLY c: INTEGER): INTEGER =
            BEGIN
              RETURN a + b + c;
            END P;
            END M.
            """
        )
        p = m.proc_decls[0]
        assert [q.mode for q in p.params] == ["value", "var", "readonly"]
        assert p.result is not None

    def test_proc_name_mismatch(self):
        with pytest.raises(ParseError):
            parse("MODULE M; PROCEDURE P () = BEGIN END Q; END M.")

    def test_local_decls(self):
        m = parse(
            """
            MODULE M;
            PROCEDURE P () =
            VAR x: INTEGER;
            CONST K = 2;
            VAR y: INTEGER;
            BEGIN
              x := y + K;
            END P;
            END M.
            """
        )
        p = m.proc_decls[0]
        assert len(p.local_vars) == 2
        assert len(p.local_consts) == 1
