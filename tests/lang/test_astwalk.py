"""Tests for the AST traversal helpers."""

from repro.lang import ast_nodes as ast
from repro.lang.astwalk import all_exprs, stmt_exprs, walk_exprs, walk_stmts
from repro.lang.parser import parse_module


SOURCE = """
MODULE M;
TYPE T = OBJECT f: T; METHODS m (): INTEGER := P; END;
VAR t: T; x: INTEGER; b: BOOLEAN;
PROCEDURE P (self: T): INTEGER = BEGIN RETURN 1; END P;
BEGIN
  IF b THEN
    WHILE x < 3 DO
      x := x + 1;
      CASE x OF | 1 => EXIT; ELSE t := NEW (T, f := t); END;
    END;
  ELSE
    REPEAT
      WITH w = t.f DO
        EVAL w.m ();
      END;
    UNTIL TRUE;
  END;
  FOR i := 0 TO 2 DO
    LOOP EXIT; END;
  END;
END M.
"""


def test_walk_stmts_reaches_all_nesting():
    module = parse_module(SOURCE)
    stmts = list(walk_stmts(module.body))
    kinds = {type(s).__name__ for s in stmts}
    assert {
        "IfStmt", "WhileStmt", "AssignStmt", "CaseStmt", "ExitStmt",
        "RepeatStmt", "WithStmt", "EvalStmt", "ForStmt", "LoopStmt",
    } <= kinds


def test_walk_exprs_covers_subexpressions():
    module = parse_module(SOURCE)
    exprs = [e for _, e in all_exprs(module.body)]
    kinds = {type(e).__name__ for e in exprs}
    assert {"NameRef", "BinaryExpr", "IntLit", "NewExpr", "FieldRef", "CallExpr"} <= kinds


def test_stmt_exprs_direct_only():
    module = parse_module("MODULE M; VAR x: INTEGER; BEGIN x := 1 + 2; END M.")
    stmt = module.body[0]
    direct = list(stmt_exprs(stmt))
    assert len(direct) == 2  # target and value


def test_walk_exprs_on_call_includes_receiver_and_args():
    module = parse_module(
        """
        MODULE M;
        TYPE T = OBJECT METHODS m (a: INTEGER): INTEGER := P; END;
        VAR t: T; x: INTEGER;
        PROCEDURE P (self: T; a: INTEGER): INTEGER = BEGIN RETURN a; END P;
        BEGIN x := t.m (x + 1); END M.
        """
    )
    call = module.body[0].value
    parts = list(walk_exprs(call))
    names = [e.name for e in parts if isinstance(e, ast.NameRef)]
    assert "t" in names and "x" in names


def test_new_expr_inits_walked():
    module = parse_module(
        """
        MODULE M;
        TYPE B = REF ARRAY OF CHAR;
        VAR b: B; n: INTEGER;
        BEGIN b := NEW (B, n + 1); END M.
        """
    )
    new = module.body[0].value
    parts = list(walk_exprs(new))
    assert any(isinstance(e, ast.BinaryExpr) for e in parts)
