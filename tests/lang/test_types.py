"""Tests for the MiniM3 type system objects."""

from repro.lang import types as ty


def make_hierarchy():
    t = ty.ObjectType("T", ty.ROOT, [("f", None), ("g", None)])
    # give fields real types after creation (self-referential)
    t.own_fields = [("f", t), ("g", t)]
    s1 = ty.ObjectType("S1", t, [("x", ty.INTEGER)])
    s2 = ty.ObjectType("S2", t, [("y", ty.INTEGER)])
    return t, s1, s2


class TestSubtyping:
    def test_reflexive(self):
        t, s1, s2 = make_hierarchy()
        for each in (t, s1, s2, ty.ROOT):
            assert ty.is_subtype(each, each)

    def test_chain(self):
        t, s1, _ = make_hierarchy()
        assert ty.is_subtype(s1, t)
        assert ty.is_subtype(s1, ty.ROOT)
        assert not ty.is_subtype(t, s1)

    def test_siblings_unrelated(self):
        _, s1, s2 = make_hierarchy()
        assert not ty.is_subtype(s1, s2)
        assert not ty.is_subtype(s2, s1)

    def test_nil_below_references(self):
        t, _, _ = make_hierarchy()
        assert ty.is_subtype(ty.NIL, t)
        assert ty.is_subtype(ty.NIL, ty.TEXT)
        assert not ty.is_subtype(ty.NIL, ty.INTEGER)

    def test_primitives_unrelated(self):
        assert not ty.is_subtype(ty.INTEGER, ty.BOOLEAN)


class TestFields:
    def test_inherited_fields_ordered(self):
        t, s1, _ = make_hierarchy()
        assert [f for f, _ in s1.all_fields()] == ["f", "g", "x"]

    def test_field_lookup_through_chain(self):
        t, s1, _ = make_hierarchy()
        assert s1.field_type("f") is t
        assert s1.field_type("x") is ty.INTEGER
        assert s1.field_type("missing") is None

    def test_field_index(self):
        _, s1, _ = make_hierarchy()
        assert s1.field_index("f") == 0
        assert s1.field_index("x") == 2

    def test_field_owner(self):
        t, s1, _ = make_hierarchy()
        assert s1.field_owner("f") is t
        assert s1.field_owner("x") is s1


class TestMethods:
    def test_method_resolution_with_override(self):
        m = ty.Method("size", [], ty.INTEGER, "BaseSize")
        t = ty.ObjectType("T", ty.ROOT, [], methods=[m])
        s = ty.ObjectType("S", t, [], overrides=[("size", "SSize")])
        assert t.method_impl("size") == "BaseSize"
        assert s.method_impl("size") == "SSize"
        assert s.find_method("size") is m

    def test_unknown_method(self):
        t = ty.ObjectType("T", ty.ROOT, [])
        assert t.find_method("nope") is None
        assert t.method_impl("nope") is None


class TestReferenceCompatibility:
    def test_same_type(self):
        t, _, _ = make_hierarchy()
        assert ty.is_reference_compatible(t, t)

    def test_upcast_and_checked_downcast(self):
        t, s1, _ = make_hierarchy()
        assert ty.is_reference_compatible(s1, t)
        assert ty.is_reference_compatible(t, s1)  # runtime-checked

    def test_siblings_incompatible(self):
        _, s1, s2 = make_hierarchy()
        assert not ty.is_reference_compatible(s1, s2)

    def test_nil_compatible_with_refs(self):
        assert ty.is_reference_compatible(ty.NIL, ty.TEXT)
        assert not ty.is_reference_compatible(ty.NIL, ty.INTEGER)


class TestTypeTable:
    def test_structural_interning_of_refs(self):
        table = ty.TypeTable()
        a = table.ref(ty.INTEGER)
        b = table.ref(ty.INTEGER)
        assert a is b

    def test_brands_distinguish(self):
        table = ty.TypeTable()
        plain = table.ref(ty.INTEGER)
        branded = table.ref(ty.INTEGER, brand="b")
        other = table.ref(ty.INTEGER, brand="c")
        assert plain is not branded
        assert branded is not other
        assert table.ref(ty.INTEGER, brand="b") is branded

    def test_array_interning(self):
        table = ty.TypeTable()
        assert table.array(ty.CHAR, None) is table.array(ty.CHAR, None)
        assert table.array(ty.CHAR, 4) is not table.array(ty.CHAR, 5)

    def test_record_interning(self):
        table = ty.TypeTable()
        r1 = table.record([("a", ty.INTEGER)])
        r2 = table.record([("a", ty.INTEGER)])
        r3 = table.record([("b", ty.INTEGER)])
        assert r1 is r2
        assert r1 is not r3

    def test_pointer_types_listing(self):
        table = ty.TypeTable()
        table.ref(ty.INTEGER)
        pointers = table.pointer_types()
        assert ty.TEXT in pointers
        assert ty.ROOT in pointers
        assert ty.INTEGER not in pointers


class TestSubtypesOf:
    def test_object_subtypes(self):
        table = ty.TypeTable()
        t, s1, s2 = make_hierarchy()
        for obj in (t, s1, s2):
            table.register_object(obj)
        subs = ty.subtypes_of(t, table)
        assert set(subs) == {t, s1, s2}
        assert ty.subtypes_of(s1, table) == [s1]

    def test_non_object_singleton(self):
        table = ty.TypeTable()
        ref = table.ref(ty.INTEGER)
        assert ty.subtypes_of(ref, table) == [ref]


def test_is_pointer_type():
    assert ty.is_pointer_type(ty.TEXT)
    assert ty.is_pointer_type(ty.ROOT)
    assert ty.is_pointer_type(ty.NIL)
    assert not ty.is_pointer_type(ty.INTEGER)
    assert not ty.is_pointer_type(ty.CHAR)
