"""Type checker tests: acceptance, annotations and rejection."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.errors import TypeCheckError
from repro.lang.parser import parse_module
from repro.lang.typecheck import MAIN_PROC, check_module


def check(source):
    return check_module(parse_module(source))


def check_body(decls, body):
    return check(
        "MODULE M; {} BEGIN {} END M.".format(decls, body)
    )


def expect_error(source, fragment):
    with pytest.raises(TypeCheckError) as err:
        check(source)
    assert fragment in str(err.value)


class TestDeclarations:
    def test_recursive_object(self, demo_checked):
        t = demo_checked.named_types["T"]
        assert t.field_type("f") is t

    def test_recursive_ref_record(self, demo_checked):
        node = demo_checked.named_types["Node"]
        assert isinstance(node, ty.RefType)
        assert node.target.field_type("next") is node

    def test_brand_recorded(self, demo_checked):
        assert demo_checked.named_types["Node"].brand == "node"

    def test_type_alias(self):
        checked = check("MODULE M; TYPE A = INTEGER; B = A; VAR x: B; END M.")
        assert checked.named_types["B"] is ty.INTEGER

    def test_duplicate_type_name(self):
        expect_error("MODULE M; TYPE A = INTEGER; A = BOOLEAN; END M.", "duplicate")

    def test_unknown_type(self):
        expect_error("MODULE M; VAR x: Mystery; END M.", "unknown type")

    def test_illegal_recursion_without_ref(self):
        expect_error(
            "MODULE M; TYPE R = RECORD next: R; END; END M.",
            "aggregate",
        )

    def test_field_shadowing_rejected(self):
        expect_error(
            """
            MODULE M;
            TYPE A = OBJECT f: INTEGER; END;
                 B = A OBJECT f: INTEGER; END;
            END M.
            """,
            "shadows",
        )

    def test_aggregate_variable_rejected(self):
        expect_error(
            "MODULE M; VAR a: ARRAY [0..3] OF INTEGER; END M.", "aggregate"
        )

    def test_aggregate_param_rejected(self):
        expect_error(
            "MODULE M; PROCEDURE P (r: RECORD x: INTEGER; END) = BEGIN END P; END M.",
            "aggregate",
        )

    def test_const_arithmetic(self):
        checked = check("MODULE M; CONST A = 2 + 3 * 4; VAR x: INTEGER; END M.")
        # main body sees the const via the scope; check the symbol value
        sym = [p for p in checked.procs.values()][0]
        # consts are global symbols — find via a body usage instead
        checked2 = check_body("CONST A = 2 + 3 * 4; VAR x: INTEGER;", "x := A;")
        assert checked2 is not None

    def test_const_ord(self):
        check_body("CONST A = ORD ('a'); VAR x: INTEGER;", "x := A;")


class TestExpressions:
    def test_literal_types(self, demo_checked):
        pass  # covered via bodies below

    def test_arith_types(self):
        check_body("VAR x: INTEGER;", "x := 1 + 2 * (3 DIV 4) - (5 MOD 6);")

    def test_real_division_rejected(self):
        expect_error("MODULE M; VAR x: INTEGER; BEGIN x := 4 / 2; END M.", "DIV")

    def test_arith_type_mismatch(self):
        expect_error("MODULE M; VAR x: INTEGER; BEGIN x := 1 + TRUE; END M.", "expected")

    def test_text_concat(self):
        check_body("VAR t: TEXT;", 't := "a" & "b";')

    def test_comparisons(self):
        check_body("VAR b: BOOLEAN;", "b := 1 < 2;")
        check_body("VAR b: BOOLEAN;", "b := 'a' <= 'b';")
        check_body("VAR b: BOOLEAN;", 'b := "x" > "y";')

    def test_mixed_ordering_rejected(self):
        expect_error("MODULE M; VAR b: BOOLEAN; BEGIN b := 1 < 'a'; END M.", "ordering")

    def test_equality_refs_and_nil(self):
        check_body(
            "TYPE T = OBJECT END; VAR t: T; b: BOOLEAN;",
            "b := t = NIL;",
        )

    def test_equality_unrelated_rejected(self):
        expect_error(
            "MODULE M; VAR b: BOOLEAN; BEGIN b := 1 = TRUE; END M.", "compare"
        )

    def test_bool_ops(self):
        check_body("VAR b: BOOLEAN;", "b := TRUE AND NOT FALSE OR b;")

    def test_undeclared_name(self):
        expect_error("MODULE M; BEGIN zap := 1; END M.", "undeclared")


class TestDesignators:
    DECLS = """
    TYPE
      T = OBJECT f: T; n: INTEGER; END;
      B = REF ARRAY OF CHAR;
      R = REF RECORD a: INTEGER; END;
      C = REF INTEGER;
    VAR t: T; b: B; r: R; c: C; x: INTEGER; ch: CHAR;
    """

    def test_field_chain(self):
        check_body(self.DECLS, "x := t.f.f.n;")

    def test_unknown_field(self):
        expect_error(
            "MODULE M; {} BEGIN x := t.zap; END M.".format(self.DECLS), "no field"
        )

    def test_record_field_through_deref(self):
        check_body(self.DECLS, "x := r^.a; r^.a := x;")

    def test_scalar_deref(self):
        check_body(self.DECLS, "x := c^; c^ := 3;")

    def test_deref_non_ref_rejected(self):
        expect_error(
            "MODULE M; {} BEGIN x := x^; END M.".format(self.DECLS), "REF"
        )

    def test_subscript(self):
        check_body(self.DECLS, "ch := b^[x]; b^[0] := 'y';")

    def test_subscript_non_array_rejected(self):
        expect_error(
            "MODULE M; {} BEGIN ch := t[0]; END M.".format(self.DECLS), "array"
        )

    def test_subscript_index_must_be_int(self):
        expect_error(
            "MODULE M; {} BEGIN ch := b^[TRUE]; END M.".format(self.DECLS),
            "expected INTEGER",
        )

    def test_assign_to_constant_rejected(self):
        expect_error(
            "MODULE M; CONST K = 1; BEGIN K := 2; END M.", "constant"
        )

    def test_assign_to_for_index_rejected(self):
        expect_error(
            "MODULE M; BEGIN FOR i := 0 TO 3 DO i := 1; END; END M.", "FOR index"
        )

    def test_assign_to_readonly_rejected(self):
        expect_error(
            """
            MODULE M;
            PROCEDURE P (READONLY a: INTEGER) = BEGIN a := 1; END P;
            END M.
            """,
            "READONLY",
        )

    def test_with_value_binding_not_writable(self):
        expect_error(
            "MODULE M; VAR x: INTEGER; BEGIN WITH w = x + 1 DO w := 2; END; END M.",
            "not a location",
        )

    def test_with_location_binding_writable(self):
        check_body("VAR x: INTEGER;", "WITH w = x DO w := 2; END;")


class TestAssignability:
    HIER = """
    TYPE T = OBJECT END; S = T OBJECT END; U = OBJECT END;
    VAR t: T; s: S; u: U;
    """

    def test_upcast_ok(self):
        check_body(self.HIER, "t := s;")

    def test_downcast_ok_runtime_checked(self):
        check_body(self.HIER, "s := NARROW (t, S); s := t;")

    def test_unrelated_rejected(self):
        expect_error(
            "MODULE M; {} BEGIN t := u; END M.".format(self.HIER),
            "not assignable",
        )

    def test_nil_ok(self):
        check_body(self.HIER, "t := NIL;")

    def test_int_to_ref_rejected(self):
        expect_error(
            "MODULE M; {} BEGIN t := 1; END M.".format(self.HIER),
            "not assignable",
        )


class TestCalls:
    def test_proc_call_and_result(self):
        check_body(
            "VAR x: INTEGER; PROCEDURE F (a: INTEGER): INTEGER = BEGIN RETURN a; END F;",
            "x := F (3);",
        )

    def test_arity_mismatch(self):
        expect_error(
            """
            MODULE M;
            PROCEDURE F (a: INTEGER) = BEGIN END F;
            BEGIN F (1, 2); END M.
            """,
            "arguments",
        )

    def test_var_param_requires_designator(self):
        expect_error(
            """
            MODULE M;
            PROCEDURE F (VAR a: INTEGER) = BEGIN END F;
            BEGIN F (1 + 2); END M.
            """,
            "designator",
        )

    def test_var_param_requires_identical_type(self):
        expect_error(
            """
            MODULE M;
            TYPE T = OBJECT END; S = T OBJECT END;
            VAR s: S;
            PROCEDURE F (VAR a: T) = BEGIN END F;
            BEGIN F (s); END M.
            """,
            "exactly",
        )

    def test_discarded_result_rejected(self):
        expect_error(
            """
            MODULE M;
            PROCEDURE F (): INTEGER = BEGIN RETURN 1; END F;
            BEGIN F (); END M.
            """,
            "EVAL",
        )

    def test_eval_discards(self):
        check_body(
            "PROCEDURE F (): INTEGER = BEGIN RETURN 1; END F;",
            "EVAL F ();",
        )

    def test_method_call(self, demo_checked):
        # demo calls t.size (); the checker classified it
        main = demo_checked.main
        calls = [
            s.call.call_kind
            for s in _walk(main.body)
            if isinstance(s, ast.CallStmt)
        ]
        assert "builtin" in calls

    def test_method_wrong_args(self):
        expect_error(
            """
            MODULE M;
            TYPE T = OBJECT METHODS m (x: INTEGER) := P; END;
            VAR t: T;
            PROCEDURE P (self: T; x: INTEGER) = BEGIN END P;
            BEGIN t.m (); END M.
            """,
            "arguments",
        )

    def test_override_unknown_method(self):
        expect_error(
            """
            MODULE M;
            TYPE T = OBJECT OVERRIDES nope := P; END;
            PROCEDURE P (self: T) = BEGIN END P;
            END M.
            """,
            "unknown method",
        )

    def test_method_impl_arity(self):
        expect_error(
            """
            MODULE M;
            TYPE T = OBJECT METHODS m () := P; END;
            PROCEDURE P (self: T; extra: INTEGER) = BEGIN END P;
            END M.
            """,
            "params",
        )


class TestStatementsAndFlow:
    def test_if_condition_must_be_bool(self):
        expect_error("MODULE M; BEGIN IF 1 THEN END; END M.", "BOOLEAN")

    def test_exit_outside_loop(self):
        expect_error("MODULE M; BEGIN EXIT; END M.", "EXIT")

    def test_return_type_mismatch(self):
        expect_error(
            """
            MODULE M;
            PROCEDURE F (): INTEGER = BEGIN RETURN TRUE; END F;
            END M.
            """,
            "not assignable",
        )

    def test_return_value_in_proper_procedure(self):
        expect_error(
            "MODULE M; PROCEDURE P () = BEGIN RETURN 1; END P; END M.",
            "proper procedure",
        )

    def test_missing_return_value(self):
        expect_error(
            "MODULE M; PROCEDURE F (): INTEGER = BEGIN RETURN; END F; END M.",
            "carry a value",
        )

    def test_case_selector_type(self):
        expect_error(
            "MODULE M; BEGIN CASE TRUE OF | 1 => END; END M.",
            "CASE selector",
        )

    def test_case_label_type_mismatch(self):
        expect_error(
            "MODULE M; VAR x: INTEGER; BEGIN CASE x OF | 'a' => END; END M.",
            "label",
        )

    def test_for_zero_step_rejected(self):
        expect_error(
            "MODULE M; BEGIN FOR i := 0 TO 3 BY 0 DO END; END M.",
            "non-zero",
        )

    def test_for_nonconst_step_rejected(self):
        expect_error(
            "MODULE M; VAR s: INTEGER; BEGIN FOR i := 0 TO 3 BY s DO END; END M.",
            "constant",
        )


class TestNew:
    def test_open_array_needs_size(self):
        expect_error(
            "MODULE M; TYPE B = REF ARRAY OF CHAR; VAR b: B; BEGIN b := NEW (B); END M.",
            "size",
        )

    def test_object_new_rejects_size(self):
        expect_error(
            "MODULE M; TYPE T = OBJECT END; VAR t: T; BEGIN t := NEW (T, 3); END M.",
            "size",
        )

    def test_unknown_field_init(self):
        expect_error(
            "MODULE M; TYPE T = OBJECT f: INTEGER; END; VAR t: T; BEGIN t := NEW (T, g := 1); END M.",
            "no field",
        )

    def test_new_of_non_reference(self):
        expect_error(
            "MODULE M; VAR x: INTEGER; BEGIN x := NEW (INTEGER); END M.",
            "reference",
        )

    def test_record_field_inits(self):
        check_body(
            "TYPE R = REF RECORD a: INTEGER; END; VAR r: R;",
            "r := NEW (R, a := 4);",
        )


class TestTypeTests:
    HIER = "TYPE T = OBJECT END; S = T OBJECT END; VAR t: T; b: BOOLEAN;"

    def test_istype_ok(self):
        check_body(self.HIER, "b := ISTYPE (t, S);")

    def test_istype_on_non_object(self):
        expect_error(
            "MODULE M; VAR x: INTEGER; b: BOOLEAN; BEGIN b := ISTYPE (x, ROOT); END M.",
            "object values",
        )

    def test_narrow_unrelated(self):
        expect_error(
            """
            MODULE M;
            TYPE A = OBJECT END; B = OBJECT END;
            VAR a: A; b: B;
            BEGIN b := NARROW (a, B); END M.
            """,
            "unrelated",
        )


def _walk(stmts):
    from repro.lang.astwalk import walk_stmts

    return list(walk_stmts(stmts))


def test_proc_order_includes_main(demo_checked):
    assert demo_checked.proc_order[-1] == MAIN_PROC
    assert demo_checked.main.result is None
