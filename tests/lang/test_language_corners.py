"""Edge-case semantics tests pinned to docs/LANGUAGE.md."""

import pytest

from repro import compile_program
from repro.runtime import M3RuntimeError


def out(body, decls=""):
    program = compile_program("MODULE M; {} BEGIN {} END M.".format(decls, body))
    return program.run().output_text()


class TestCaseStatement:
    def test_no_match_no_else_falls_through(self):
        assert out("CASE 9 OF | 1 => PutChar ('a'); END; PutChar ('.');") == "."

    def test_char_selector(self):
        assert out(
            "CASE 'b' OF | 'a' => PutChar ('1'); | 'b' => PutChar ('2'); END;"
        ) == "2"

    def test_const_labels(self):
        assert out(
            "CASE 4 OF | K => PutChar ('k'); ELSE PutChar ('?'); END;",
            "CONST K = 2 * 2;",
        ) == "k"


class TestLoops:
    def test_repeat_with_exit(self):
        assert out(
            """
            i := 0;
            REPEAT
              INC (i);
              IF i = 2 THEN EXIT; END;
            UNTIL i > 10;
            PutInt (i);
            """,
            "VAR i: INTEGER;",
        ) == "2"

    def test_for_by_negative_zero_trip(self):
        assert out("FOR i := 1 TO 3 BY -1 DO PutInt (i); END; PutChar ('.');") == "."

    def test_for_bounds_evaluated_once(self):
        assert out(
            """
            n := 3;
            FOR i := 0 TO n DO
              n := 100;       (* must not extend the loop *)
              PutInt (i);
            END;
            """,
            "VAR n: INTEGER;",
        ) == "0123"

    def test_nested_exit_targets_innermost(self):
        assert out(
            """
            i := 0;
            LOOP
              INC (i);
              LOOP EXIT; END;
              IF i = 3 THEN EXIT; END;
            END;
            PutInt (i);
            """,
            "VAR i: INTEGER;",
        ) == "3"


class TestWith:
    def test_nested_with_shadows(self):
        assert out(
            """
            x := 1;
            WITH w = x DO
              WITH w = 10 DO
                PutInt (w);
              END;
              w := w + 1;
            END;
            PutInt (x);
            """,
            "VAR x: INTEGER;",
        ) == "102"

    def test_with_on_array_element_is_a_snapshot_location(self):
        assert out(
            """
            b := NEW (B, 3);
            i := 1;
            WITH w = b^[i] DO
              i := 2;          (* the binding already captured index 1 *)
              w := 7;
            END;
            PutInt (b^[1]); PutInt (b^[2]);
            """,
            "TYPE B = REF ARRAY OF INTEGER; VAR b: B; i: INTEGER;",
        ) == "70"

    def test_with_value_binding_snapshot(self):
        assert out(
            """
            x := 5;
            WITH w = x + 1 DO
              x := 100;
              PutInt (w);
            END;
            """,
            "VAR x: INTEGER;",
        ) == "6"


class TestVarParams:
    def test_relending_chain(self):
        decls = """
        VAR x: INTEGER;
        PROCEDURE Inner (VAR v: INTEGER) = BEGIN v := v + 1; END Inner;
        PROCEDURE Outer (VAR v: INTEGER) = BEGIN Inner (v); Inner (v); END Outer;
        """
        assert out("x := 1; Outer (x); PutInt (x);", decls) == "3"

    def test_var_param_aliasing_two_names(self):
        decls = """
        VAR x: INTEGER;
        PROCEDURE Both (VAR a, b: INTEGER) =
        BEGIN
          a := a + 1;   (* a and b are the same location *)
          b := b + 1;
        END Both;
        """
        assert out("x := 0; Both (x, x); PutInt (x);", decls) == "2"

    def test_with_handle_relent_to_var_param(self):
        decls = """
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T;
        PROCEDURE Bump (VAR v: INTEGER) = BEGIN v := v + 1; END Bump;
        """
        assert out(
            "t := NEW (T, n := 1); WITH w = t.n DO Bump (w); END; PutInt (t.n);",
            decls,
        ) == "2"


class TestMethods:
    def test_inherited_default_implementation(self):
        decls = """
        TYPE
          A = OBJECT METHODS who (): INTEGER := WhoA; END;
          B = A OBJECT END;
        VAR b: B;
        PROCEDURE WhoA (self: A): INTEGER = BEGIN RETURN 1; END WhoA;
        """
        assert out("b := NEW (B); PutInt (b.who ());", decls) == "1"

    def test_method_without_implementation_traps(self):
        decls = """
        TYPE A = OBJECT METHODS who (): INTEGER; END;
        VAR a: A;
        """
        program = compile_program(
            "MODULE M; {} BEGIN a := NEW (A); PutInt (a.who ()); END M.".format(decls)
        )
        with pytest.raises(M3RuntimeError):
            program.run()

    def test_super_call_via_direct_procedure(self):
        decls = """
        TYPE
          A = OBJECT METHODS v (): INTEGER := VA; END;
          B = A OBJECT OVERRIDES v := VB; END;
        VAR b: B;
        PROCEDURE VA (self: A): INTEGER = BEGIN RETURN 10; END VA;
        PROCEDURE VB (self: B): INTEGER = BEGIN RETURN VA (self) + 1; END VB;
        """
        assert out("b := NEW (B); PutInt (b.v ());", decls) == "11"


class TestTextAndChars:
    def test_text_comparisons(self):
        assert out('IF "abc" < "abd" THEN PutChar (\'y\'); END;') == "y"
        assert out('IF "x" = "x" THEN PutChar (\'=\'); END;') == "="

    def test_char_arithmetic_via_ord_val(self):
        assert out("PutChar (VAL (ORD ('a') + 2, CHAR));") == "c"

    def test_escapes_roundtrip(self):
        assert out('PutText ("a\\tb");') == "a\tb"
        assert out("PutChar ('\\n');") == "\n"


class TestRecursionDepth:
    def test_deep_recursion(self):
        decls = """
        PROCEDURE Count (n: INTEGER): INTEGER =
        BEGIN
          IF n = 0 THEN RETURN 0; END;
          RETURN 1 + Count (n - 1);
        END Count;
        """
        assert out("PutInt (Count (2000));", decls) == "2000"
