"""Pathological nesting must fail cleanly, never with RecursionError.

The recursive-descent parser and the recursive type checker both walk
structures as deep as the input nests; without a cap, hostile input
escalates to an uncatchable ``RecursionError`` deep inside the stack.
The parser counts nesting depth and raises ``ResourceLimitError``
(kind="recursion") at ``MAX_NESTING_DEPTH``, and bumps the interpreter
recursion limit high enough that inputs *under* the cap parse and check
without incident.
"""

import pytest

from repro.lang.errors import CompileError, ResourceLimitError
from repro.lang.parser import MAX_NESTING_DEPTH, parse_module
from repro.lang.typecheck import check_module


def _module(body: str, decls: str = "") -> str:
    return "MODULE M;\n{}\nBEGIN\n{}\nEND M.".format(decls, body)


def test_deep_parens_hit_the_cap_not_recursion_error():
    depth = MAX_NESTING_DEPTH + 50
    source = _module("  x := {}1{};".format("(" * depth, ")" * depth),
                     "VAR x: INTEGER;")
    with pytest.raises(ResourceLimitError) as err:
        parse_module(source)
    assert err.value.kind == "recursion"
    assert "depth cap" in str(err.value)


def test_deep_not_chain_hits_the_cap():
    depth = MAX_NESTING_DEPTH + 50
    source = _module("  IF {} TRUE THEN END;".format("NOT " * depth))
    with pytest.raises(ResourceLimitError) as err:
        parse_module(source)
    assert err.value.kind == "recursion"


def test_deep_unary_minus_hits_the_cap():
    depth = MAX_NESTING_DEPTH + 50
    source = _module("  x := {}1;".format("- " * depth), "VAR x: INTEGER;")
    with pytest.raises(ResourceLimitError):
        parse_module(source)


def test_deep_record_types_hit_the_cap():
    depth = MAX_NESTING_DEPTH + 50
    decl = "TYPE T = {} INTEGER {};".format(
        "RECORD f: " * depth, "; END" * depth
    )
    with pytest.raises(ResourceLimitError) as err:
        parse_module(_module("", decl))
    assert err.value.kind == "recursion"


def test_deep_nested_statements_hit_the_cap():
    depth = MAX_NESTING_DEPTH + 50
    body = "".join("  IF TRUE THEN\n" for _ in range(depth))
    body += "  x := 1;\n" + "  END;\n" * depth
    with pytest.raises(ResourceLimitError):
        parse_module(_module(body, "VAR x: INTEGER;"))


def test_under_cap_parses_and_checks():
    # Deep but legal input must survive the full front end: the parser
    # bumps the Python recursion limit for its own walk, and the type
    # checker (which recurses over the same shapes) does too.
    depth = 200
    source = _module(
        "  x := {}1{} + 2;".format("(" * depth, ")" * depth),
        "VAR x: INTEGER;",
    )
    check_module(parse_module(source))


def test_resource_limit_is_not_a_compile_error():
    # Batch drivers treat CompileError as "bad input" and
    # ResourceLimitError as "ran out of budget"; the distinction matters
    # for exit codes and must not erode.
    depth = MAX_NESTING_DEPTH + 50
    source = _module("  x := {}1{};".format("(" * depth, ")" * depth),
                     "VAR x: INTEGER;")
    with pytest.raises(ResourceLimitError) as err:
        parse_module(source)
    assert not isinstance(err.value, CompileError)
