"""Error and source-location plumbing tests."""

import pytest

from repro.lang.errors import (
    CompileError,
    LexError,
    ParseError,
    SourceLocation,
    TypeCheckError,
    UNKNOWN_LOCATION,
)
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_module
from repro.lang.typecheck import check_module


def test_location_str():
    loc = SourceLocation("file.m3", 3, 7)
    assert str(loc) == "file.m3:3:7"


def test_error_message_carries_location():
    err = ParseError("boom", SourceLocation("u.m3", 1, 2))
    assert "u.m3:1:2" in str(err)
    assert err.message == "boom"


def test_error_without_location_uses_unknown():
    err = CompileError("oops")
    assert err.loc is UNKNOWN_LOCATION


def test_hierarchy():
    assert issubclass(LexError, CompileError)
    assert issubclass(ParseError, CompileError)
    assert issubclass(TypeCheckError, CompileError)


def test_lex_error_location_points_at_offender():
    with pytest.raises(LexError) as err:
        tokenize("abc\n  @", unit="bad.m3")
    assert err.value.loc.unit == "bad.m3"
    assert err.value.loc.line == 2


def test_parse_error_location():
    with pytest.raises(ParseError) as err:
        parse_module("MODULE M;\nTYPE T = ;\nEND M.", unit="p.m3")
    assert err.value.loc.line == 2


def test_typecheck_error_location():
    with pytest.raises(TypeCheckError) as err:
        check_module(parse_module("MODULE M;\nBEGIN\n  nope := 1;\nEND M.", "t.m3"))
    assert err.value.loc.line == 3


def test_frontend_errors_catchable_as_compile_error():
    for source in ("MODULE M; @", "MODULE M; TYPE = ;", "MODULE M; BEGIN x := 1; END M."):
        with pytest.raises(CompileError):
            check_module(parse_module(source))


# ----------------------------------------------------------------------
# CompileError.render: offending line + caret


def test_render_points_caret_at_column():
    source = "MODULE M;\nBEGIN\n  nope := 1;\nEND M.\n"
    with pytest.raises(TypeCheckError) as err:
        check_module(parse_module(source, "t.m3"))
    rendered = err.value.render(source)
    lines = rendered.splitlines()
    assert lines[0] == str(err.value)
    assert lines[1].strip() == "nope := 1;"
    # The caret sits under the start of the offender.
    caret_col = lines[2].index("^")
    assert lines[1][caret_col:].startswith("nope")


def test_render_preserves_tabs_in_caret_padding():
    err = ParseError("bad", SourceLocation("u.m3", 1, 9))
    rendered = err.render("\tx := @ y;")
    line, caret = rendered.splitlines()[1:]
    # Tab padding keeps the caret aligned in tab-displaying terminals.
    assert caret.lstrip(" ").startswith("\t") or caret.endswith("^")
    assert caret.rstrip().endswith("^")


def test_render_without_location_degrades_to_message():
    err = CompileError("oops")
    assert err.render("whatever") == str(err)


def test_render_with_out_of_range_line_degrades():
    err = ParseError("bad", SourceLocation("u.m3", 99, 1))
    assert err.render("only one line") == str(err)


def test_render_with_out_of_range_column_degrades():
    err = ParseError("bad", SourceLocation("u.m3", 1, 99))
    assert err.render("short") == str(err)
