"""Cache churn: interleaved cache_clear() must never change answers.

Regression coverage for the memoisation layer of the fast alias-query
engine: the cache is a pure performance artifact, so clearing it at any
point — including mid-stream between queries — must leave every
subsequent answer identical, and the hit/miss/size counters must stay
mutually consistent.
"""

import pytest

from repro import compile_program
from repro.analysis import ANALYSIS_NAMES
from repro.analysis.alias_pairs import collect_heap_references
from repro.qa.generator import generate_program


@pytest.fixture(scope="module")
def program():
    return compile_program(generate_program(17).render())


@pytest.fixture(scope="module")
def paths(program):
    seen = {}
    for aps in collect_heap_references(program.base().program).values():
        for ap in aps:
            seen.setdefault(ap, None)
    paths = list(seen)
    assert len(paths) >= 4
    return paths


@pytest.mark.parametrize("name", ANALYSIS_NAMES)
def test_interleaved_clear_preserves_answers(program, paths, name):
    analysis = program.analysis(name)
    analysis.cache_clear()
    baseline = {
        (p.uid, q.uid): analysis.may_alias_canonical(p, q)
        for p in paths
        for q in paths
    }
    # Re-query with a clear thrown in after every few answers.
    analysis.cache_clear()
    for i, ((pu, qu), expected) in enumerate(sorted(baseline.items())):
        p = next(x for x in paths if x.uid == pu)
        q = next(x for x in paths if x.uid == qu)
        assert analysis.may_alias_canonical(p, q) == expected
        if i % 3 == 2:
            analysis.cache_clear()


@pytest.mark.parametrize("name", ANALYSIS_NAMES)
def test_stats_consistent_across_churn(program, paths, name):
    analysis = program.analysis(name)
    analysis.cache_clear()
    stats = analysis.cache_stats()
    assert stats == {"hits": 0, "misses": 0, "size": 0}

    for p in paths:
        for q in paths:
            analysis.may_alias_canonical(p, q)
    stats = analysis.cache_stats()
    total = len(paths) * len(paths)
    assert stats["hits"] + stats["misses"] == total
    # Unordered pairs: n*(n+1)/2 distinct keys at most.
    assert stats["size"] <= stats["misses"]
    assert stats["size"] <= len(paths) * (len(paths) + 1) // 2

    # Asking everything again is pure hits: size must not grow.
    size_before = stats["size"]
    for p in paths:
        for q in paths:
            analysis.may_alias_canonical(p, q)
    stats = analysis.cache_stats()
    assert stats["size"] == size_before
    assert stats["hits"] >= total


def test_clear_resets_counters(program, paths):
    analysis = program.analysis("FieldTypeDecl")
    analysis.may_alias_canonical(paths[0], paths[1])
    analysis.cache_clear()
    assert analysis.cache_stats() == {"hits": 0, "misses": 0, "size": 0}
