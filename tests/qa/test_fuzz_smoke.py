"""A pytest-level fuzz smoke: a small fixed-seed batch must be clean.

``make fuzz-smoke`` runs the full 200-program batch via the CLI; this
in-suite version keeps a smaller always-on guard inside ``make test`` /
plain ``pytest`` runs.
"""

from repro.qa.runner import run_fuzz


def test_fixed_seed_smoke_batch_is_clean():
    report = run_fuzz(40, base_seed=0, out_dir=None, reduce=False)
    assert report.checked == 40
    assert report.ok, [
        (f.seed, f.phase, f.kind, f.message) for f in report.failures[:3]
    ]
    # The batch must actually exercise both outcomes to mean anything.
    assert report.ran_clean > 0
    assert report.ran_clean + report.trapped == 40
