"""Sharded corpus pipeline: generation, integrity, runs, kernels.

Everything here runs on tiny corpora (a dozen programs) — the
1k-program throughput runs live behind ``repro corpus bench`` and the
Makefile, not the unit suite.
"""

import json

import pytest

from repro.qa.corpus import (
    CorpusSpec,
    bench_corpus,
    generate_corpus,
    load_manifest,
    load_shard,
    run_corpus,
    verify_corpus,
)

SPEC = CorpusSpec(seed=7, count=12, shard_size=5, max_stmts=12)


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("corpus")
    generate_corpus(SPEC, out)
    return out


def test_spec_validation():
    with pytest.raises(ValueError):
        CorpusSpec(count=0)
    with pytest.raises(ValueError):
        CorpusSpec(shard_size=0)
    spec = CorpusSpec(count=12, shard_size=5)
    assert spec.n_shards() == 3
    assert CorpusSpec.from_json(spec.to_json()) == spec


def test_generation_is_deterministic(tmp_path, corpus_dir):
    again = tmp_path / "again"
    generate_corpus(SPEC, again)
    first = load_manifest(corpus_dir)
    second = load_manifest(again)
    assert [s.sha256 for s in first.shards] == [s.sha256 for s in second.shards]
    assert [s.file for s in first.shards] == [s.file for s in second.shards]
    # A different seed produces different content (hash-distinct shards).
    other = tmp_path / "other"
    generate_corpus(CorpusSpec(seed=8, count=12, shard_size=5, max_stmts=12), other)
    assert [s.sha256 for s in load_manifest(other).shards] != \
        [s.sha256 for s in first.shards]


def test_manifest_and_shards(corpus_dir):
    manifest = verify_corpus(corpus_dir)
    assert manifest.n_programs == 12
    assert len(manifest.shards) == 3
    assert [s.programs for s in manifest.shards] == [5, 5, 2]
    programs = load_shard(corpus_dir, manifest.shards[0])
    assert len(programs) == 5
    assert {"seed", "name", "sha256", "source"} <= set(programs[0])


def test_verify_detects_tampering(tmp_path):
    out = tmp_path / "tampered"
    generate_corpus(SPEC, out)
    manifest = load_manifest(out)
    shard_path = out / manifest.shards[1].file
    payload = json.loads(shard_path.read_text())
    payload["programs"][0]["source"] += "\n(* tampered *)\n"
    shard_path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        verify_corpus(out)


def test_run_in_process(corpus_dir):
    report = run_corpus(corpus_dir, jobs=1, engine="bulk")
    assert report.ok
    assert report.programs == 12
    assert report.compiled == 12
    assert report.references > 0
    assert report.jobs == 1
    data = report.to_json()
    assert data["engine"] == "bulk"
    assert len(data["shards"]) == 3


def test_run_jobs_match_and_merge_is_deterministic(corpus_dir):
    serial = run_corpus(corpus_dir, jobs=1, engine="bulk")
    pooled = run_corpus(corpus_dir, jobs=2, engine="bulk")
    assert pooled.jobs == 2
    for a, b in zip(serial.shards, pooled.shards):
        assert (a.index, a.programs, a.references, a.local_pairs,
                a.global_pairs) == \
            (b.index, b.programs, b.references, b.local_pairs, b.global_pairs)


def test_run_differential_engine(corpus_dir):
    bulk = run_corpus(corpus_dir, jobs=1, engine="bulk", max_shards=1)
    diff = run_corpus(corpus_dir, jobs=1, engine="differential", max_shards=1)
    assert diff.ok
    assert (diff.local_pairs, diff.global_pairs) == \
        (bulk.local_pairs, bulk.global_pairs)
    assert diff.programs == 5  # max_shards limited the sweep


def test_run_with_oracles(corpus_dir):
    report = run_corpus(corpus_dir, jobs=1, oracles=True, max_shards=1)
    assert report.ok
    assert all(o.oracle_checked == o.programs for o in report.shards)


def test_oracles_catch_seed_drift(tmp_path):
    """A shard whose recorded seed can't regenerate its bytes fails."""
    out = tmp_path / "drift"
    generate_corpus(SPEC, out)
    manifest = load_manifest(out)
    shard_path = out / manifest.shards[0].file
    payload = json.loads(shard_path.read_text())
    payload["programs"][0]["seed"] += 1000
    text = json.dumps(payload)
    shard_path.write_text(text)
    # Keep the content hashes consistent so only the seed lies.
    import hashlib

    from repro.qa import corpus as corpus_mod

    digest = hashlib.sha256(
        json.dumps(payload["programs"], sort_keys=True).encode()
    ).hexdigest()
    shards_path = out / corpus_mod.SHARDS_NAME
    lines = [json.loads(line) for line in shards_path.read_text().splitlines()]
    lines[0]["sha256"] = digest
    shards_path.write_text(
        "".join(json.dumps(obj, sort_keys=True) + "\n" for obj in lines))
    payload["sha256"] = digest
    shard_path.write_text(json.dumps(payload))

    report = run_corpus(out, jobs=1, oracles=True, max_shards=1)
    assert not report.ok
    assert any("regenerate" in f["message"] for f in report.failures)
    # The bulkhead held: the rest of the shard still ran.
    assert report.shards[0].programs == 5


def test_bench_corpus_counts_agree(corpus_dir):
    phases = bench_corpus(corpus_dir, repeats=2)
    # 12 programs x 3 analyses = 36 (program, analysis) counts.
    assert phases["corpus.bench.programs"] == 36
    assert phases["corpus.table5.fast"] > 0.0
    assert phases["corpus.bulk.build"] > 0.0
    assert phases["corpus.table5.bulk"] > 0.0
    # The mmap-arena recount ran and produced the same counts (the
    # bench asserts equality internally; here we pin the phase keys).
    assert phases["corpus.table5.bulk_shared"] > 0.0
    assert phases["corpus.bulk.arena_bytes"] > 0.0


def test_bench_corpus_shared_arena_with_workers(corpus_dir):
    """jobs>1: forked workers count from the inherited arena mapping."""
    phases = bench_corpus(corpus_dir, repeats=1, jobs=2)
    assert phases["corpus.bench.programs"] == 36
    assert phases["corpus.table5.bulk_shared"] > 0.0


def test_manifest_header_and_shard_stream(corpus_dir):
    """v2 layout: constant-size header + one-line-per-shard sidecar."""
    from repro.qa.corpus import (
        CORPUS_SCHEMA_VERSION,
        MANIFEST_NAME,
        SHARDS_NAME,
        iter_shards,
        load_manifest_header,
    )

    header = load_manifest_header(corpus_dir)
    assert header.schema == CORPUS_SCHEMA_VERSION
    assert header.programs == 12
    assert header.n_shards == 3
    assert header.shards_file == SHARDS_NAME
    # The manifest itself no longer embeds the shard list...
    mdata = json.loads((corpus_dir / MANIFEST_NAME).read_text())
    assert "shards" not in mdata
    assert mdata["shards_file"] == SHARDS_NAME
    # ...the sidecar streams it, one line per shard, in index order.
    assert len((corpus_dir / SHARDS_NAME).read_text().splitlines()) == 3
    stream = iter_shards(corpus_dir)
    assert iter(stream) is stream  # a true generator, not a list
    infos = list(stream)
    assert [s.index for s in infos] == [0, 1, 2]
    assert infos == list(load_manifest(corpus_dir).shards)


def test_v1_manifest_back_compat(tmp_path):
    """A v1 corpus (inline shard list, no sidecar) still loads and runs."""
    from repro.qa.corpus import MANIFEST_NAME, SHARDS_NAME, iter_shards

    out = tmp_path / "v1"
    manifest = generate_corpus(SPEC, out)
    mdata = json.loads((out / MANIFEST_NAME).read_text())
    mdata["schema"] = 1
    del mdata["shards_file"]
    mdata["shards"] = [s.to_json() for s in manifest.shards]
    (out / MANIFEST_NAME).write_text(json.dumps(mdata))
    (out / SHARDS_NAME).unlink()

    assert [s.sha256 for s in iter_shards(out)] == \
        [s.sha256 for s in manifest.shards]
    assert verify_corpus(out).n_programs == 12
    report = run_corpus(out, jobs=1, engine="bulk", max_shards=1)
    assert report.ok and report.programs == 5


def test_shard_stream_rejects_sparse_indices(tmp_path):
    from repro.qa.corpus import SHARDS_NAME, iter_shards

    out = tmp_path / "sparse"
    generate_corpus(SPEC, out)
    path = out / SHARDS_NAME
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\n" + lines[2] + "\n")
    with pytest.raises(ValueError, match="dense"):
        list(iter_shards(out))
