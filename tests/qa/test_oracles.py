"""Oracle layer: clean programs pass, seeded faults are caught."""

import json

import pytest

from repro.analysis.typehierarchy import FAULT_ENV
from repro.qa.generator import generate_program
from repro.qa.oracles import check_program

CLEAN = """
MODULE Clean;
TYPE T = OBJECT n: INTEGER; next: T; END;
VAR a, b: T; i, sum: INTEGER;
BEGIN
  a := NEW (T, n := 1);
  b := NEW (T, n := 2);
  a.next := b;
  b.next := b;
  FOR i := 1 TO 4 DO
    sum := sum + a.next.n + b.next.n;
  END;
  PutInt (sum);
END Clean.
"""

BROKEN = "MODULE Broken; BEGIN zap := 1; END Broken."

TRAPPING = """
MODULE Trapping;
TYPE T = OBJECT n: INTEGER; next: T; END;
VAR t: T;
BEGIN
  t := NEW (T, n := 1);
  t.n := t.next.n;  (* t.next is NIL: traps *)
END Trapping.
"""


def test_clean_source_passes_all_oracles():
    report = check_program(CLEAN, name="Clean")
    assert report.ok
    assert report.ran and not report.trapped
    assert report.references > 0
    assert report.trace_pairs > 0  # a.next and b.next share b's object
    for phase in ("compile", "static", "engine", "run", "dynamic", "cache"):
        assert phase in report.phases


def test_generated_programs_pass(subtests=None):
    for seed in range(10):
        report = check_program(generate_program(seed))
        assert report.ok, "seed {}: {}".format(seed, report.violations[:2])
        assert report.seed == seed


def test_compile_error_is_a_violation():
    report = check_program(BROKEN, name="Broken")
    assert not report.ok
    assert report.first_kind() == "compile"
    assert report.phases == ["compile"]  # later phases skipped
    [violation] = report.violations
    assert "zap" in violation.message
    assert "^" in violation.details["rendered"]


def test_trap_tolerated_prefix_still_checked():
    report = check_program(TRAPPING, name="Trapping")
    assert report.ok  # a trap is not a violation ...
    assert report.trapped and not report.ran  # ... but is recorded


def test_report_json_round_trips():
    report = check_program(generate_program(1))
    blob = json.dumps(report.to_json(), sort_keys=True)
    back = json.loads(blob)
    assert back["ok"] is True
    assert back["seed"] == 1
    assert back["name"] == "Fuzz1"
    assert isinstance(back["violations"], list)


def test_injected_subtype_fault_is_caught(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "1")
    # The sabotage drops one subtype from every multi-bit Subtypes mask,
    # making the analyses under-approximate.  Some seed in this window
    # must expose it dynamically (a supertype variable holding a subtype
    # value whose accesses the pruned analyses now separate).
    kinds = set()
    for seed in range(12):
        report = check_program(generate_program(seed))
        kinds.update(v.kind for v in report.violations)
        if kinds:
            break
    assert "dynamic-soundness" in kinds or "refinement" in kinds


def test_fault_env_off_means_clean(monkeypatch):
    monkeypatch.delenv(FAULT_ENV, raising=False)
    assert check_program(generate_program(0)).ok
