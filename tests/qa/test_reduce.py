"""Delta-debugging reducer: ddmin correctness and crash bundles."""

import json

import pytest

from repro.analysis.typehierarchy import FAULT_ENV
from repro.qa.generator import generate_program
from repro.qa.oracles import check_program
from repro.qa.reduce import _ddmin, reduce_program, write_crash_bundle


def test_ddmin_finds_single_culprit():
    items = ["s{}".format(i) for i in range(20)]
    probes = []

    def fails(subset):
        probes.append(list(subset))
        return "s13" in subset

    result = _ddmin(items, fails, budget=[500])
    assert result == ["s13"]


def test_ddmin_finds_interacting_pair():
    items = ["s{}".format(i) for i in range(16)]

    def fails(subset):
        return "s2" in subset and "s11" in subset

    result = _ddmin(items, fails, budget=[500])
    assert sorted(result) == ["s11", "s2"]


def test_ddmin_respects_budget():
    items = list("abcdefgh")
    calls = []

    def fails(subset):
        calls.append(1)
        return "d" in subset

    _ddmin(items, fails, budget=[3])
    assert len(calls) <= 3


def test_reduce_program_is_identity_when_nothing_fails():
    prog = generate_program(0)
    reduced = reduce_program(prog, lambda candidate: False)
    assert reduced.render() == prog.render()


def test_reduce_program_shrinks_injected_failure(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "1")
    # Find a seed the sabotage breaks, then shrink it.
    for seed in range(20):
        prog = generate_program(seed)
        report = check_program(prog)
        if not report.ok:
            break
    else:
        pytest.fail("no failing seed in window")
    kind = report.first_kind()

    def still_fails(candidate):
        try:
            oracle = check_program(candidate)
        except Exception:
            return False
        return any(v.kind == kind for v in oracle.violations)

    reduced = reduce_program(prog, still_fails)
    assert still_fails(reduced)  # the reproducer really reproduces
    assert reduced.statement_count() < prog.statement_count()


def test_write_crash_bundle(tmp_path):
    prog = generate_program(9)
    report = check_program(prog)
    bundle = write_crash_bundle(tmp_path, prog, prog.with_parts(body=[]), report)
    assert bundle == tmp_path / "seed-9"
    assert (bundle / "original.m3").read_text() == prog.render()
    assert "BEGIN" in (bundle / "reduced.m3").read_text()
    data = json.loads((bundle / "report.json").read_text())
    assert data["seed"] == 9


def test_write_crash_bundle_without_reduction(tmp_path):
    prog = generate_program(4)
    report = check_program(prog)
    bundle = write_crash_bundle(tmp_path, prog, None, report)
    assert (bundle / "original.m3").exists()
    assert not (bundle / "reduced.m3").exists()
