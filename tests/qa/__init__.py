"""Tests for the repro.qa fuzzing subsystem."""
