"""Resource guards: deadlines, the ambient guard stack, error kinds."""

import time

import pytest

from repro.lang.errors import ResourceLimitError
from repro.qa.guards import Deadline, active_deadline, check_active, guarded


def test_fresh_deadline_not_expired():
    deadline = Deadline(60.0, "test")
    assert not deadline.expired()
    assert deadline.remaining() > 0
    deadline.check()  # must not raise


def test_expired_deadline_raises_wall_clock():
    deadline = Deadline(0.0, "tight")
    time.sleep(0.01)
    assert deadline.expired()
    assert deadline.remaining() == 0.0
    with pytest.raises(ResourceLimitError) as err:
        deadline.check()
    assert err.value.kind == "wall-clock"
    assert "tight" in str(err.value)


def test_check_active_is_noop_without_guard():
    assert active_deadline() is None
    check_active()  # empty stack: must not raise


def test_guarded_pushes_and_pops():
    assert active_deadline() is None
    with guarded(60.0, "outer") as deadline:
        assert active_deadline() is deadline
        check_active()
    assert active_deadline() is None


def test_guarded_none_is_transparent():
    with guarded(None, "disabled") as deadline:
        assert deadline is None
        assert active_deadline() is None


def test_nested_guards_check_whole_stack():
    with guarded(0.0, "outer"):
        with guarded(60.0, "inner"):
            time.sleep(0.01)
            # The *outer* deadline has expired; check_active must see it
            # even though the innermost guard is still fine.
            with pytest.raises(ResourceLimitError) as err:
                check_active()
            assert "outer" in str(err.value)
    assert active_deadline() is None


def test_guard_stack_unwinds_on_exception():
    with pytest.raises(RuntimeError):
        with guarded(60.0, "doomed"):
            raise RuntimeError("boom")
    assert active_deadline() is None


def test_resource_limit_error_kinds():
    assert ResourceLimitError("x").kind == "limit"
    assert ResourceLimitError("x", kind="steps").kind == "steps"
    # Deliberately not a CompileError: resource exhaustion is an
    # operational condition, not a source defect.
    from repro.lang.errors import CompileError

    assert not issubclass(ResourceLimitError, CompileError)
