"""Generator contract: deterministic, bounded, type-correct output."""

import pytest

from repro import compile_program
from repro.qa.generator import GenConfig, GeneratedProgram, generate_program


def test_deterministic_per_seed():
    assert generate_program(7).render() == generate_program(7).render()
    assert generate_program(7).render() != generate_program(8).render()


def test_name_carries_seed():
    prog = generate_program(42)
    assert prog.seed == 42
    assert prog.name == "Fuzz42"
    assert "MODULE Fuzz42;" in prog.render()
    assert prog.render().rstrip().endswith("END Fuzz42.")


@pytest.mark.parametrize("seed", range(25))
def test_generated_programs_compile(seed):
    # The generator's core contract: type-correct by construction.
    compile_program(generate_program(seed).render())


def test_size_bound_respected():
    tight = GenConfig(max_stmts=6, max_procs=0)
    for seed in range(10):
        prog = generate_program(seed, tight)
        assert not prog.procs
        # body is bounded; prologue/epilogue add allocations + checksum
        assert len(prog.body) <= 6
        compile_program(prog.render())


def test_with_parts_copies():
    prog = generate_program(3)
    smaller = prog.with_parts(body=prog.body[:1])
    assert len(smaller.body) == 1
    assert len(prog.body) > 1  # original untouched
    assert smaller.type_decls == prog.type_decls
    assert smaller.statement_count() < prog.statement_count()


def test_statement_count():
    prog = generate_program(0)
    assert prog.statement_count() == (
        len(prog.prologue) + len(prog.body) + len(prog.epilogue)
    )


def test_programs_terminate():
    from repro.runtime import Interpreter
    from repro.runtime.values import M3RuntimeError

    # Bounded FOR loops and call-free procedures: every program halts
    # well inside a modest step budget (traps are fine, hangs are not).
    for seed in range(15):
        program = compile_program(generate_program(seed).render())
        try:
            Interpreter(program.base().program, max_steps=400_000).run()
        except M3RuntimeError:
            pass  # NIL trap: tolerated, still terminated
