"""Batch runner: fault isolation, JSON reports, digests, bundles."""

import json

import pytest

from repro.analysis.typehierarchy import FAULT_ENV
from repro.qa import runner as runner_mod
from repro.qa.runner import FailureRecord, FuzzReport, failure_digest, run_fuzz


def test_clean_batch_is_ok(tmp_path):
    report = run_fuzz(8, base_seed=0, out_dir=tmp_path)
    assert report.ok
    assert report.checked == 8
    assert report.ran_clean + report.trapped == 8
    data = json.loads((tmp_path / "fuzz-report.json").read_text())
    assert data["ok"] is True
    assert data["failures"] == []
    assert data["count"] == 8


def test_failures_recorded_and_reduced(tmp_path, monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "1")
    report = run_fuzz(6, base_seed=0, out_dir=tmp_path)
    assert not report.ok
    assert report.failures  # seeds 0 and 1 both catch the sabotage
    first = report.failures[0]
    assert first.kind in ("dynamic-soundness", "refinement")
    assert first.bundle is not None
    assert (tmp_path / "seed-{}".format(first.seed) / "reduced.m3").exists()
    assert first.reduced_statements is not None
    # The batch kept going after the first failure.
    assert report.checked == 6
    data = json.loads((tmp_path / "fuzz-report.json").read_text())
    assert data["ok"] is False
    assert data["distinct_digests"]


def test_one_crashing_seed_does_not_abort_batch(monkeypatch):
    real = runner_mod.check_program

    def sabotaged(program, **kwargs):
        if getattr(program, "seed", None) == 2:
            raise RuntimeError("synthetic harness crash")
        return real(program, **kwargs)

    monkeypatch.setattr(runner_mod, "check_program", sabotaged)
    report = run_fuzz(5, base_seed=0)
    assert report.checked == 4  # the crashed seed is excluded ...
    [failure] = report.failures  # ... but recorded
    assert failure.seed == 2
    assert failure.phase == "harness"
    assert failure.kind == "RuntimeError"


def test_keyboard_interrupt_propagates(monkeypatch):
    def interrupted(program, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(runner_mod, "check_program", interrupted)
    with pytest.raises(KeyboardInterrupt):
        run_fuzz(3, base_seed=0)


def test_parallel_jobs_match_serial(monkeypatch):
    """jobs>1 must reproduce the jobs=1 report, failures included."""
    monkeypatch.setenv(FAULT_ENV, "1")
    serial = run_fuzz(6, base_seed=0, reduce=False, jobs=1)
    pooled = run_fuzz(6, base_seed=0, reduce=False, jobs=3)
    assert pooled.checked == serial.checked
    assert pooled.ran_clean == serial.ran_clean
    assert pooled.trapped == serial.trapped
    assert [(f.seed, f.phase, f.kind, f.digest) for f in pooled.failures] == \
        [(f.seed, f.phase, f.kind, f.digest) for f in serial.failures]


def test_parallel_report_written(tmp_path):
    report = run_fuzz(4, base_seed=0, out_dir=tmp_path, reduce=False, jobs=2)
    assert report.ok
    data = json.loads((tmp_path / "fuzz-report.json").read_text())
    assert data["count"] == 4
    assert data["checked"] == 4


def test_jobs_validation():
    with pytest.raises(ValueError):
        run_fuzz(2, jobs=0)
    # jobs=None resolves to os.cpu_count() without blowing up.
    assert run_fuzz(2, base_seed=0, jobs=None).checked == 2


def test_digest_is_stable_and_masks_digits():
    a = failure_digest("dynamic", "dynamic-soundness",
                       "v1.r12.f1 and v3.r2.f1 hit address 0x10088")
    b = failure_digest("dynamic", "dynamic-soundness",
                       "v9.r55.f7 and v8.r4.f2 hit address 0x99999")
    assert a == b  # same shape, different seeds/addresses
    assert len(a) == 12
    assert a != failure_digest("static", "refinement", "other")


def test_no_out_dir_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    report = run_fuzz(3, base_seed=0, out_dir=None)
    assert report.ok
    assert not list(tmp_path.iterdir())


def test_report_json_shape():
    report = FuzzReport(base_seed=5, count=2)
    report.failures.append(
        FailureRecord(seed=5, name="Fuzz5", phase="static", kind="refinement",
                      message="m", digest="abc")
    )
    data = report.to_json()
    assert data["base_seed"] == 5
    assert data["ok"] is False
    assert data["failures"][0]["digest"] == "abc"
    json.dumps(data)  # fully serialisable
