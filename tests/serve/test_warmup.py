"""Eviction-aware warm-up: largest-first, deterministic, stops at cap."""

import pytest

from repro.obs import metrics
from repro.qa.corpus import CorpusSpec, generate_corpus
from repro.serve.factcache import FactStore
from repro.serve.session import SessionManager
from repro.serve.warmup import warmup_from_corpus


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    corpus_dir = tmp_path_factory.mktemp("warmup-corpus")
    generate_corpus(CorpusSpec(seed=3, count=8, shard_size=4,
                               max_stmts=10), corpus_dir)
    return corpus_dir


def test_unbounded_warmup_covers_every_program(corpus, tmp_path):
    metrics.registry().reset()
    store = FactStore(tmp_path / "store", max_bytes=None)
    summary = warmup_from_corpus(corpus, store)
    assert summary["programs"] == 8
    assert summary["warmed"] == 8
    assert summary["skipped"] == 0
    assert summary["stopped_at_cap"] is False
    assert summary["configs_per_program"] == 6
    assert summary["store_partitions"] == 8
    assert len(store) == 8

    # The daemon the warm-up exists for: a fresh manager over the same
    # store answers without a single compile.
    manager = SessionManager(store=store)
    before = metrics.registry().counter("serve.session.compile").value
    from repro.qa.corpus import iter_shards, load_shard

    for info in iter_shards(corpus):
        for entry in load_shard(corpus, info, verify=False):
            session = manager.lookup(entry["source"])
            counts = manager.alias_counts(session, "SMFieldTypeRefs", False)
            assert counts[0] >= 0
    assert metrics.registry().counter(
        "serve.session.compile").value == before


def test_capped_warmup_stops_instead_of_churning(corpus, tmp_path):
    metrics.registry().reset()
    probe = FactStore(tmp_path / "probe", max_bytes=None)
    warmup_from_corpus(corpus, probe)
    budget = int(probe.total_bytes() * 0.5)

    store = FactStore(tmp_path / "store", max_bytes=budget)
    summary = warmup_from_corpus(corpus, store)
    assert summary["stopped_at_cap"] is True
    assert summary["warmed"] < summary["programs"]
    assert summary["warmed"] + summary["skipped"] == summary["programs"]
    # Stopping on the *first* eviction bounds churn: at most one
    # partition this run built was thrown away.
    assert metrics.registry().counter("serve.factcache.evict").value <= 1


def test_warmup_is_deterministic(corpus, tmp_path):
    metrics.registry().reset()
    a = warmup_from_corpus(corpus, FactStore(tmp_path / "a", max_bytes=None))
    b = warmup_from_corpus(corpus, FactStore(tmp_path / "b", max_bytes=None))
    for key in ("programs", "warmed", "skipped", "stopped_at_cap",
                "store_partitions", "store_bytes"):
        assert a[key] == b[key], key


def test_max_programs_limits_the_sweep(corpus, tmp_path):
    metrics.registry().reset()
    store = FactStore(tmp_path / "store", max_bytes=None)
    summary = warmup_from_corpus(corpus, store, max_programs=3)
    assert summary["programs"] == 3
    assert summary["warmed"] == 3
    assert len(store) == 3
