"""Fact-cache invalidation at module and procedure granularity.

The satellite contract: edit one procedure in a multi-module program
and *only that module's* fact partition rebuilds — asserted through the
shared ``serve.*`` counter series, not through timing.
"""

import pytest

from repro.analysis.facts import source_hash
from repro.obs import metrics
from repro.serve.factcache import FactStore
from repro.serve.session import SessionManager

MODULE_TEMPLATE = """
MODULE {name};

TYPE
  T = OBJECT f: T; n: INTEGER; END;

VAR root: T;

PROCEDURE Alpha (p: T) =
BEGIN
  p.f := p;
END Alpha;

PROCEDURE Beta (p: T) =
BEGIN
  p.n := {beta_value};
END Beta;

PROCEDURE Gamma (p: T) =
BEGIN
  p.n := p.n + 1;
END Gamma;

BEGIN
  root := NEW (T);
  Alpha (root);
  Beta (root);
  Gamma (root);
END {name}.
"""


def _module(name, beta_value=1):
    return MODULE_TEMPLATE.format(name=name, beta_value=beta_value)


def _count(name):
    return int(metrics.registry().counter("serve." + name).value)


@pytest.fixture()
def manager(tmp_path):
    metrics.registry().reset()
    return SessionManager(store=FactStore(tmp_path / "cache"))


PROGRAM = {name: _module(name) for name in ("ModA", "ModB", "ModC")}


def _serve_all(manager, sources):
    for name, source in sources.items():
        session = manager.lookup(source, name=name)
        manager.tables(session, open_world=False)


def test_edit_one_procedure_rebuilds_only_its_partition(manager):
    _serve_all(manager, PROGRAM)
    assert _count("facts.rebuild") == 3          # one build per module
    assert _count("session.compile") == 3

    # Steady state: repeat queries touch no partition at all.
    _serve_all(manager, PROGRAM)
    assert _count("facts.rebuild") == 3
    assert _count("session.hit") == 3
    assert _count("facts.config_hit") == 9       # 3 modules x 3 analyses

    # Edit exactly one procedure body in exactly one module.
    edited = dict(PROGRAM)
    edited["ModB"] = _module("ModB", beta_value=2)
    _serve_all(manager, edited)

    # Only ModB's partition rebuilt; ModA/ModC answered warm.
    assert _count("facts.rebuild") == 4
    assert _count("session.compile") == 4
    assert _count("session.hit") == 5            # A and C again
    # Procedure-granular accounting: Beta changed, the rest reused.
    assert _count("invalidate.modules") == 1
    assert _count("invalidate.procs_changed") == 1
    procs_total = len(
        manager.lookup(edited["ModB"], name="ModB").bundle.proc_hashes)
    assert _count("invalidate.procs_reused") == procs_total - 1
    assert procs_total >= 3                      # Alpha, Beta, Gamma


def test_unedited_partitions_answer_from_disk_after_restart(manager, tmp_path):
    _serve_all(manager, PROGRAM)
    compiles_before = _count("session.compile")

    # A "restarted daemon": fresh manager over the same store.
    reborn = SessionManager(store=FactStore(tmp_path / "cache"))
    _serve_all(reborn, PROGRAM)
    # Every answer came from restored fact bundles — zero new compiles.
    assert _count("session.compile") == compiles_before
    assert _count("facts.rebuild") == 3
    assert _count("factcache.hit") == 3


def test_old_partition_stays_valid_for_old_text(manager):
    old = PROGRAM["ModB"]
    new = _module("ModB", beta_value=5)
    s_old = manager.lookup(old, name="ModB")
    s_new = manager.lookup(new, name="ModB")
    assert s_old.module_hash != s_new.module_hash
    # Re-serving the *old* text hits its still-valid session.
    hits = _count("session.hit")
    again = manager.lookup(old, name="ModB")
    assert again is s_old
    assert _count("session.hit") == hits + 1
    # Re-keying accounted one module edit (old -> new).
    assert _count("invalidate.modules") >= 1


def test_lru_eviction_falls_back_to_fact_store(tmp_path):
    metrics.registry().reset()
    manager = SessionManager(store=FactStore(tmp_path / "cache"),
                             max_sessions=2)
    _serve_all(manager, PROGRAM)                 # 3 modules, cap 2
    assert _count("session.evict") == 1

    # The evicted module (ModA, least recent) restores from disk:
    # a session miss but NOT a fact rebuild, and no compile at all.
    rebuilds = _count("facts.rebuild")
    compiles = _count("session.compile")
    session = manager.lookup(PROGRAM["ModA"], name="ModA")
    counts = manager.alias_counts(session, "TypeDecl", open_world=False)
    assert counts[0] > 0
    assert _count("facts.rebuild") == rebuilds
    assert _count("session.compile") == compiles
    assert _count("factcache.hit") == 1


def test_partition_key_is_content_hash_of_source():
    source = PROGRAM["ModA"]
    metrics.registry().reset()
    manager = SessionManager(store=None)
    session = manager.lookup(source, name="whatever")
    assert session.module_hash == source_hash(source)
