"""Wire protocol: validation, batches, response envelopes."""

import json

import pytest

from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode_line,
    error_response,
    ok_response,
    parse_line,
)


def test_request_validation_happy_path():
    req = Request.from_obj({
        "op": "alias", "id": 7, "source": "MODULE M; BEGIN END M.",
        "name": "m", "analysis": "TypeDecl", "open_world": True,
        "future_field": "ignored",
    })
    assert req.op == "alias"
    assert req.id == 7
    assert req.name == "m"
    assert req.analysis == "TypeDecl"
    assert req.open_world is True
    # Unknown fields land in extra (forward compatibility), not errors.
    assert req.extra == {"future_field": "ignored"}


@pytest.mark.parametrize("obj,fragment", [
    ("not a dict", "JSON object"),
    ({"op": "explode"}, "unknown op"),
    ({"op": "alias"}, "requires a string 'source'"),
    ({"op": "tables", "source": 42}, "requires a string 'source'"),
    ({"op": "ping", "open_world": "yes"}, "must be a boolean"),
    ({"op": "ping", "name": 1}, "must be a string"),
    ({"op": "ping", "analysis": []}, "must be a string"),
])
def test_request_validation_rejects(obj, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        Request.from_obj(obj)


def test_source_ops_all_require_source():
    for op in ("alias", "tables", "limit", "facts"):
        assert op in OPS
        with pytest.raises(ProtocolError):
            Request.from_obj({"op": op})


def test_parse_line_single_batch_and_errors():
    single = parse_line('{"op": "ping", "id": "a"}')
    assert isinstance(single, Request) and single.id == "a"
    batch = parse_line('[{"op": "ping", "id": 1}, {"op": "stats"}]')
    assert [r.op for r in batch] == ["ping", "stats"]
    with pytest.raises(ProtocolError, match="not JSON"):
        parse_line("{nope")
    with pytest.raises(ProtocolError, match="empty batch"):
        parse_line("[]")


def test_response_envelopes_carry_protocol_version():
    ok = ok_response("x", {"n": 1})
    assert ok == {"v": PROTOCOL_VERSION, "id": "x", "ok": True,
                  "result": {"n": 1}}
    err = error_response(None, "protocol", "bad")
    assert err["ok"] is False
    assert err["v"] == PROTOCOL_VERSION
    assert err["error"] == {"kind": "protocol", "message": "bad"}
    # One response (or batch) is exactly one newline-terminated line.
    line = encode_line([ok, err])
    assert line.endswith("\n") and line.count("\n") == 1
    assert json.loads(line) == [ok, err]
