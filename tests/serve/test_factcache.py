"""The on-disk fact store: hits, misses, corruption, budget eviction."""

from repro.analysis.facts import FACTS_SCHEMA_VERSION, new_bundle
from repro.obs import metrics
from repro.serve.factcache import FactStore


def _bundle(tag, n_procs=2):
    import hashlib

    key = hashlib.sha256(tag.encode()).hexdigest()
    return new_bundle("Mod" + tag, key,
                      {"P%d" % i: "h%d" % i for i in range(n_procs)})


def _count(name):
    return int(metrics.registry().counter("serve.factcache." + name).value)


def test_store_load_roundtrip_and_counters(tmp_path):
    metrics.registry().reset()
    store = FactStore(tmp_path)
    bundle = _bundle("a")
    assert store.load(bundle.module_hash) is None
    assert _count("miss") == 1

    store.store(bundle)
    assert _count("store") == 1
    loaded = store.load(bundle.module_hash)
    assert loaded is not None
    assert loaded.module_hash == bundle.module_hash
    assert loaded.proc_hashes == bundle.proc_hashes
    assert _count("hit") == 1
    assert store.total_bytes() > 0
    assert len(store) == 1


def test_index_survives_restart(tmp_path):
    store = FactStore(tmp_path)
    bundle = _bundle("persist")
    store.store(bundle)

    reopened = FactStore(tmp_path)
    assert reopened.keys() == [bundle.module_hash]
    assert reopened.load(bundle.module_hash).module_name == \
        bundle.module_name


def test_corrupt_file_reads_as_miss_and_is_dropped(tmp_path):
    metrics.registry().reset()
    store = FactStore(tmp_path)
    bundle = _bundle("rot")
    store.store(bundle)
    pkl = next(tmp_path.glob("facts-*.pkl"))
    pkl.write_bytes(b"this is not a pickle")

    assert store.load(bundle.module_hash) is None
    assert _count("corrupt") == 1
    assert len(store) == 0  # quarantined, not retried forever


def test_schema_version_bump_reads_as_miss(tmp_path):
    store = FactStore(tmp_path)
    bundle = _bundle("stale")
    bundle.schema = FACTS_SCHEMA_VERSION + 1
    store.store(bundle)
    assert store.load(bundle.module_hash) is None

    old_build = _bundle("old")
    old_build.repro_version = "0.0.0"
    store.store(old_build)
    assert store.load(old_build.module_hash) is None


def test_byte_budget_evicts_lru_but_protects_fresh_store(tmp_path):
    metrics.registry().reset()
    probe = FactStore(tmp_path / "probe")
    probe.store(_bundle("size"))
    one_bundle = probe.total_bytes()

    # Budget for ~2 partitions: the third store evicts the stalest.
    store = FactStore(tmp_path / "cap", max_bytes=int(one_bundle * 2.5))
    a, b, c = _bundle("ev-a"), _bundle("ev-b"), _bundle("ev-c")
    store.store(a)
    store.store(b)
    store.load(a.module_hash)  # a is now fresher than b
    store.store(c)
    assert _count("evict") >= 1
    keys = store.keys()
    assert c.module_hash in keys  # just-stored key is protected
    assert a.module_hash in keys  # recently used survived
    assert b.module_hash not in keys  # LRU victim
    assert store.total_bytes() <= int(one_bundle * 2.5)


def test_unbounded_store_never_evicts(tmp_path):
    metrics.registry().reset()
    store = FactStore(tmp_path, max_bytes=None)
    for tag in ("u1", "u2", "u3", "u4"):
        store.store(_bundle(tag))
    assert len(store) == 4
    assert _count("evict") == 0


def test_drop_removes_partition(tmp_path):
    store = FactStore(tmp_path)
    bundle = _bundle("dropme")
    store.store(bundle)
    store.drop(bundle.module_hash)
    assert store.keys() == []
    assert not list(tmp_path.glob("facts-*.pkl"))
