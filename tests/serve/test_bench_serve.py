"""The warm-vs-cold serving benchmark and its acceptance gate."""

import pytest

from repro.obs import history, metrics
from repro.serve.bench import (
    DEFAULT_MIN_SPEEDUP,
    ServeBenchError,
    check_speedup,
    run_serve_bench,
    serve_phases,
)


@pytest.fixture(scope="module")
def result():
    metrics.registry().reset()
    return run_serve_bench(names=["format"], repeats=2)


def test_result_shape_and_internal_pinning(result):
    assert result["benchmarks"] == ["format"]
    assert result["queries"] == 2
    assert result["cold_ms"] > 0
    assert result["warm_ms"] > 0
    assert result["warm_qps"] > result["cold_qps"]
    # run_serve_bench already asserted warm == cold answers internally;
    # reaching here means the pinning passed.
    # speedup is computed from the unrounded rates; compare loosely.
    assert result["speedup"] == pytest.approx(
        result["warm_qps"] / result["cold_qps"], rel=0.01)


def test_warm_serving_clears_acceptance_threshold(result):
    # The ISSUE acceptance floor, checked on real measurements.
    check_speedup(result, DEFAULT_MIN_SPEEDUP)
    assert result["speedup"] >= DEFAULT_MIN_SPEEDUP


def test_bench_sets_gauges(result):
    registry = metrics.registry()
    assert registry.gauge("serve.bench.speedup").value == result["speedup"]
    assert registry.gauge("serve.bench.warm_qps").value == \
        result["warm_qps"]


def test_serve_phases_land_in_suite_bucket(result):
    phases = serve_phases(result)
    bucket = phases[history.SUITE_BUCKET]
    assert bucket["serve.cold"] == round(result["cold_ms"] / 1000.0, 6)
    assert bucket["serve.warm"] == round(result["warm_ms"] / 1000.0, 6)
    assert bucket["serve.warm"] < bucket["serve.cold"]


def test_check_speedup_raises_below_threshold():
    fake = {"speedup": 1.5}
    with pytest.raises(ServeBenchError, match="threshold"):
        check_speedup(fake, min_speedup=5.0)
    check_speedup(fake, min_speedup=1.0)  # and passes when cleared
