"""Daemon dispatch and transports: batches, errors, differential pinning."""

import json

import pytest

from repro import compile_program
from repro.analysis import ANALYSIS_NAMES
from repro.analysis.alias_pairs import AliasPairCounter
from repro.obs import metrics
from repro.serve import protocol
from repro.serve.client import SMOKE_SOURCE, HttpClient
from repro.serve.daemon import Daemon
from repro.serve.session import SessionManager


@pytest.fixture()
def daemon():
    metrics.registry().reset()
    return Daemon(SessionManager(store=None, differential=True))


def _request(**fields):
    return protocol.Request.from_obj(fields)


def test_ping_stats_and_shutdown_ops(daemon):
    pong = daemon.handle_request(_request(op="ping"))
    assert pong["ok"] and pong["result"]["pong"] is True
    assert pong["result"]["protocol"] == protocol.PROTOCOL_VERSION

    stats = daemon.handle_request(_request(op="stats"))
    assert stats["ok"]
    assert "serve.session.hit" in stats["result"]["counters"]

    assert not daemon.shutdown_event.is_set()
    stop = daemon.handle_request(_request(op="shutdown"))
    assert stop["ok"] and stop["result"]["stopping"] is True
    assert daemon.shutdown_event.is_set()


def test_six_configurations_served_equal_fast_and_reference(daemon):
    """All 3 analyses x both worlds: served == cold fast == reference.

    The daemon runs in differential mode, so every served count is
    *already* pinned in-process against both cold engines (a mismatch
    would surface as an error response).  This test re-derives the cold
    answers independently and compares, so the pinning itself is pinned.
    """
    program = compile_program(SMOKE_SOURCE, "smoke.m3")
    base = program.base().program
    served = {}
    for analysis in ANALYSIS_NAMES:
        for open_world in (False, True):
            response = daemon.handle_request(_request(
                op="alias", source=SMOKE_SOURCE, name="smoke",
                analysis=analysis, open_world=open_world))
            assert response["ok"], response
            result = response["result"]
            served[(analysis, open_world)] = (
                result["references"], result["local_pairs"],
                result["global_pairs"])

    for (analysis, open_world), counts in served.items():
        alias = program.analysis(analysis, open_world=open_world)
        for engine in ("fast", "reference"):
            cold = AliasPairCounter(base, alias, engine=engine).count()
            assert cold.counts() == counts, (analysis, open_world, engine)

    checks = metrics.registry().counter("serve.differential.checks").value
    assert checks == 6


def test_batch_preserves_request_order_and_isolates_errors(daemon):
    line = json.dumps([
        {"op": "ping", "id": "first"},
        {"op": "alias", "id": "broken", "source": "MODULE Bad; BEGIN"},
        {"op": "tables", "id": "last", "source": SMOKE_SOURCE},
    ])
    out = daemon.handle_line(line)
    responses = json.loads(out)
    assert [r["id"] for r in responses] == ["first", "broken", "last"]
    assert responses[0]["ok"]
    assert not responses[1]["ok"]
    assert responses[1]["error"]["kind"] == "compile"
    assert responses[2]["ok"]  # the batch survived the middle failure
    assert len(responses[2]["result"]["rows"]) == len(ANALYSIS_NAMES)


def test_malformed_line_yields_protocol_error_not_crash(daemon):
    out = json.loads(daemon.handle_line("{truncated"))
    assert out["ok"] is False
    assert out["error"]["kind"] == "protocol"
    out = json.loads(daemon.handle_line('{"op": "explode"}'))
    assert out["error"]["kind"] == "protocol"
    # The daemon keeps serving afterwards.
    assert json.loads(daemon.handle_line('{"op": "ping"}'))["ok"]


def test_request_metrics_count_totals_errors_and_latency(daemon):
    daemon.handle_request(_request(op="ping"))
    daemon.handle_request(_request(op="ping"))
    daemon.handle_request(_request(
        op="alias", source="MODULE Bad; BEGIN", id="x"))
    registry = metrics.registry()
    assert registry.counter("serve.request.total", op="ping").value == 2
    assert registry.counter("serve.request.total", op="alias").value == 1
    assert registry.counter("serve.request.errors", op="alias").value == 1
    assert registry.histogram("serve.request.ms", op="ping").count == 2


def test_stdio_loop_echoes_one_line_per_line_until_shutdown(daemon):
    import io

    stdin = io.StringIO(
        '{"op": "ping", "id": 1}\n'
        "\n"  # blank lines are skipped, not answered
        '[{"op": "ping", "id": 2}, {"op": "shutdown", "id": 3}]\n'
        '{"op": "ping", "id": "never-reached"}\n')
    stdout = io.StringIO()
    rc = daemon.serve_stdio(stdin, stdout)
    assert rc == 0
    lines = stdout.getvalue().splitlines()
    assert len(lines) == 2  # shutdown stopped the loop mid-stream
    assert json.loads(lines[0])["id"] == 1
    batch = json.loads(lines[1])
    assert [r["id"] for r in batch] == [2, 3]


def test_http_transport_serves_same_answers(daemon):
    port = daemon.start_http()
    try:
        client = HttpClient(port)
        assert client.ping()["result"]["pong"] is True
        direct = daemon.handle_request(_request(
            op="tables", source=SMOKE_SOURCE, name="smoke"))
        via_http = client.query(
            {"op": "tables", "source": SMOKE_SOURCE, "name": "smoke"})
        assert via_http["ok"]
        assert via_http["result"]["rows"] == direct["result"]["rows"]
        batch = client.batch([{"op": "ping", "id": "a"},
                              {"op": "stats", "id": "b"}])
        assert [r["id"] for r in batch] == ["a", "b"]
    finally:
        daemon.stop_http()


def test_limit_and_facts_ops(daemon):
    limit = daemon.handle_request(_request(
        op="limit", source=SMOKE_SOURCE, name="smoke"))
    assert limit["ok"], limit
    result = limit["result"]
    assert result["heap_loads"] >= result["redundant_original"] >= 0
    assert result["redundant_after_rle"] <= result["redundant_original"]

    facts = daemon.handle_request(_request(
        op="facts", source=SMOKE_SOURCE, name="smoke"))
    assert facts["ok"], facts
    summary = facts["result"]
    assert summary["procedures"] >= 2
    assert summary["object_types"] >= 2
    assert summary["steensgaard_classes"] >= 1
