"""Client-side self-healing: backoff schedules, breaker states, retries."""

import threading
import time

import pytest

from repro.obs import metrics
from repro.serve.client import (
    SMOKE_SOURCE,
    CircuitBreaker,
    CircuitOpenError,
    ResilientHttpClient,
    RetryPolicy,
    ServeClientError,
)
from repro.serve.daemon import Daemon
from repro.serve.session import SessionManager


def test_retry_policy_is_seeded_and_bounded():
    a = RetryPolicy(seed=11, base_delay=0.05, max_delay=2.0)
    b = RetryPolicy(seed=11, base_delay=0.05, max_delay=2.0)
    schedule_a = [a.delay(i) for i in range(8)]
    schedule_b = [b.delay(i) for i in range(8)]
    assert schedule_a == schedule_b  # same seed replays exactly
    for attempt, delay in enumerate(schedule_a):
        ceiling = min(2.0, 0.05 * 2 ** attempt)
        assert 0.5 * ceiling <= delay <= ceiling
    different = [RetryPolicy(seed=12).delay(i) for i in range(8)]
    assert schedule_a != different
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


def test_circuit_breaker_opens_probes_and_recloses():
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout=0.05)
    assert breaker.state == "closed"
    for _ in range(3):
        assert breaker.allow()
        breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()  # refused without touching the network

    time.sleep(0.06)
    assert breaker.allow()  # one probe goes through...
    assert breaker.state == "half-open"
    assert not breaker.allow()  # ...but only one
    breaker.record_failure()  # probe failed: re-open for a full timeout
    assert breaker.state == "open"
    assert not breaker.allow()

    time.sleep(0.06)
    assert breaker.allow()
    breaker.record_success()  # probe succeeded: fully closed again
    assert breaker.state == "closed"
    assert breaker.allow()


def test_resilient_client_heals_across_daemon_restart():
    metrics.registry().reset()
    daemon = Daemon(SessionManager(store=None))
    port = daemon.start_http()
    policy = RetryPolicy(max_attempts=8, base_delay=0.02, max_delay=0.2,
                         seed=0)
    client = ResilientHttpClient(port, policy=policy,
                                 breaker=CircuitBreaker(failure_threshold=50))
    assert client.ping()["ok"]

    daemon.stop_http()
    replacement = []

    def revive():
        time.sleep(0.1)
        fresh = Daemon(SessionManager(store=None))
        fresh.start_http(port)
        replacement.append(fresh)

    thread = threading.Thread(target=revive, daemon=True)
    thread.start()
    try:
        response = client.query({"op": "alias", "source": SMOKE_SOURCE,
                                 "name": "smoke", "id": "heal"})
        assert response["ok"], response
        assert metrics.registry().counter("serve.client.retries").value >= 1
    finally:
        thread.join(5.0)
        for fresh in replacement:
            fresh.stop_http()


def test_resilient_client_open_breaker_fails_fast():
    metrics.registry().reset()
    breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
    breaker.record_failure()  # wedge it open
    assert breaker.state == "open"
    client = ResilientHttpClient(1, policy=RetryPolicy(max_attempts=2,
                                                       base_delay=0.001),
                                 breaker=breaker)
    start = time.monotonic()
    with pytest.raises(CircuitOpenError):
        client.ping()
    assert time.monotonic() - start < 1.0  # no network timeouts burned
    assert isinstance(CircuitOpenError("x"), ServeClientError)
    assert metrics.registry().counter(
        "serve.client.breaker_open").value >= 1
