"""End-to-end request tracing: propagation, debug span trees, journal,
access log, /v1/metrics.

The tentpole invariant: a trace id enters at the client, flows through
the protocol into the daemon's request scope, tags every span recorded
while the request runs (session, fact store, compile pipeline), and
comes back out — in the response (ok *and* error), in the request
journal, and in the slow-request access log.
"""

import json
import urllib.request

import pytest

from repro.obs import core as obs
from repro.obs import metrics
from repro.obs.promlint import lint
from repro.obs.reqlog import validate_access_line
from repro.serve import protocol
from repro.serve.client import SMOKE_SOURCE, HttpClient, format_span_tree
from repro.serve.daemon import Daemon, mint_trace_id
from repro.serve.factcache import FactStore
from repro.serve.session import SessionManager

BAD_SOURCE = "MODULE Broken; this does not parse"


@pytest.fixture()
def daemon(tmp_path):
    metrics.registry().reset()
    manager = SessionManager(store=FactStore(tmp_path / "store"),
                             differential=True)
    daemon = Daemon(manager, slow_ms=0.0,
                    access_log_path=str(tmp_path / "access.jsonl"))
    port = daemon.start_http()
    yield daemon, port, tmp_path
    daemon.stop_http()


def _query(port, request):
    return HttpClient(port).query(request)


# ----------------------------------------------------------------------
# Protocol layer


def test_protocol_accepts_and_validates_trace_fields():
    request = protocol.Request.from_obj(
        {"op": "ping", "trace_id": "abc", "debug": True})
    assert request.trace_id == "abc"
    assert request.debug is True
    with pytest.raises(protocol.ProtocolError, match="trace_id"):
        protocol.Request.from_obj({"op": "ping", "trace_id": ""})
    with pytest.raises(protocol.ProtocolError, match="trace_id"):
        protocol.Request.from_obj({"op": "ping", "trace_id": 7})
    with pytest.raises(protocol.ProtocolError, match="debug"):
        protocol.Request.from_obj({"op": "ping", "debug": "yes"})


def test_responses_echo_trace_only_when_set():
    assert "trace" not in protocol.ok_response("i", {})
    assert protocol.ok_response("i", {}, trace_id="t")["trace"] == "t"
    assert protocol.error_response(
        "i", "compile", "boom", trace_id="t")["trace"] == "t"


# ----------------------------------------------------------------------
# End-to-end propagation


def test_client_trace_id_round_trips_on_ok(daemon):
    _, port, _ = daemon
    response = _query(port, {"op": "alias", "source": SMOKE_SOURCE,
                             "name": "smoke", "id": "q1",
                             "trace_id": "my-trace-1"})
    assert response["ok"], response
    assert response["trace"] == "my-trace-1"


def test_client_trace_id_round_trips_on_error(daemon):
    _, port, _ = daemon
    response = _query(port, {"op": "alias", "source": BAD_SOURCE,
                             "name": "bad", "id": "q2",
                             "trace_id": "my-trace-err"})
    assert response["ok"] is False
    assert response["error"]["kind"] == "compile"
    assert response["trace"] == "my-trace-err"


def test_daemon_mints_distinct_trace_ids_when_absent(daemon):
    _, port, _ = daemon
    first = _query(port, {"op": "ping", "id": "p1"})
    second = _query(port, {"op": "ping", "id": "p2"})
    for response in (first, second):
        assert response["ok"]
        assert isinstance(response["trace"], str) and response["trace"]
    assert first["trace"] != second["trace"]


def test_debug_returns_span_tree_tagged_with_the_trace(daemon):
    _, port, _ = daemon
    response = _query(port, {"op": "tables", "source": SMOKE_SOURCE,
                             "name": "smoke", "worlds": "both", "id": "d1",
                             "trace_id": "debug-trace", "debug": True})
    assert response["ok"], response
    spans = response["spans"]
    assert spans, "debug request returned an empty span tree"
    assert all(span["trace"] == "debug-trace" for span in spans)
    names = {span["name"] for span in spans}
    assert "serve.request.tables" in names
    assert "serve.facts.rebuild" in names  # cold build traced through
    rendered = format_span_tree(spans)
    assert "serve.request.tables" in rendered
    assert "ms" in rendered


def test_no_debug_means_no_spans_key(daemon):
    _, port, _ = daemon
    response = _query(port, {"op": "ping", "id": "nd"})
    assert "spans" not in response


def test_tracing_does_not_leak_spans_into_the_global_recorder(daemon):
    _, port, _ = daemon
    before = len(obs.recorder().spans())
    response = _query(port, {"op": "alias", "source": SMOKE_SOURCE,
                             "name": "smoke", "id": "g1", "debug": True})
    assert response["ok"]
    assert len(obs.recorder().spans()) == before


def test_debug_changes_no_served_answer(daemon):
    # Differential guard: observability must be read-only.  The same
    # query answers identically with tracing bells on and off.
    _, port, _ = daemon
    plain = _query(port, {"op": "alias", "source": SMOKE_SOURCE,
                          "name": "smoke", "id": "a1"})
    traced = _query(port, {"op": "alias", "source": SMOKE_SOURCE,
                           "name": "smoke", "id": "a2",
                           "trace_id": "t-diff", "debug": True})
    assert plain["ok"] and traced["ok"]
    assert plain["result"] == traced["result"]
    registry = metrics.registry()
    assert registry.counter("serve.request.total", op="alias").value == 2


# ----------------------------------------------------------------------
# Journal, access log, metrics endpoint


def test_journal_and_access_log_carry_the_trace(daemon):
    _, port, tmp_path = daemon
    ok = _query(port, {"op": "alias", "source": SMOKE_SOURCE,
                       "name": "smoke", "id": "j1", "trace_id": "tr-ok"})
    assert ok["ok"]
    bad = _query(port, {"op": "alias", "source": BAD_SOURCE,
                        "name": "bad", "id": "j2", "trace_id": "tr-bad"})
    assert bad["ok"] is False

    snapshot = HttpClient(port).requests_snapshot()
    assert snapshot["total"] == 2
    by_trace = {r["trace"]: r for r in snapshot["requests"]}
    assert by_trace["tr-ok"]["ok"] is True
    assert by_trace["tr-ok"]["cache"] == "build"
    assert by_trace["tr-bad"]["ok"] is False
    assert by_trace["tr-bad"]["error"] == "compile"

    # slow_ms=0 makes every request slow: both lines logged and valid.
    lines = (tmp_path / "access.jsonl").read_text().splitlines()
    assert len(lines) == 2
    traces = set()
    for line in lines:
        obj = validate_access_line(line)
        traces.add(obj["trace"])
    assert traces == {"tr-ok", "tr-bad"}


def test_requests_endpoint_respects_limit(daemon):
    _, port, _ = daemon
    client = HttpClient(port)
    for i in range(4):
        assert client.query({"op": "ping", "id": "p{}".format(i)})["ok"]
    snapshot = client.requests_snapshot(limit=2)
    assert snapshot["total"] == 4
    assert len(snapshot["requests"]) == 2


def test_metrics_endpoint_is_lint_clean_prometheus(daemon):
    _, port, _ = daemon
    client = HttpClient(port)
    assert client.query({"op": "alias", "source": SMOKE_SOURCE,
                         "name": "smoke", "id": "m1"})["ok"]
    with urllib.request.urlopen(
            "http://127.0.0.1:{}/v1/metrics".format(port),
            timeout=10) as resp:
        assert resp.headers["Content-Type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        text = resp.read().decode("utf-8")
    assert lint(text) == [], text
    for needle in ("repro_serve_request_ms_p50",
                   "repro_serve_request_ms_p95",
                   "repro_serve_request_ms_p99",
                   "repro_serve_slo_ok",
                   "# HELP repro_serve_request_total"):
        assert needle in text, needle
    assert "repro_serve_request_total" in client.metrics_text()


def test_slo_counters_judge_against_slo_ms(tmp_path):
    metrics.registry().reset()
    manager = SessionManager(store=None)
    # An impossible 0ms objective: every request breaches.
    daemon = Daemon(manager, slo_ms=0.0)
    response = daemon.handle_request(
        protocol.Request.from_obj({"op": "ping", "trace_id": "slo"}))
    assert response["ok"]
    registry = metrics.registry()
    assert registry.counter("serve.slo.breach", op="ping").value == 1
    assert registry.counter("serve.slo.ok", op="ping").value == 0


def test_mint_trace_id_shape():
    a, b = mint_trace_id(), mint_trace_id()
    assert a != b
    assert len(a) == 16
    int(a, 16)  # hex


# ----------------------------------------------------------------------
# Continuous tracing: traceparent propagation, store flushes, /v1/traces


def _traced_daemon(tmp_path, rate=1.0):
    from repro.obs.sampler import HeadSampler
    from repro.obs.tracestore import TraceStore

    metrics.registry().reset()
    store = TraceStore(tmp_path / "traces")
    manager = SessionManager(store=FactStore(tmp_path / "facts"))
    return Daemon(manager, sampler=HeadSampler(rate),
                  trace_store=store), store


def test_protocol_validates_traceparent_on_ingest():
    request = protocol.Request.from_obj({
        "id": "r1", "op": "ping",
        "traceparent": "trace-x-cafe0123-2a-01"})
    ctx = request.trace_context()
    assert ctx.trace_id == "trace-x"
    assert ctx.proc == "cafe0123"
    assert ctx.span_id == 0x2A
    assert ctx.sampled is True
    with pytest.raises(protocol.ProtocolError,
                       match="bad 'traceparent'"):
        protocol.Request.from_obj({"id": "r2", "op": "ping",
                                   "traceparent": "garbage"})


def test_daemon_adopts_propagated_context_and_flushes(tmp_path):
    daemon, store = _traced_daemon(tmp_path)
    response = daemon.handle_request(protocol.Request.from_obj({
        "id": "r1", "op": "ping",
        "traceparent": "prop-trace-cafe0123-2a-01"}))
    assert response["ok"]
    assert response["trace"] == "prop-trace"
    assert "spans" not in response  # sampling never leaks debug output
    records = store.trace("prop-trace")
    assert len(records) == 1
    record = records[0]
    assert record["origin"] == "daemon"
    assert record["op"] == "ping"
    # The daemon's root span parents under the caller's open span.
    assert record["parent"] == {"proc": "cafe0123", "span": 0x2A}
    assert record["spans"][0]["name"] == "serve.request.ping"


def test_unsampled_context_suppresses_the_flush(tmp_path):
    # sampled=00 from the caller wins over the daemon's own sampler,
    # so one trace is all-or-nothing across processes.
    daemon, store = _traced_daemon(tmp_path, rate=1.0)
    response = daemon.handle_request(protocol.Request.from_obj({
        "id": "r1", "op": "ping",
        "traceparent": "cold-trace-cafe0123-0-00"}))
    assert response["ok"]
    assert response["trace"] == "cold-trace"
    assert store.records() == []


def test_minted_traces_roll_the_samplers_coin(tmp_path):
    daemon, store = _traced_daemon(tmp_path, rate=0.0)
    assert daemon.handle_request(protocol.Request.from_obj(
        {"id": "r1", "op": "ping"}))["ok"]
    assert store.records() == []
    assert metrics.registry().counter("obs.trace.sampled").value == 0


def test_traces_endpoint_404_without_a_store(daemon):
    _daemon, port, _tmp = daemon
    with pytest.raises(urllib.error.HTTPError) as failure:
        urllib.request.urlopen(
            "http://127.0.0.1:{}/v1/traces".format(port))
    assert failure.value.code == 404
    body = json.loads(failure.value.read())
    assert "trace store" in body["error"]["message"]


def test_traces_endpoint_serves_summaries_and_records(tmp_path):
    daemon, _store = _traced_daemon(tmp_path)
    port = daemon.start_http()
    try:
        assert daemon.handle_request(protocol.Request.from_obj(
            {"id": "r1", "op": "ping", "trace_id": "wanted"}))["ok"]
        base = "http://127.0.0.1:{}".format(port)
        with urllib.request.urlopen(base + "/v1/traces") as resp:
            listing = json.loads(resp.read())
        assert [s["trace"] for s in listing["traces"]] == ["wanted"]
        assert listing["store"]["segments"] >= 1
        with urllib.request.urlopen(
                base + "/v1/traces?id=wanted") as resp:
            full = json.loads(resp.read())
        assert full["trace"] == "wanted"
        assert full["records"][0]["origin"] == "daemon"
        with pytest.raises(urllib.error.HTTPError) as failure:
            urllib.request.urlopen(base + "/v1/traces?id=nope")
        assert failure.value.code == 404
    finally:
        daemon.stop_http()


def test_journal_size_is_constructor_tunable(tmp_path):
    metrics.registry().reset()
    daemon = Daemon(SessionManager(store=FactStore(tmp_path / "facts")),
                    journal_size=4)
    for i in range(6):
        assert daemon.handle_request(protocol.Request.from_obj(
            {"id": "r{}".format(i), "op": "ping"}))["ok"]
    snapshot = daemon.journal.snapshot()
    assert snapshot["total"] == 6
    assert len(snapshot["requests"]) == 4


def test_stats_op_reports_burn_windows_and_store(tmp_path):
    daemon, _store = _traced_daemon(tmp_path)
    assert daemon.handle_request(protocol.Request.from_obj(
        {"id": "r0", "op": "ping"}))["ok"]
    response = daemon.handle_request(protocol.Request.from_obj(
        {"id": "r1", "op": "stats"}))
    assert response["ok"]
    burn = response["result"]["slo_burn"]
    assert set(burn) >= {"5m", "1h"}
    assert burn["5m"]["requests"] >= 1
    assert burn["5m"]["burn_rate"] is not None
    assert response["result"]["trace_store"]["segments"] >= 1
