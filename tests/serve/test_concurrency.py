"""Multi-client concurrency: pinned answers, no deadlock, sane counters.

Several threads hammer one HTTP daemon with a mix of ops — including
concurrent *edits* (two different sources served under the same unit
name) and enough distinct modules to overflow a 2-session LRU, so the
session lock, the fact store lock and the bundle cache all see real
contention.  The invariants:

* every response is ``ok`` with counts equal to a cold single-threaded
  engine run (the daemon serves in differential mode, so a lie would
  also surface as a ``differential`` error);
* the run terminates well inside its deadline (no deadlock / livelock);
* counters add up afterwards — every source-bearing request is exactly
  one session hit or miss, and totals match what was sent.
"""

import threading

import pytest

from repro import compile_program
from repro.analysis import ANALYSIS_NAMES
from repro.analysis.alias_pairs import AliasPairCounter
from repro.obs import metrics
from repro.serve import protocol
from repro.serve.client import SMOKE_SOURCE, HttpClient
from repro.serve.daemon import Daemon
from repro.serve.factcache import FactStore
from repro.serve.session import SessionManager

EDITED_SOURCE = SMOKE_SOURCE.replace("buf^[0] := 1;", "buf^[1] := 2;")
assert EDITED_SOURCE != SMOKE_SOURCE

N_THREADS = 6
ROUNDS = 4
JOIN_TIMEOUT = 60.0


def _expected_counts():
    expected = {}
    for source in (SMOKE_SOURCE, EDITED_SOURCE):
        program = compile_program(source, unit="conc")
        base = program.base().program
        for analysis in ANALYSIS_NAMES:
            for open_world in (False, True):
                alias = program.analysis(analysis, open_world=open_world)
                counts = AliasPairCounter(base, alias).count().counts()
                expected[(source, analysis, open_world)] = counts
    return expected


@pytest.fixture()
def daemon(tmp_path):
    metrics.registry().reset()
    manager = SessionManager(store=FactStore(tmp_path / "store"),
                             max_sessions=2, differential=True)
    daemon = Daemon(manager)
    port = daemon.start_http()
    yield daemon, port
    daemon.stop_http()


def test_concurrent_mixed_ops_stay_pinned(daemon):
    daemon_obj, port = daemon
    expected = _expected_counts()
    failures = []
    sent = {"source_ops": 0, "total": 0}
    sent_lock = threading.Lock()

    def worker(tid):
        client = HttpClient(port)
        # Threads alternate sources per round: same unit name, two
        # different contents — a live concurrent edit.
        for round_no in range(ROUNDS):
            source = (SMOKE_SOURCE if (tid + round_no) % 2 == 0
                      else EDITED_SOURCE)
            analysis = ANALYSIS_NAMES[(tid + round_no) % len(ANALYSIS_NAMES)]
            open_world = bool(round_no % 2)
            requests = [
                {"op": "ping", "id": "p%d-%d" % (tid, round_no)},
                {"op": "alias", "id": "a%d-%d" % (tid, round_no),
                 "source": source, "name": "conc", "analysis": analysis,
                 "open_world": open_world},
                {"op": "tables", "id": "t%d-%d" % (tid, round_no),
                 "source": source, "name": "conc", "worlds": "both"},
                {"op": "stats", "id": "s%d-%d" % (tid, round_no)},
            ]
            with sent_lock:
                sent["total"] += len(requests)
                sent["source_ops"] += 2  # alias + tables
            for request in requests:
                response = client.query(request)
                if not response.get("ok"):
                    failures.append((request["id"], response))
                    continue
                result = response["result"]
                if request["op"] == "alias":
                    got = (result["references"], result["local_pairs"],
                           result["global_pairs"])
                    want = expected[(source, analysis, open_world)]
                    if got != want:
                        failures.append((request["id"], got, want))
                elif request["op"] == "tables":
                    for row in result["rows"]:
                        want = expected[(source, row["analysis"],
                                         row["open_world"])]
                        got = (row["references"], row["local_pairs"],
                               row["global_pairs"])
                        if got != want:
                            failures.append((request["id"], got, want))

    threads = [threading.Thread(target=worker, args=(tid,), daemon=True)
               for tid in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
    assert not any(t.is_alive() for t in threads), "deadlocked workers"
    assert not failures, failures[:5]

    registry = metrics.registry()
    total = sum(
        registry.counter("serve.request.total", op=op).value
        for op in ("ping", "alias", "tables", "stats"))
    assert total == sent["total"]
    lookups = (registry.counter("serve.session.hit").value
               + registry.counter("serve.session.miss").value)
    assert lookups == sent["source_ops"]
    # Two contents under one unit name: every re-key is an invalidation
    # with all procedures changed (the edit touches one proc's hash, but
    # accounting is per diff); at minimum the edits were *seen*.
    assert registry.counter("serve.invalidate.modules").value >= 1


def test_concurrent_debug_traces_never_interleave(daemon):
    """Span collection is per trace scope (thread-local): N threads each
    sending ``debug`` requests with distinct trace ids must each get
    back a span tree tagged *only* with their own id, and tracing must
    not change how many requests the daemon counts as served."""
    daemon_obj, port = daemon
    failures = []
    served = []

    def worker(tid):
        client = HttpClient(port)
        for round_no in range(ROUNDS):
            trace_id = "trace-{}-{}".format(tid, round_no)
            source = (SMOKE_SOURCE if (tid + round_no) % 2 == 0
                      else EDITED_SOURCE)
            response = client.query({
                "op": "tables", "id": trace_id, "source": source,
                "name": "conc", "worlds": "both",
                "trace_id": trace_id, "debug": True,
            })
            if not response.get("ok"):
                failures.append((trace_id, response))
                continue
            served.append(trace_id)
            if response.get("trace") != trace_id:
                failures.append((trace_id, "echoed", response.get("trace")))
            spans = response.get("spans") or []
            if not spans:
                failures.append((trace_id, "empty span tree"))
            foreign = {s.get("trace") for s in spans} - {trace_id}
            if foreign:
                failures.append((trace_id, "interleaved spans from", foreign))

    threads = [threading.Thread(target=worker, args=(tid,), daemon=True)
               for tid in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(JOIN_TIMEOUT)
    assert not any(t.is_alive() for t in threads), "deadlocked workers"
    assert not failures, failures[:5]
    # Tracing is observability, not behaviour: every request sent is
    # exactly one served request in the counters.
    registry = metrics.registry()
    assert registry.counter("serve.request.total", op="tables").value \
        == N_THREADS * ROUNDS
    assert len(served) == N_THREADS * ROUNDS


def test_drain_under_load_finishes_inflight_and_rejects_new(daemon):
    daemon_obj, port = daemon
    client = HttpClient(port)
    warm = client.query({"op": "alias", "source": SMOKE_SOURCE,
                         "name": "conc", "id": "warm"})
    assert warm["ok"], warm

    results = []

    def slow_query():
        results.append(client.query(
            {"op": "tables", "source": EDITED_SOURCE, "name": "conc",
             "worlds": "both", "id": "inflight"}))

    thread = threading.Thread(target=slow_query, daemon=True)
    thread.start()
    drained = daemon_obj.drain(timeout=30.0)
    thread.join(30.0)
    assert drained
    assert not thread.is_alive()
    # The in-flight request either completed normally or was rejected
    # (if drain won the race to the dispatch gate) — never dropped.
    assert len(results) == 1
    response = results[0]
    assert response["ok"] or \
        response["error"]["kind"] == "unavailable", response

    # After drain: new analysis work is rejected with a typed error.
    rejected = daemon_obj.handle_request(
        protocol.Request.from_obj({"op": "alias", "source": SMOKE_SOURCE}))
    assert rejected["ok"] is False
    assert rejected["error"]["kind"] == "unavailable"
    # ...but ping and stats still answer, reporting the draining state.
    ping = daemon_obj.handle_request(
        protocol.Request.from_obj({"op": "ping"}))
    assert ping["ok"] and ping["result"]["draining"] is True
