"""Unit + property tests for the union-find backing SMTypeRefs."""

from hypothesis import given, strategies as st

from repro.util.unionfind import UnionFind


class TestBasics:
    def test_singletons(self):
        uf = UnionFind(["a", "b", "c"])
        assert uf.n_classes == 3
        assert uf.find("a") == "a"
        assert not uf.connected("a", "b")

    def test_union_connects(self):
        uf = UnionFind(["a", "b", "c"])
        assert uf.union("a", "b")
        assert uf.connected("a", "b")
        assert not uf.connected("a", "c")
        assert uf.n_classes == 2

    def test_union_idempotent(self):
        uf = UnionFind(["a", "b"])
        assert uf.union("a", "b")
        assert not uf.union("a", "b")
        assert uf.n_classes == 1

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert len(uf) == 1
        assert uf.n_classes == 1

    def test_find_registers_unseen(self):
        uf = UnionFind()
        assert uf.find("fresh") == "fresh"
        assert "fresh" in uf

    def test_members(self):
        uf = UnionFind(["a", "b", "c", "d"])
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.members("a") == {"a", "b", "c"}
        assert uf.members("d") == {"d"}

    def test_classes_partition(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(2, 3)
        classes = uf.classes()
        assert sorted(len(c) for c in classes) == [1, 1, 2, 2]
        union_of_all = set().union(*classes)
        assert union_of_all == set(range(6))

    def test_transitive_chain(self):
        uf = UnionFind(range(50))
        for i in range(49):
            uf.union(i, i + 1)
        assert uf.n_classes == 1
        assert uf.connected(0, 49)


@given(
    n=st.integers(min_value=1, max_value=30),
    pairs=st.lists(
        st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=60
    ),
)
def test_matches_naive_partition(n, pairs):
    """Union-find agrees with a naive set-merging implementation."""
    uf = UnionFind(range(n))
    naive = [{i} for i in range(n)]

    def naive_find(x):
        for group in naive:
            if x in group:
                return group
        group = {x}
        naive.append(group)
        return group

    for a, b in pairs:
        uf.union(a, b)
        ga, gb = naive_find(a), naive_find(b)
        if ga is not gb:
            ga |= gb
            naive.remove(gb)

    for a in range(n):
        for b in range(n):
            assert uf.connected(a, b) == (naive_find(a) is naive_find(b))


@given(
    pairs=st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40)
)
def test_equivalence_relation(pairs):
    """connected() is reflexive, symmetric and transitive."""
    uf = UnionFind(range(16))
    for a, b in pairs:
        uf.union(a, b)
    for x in range(16):
        assert uf.connected(x, x)
    for a in range(16):
        for b in range(16):
            assert uf.connected(a, b) == uf.connected(b, a)
    # transitivity via class identity
    roots = [uf.find(x) for x in range(16)]
    for a in range(16):
        for b in range(16):
            assert uf.connected(a, b) == (roots[a] == roots[b])


@given(
    pairs=st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=50)
)
def test_class_count_invariant(pairs):
    """n_classes equals the number of distinct roots at all times."""
    uf = UnionFind(range(21))
    for a, b in pairs:
        uf.union(a, b)
        assert uf.n_classes == len({uf.find(x) for x in range(21)})
