"""Tests for OrderedSet."""

from hypothesis import given, strategies as st

from repro.util.ordered_set import OrderedSet


def test_preserves_insertion_order():
    s = OrderedSet([3, 1, 2, 1, 3])
    assert list(s) == [3, 1, 2]


def test_add_and_discard():
    s = OrderedSet()
    s.add("a")
    s.add("b")
    s.add("a")
    assert list(s) == ["a", "b"]
    s.discard("a")
    assert list(s) == ["b"]
    s.discard("missing")  # no error


def test_update():
    s = OrderedSet([1])
    s.update([2, 3, 1])
    assert list(s) == [1, 2, 3]


def test_membership_and_len():
    s = OrderedSet("abc")
    assert "a" in s
    assert "z" not in s
    assert len(s) == 3
    assert bool(s)
    assert not bool(OrderedSet())


def test_equality_with_sets():
    assert OrderedSet([1, 2]) == {2, 1}
    assert OrderedSet([1, 2]) == OrderedSet([2, 1])
    assert OrderedSet([1]) != OrderedSet([2])


def test_union_and_intersection_preserve_left_order():
    a = OrderedSet([3, 1])
    b = OrderedSet([1, 2])
    assert list(a | b) == [3, 1, 2]
    assert list(a & b) == [1]
    assert list(a.intersection([9, 3])) == [3]


def test_unhashable():
    import pytest

    with pytest.raises(TypeError):
        hash(OrderedSet())


@given(st.lists(st.integers(-5, 5)))
def test_behaves_like_set(items):
    s = OrderedSet(items)
    assert set(s) == set(items)
    assert len(s) == len(set(items))


@given(st.lists(st.integers(0, 9)), st.lists(st.integers(0, 9)))
def test_union_intersection_laws(xs, ys):
    a, b = OrderedSet(xs), OrderedSet(ys)
    assert set(a | b) == set(xs) | set(ys)
    assert set(a & b) == set(xs) & set(ys)
