"""Tests for the text-table renderer."""

from repro.util.tables import format_ratio, render_table


def test_alignment():
    text = render_table(["name", "n"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert lines[2].startswith("a")
    # numeric column right-aligned
    assert lines[2].endswith("1")
    assert lines[3].endswith("22")


def test_title():
    text = render_table(["x"], [[1]], title="My Table")
    lines = text.splitlines()
    assert lines[0] == "My Table"
    assert lines[1] == "=" * len("My Table")


def test_float_formatting():
    text = render_table(["x"], [[0.12345]])
    assert "0.12" in text


def test_wide_cells_expand_column():
    text = render_table(["h"], [["wide-cell-content"]])
    assert "wide-cell-content" in text


def test_left_alignment_columns():
    text = render_table(["a", "b"], [["x", "y"]], align_left=(0, 1))
    assert "x" in text and "y" in text


def test_format_ratio():
    assert format_ratio(0.042) == "4.2%"
    assert format_ratio(1.0, digits=0) == "100%"
