"""Unit tests for the popcount/bit-iteration compat shim."""

import random

import pytest

from repro.util import bits


def test_popcount_small_values():
    assert bits.popcount(0) == 0
    assert bits.popcount(1) == 1
    assert bits.popcount(0b1011) == 3
    assert bits.popcount((1 << 64) - 1) == 64


def test_popcount_huge_mask():
    mask = (1 << 100_000) | (1 << 3) | 1
    assert bits.popcount(mask) == 3


def test_popcount_matches_bin_count_randomised():
    rng = random.Random(7)
    for _ in range(200):
        mask = rng.getrandbits(rng.randint(1, 300))
        assert bits.popcount(mask) == bin(mask).count("1")


def test_popcount_compat_matches_native():
    """The 3.9 fallback must agree with the native path bit for bit."""
    rng = random.Random(11)
    for _ in range(200):
        mask = rng.getrandbits(rng.randint(1, 300))
        assert bits._popcount_compat(mask) == bin(mask).count("1")
        if bits.HAVE_BIT_COUNT:
            assert bits._popcount_compat(mask) == bits._popcount_native(mask)


def test_popcount_rejects_negative():
    with pytest.raises(ValueError):
        bits._popcount_compat(-1)


def test_iter_bits_ascending_and_complete():
    mask = (1 << 0) | (1 << 5) | (1 << 63) | (1 << 200)
    assert list(bits.iter_bits(mask)) == [0, 5, 63, 200]


def test_iter_bits_empty():
    assert list(bits.iter_bits(0)) == []


def test_iter_bits_rejects_negative():
    with pytest.raises(ValueError):
        list(bits.iter_bits(-2))


def test_bits_of_mask_of_round_trip():
    rng = random.Random(3)
    for _ in range(100):
        mask = rng.getrandbits(rng.randint(1, 200))
        assert bits.mask_of(bits.bits_of(mask)) == mask


def test_mask_of_rejects_negative_index():
    with pytest.raises(ValueError):
        bits.mask_of([3, -1])


def test_mask_of_accepts_duplicates():
    assert bits.mask_of([2, 2, 5]) == 0b100100
