"""CLI tests (python -m repro)."""

import os

import pytest

from repro.cli import main

DEMO = """
MODULE CliDemo;
TYPE T = OBJECT n: INTEGER; END;
VAR t: T; x, i: INTEGER;
BEGIN
  t := NEW (T, n := 2);
  FOR i := 1 TO 5 DO
    x := x + t.n;
  END;
  PutInt (x);
END CliDemo.
"""

BROKEN = "MODULE Broken; BEGIN zap := 1; END Broken."


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.m3"
    path.write_text(DEMO)
    return str(path)


def test_check(demo_file, capsys):
    assert main(["check", demo_file]) == 0
    out = capsys.readouterr().out
    assert "module CliDemo: OK" in out
    assert "procedures: 0" in out


def test_check_error(tmp_path, capsys):
    path = tmp_path / "broken.m3"
    path.write_text(BROKEN)
    assert main(["check", str(path)]) == 1
    assert "undeclared" in capsys.readouterr().err


def test_check_error_renders_caret(tmp_path, capsys):
    path = tmp_path / "broken.m3"
    path.write_text("MODULE Broken;\nBEGIN\n  zap := 1;\nEND Broken.\n")
    assert main(["check", str(path)]) == 1
    err = capsys.readouterr().err
    assert "zap := 1;" in err  # the offending source line ...
    assert "^" in err          # ... with a caret under the offender


def test_missing_file(capsys):
    assert main(["check", "/nonexistent/x.m3"]) == 1
    assert "error" in capsys.readouterr().err


def test_run(demo_file, capsys):
    assert main(["run", demo_file]) == 0
    assert capsys.readouterr().out.strip() == "10"


def test_run_with_stats_and_opt(demo_file, capsys):
    assert main(["run", demo_file, "--stats", "--analysis", "SMFieldTypeRefs"]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip() == "10"
    assert "cycles" in captured.err


def test_run_optimized_matches_plain(demo_file, capsys):
    main(["run", demo_file])
    plain = capsys.readouterr().out
    main(["run", demo_file, "--analysis", "TypeDecl", "--minv-inline",
          "--copyprop", "--pre"])
    assert capsys.readouterr().out == plain


def test_ir_dump(demo_file, capsys):
    assert main(["ir", demo_file]) == 0
    out = capsys.readouterr().out
    assert "proc <main>" in out
    assert "ap=t.n" in out


def test_ir_dump_optimized_reports_rle(demo_file, capsys):
    assert main(["ir", demo_file, "--analysis", "SMFieldTypeRefs"]) == 0
    out = capsys.readouterr().out
    assert "RLE:" in out


def test_alias_report(demo_file, capsys):
    assert main(["alias", demo_file]) == 0
    out = capsys.readouterr().out
    for name in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
        assert name in out


def test_limit_report(demo_file, capsys):
    assert main(["limit", demo_file]) == 0
    out = capsys.readouterr().out
    assert "redundant (original)" in out
    assert "Encapsulated" in out


def test_bench_single(capsys):
    assert main(["bench", "write-pickle", "--no-history"]) == 0
    out = capsys.readouterr().out
    assert "write-pickle" in out


# ----------------------------------------------------------------------
# --trace on the dynamic commands


def _trace_names(path):
    import json

    with open(path) as f:
        return [json.loads(line).get("name") for line in f]


def test_run_trace_writes_runtime_spans(demo_file, tmp_path):
    from repro.obs.trace import validate_file

    trace = str(tmp_path / "run.jsonl")
    assert main(["-q", "run", demo_file, "--trace", trace]) == 0
    assert validate_file(trace) > 1
    names = _trace_names(trace)
    assert "run.interp" in names and "run.cachesim" in names
    assert "run.interp.instructions" in names


def test_limit_trace_writes_study_spans(demo_file, tmp_path):
    from repro.obs.trace import validate_file

    trace = str(tmp_path / "limit.jsonl")
    assert main(["-q", "limit", demo_file, "--trace", trace]) == 0
    assert validate_file(trace) > 1
    names = _trace_names(trace)
    assert "limit.replay" in names and "limit.classify" in names
    assert "limit.loads.total" in names


def test_run_trace_flushes_on_failure(tmp_path):
    from repro.obs.trace import validate_file

    trace = str(tmp_path / "run.jsonl")
    broken = tmp_path / "broken.m3"
    broken.write_text(BROKEN)
    assert main(["-q", "run", str(broken), "--trace", trace]) == 1
    # The bulkhead still flushed a schema-valid (partial) trace.
    assert validate_file(trace) >= 1


# ----------------------------------------------------------------------
# Benchmark ledger, compare and gate


def _ledger_record(seconds, sha):
    """A minimal, schema-valid record for one write-pickle observation."""
    return {
        "schema": 1, "kind": "bench_run", "tool": "repro", "label": "bench",
        "git_sha": sha, "timestamp_utc": "2026-08-05T00:00:00Z",
        "host": {"python": "3", "platform": "linux", "machine": "x86_64",
                 "cpu_count": 4},
        "phases": {"write-pickle": {"bench.run": seconds}},
        "counters": {},
    }


def _write_ledger(path, seconds, sha="a" * 40):
    from repro.obs import history

    history.append_record(str(path), _ledger_record(seconds, sha))
    return str(path)


def test_bench_appends_history_record(tmp_path, capsys):
    from repro.obs import history

    hist = str(tmp_path / "hist.jsonl")
    assert main(["bench", "write-pickle", "--history", hist]) == 0
    [record] = history.read_history(hist)
    assert record["label"] == "bench"
    # Span-derived phases carry both the driver and the runtime spans,
    # bucketed under the benchmark's name.
    phases = record["phases"]["write-pickle"]
    assert "bench.run" in phases and "run.interp" in phases
    assert record["counters"]["run.interp.instructions"] > 0
    assert "history: appended" in capsys.readouterr().err
    # The ledger validator accepts what the CLI wrote.
    assert history.main([hist]) == 0


def test_bench_compare_detects_doctored_regression(tmp_path, capsys):
    old = _write_ledger(tmp_path / "old.jsonl", 0.010)
    new = _write_ledger(tmp_path / "new.jsonl", 0.050, sha="b" * 40)
    md = tmp_path / "report.md"
    assert main(["bench", "compare", old, new, "--md", str(md)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION: write-pickle/bench.run" in out
    assert "**REGRESSION**" in md.read_text()


def test_bench_compare_identical_passes(tmp_path, capsys):
    old = _write_ledger(tmp_path / "old.jsonl", 0.010)
    new = _write_ledger(tmp_path / "new.jsonl", 0.011, sha="b" * 40)
    assert main(["bench", "compare", old, new]) == 0
    assert "0 regressed" in capsys.readouterr().out


def test_bench_compare_usage_errors(tmp_path, capsys):
    assert main(["bench", "compare", "only-one"]) == 2
    missing = str(tmp_path / "no-such.jsonl")
    old = _write_ledger(tmp_path / "old.jsonl", 0.010)
    assert main(["bench", "compare", old, missing,
                 "--history", missing]) == 2
    assert "bench compare:" in capsys.readouterr().err


def test_bench_gate_fires_on_doctored_baseline(tmp_path, capsys):
    # A baseline claiming write-pickle ran in 1ms: any honest
    # measurement regresses far beyond tolerance, so the gate must
    # exit nonzero and name the series.
    baseline = _write_ledger(tmp_path / "base.jsonl", 0.001)
    exit_code = main(["bench", "gate", "--baseline", baseline,
                      "--only", "write-pickle", "--no-history"])
    assert exit_code == 1
    captured = capsys.readouterr()
    assert "REGRESSION: write-pickle/bench.run" in captured.out
    assert "regression(s) beyond tolerance" in captured.err


def test_bench_gate_clean_run_passes(tmp_path, capsys):
    # Measure HEAD once to produce the baseline, then gate a second
    # measurement against it with a generous tolerance: back-to-back
    # runs of the same code must pass.
    hist = str(tmp_path / "hist.jsonl")
    assert main(["bench", "write-pickle", "--history", hist]) == 0
    exit_code = main(["bench", "gate", "--baseline", "latest",
                      "--history", hist, "--only", "write-pickle",
                      "--no-history", "--tol", "20.0"])
    assert exit_code == 0
    assert "gate: ok" in capsys.readouterr().out


def test_bench_gate_requires_baseline(capsys):
    assert main(["bench", "gate"]) == 2
    assert "--baseline" in capsys.readouterr().err


def test_bench_rejects_extra_positionals(capsys):
    assert main(["bench", "write-pickle", "slisp"]) == 2


def test_tables_selected(capsys):
    assert main(["tables", "table6"]) == 0
    out = capsys.readouterr().out
    assert "Table 6" in out


def test_tables_unknown(capsys):
    assert main(["tables", "tableX"]) == 2


# ----------------------------------------------------------------------
# Fault isolation and signal/pipe behaviour


GOOD_DIR_PROGRAM = """
MODULE DirGood;
TYPE T = OBJECT n: INTEGER; next: T; END;
VAR t: T; i, sum: INTEGER;
BEGIN
  t := NEW (T, n := 1);
  t.next := NEW (T, n := 2);
  FOR i := 1 TO 3 DO
    sum := sum + t.next.n;
  END;
  PutInt (sum);
END DirGood.
"""


@pytest.fixture
def program_dir(tmp_path):
    directory = tmp_path / "programs"
    directory.mkdir()
    (directory / "dirgood.m3").write_text(GOOD_DIR_PROGRAM)
    (directory / "dirbad.m3").write_text(BROKEN)
    return directory


def test_tables_over_directory_isolates_broken_input(program_dir, capsys):
    import json

    exit_code = main(["tables", "table4", "table5",
                      "--programs", str(program_dir)])
    assert exit_code == 1  # aggregate failure is visible in the exit code
    captured = capsys.readouterr()
    # Tables for the good program were still produced ...
    assert "Table 4" in captured.out and "Table 5" in captured.out
    assert "dirgood" in captured.out
    # ... and the broken one became a structured failure entry.
    assert "--- failures ---" in captured.err
    payload = captured.err.split("--- failures ---", 1)[1]
    [entry] = json.loads(payload)
    assert entry["name"] == "dirbad"
    assert entry["phase"] == "compile"
    assert "undeclared" in entry["message"]


def test_tables_over_directory_all_good_exits_zero(program_dir, capsys):
    (program_dir / "dirbad.m3").unlink()
    assert main(["tables", "table4", "--programs", str(program_dir)]) == 0
    captured = capsys.readouterr()
    assert "dirgood" in captured.out
    assert "failures" not in captured.err


def test_fuzz_command_clean(capsys):
    assert main(["fuzz", "--count", "6", "--seed", "0", "--no-report"]) == 0
    out = capsys.readouterr().out
    assert "0 failures" in out


def test_fuzz_command_catches_injected_fault(tmp_path, monkeypatch, capsys):
    from repro.analysis.typehierarchy import FAULT_ENV

    monkeypatch.setenv(FAULT_ENV, "1")
    out_dir = tmp_path / "fuzz-out"
    exit_code = main(["fuzz", "--count", "3", "--seed", "0",
                      "--out", str(out_dir)])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "distinct failure shapes" in out
    assert (out_dir / "fuzz-report.json").exists()


def test_keyboard_interrupt_exits_130(monkeypatch, capsys):
    import repro.cli as cli

    def boom(args):
        raise KeyboardInterrupt

    monkeypatch.setitem(cli.__dict__, "cmd_check", boom)
    parser_args = ["check", "whatever.m3"]
    # Rebuild the parser so the monkeypatched function is bound.
    monkeypatch.setattr(cli, "build_parser", _patched_parser(boom))
    assert cli.main(parser_args) == 130
    assert "interrupted" in capsys.readouterr().err


def test_resource_limit_reported(monkeypatch, capsys):
    import repro.cli as cli
    from repro.lang.errors import ResourceLimitError

    def exhausted(args):
        raise ResourceLimitError("too deep", kind="recursion")

    monkeypatch.setattr(cli, "build_parser", _patched_parser(exhausted))
    assert cli.main(["check", "x.m3"]) == 1
    assert "resource limit" in capsys.readouterr().err


def _patched_parser(func):
    import argparse

    def build():
        parser = argparse.ArgumentParser()
        sub = parser.add_subparsers(dest="command", required=True)
        p = sub.add_parser("check")
        p.add_argument("file")
        p.set_defaults(func=func)
        return parser

    return build


# ----------------------------------------------------------------------
# The serve daemon, client and serve bench


def test_serve_stdio_command_roundtrip(tmp_path, monkeypatch, capsys):
    import io
    import json
    import sys

    monkeypatch.setattr(sys, "stdin", io.StringIO(
        '{"op": "ping", "id": "p"}\n'
        '{"op": "shutdown", "id": "s"}\n'))
    assert main(["-q", "serve", "--stdio",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 2
    ping = json.loads(lines[0])
    assert ping["ok"] and ping["result"]["pong"] is True
    assert json.loads(lines[1])["result"]["stopping"] is True


def test_client_queries_subprocess_daemon(demo_file, tmp_path, capsys):
    import json

    assert main(["-q", "client", demo_file, "--op", "tables",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    response = json.loads(capsys.readouterr().out)
    assert response["ok"]
    rows = response["result"]["rows"]
    assert [r["analysis"] for r in rows] == \
        ["TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"]


def test_client_reports_compile_error(tmp_path, capsys):
    import json

    broken = tmp_path / "broken.m3"
    broken.write_text(BROKEN)
    assert main(["-q", "client", str(broken), "--op", "alias",
                 "--cache-dir", str(tmp_path / "cache")]) == 1
    response = json.loads(capsys.readouterr().out)
    assert response["ok"] is False
    assert response["error"]["kind"] == "compile"


def test_bench_serve_appends_history_record(tmp_path, capsys):
    from repro.obs import history

    hist = str(tmp_path / "hist.jsonl")
    assert main(["bench", "serve", "--only", "format",
                 "--repeats", "1", "--history", hist]) == 0
    out = capsys.readouterr().out
    assert "bench serve: ok" in out
    [record] = history.read_history(hist)
    assert record["label"] == "bench-serve"
    suite = record["phases"][history.SUITE_BUCKET]
    assert suite["serve.cold"] > suite["serve.warm"] > 0


def test_bench_serve_enforces_speedup_floor(capsys):
    assert main(["bench", "serve", "--only", "format", "--repeats", "1",
                 "--no-history", "--min-speedup", "1000000"]) == 1
    assert "bench serve:" in capsys.readouterr().err
