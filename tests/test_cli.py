"""CLI tests (python -m repro)."""

import os

import pytest

from repro.cli import main

DEMO = """
MODULE CliDemo;
TYPE T = OBJECT n: INTEGER; END;
VAR t: T; x, i: INTEGER;
BEGIN
  t := NEW (T, n := 2);
  FOR i := 1 TO 5 DO
    x := x + t.n;
  END;
  PutInt (x);
END CliDemo.
"""

BROKEN = "MODULE Broken; BEGIN zap := 1; END Broken."


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.m3"
    path.write_text(DEMO)
    return str(path)


def test_check(demo_file, capsys):
    assert main(["check", demo_file]) == 0
    out = capsys.readouterr().out
    assert "module CliDemo: OK" in out
    assert "procedures: 0" in out


def test_check_error(tmp_path, capsys):
    path = tmp_path / "broken.m3"
    path.write_text(BROKEN)
    assert main(["check", str(path)]) == 1
    assert "undeclared" in capsys.readouterr().err


def test_check_error_renders_caret(tmp_path, capsys):
    path = tmp_path / "broken.m3"
    path.write_text("MODULE Broken;\nBEGIN\n  zap := 1;\nEND Broken.\n")
    assert main(["check", str(path)]) == 1
    err = capsys.readouterr().err
    assert "zap := 1;" in err  # the offending source line ...
    assert "^" in err          # ... with a caret under the offender


def test_missing_file(capsys):
    assert main(["check", "/nonexistent/x.m3"]) == 1
    assert "error" in capsys.readouterr().err


def test_run(demo_file, capsys):
    assert main(["run", demo_file]) == 0
    assert capsys.readouterr().out.strip() == "10"


def test_run_with_stats_and_opt(demo_file, capsys):
    assert main(["run", demo_file, "--stats", "--analysis", "SMFieldTypeRefs"]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip() == "10"
    assert "cycles" in captured.err


def test_run_optimized_matches_plain(demo_file, capsys):
    main(["run", demo_file])
    plain = capsys.readouterr().out
    main(["run", demo_file, "--analysis", "TypeDecl", "--minv-inline",
          "--copyprop", "--pre"])
    assert capsys.readouterr().out == plain


def test_ir_dump(demo_file, capsys):
    assert main(["ir", demo_file]) == 0
    out = capsys.readouterr().out
    assert "proc <main>" in out
    assert "ap=t.n" in out


def test_ir_dump_optimized_reports_rle(demo_file, capsys):
    assert main(["ir", demo_file, "--analysis", "SMFieldTypeRefs"]) == 0
    out = capsys.readouterr().out
    assert "RLE:" in out


def test_alias_report(demo_file, capsys):
    assert main(["alias", demo_file]) == 0
    out = capsys.readouterr().out
    for name in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
        assert name in out


def test_limit_report(demo_file, capsys):
    assert main(["limit", demo_file]) == 0
    out = capsys.readouterr().out
    assert "redundant (original)" in out
    assert "Encapsulated" in out


def test_bench_single(capsys):
    assert main(["bench", "write-pickle"]) == 0
    out = capsys.readouterr().out
    assert "write-pickle" in out


def test_tables_selected(capsys):
    assert main(["tables", "table6"]) == 0
    out = capsys.readouterr().out
    assert "Table 6" in out


def test_tables_unknown(capsys):
    assert main(["tables", "tableX"]) == 2


# ----------------------------------------------------------------------
# Fault isolation and signal/pipe behaviour


GOOD_DIR_PROGRAM = """
MODULE DirGood;
TYPE T = OBJECT n: INTEGER; next: T; END;
VAR t: T; i, sum: INTEGER;
BEGIN
  t := NEW (T, n := 1);
  t.next := NEW (T, n := 2);
  FOR i := 1 TO 3 DO
    sum := sum + t.next.n;
  END;
  PutInt (sum);
END DirGood.
"""


@pytest.fixture
def program_dir(tmp_path):
    directory = tmp_path / "programs"
    directory.mkdir()
    (directory / "dirgood.m3").write_text(GOOD_DIR_PROGRAM)
    (directory / "dirbad.m3").write_text(BROKEN)
    return directory


def test_tables_over_directory_isolates_broken_input(program_dir, capsys):
    import json

    exit_code = main(["tables", "table4", "table5",
                      "--programs", str(program_dir)])
    assert exit_code == 1  # aggregate failure is visible in the exit code
    captured = capsys.readouterr()
    # Tables for the good program were still produced ...
    assert "Table 4" in captured.out and "Table 5" in captured.out
    assert "dirgood" in captured.out
    # ... and the broken one became a structured failure entry.
    assert "--- failures ---" in captured.err
    payload = captured.err.split("--- failures ---", 1)[1]
    [entry] = json.loads(payload)
    assert entry["name"] == "dirbad"
    assert entry["phase"] == "compile"
    assert "undeclared" in entry["message"]


def test_tables_over_directory_all_good_exits_zero(program_dir, capsys):
    (program_dir / "dirbad.m3").unlink()
    assert main(["tables", "table4", "--programs", str(program_dir)]) == 0
    captured = capsys.readouterr()
    assert "dirgood" in captured.out
    assert "failures" not in captured.err


def test_fuzz_command_clean(capsys):
    assert main(["fuzz", "--count", "6", "--seed", "0", "--no-report"]) == 0
    out = capsys.readouterr().out
    assert "0 failures" in out


def test_fuzz_command_catches_injected_fault(tmp_path, monkeypatch, capsys):
    from repro.analysis.typehierarchy import FAULT_ENV

    monkeypatch.setenv(FAULT_ENV, "1")
    out_dir = tmp_path / "fuzz-out"
    exit_code = main(["fuzz", "--count", "3", "--seed", "0",
                      "--out", str(out_dir)])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "distinct failure shapes" in out
    assert (out_dir / "fuzz-report.json").exists()


def test_keyboard_interrupt_exits_130(monkeypatch, capsys):
    import repro.cli as cli

    def boom(args):
        raise KeyboardInterrupt

    monkeypatch.setitem(cli.__dict__, "cmd_check", boom)
    parser_args = ["check", "whatever.m3"]
    # Rebuild the parser so the monkeypatched function is bound.
    monkeypatch.setattr(cli, "build_parser", _patched_parser(boom))
    assert cli.main(parser_args) == 130
    assert "interrupted" in capsys.readouterr().err


def test_resource_limit_reported(monkeypatch, capsys):
    import repro.cli as cli
    from repro.lang.errors import ResourceLimitError

    def exhausted(args):
        raise ResourceLimitError("too deep", kind="recursion")

    monkeypatch.setattr(cli, "build_parser", _patched_parser(exhausted))
    assert cli.main(["check", "x.m3"]) == 1
    assert "resource limit" in capsys.readouterr().err


def _patched_parser(func):
    import argparse

    def build():
        parser = argparse.ArgumentParser()
        sub = parser.add_subparsers(dest="command", required=True)
        p = sub.add_parser("check")
        p.add_argument("file")
        p.set_defaults(func=func)
        return parser

    return build
