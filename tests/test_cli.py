"""CLI tests (python -m repro)."""

import os

import pytest

from repro.cli import main

DEMO = """
MODULE CliDemo;
TYPE T = OBJECT n: INTEGER; END;
VAR t: T; x, i: INTEGER;
BEGIN
  t := NEW (T, n := 2);
  FOR i := 1 TO 5 DO
    x := x + t.n;
  END;
  PutInt (x);
END CliDemo.
"""

BROKEN = "MODULE Broken; BEGIN zap := 1; END Broken."


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.m3"
    path.write_text(DEMO)
    return str(path)


def test_check(demo_file, capsys):
    assert main(["check", demo_file]) == 0
    out = capsys.readouterr().out
    assert "module CliDemo: OK" in out
    assert "procedures: 0" in out


def test_check_error(tmp_path, capsys):
    path = tmp_path / "broken.m3"
    path.write_text(BROKEN)
    assert main(["check", str(path)]) == 1
    assert "undeclared" in capsys.readouterr().err


def test_missing_file(capsys):
    assert main(["check", "/nonexistent/x.m3"]) == 1
    assert "error" in capsys.readouterr().err


def test_run(demo_file, capsys):
    assert main(["run", demo_file]) == 0
    assert capsys.readouterr().out.strip() == "10"


def test_run_with_stats_and_opt(demo_file, capsys):
    assert main(["run", demo_file, "--stats", "--analysis", "SMFieldTypeRefs"]) == 0
    captured = capsys.readouterr()
    assert captured.out.strip() == "10"
    assert "cycles" in captured.err


def test_run_optimized_matches_plain(demo_file, capsys):
    main(["run", demo_file])
    plain = capsys.readouterr().out
    main(["run", demo_file, "--analysis", "TypeDecl", "--minv-inline",
          "--copyprop", "--pre"])
    assert capsys.readouterr().out == plain


def test_ir_dump(demo_file, capsys):
    assert main(["ir", demo_file]) == 0
    out = capsys.readouterr().out
    assert "proc <main>" in out
    assert "ap=t.n" in out


def test_ir_dump_optimized_reports_rle(demo_file, capsys):
    assert main(["ir", demo_file, "--analysis", "SMFieldTypeRefs"]) == 0
    out = capsys.readouterr().out
    assert "RLE:" in out


def test_alias_report(demo_file, capsys):
    assert main(["alias", demo_file]) == 0
    out = capsys.readouterr().out
    for name in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
        assert name in out


def test_limit_report(demo_file, capsys):
    assert main(["limit", demo_file]) == 0
    out = capsys.readouterr().out
    assert "redundant (original)" in out
    assert "Encapsulated" in out


def test_bench_single(capsys):
    assert main(["bench", "write-pickle"]) == 0
    out = capsys.readouterr().out
    assert "write-pickle" in out


def test_tables_selected(capsys):
    assert main(["tables", "table6"]) == 0
    out = capsys.readouterr().out
    assert "Table 6" in out


def test_tables_unknown(capsys):
    assert main(["tables", "tableX"]) == 2
