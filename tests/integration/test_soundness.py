"""TBAA soundness against ground truth.

Run each benchmark under the tracer and record which access paths
dynamically touch each heap address.  If two paths ever refer to the same
location at run time, every analysis (TypeDecl, FieldTypeDecl,
SMFieldTypeRefs — closed and open world) MUST report them as may-aliases.
This is the fundamental correctness property of Section 2.
"""

from collections import defaultdict

import pytest

from repro.bench.suite import BASE
from repro.ir.access_path import strip_index
from repro.runtime import Interpreter


class _AliasOracleTracer:
    """Records, per address, every (stripped) AP that accessed it."""

    def __init__(self) -> None:
        self.by_address = defaultdict(set)

    def _note(self, instr, addr):
        if instr.ap is not None:
            self.by_address[addr].add(strip_index(instr.ap))

    def on_load(self, instr, addr, value, activation):
        self._note(instr, addr)

    def on_store(self, instr, addr, value, activation):
        self._note(instr, addr)


FAST_BENCHMARKS = ["format", "write-pickle", "k-tree", "slisp", "dom", "postcard", "m3cg"]


@pytest.fixture(scope="module")
def traces(suite):
    """address -> AP set, per benchmark (one traced run each)."""
    out = {}
    for name in FAST_BENCHMARKS:
        result = suite.build(name, BASE)
        tracer = _AliasOracleTracer()
        Interpreter(result.program, tracer=tracer).run()
        out[name] = tracer.by_address
    return out


@pytest.mark.parametrize("name", FAST_BENCHMARKS)
@pytest.mark.parametrize(
    "analysis_name", ["TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"]
)
def test_dynamic_aliases_are_predicted(suite, traces, name, analysis_name):
    program = suite.program(name)
    analysis = program.analysis(analysis_name)
    for addr, aps in traces[name].items():
        if len(aps) < 2:
            continue
        aps = sorted(aps, key=str)
        for i, p in enumerate(aps):
            for q in aps[i + 1 :]:
                assert analysis.may_alias(p, q), (
                    "{}: {} and {} hit address {:#x} but {} says no-alias".format(
                        name, p, q, addr, analysis_name
                    )
                )


@pytest.mark.parametrize("name", ["format", "slisp"])
def test_open_world_also_sound(suite, traces, name):
    program = suite.program(name)
    analysis = program.analysis("SMFieldTypeRefs", open_world=True)
    for addr, aps in traces[name].items():
        if len(aps) < 2:
            continue
        aps = sorted(aps, key=str)
        for i, p in enumerate(aps):
            for q in aps[i + 1 :]:
                assert analysis.may_alias(p, q)


@pytest.mark.parametrize("name", FAST_BENCHMARKS)
def test_analyses_do_distinguish_something(suite, traces, name):
    """Sanity against vacuous soundness: each benchmark must contain at
    least one pair of observed APs the strongest analysis proves apart
    (otherwise the suite wouldn't exercise disambiguation at all)."""
    program = suite.program(name)
    analysis = program.analysis("SMFieldTypeRefs")
    all_aps = sorted(
        {ap for aps in traces[name].values() for ap in aps}, key=str
    )[:50]
    found_disjoint = False
    for i, p in enumerate(all_aps):
        for q in all_aps[i + 1 :]:
            if not analysis.may_alias(p, q):
                found_disjoint = True
                break
        if found_disjoint:
            break
    assert found_disjoint
