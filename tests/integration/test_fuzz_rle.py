"""Property-based fuzzing: RLE must preserve semantics on random programs.

Hypothesis generates random MiniM3 statement sequences over a fixed set of
declarations chosen to maximise aliasing trouble: two object variables of
related types (so stores through one may hit the other), an open array, a
scalar REF cell whose address-taken cousins abound, a VAR-param helper and
a field-writing helper.  Every generated program is run unoptimized and
under full RLE (all three analyses) and must print the same checksums.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_program
from repro.runtime import M3RuntimeError


def _outcome(program, result):
    """Observable behaviour: output text, or the trap that ended the run."""
    try:
        return ("ok", program.run(result).output_text())
    except M3RuntimeError as trap:
        return ("trap", str(trap))

PRELUDE = """
MODULE Fuzz;
TYPE
  T = OBJECT a, b: INTEGER; next: T; END;
  S = T OBJECT c: INTEGER; END;
  Buf = REF ARRAY OF INTEGER;
  Cell = REF INTEGER;
VAR
  t, u: T; s: S; buf: Buf; cell: Cell; x, y, i: INTEGER;

PROCEDURE Bump (VAR v: INTEGER) =
BEGIN
  v := v + 1;
END Bump;

PROCEDURE Poke (o: T; k: INTEGER) =
BEGIN
  o.a := k;
END Poke;

PROCEDURE Get (o: T): INTEGER =
BEGIN
  RETURN o.a + o.b;
END Get;

BEGIN
  t := NEW (T, a := 1, b := 2);
  u := NEW (T, a := 3, b := 4);
  s := NEW (S, a := 5, c := 6);
  buf := NEW (Buf, 8);
  cell := NEW (Cell);
"""

EPILOGUE = """
  PutInt (x); PutChar (' ');
  PutInt (y); PutChar (' ');
  PutInt (t.a + t.b + u.a + u.b + s.a + s.c + cell^); PutChar (' ');
  FOR k := 0 TO 7 DO PutInt (buf^[k]); END;
END Fuzz.
"""

_INT_DESIGNATORS = [
    "x", "y", "t.a", "t.b", "u.a", "u.b", "s.a", "s.c", "cell^",
    "buf^[0]", "buf^[1]", "buf^[i MOD 8]",
]
_INT_VALUES = _INT_DESIGNATORS + ["1", "7", "x + 1", "t.a + u.b", "Get (t)", "Get (s)"]
_REF_TARGETS = ["t", "u"]
# No NIL-producing values: t and u stay dereferenceable, so generated
# programs are trap-free and the output comparison is total.  (Trap
# preservation is still covered: `_outcome` records M3RuntimeError.)
_REF_VALUES = ["t", "u", "s", "NEW (T, a := 9)"]


@st.composite
def statements(draw, depth=2):
    kind = draw(
        st.sampled_from(
            ["assign", "assign", "assign", "refassign", "call", "if", "for", "with"]
            if depth > 0
            else ["assign", "refassign", "call"]
        )
    )
    if kind == "assign":
        target = draw(st.sampled_from(_INT_DESIGNATORS))
        value = draw(st.sampled_from(_INT_VALUES))
        return "{} := {};".format(target, value)
    if kind == "refassign":
        target = draw(st.sampled_from(_REF_TARGETS))
        value = draw(st.sampled_from(_REF_VALUES))
        return "{} := {};".format(target, value)
    if kind == "call":
        return draw(
            st.sampled_from(
                [
                    "Bump (x);",
                    "Bump (t.a);",
                    "Bump (buf^[1]);",
                    "Bump (cell^);",
                    "Poke (t, x);",
                    "Poke (u, 2);",
                    "Poke (s, 3);",
                ]
            )
        )
    if kind == "if":
        cond = draw(st.sampled_from(["x > 0", "t.a < u.a", "t # u", "t.next = NIL"]))
        then_body = draw(st.lists(statements(depth=depth - 1), min_size=1, max_size=3))
        else_body = draw(st.lists(statements(depth=depth - 1), max_size=2))
        text = "IF {} THEN {} ".format(cond, " ".join(then_body))
        if else_body:
            text += "ELSE {} ".format(" ".join(else_body))
        return text + "END;"
    if kind == "for":
        body = draw(st.lists(statements(depth=depth - 1), min_size=1, max_size=3))
        hi = draw(st.integers(0, 5))
        return "FOR i := 0 TO {} DO {} END;".format(hi, " ".join(body))
    # with
    body = draw(st.lists(statements(depth=depth - 1), min_size=1, max_size=2))
    binding = draw(st.sampled_from(["t.a", "u.b", "x", "buf^[2]"]))
    return "WITH w = {} DO w := w + 1; {} END;".format(binding, " ".join(body))


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(statements(), min_size=1, max_size=10))
def test_rle_preserves_semantics(stmts):
    source = PRELUDE + "\n".join("  " + s for s in stmts) + EPILOGUE
    program = compile_program(source, "fuzz.m3")
    expected = _outcome(program, program.base())
    for analysis in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
        optimized = program.optimize(analysis)
        assert _outcome(program, optimized) == expected, (analysis, source)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(statements(), min_size=1, max_size=8))
def test_full_pipeline_preserves_semantics(stmts):
    source = PRELUDE + "\n".join("  " + s for s in stmts) + EPILOGUE
    program = compile_program(source, "fuzz.m3")
    expected = _outcome(program, program.base())
    optimized = program.optimize("SMFieldTypeRefs", minv_inline=True)
    assert _outcome(program, optimized) == expected, source


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(st.lists(statements(), min_size=1, max_size=8))
def test_dope_ablation_preserves_semantics(stmts):
    source = PRELUDE + "\n".join("  " + s for s in stmts) + EPILOGUE
    program = compile_program(source, "fuzz.m3")
    expected = _outcome(program, program.base())
    optimized = program.optimize("SMFieldTypeRefs", see_dope_loads=True)
    assert _outcome(program, optimized) == expected, source
