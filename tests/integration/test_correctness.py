"""End-to-end semantic preservation.

Every benchmark must produce byte-identical output under every
optimization configuration, and optimized code must never execute more
heap loads than the baseline.  This is the master safety net for RLE,
devirtualization and inlining.
"""

import pytest

from repro.bench import registry
from repro.bench.suite import BASE, RunConfig

CONFIGS = {
    "rle-typedecl": RunConfig(analysis="TypeDecl"),
    "rle-fieldtypedecl": RunConfig(analysis="FieldTypeDecl"),
    "rle-smftr": RunConfig(analysis="SMFieldTypeRefs"),
    "rle-open-world": RunConfig(analysis="SMFieldTypeRefs", open_world=True),
    "minv-inline": RunConfig(minv_inline=True),
    "all": RunConfig(analysis="SMFieldTypeRefs", minv_inline=True),
    "rle-no-hoist": RunConfig(analysis="SMFieldTypeRefs", hoist=False),
    "rle-see-dope": RunConfig(analysis="SMFieldTypeRefs", see_dope_loads=True),
}


@pytest.mark.parametrize("name", registry.benchmark_names())
@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_output_identical(suite, name, config_name):
    base = suite.run(name, BASE)
    opt = suite.run(name, CONFIGS[config_name])
    assert opt.output_text() == base.output_text()


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_rle_never_adds_heap_loads(suite, name):
    base = suite.run(name, BASE)
    for config_name in ("rle-typedecl", "rle-fieldtypedecl", "rle-smftr"):
        opt = suite.run(name, CONFIGS[config_name])
        assert opt.heap_loads <= base.heap_loads, config_name


@pytest.mark.parametrize("name", registry.dynamic_benchmark_names())
def test_rle_improves_or_preserves_cycles(suite, name):
    base = suite.run(name, BASE)
    opt = suite.run(name, CONFIGS["rle-smftr"])
    assert opt.cycles <= base.cycles


@pytest.mark.parametrize("name", registry.dynamic_benchmark_names())
def test_stronger_analysis_never_hurts(suite, name):
    """More precise TBAA ⇒ no more heap loads under RLE."""
    td = suite.run(name, CONFIGS["rle-typedecl"])
    ftd = suite.run(name, CONFIGS["rle-fieldtypedecl"])
    smftr = suite.run(name, CONFIGS["rle-smftr"])
    assert smftr.heap_loads <= ftd.heap_loads <= td.heap_loads


@pytest.mark.parametrize("name", registry.dynamic_benchmark_names())
def test_dope_ablation_at_least_as_good(suite, name):
    normal = suite.run(name, CONFIGS["rle-smftr"])
    ablated = suite.run(name, CONFIGS["rle-see-dope"])
    assert ablated.heap_loads <= normal.heap_loads


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_benchmark_is_deterministic(suite, name):
    """Same program, fresh run, same counters (no hidden randomness)."""
    from repro.runtime import Interpreter, MachineModel

    result = suite.build(name, BASE)
    first = suite.run(name, BASE)
    again = Interpreter(result.program, machine=MachineModel()).run()
    assert again.output_text() == first.output_text()
    assert again.instructions == first.instructions
    assert again.heap_loads == first.heap_loads
