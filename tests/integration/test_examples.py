"""Every example script must run cleanly and show its headline output."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

CASES = {
    "quickstart.py": ["TypeRefsTable", "may_alias", "heap loads"],
    "optimize_program.py": ["Sum before RLE", "Sum after RLE", "eliminated loads"],
    "limit_study.py": ["dynamically redundant", "Encapsulated", "Ablation"],
    "open_world.py": ["TypeRefsTable(Node) [closed world]", "RLE open"],
    "devirtualize.py": ["Minv resolved", "RLE+Minv+Inlining"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    for needle in CASES[script]:
        assert needle in result.stdout, (script, needle)
