"""Dominator-tree tests, incl. a brute-force cross-check."""

from typing import Dict, List, Set

from repro.ir.cfg import BasicBlock
from repro.ir.dominators import DominatorTree
from repro.ir.lowering import lower_program


def lower(body, decls="VAR x: INTEGER;"):
    return lower_program("MODULE M; {} BEGIN {} END M.".format(decls, body))


def brute_force_dominators(proc) -> Dict[BasicBlock, Set[BasicBlock]]:
    """dom(b) = blocks appearing on *every* entry->b path (via removal)."""
    blocks = proc.blocks()

    def reachable_without(banned) -> Set[BasicBlock]:
        seen: Set[BasicBlock] = set()
        stack: List[BasicBlock] = []
        if proc.entry is not banned:
            stack.append(proc.entry)
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            for s in b.successors():
                if s is not banned:
                    stack.append(s)
        return seen

    doms: Dict[BasicBlock, Set[BasicBlock]] = {}
    for b in blocks:
        doms[b] = {d for d in blocks if b not in reachable_without(d) or d is b}
    return doms


def assert_matches_brute_force(proc):
    tree = DominatorTree(proc)
    expected = brute_force_dominators(proc)
    for b in proc.blocks():
        actual = set(tree.dominators_of(b))
        assert actual == expected[b], "dominators of {} differ".format(b.name)


def test_straight_line():
    assert_matches_brute_force(lower("x := 1; x := 2;").main)


def test_diamond():
    assert_matches_brute_force(
        lower("IF x = 1 THEN x := 2; ELSE x := 3; END; x := 4;").main
    )


def test_while_loop():
    assert_matches_brute_force(lower("WHILE x < 5 DO x := x + 1; END;").main)


def test_nested_loops():
    assert_matches_brute_force(
        lower(
            """
            WHILE x < 5 DO
              FOR i := 0 TO 3 DO
                x := x + i;
              END;
            END;
            """
        ).main
    )


def test_loop_with_exit():
    assert_matches_brute_force(
        lower("LOOP IF x > 3 THEN EXIT; END; x := x + 1; END;").main
    )


def test_complex_mix():
    assert_matches_brute_force(
        lower(
            """
            REPEAT
              CASE x OF
              | 1 => x := 2;
              | 2 => x := 3;
              ELSE x := 0;
              END;
            UNTIL x = 0;
            IF x = 0 THEN RETURN; END;
            x := 9;
            """
        ).main
    )


def test_entry_dominates_everything():
    proc = lower("WHILE x < 3 DO x := x + 1; END; x := 9;").main
    tree = DominatorTree(proc)
    for b in proc.blocks():
        assert tree.dominates(proc.entry, b)


def test_dominates_reflexive():
    proc = lower("x := 1;").main
    tree = DominatorTree(proc)
    for b in proc.blocks():
        assert tree.dominates(b, b)
