"""Natural-loop detection tests."""

from repro.ir.dominators import DominatorTree
from repro.ir.loops import find_natural_loops
from repro.ir.lowering import lower_program


def loops_of(body, decls="VAR x: INTEGER;"):
    program = lower_program("MODULE M; {} BEGIN {} END M.".format(decls, body))
    proc = program.main
    return proc, find_natural_loops(proc, DominatorTree(proc))


def test_straight_line_has_no_loops():
    _, loops = loops_of("x := 1; IF x = 1 THEN x := 2; END;")
    assert loops == []


def test_while_is_one_loop():
    proc, loops = loops_of("WHILE x < 3 DO x := x + 1; END;")
    assert len(loops) == 1
    (loop,) = loops
    assert loop.header in loop.body
    assert len(loop.latches) == 1
    assert loop.latches[0] in loop.body


def test_repeat_is_one_loop():
    _, loops = loops_of("REPEAT x := x + 1; UNTIL x = 5;")
    assert len(loops) == 1


def test_nested_loops_sorted_inner_first():
    _, loops = loops_of(
        """
        WHILE x < 9 DO
          FOR i := 0 TO 3 DO
            x := x + 1;
          END;
        END;
        """
    )
    assert len(loops) == 2
    inner, outer = loops
    assert len(inner.body) < len(outer.body)
    assert inner.body < outer.body  # nesting


def test_loop_with_if_inside():
    _, loops = loops_of(
        "WHILE x < 9 DO IF x MOD 2 = 0 THEN x := x + 3; ELSE x := x + 1; END; END;"
    )
    (loop,) = loops
    # header + if-blocks + join + latch structure all inside
    assert len(loop.body) >= 4


def test_exit_edges_leave_loop():
    _, loops = loops_of("WHILE x < 3 DO x := x + 1; END; x := 0;")
    (loop,) = loops
    for src, dst in loop.exit_edges():
        assert src in loop.body
        assert dst not in loop.body
    assert loop.exit_edges()


def test_loop_statement_with_exit():
    _, loops = loops_of("LOOP IF x > 2 THEN EXIT; END; x := x + 1; END;")
    assert len(loops) == 1
