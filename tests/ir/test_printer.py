"""Printer tests: every instruction kind has a sane rendering."""

from repro.ir import instructions as ins
from repro.ir.lowering import lower_program
from repro.ir.printer import format_instr, format_proc, format_program


SOURCE = """
MODULE M;
TYPE
  T = OBJECT n: INTEGER; METHODS m (): INTEGER := P; END;
  B = REF ARRAY OF INTEGER;
  C = REF INTEGER;
VAR t: T; b: B; c: C; x: INTEGER;
PROCEDURE P (self: T): INTEGER = BEGIN RETURN self.n; END P;
PROCEDURE Q (VAR v: INTEGER) = BEGIN v := 1; END Q;
BEGIN
  t := NEW (T, n := 1);
  b := NEW (B, 4);
  c := NEW (C);
  x := t.m () + NUMBER (b^) + b^[0] + c^;
  Q (x);
  Q (t.n);
  Q (b^[1]);
  IF ISTYPE (t, T) THEN
    t := NARROW (t, T);
  END;
  WITH w = t.n DO w := 2; END;
  PutInt (x);
END M.
"""


def test_all_instruction_kinds_render():
    program = lower_program(SOURCE)
    seen_classes = set()
    for proc in program.user_procs():
        for instr in proc.all_instrs():
            text = format_instr(instr)
            assert isinstance(text, str) and text
            seen_classes.add(type(instr).__name__)
    # The demo program exercises most of the instruction set.
    expected = {
        "ConstInstr", "LoadVar", "StoreVar", "BinOp", "LoadField",
        "StoreField", "LoadElem", "LoadDopeData", "LoadDopeCount",
        "LoadInd", "StoreInd", "AddrVar", "AddrField", "AddrElem",
        "NewObject", "NewOpenArray", "NewRecord", "Call", "CallMethod",
        "Builtin", "TypeTest", "NarrowChk", "Jump", "Branch", "Return",
    }
    assert expected <= seen_classes


def test_format_proc_structure():
    program = lower_program(SOURCE)
    text = format_proc(program.main)
    assert text.startswith("proc <main>")
    assert "  <main>" in text  # block labels indented


def test_format_program_covers_all_procs():
    program = lower_program(SOURCE)
    text = format_program(program)
    assert "proc P" in text and "proc Q" in text and "proc <main>" in text


def test_memory_instrs_show_access_paths():
    program = lower_program(SOURCE)
    text = format_program(program)
    assert "ap=t.n" in text
    assert "ap=b^[" in text
    assert "ap=c^" in text


def test_unop_and_move_render():
    from repro.ir.instructions import Move, Temp, UnOp

    assert "neg" in format_instr(UnOp(Temp(0), "neg", Temp(1)))
    assert ":=" in format_instr(Move(Temp(0), Temp(1)))
