"""Lowering tests: instruction selection, APs, dope vectors, handles."""

import pytest

from repro.ir import instructions as ins
from repro.ir.lowering import lower_program
from repro.lang.errors import CompileError


def lower(body, decls=""):
    return lower_program(
        "MODULE M; {} BEGIN {} END M.".format(decls, body)
    )


def main_instrs(program):
    return list(program.main.all_instrs())


def find(program, cls):
    return [i for i in main_instrs(program) if isinstance(i, cls)]


DECLS = """
TYPE
  T = OBJECT f: T; n: INTEGER; END;
  B = REF ARRAY OF CHAR;
  F = REF ARRAY [0..7] OF INTEGER;
  R = REF RECORD a: INTEGER; END;
  C = REF INTEGER;
VAR t: T; b: B; fixed: F; r: R; c: C; x: INTEGER; ch: CHAR;
"""


class TestMemoryInstructions:
    def test_field_load_has_ap(self):
        program = lower("x := t.n;", DECLS)
        (load,) = find(program, ins.LoadField)
        assert str(load.ap) == "t.n"

    def test_field_store(self):
        program = lower("t.n := 3;", DECLS)
        (store,) = find(program, ins.StoreField)
        assert str(store.ap) == "t.n"

    def test_chained_fields(self):
        program = lower("x := t.f.n;", DECLS)
        loads = find(program, ins.LoadField)
        assert [str(i.ap) for i in loads] == ["t.f", "t.f.n"]

    def test_open_array_load_emits_dope(self):
        program = lower("ch := b^[x];", DECLS)
        dopes = find(program, ins.LoadDopeData)
        elems = find(program, ins.LoadElem)
        assert len(dopes) == 1 and len(elems) == 1
        assert str(elems[0].ap) == "b^[x]"
        assert dopes[0].is_dope

    def test_fixed_array_no_dope(self):
        program = lower("x := fixed^[2];", DECLS)
        assert not find(program, ins.LoadDopeData)
        (elem,) = find(program, ins.LoadElem)
        assert str(elem.ap) == "fixed^[2]"

    def test_number_open_array(self):
        program = lower("x := NUMBER (b^);", DECLS)
        (count,) = find(program, ins.LoadDopeCount)
        assert count.is_dope

    def test_number_fixed_array_is_constant(self):
        program = lower("x := NUMBER (fixed^);", DECLS)
        assert not find(program, ins.LoadDopeCount)
        consts = [i for i in find(program, ins.ConstInstr) if i.value == 8]
        assert consts

    def test_record_deref_field(self):
        program = lower("x := r^.a;", DECLS)
        (load,) = find(program, ins.LoadField)
        assert str(load.ap) == "r^.a"

    def test_scalar_deref_uses_loadind(self):
        program = lower("x := c^; c^ := 1;", DECLS)
        assert len(find(program, ins.LoadInd)) == 1
        assert len(find(program, ins.StoreInd)) == 1


class TestAllocation:
    def test_new_object(self):
        program = lower("t := NEW (T);", DECLS)
        assert len(find(program, ins.NewObject)) == 1

    def test_new_object_field_inits_store(self):
        program = lower("t := NEW (T, n := 3);", DECLS)
        (store,) = find(program, ins.StoreField)
        assert store.field == "n"

    def test_new_open_array(self):
        program = lower("b := NEW (B, 16);", DECLS)
        assert len(find(program, ins.NewOpenArray)) == 1

    def test_new_fixed_array(self):
        program = lower("fixed := NEW (F);", DECLS)
        assert len(find(program, ins.NewFixedArray)) == 1

    def test_new_record_and_cell(self):
        program = lower("r := NEW (R); c := NEW (C);", DECLS)
        assert len(find(program, ins.NewRecord)) == 2


class TestControlFlow:
    def test_if_creates_branch(self):
        program = lower("IF x = 1 THEN x := 2; END;", DECLS)
        branches = [
            blk.terminator
            for blk in program.main.blocks()
            if isinstance(blk.terminator, ins.Branch)
        ]
        assert branches

    def test_while_loop_shape(self):
        program = lower("WHILE x < 3 DO x := x + 1; END;", DECLS)
        blocks = program.main.blocks()
        # at least entry, header, body, exit
        assert len(blocks) >= 4

    def test_for_lowering_uses_shadow_bound(self):
        program = lower("FOR i := 0 TO 9 DO x := x + i; END;", DECLS)
        assert program.main.shadow_symbols

    def test_exit_jumps_out(self):
        program = lower("LOOP EXIT; END; x := 1;", DECLS)
        # Must terminate and reach the trailing assignment.
        names = [i for i in main_instrs(program) if isinstance(i, ins.StoreVar)]
        assert any(s.symbol.name == "x" for s in names)

    def test_short_circuit_and(self):
        program = lower("IF x > 0 AND t.n > 0 THEN x := 1; END;", DECLS)
        # t.n load must be control-dependent: there is more than one branch
        branches = [
            blk.terminator
            for blk in program.main.blocks()
            if isinstance(blk.terminator, ins.Branch)
        ]
        assert len(branches) >= 2

    def test_case_lowering(self):
        program = lower(
            "CASE x OF | 1 => ch := 'a'; | 2, 3 => ch := 'b'; ELSE ch := 'c'; END;",
            DECLS,
        )
        # all arms produce stores of ch
        stores = [i for i in main_instrs(program) if isinstance(i, ins.StoreVar)]
        assert sum(1 for s in stores if s.symbol.name == "ch") == 3


class TestHandles:
    PROC_DECLS = DECLS + """
    PROCEDURE Bump (VAR v: INTEGER) =
    BEGIN
      v := v + 1;
    END Bump;
    """

    def test_var_arg_of_variable_uses_addrvar(self):
        program = lower("Bump (x);", self.PROC_DECLS)
        assert find(program, ins.AddrVar)

    def test_var_arg_of_field_uses_addrfield(self):
        program = lower("Bump (t.n);", self.PROC_DECLS)
        assert find(program, ins.AddrField)

    def test_var_arg_of_element_uses_addrelem(self):
        program = lower("Bump (fixed^[1]);", self.PROC_DECLS)
        assert find(program, ins.AddrElem)

    def test_var_arg_of_scalar_deref_passes_cell(self):
        program = lower("Bump (c^);", self.PROC_DECLS)
        # no Addr* needed: the cell itself is the handle
        assert not find(program, ins.AddrVar)
        assert not find(program, ins.AddrField)

    def test_var_param_access_is_indirect(self):
        program = lower("Bump (x);", self.PROC_DECLS)
        bump = program.procs["Bump"]
        loads = [i for i in bump.all_instrs() if isinstance(i, ins.LoadInd)]
        stores = [i for i in bump.all_instrs() if isinstance(i, ins.StoreInd)]
        assert loads and stores
        assert str(loads[0].ap) == "v^"

    def test_with_location_binding_records_target(self):
        program = lower("WITH w = t.n DO w := 3; END;", DECLS)
        assert program.main.handle_targets
        (info,) = program.main.handle_targets.values()
        assert info[0] == "heap"

    def test_with_value_binding_plain_var(self):
        program = lower("WITH w = x + 1 DO t.n := w; END;", DECLS)
        assert not program.main.handle_targets

    def test_call_var_args_recorded(self):
        program = lower("Bump (x);", self.PROC_DECLS)
        (call,) = find(program, ins.Call)
        var_args = getattr(call, "var_args")
        assert 0 in var_args
        assert var_args[0][0] == "var"


class TestCallsAndBuiltins:
    def test_method_call(self):
        program = lower_program(
            """
            MODULE M;
            TYPE T = OBJECT METHODS m (): INTEGER := P; END;
            VAR t: T; x: INTEGER;
            PROCEDURE P (self: T): INTEGER = BEGIN RETURN 1; END P;
            BEGIN x := t.m (); END M.
            """
        )
        calls = [i for i in program.main.all_instrs() if isinstance(i, ins.CallMethod)]
        assert len(calls) == 1
        assert calls[0].method_name == "m"

    def test_inc_is_read_modify_write(self):
        program = lower("INC (t.n);", DECLS)
        assert len(find(program, ins.LoadField)) == 1
        assert len(find(program, ins.StoreField)) == 1

    def test_inc_with_delta(self):
        program = lower("INC (x, 5);", DECLS)
        binops = find(program, ins.BinOp)
        assert any(i.op == "+" for i in binops)

    def test_builtin_lowering(self):
        program = lower('PutText ("x" & IntToText (ORD (ch)));', DECLS)
        builtins = {i.name for i in find(program, ins.Builtin)}
        assert {"PutText", "TextCat", "IntToText", "ORD"} <= builtins

    def test_return_terminator_added(self):
        program = lower("x := 1;", DECLS)
        terminators = [b.terminator for b in program.main.blocks()]
        assert any(isinstance(t, ins.Return) for t in terminators)


class TestGlobalInits:
    def test_global_initialisers_in_main_preamble(self):
        program = lower_program(
            """
            MODULE M;
            VAR x: INTEGER := 42;
            VAR y: INTEGER;
            BEGIN y := x; END M.
            """
        )
        first = program.main.entry.instrs
        stores = [i for i in first if isinstance(i, ins.StoreVar)]
        assert stores and stores[0].symbol.name == "x"
