"""Tests for the access-path algebra."""

from hypothesis import given, strategies as st

from repro.ir.access_path import (
    ConstIndex,
    Deref,
    FreshRoot,
    Qualify,
    Subscript,
    UnknownIndex,
    VarIndex,
    VarRoot,
    strip_index,
)
from repro.lang import types as ty
from repro.lang.errors import UNKNOWN_LOCATION
from repro.lang.symtab import Symbol


def sym(name, t=ty.INTEGER, kind="var", mode="value"):
    return Symbol(name, kind, t, UNKNOWN_LOCATION, mode=mode)


def obj_type(name="T"):
    return ty.ObjectType(name, ty.ROOT, [])


class TestStructure:
    def test_var_root(self):
        s = sym("x", obj_type())
        root = VarRoot(s)
        assert root.base is None
        assert root.root() is root
        assert not root.is_memory_reference()
        assert str(root) == "x"

    def test_qualify(self):
        t = obj_type()
        p = Qualify(VarRoot(sym("a", t)), "f", ty.INTEGER, t)
        assert p.is_memory_reference()
        assert p.depth() == 1
        assert str(p) == "a.f"

    def test_nested_path_string(self):
        t = obj_type()
        ref = ty.RefType(ty.INTEGER)
        a = VarRoot(sym("a", t))
        b = Qualify(a, "b", ref, t)
        d = Deref(b, ty.INTEGER)
        assert str(d) == "a.b^"
        assert d.depth() == 2
        assert d.root().symbol.name == "a"

    def test_subscript_string(self):
        arr = ty.ArrayType(ty.CHAR, None)
        ref = ty.RefType(arr)
        p = VarRoot(sym("p", ref))
        deref = Deref(p, arr)
        s = Subscript(deref, VarIndex(sym("i")), ty.CHAR)
        assert str(s) == "p^[i]"


class TestEquality:
    def test_same_path_equal(self):
        t = obj_type()
        a = sym("a", t)
        p1 = Qualify(VarRoot(a), "f", ty.INTEGER, t)
        p2 = Qualify(VarRoot(a), "f", ty.INTEGER, t)
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_different_roots_differ(self):
        t = obj_type()
        p1 = Qualify(VarRoot(sym("a", t)), "f", ty.INTEGER, t)
        p2 = Qualify(VarRoot(sym("b", t)), "f", ty.INTEGER, t)
        assert p1 != p2

    def test_different_fields_differ(self):
        t = obj_type()
        a = sym("a", t)
        assert Qualify(VarRoot(a), "f", ty.INTEGER, t) != Qualify(
            VarRoot(a), "g", ty.INTEGER, t
        )

    def test_indices_matter_for_equality(self):
        arr = ty.ArrayType(ty.INTEGER, None)
        base = Deref(VarRoot(sym("p", ty.RefType(arr))), arr)
        i = sym("i")
        j = sym("j")
        assert Subscript(base, VarIndex(i), ty.INTEGER) == Subscript(
            base, VarIndex(i), ty.INTEGER
        )
        assert Subscript(base, VarIndex(i), ty.INTEGER) != Subscript(
            base, VarIndex(j), ty.INTEGER
        )
        assert Subscript(base, ConstIndex(0), ty.INTEGER) != Subscript(
            base, ConstIndex(1), ty.INTEGER
        )

    def test_unknown_index_never_equal(self):
        arr = ty.ArrayType(ty.INTEGER, None)
        base = Deref(VarRoot(sym("p", ty.RefType(arr))), arr)
        s1 = Subscript(base, UnknownIndex(), ty.INTEGER)
        s2 = Subscript(base, UnknownIndex(), ty.INTEGER)
        assert s1 != s2
        assert s1 == s1

    def test_fresh_roots_unique(self):
        t = obj_type()
        assert FreshRoot(t) != FreshRoot(t)
        f = FreshRoot(t)
        assert f == f
        assert not f.is_handle


class TestRootSymbols:
    def test_includes_root_and_index_vars(self):
        t = obj_type()
        arr = ty.ArrayType(ty.INTEGER, None)
        a = sym("a", t)
        i = sym("i")
        ref = ty.RefType(arr)
        path = Subscript(
            Deref(Qualify(VarRoot(a), "buf", ref, t), arr), VarIndex(i), ty.INTEGER
        )
        assert path.root_symbols() == {a, i}

    def test_const_index_contributes_nothing(self):
        arr = ty.ArrayType(ty.INTEGER, None)
        p = sym("p", ty.RefType(arr))
        path = Subscript(Deref(VarRoot(p), arr), ConstIndex(3), ty.INTEGER)
        assert path.root_symbols() == {p}


class TestHandles:
    def test_var_param_is_handle(self):
        s = sym("x", ty.INTEGER, kind="param", mode="var")
        assert VarRoot(s).is_handle

    def test_value_param_not_handle(self):
        s = sym("x", ty.INTEGER, kind="param", mode="value")
        assert not VarRoot(s).is_handle

    def test_with_location_binding_is_handle(self):
        s = sym("w", ty.INTEGER, kind="with")
        s.binds_location = True
        assert VarRoot(s).is_handle
        s2 = sym("w2", ty.INTEGER, kind="with")
        assert not VarRoot(s2).is_handle


class TestStripIndex:
    def test_canonicalises_subscripts(self):
        arr = ty.ArrayType(ty.INTEGER, None)
        base = Deref(VarRoot(sym("p", ty.RefType(arr))), arr)
        s1 = Subscript(base, VarIndex(sym("i")), ty.INTEGER)
        s2 = Subscript(base, ConstIndex(7), ty.INTEGER)
        assert strip_index(s1) == strip_index(s2)

    def test_idempotent(self):
        arr = ty.ArrayType(ty.INTEGER, None)
        base = Deref(VarRoot(sym("p", ty.RefType(arr))), arr)
        s = Subscript(base, UnknownIndex(), ty.INTEGER)
        once = strip_index(s)
        assert strip_index(once) == once

    def test_preserves_non_subscripts(self):
        t = obj_type()
        p = Qualify(VarRoot(sym("a", t)), "f", ty.INTEGER, t)
        assert strip_index(p) == p


class TestInterning:
    """Hash-consing: equal construction returns the identical node."""

    def test_var_root_interned(self):
        s = sym("x", obj_type())
        assert VarRoot(s) is VarRoot(s)

    def test_qualify_interned(self):
        t = obj_type()
        s = sym("a", t)
        assert Qualify(VarRoot(s), "f", ty.INTEGER, t) is Qualify(
            VarRoot(s), "f", ty.INTEGER, t
        )

    def test_deref_and_subscript_interned(self):
        arr = ty.ArrayType(ty.INTEGER, None)
        s = sym("p", ty.RefType(arr))
        d1 = Deref(VarRoot(s), arr)
        d2 = Deref(VarRoot(s), arr)
        assert d1 is d2
        assert Subscript(d1, ConstIndex(3), ty.INTEGER) is Subscript(
            d2, ConstIndex(3), ty.INTEGER
        )
        i = sym("i")
        assert Subscript(d1, VarIndex(i), ty.INTEGER) is Subscript(
            d2, VarIndex(i), ty.INTEGER
        )

    def test_distinct_structures_not_shared(self):
        t = obj_type()
        s = sym("a", t)
        assert Qualify(VarRoot(s), "f", ty.INTEGER, t) is not Qualify(
            VarRoot(s), "g", ty.INTEGER, t
        )

    def test_generative_nodes_stay_distinct(self):
        t = obj_type()
        assert FreshRoot(t) is not FreshRoot(t)
        arr = ty.ArrayType(ty.INTEGER, None)
        d = Deref(VarRoot(sym("p", ty.RefType(arr))), arr)
        assert Subscript(d, UnknownIndex(), ty.INTEGER) is not Subscript(
            d, UnknownIndex(), ty.INTEGER
        )

    def test_uid_stable_across_reconstruction(self):
        s = sym("x", obj_type())
        assert VarRoot(s).uid == VarRoot(s).uid

    def test_uids_distinct_between_nodes(self):
        t = obj_type()
        s = sym("a", t)
        root = VarRoot(s)
        q = Qualify(root, "f", ty.INTEGER, t)
        assert root.uid != q.uid

    def test_strip_index_memoised_to_identical_node(self):
        arr = ty.ArrayType(ty.INTEGER, None)
        base = Deref(VarRoot(sym("p", ty.RefType(arr))), arr)
        s1 = Subscript(base, VarIndex(sym("i")), ty.INTEGER)
        s2 = Subscript(base, ConstIndex(7), ty.INTEGER)
        c1, c2 = strip_index(s1), strip_index(s2)
        assert c1 is c2
        assert strip_index(c1) is c1  # canonical nodes are fixpoints
        assert strip_index(s1) is c1  # memo returns the same node again


# -- property tests ----------------------------------------------------


@st.composite
def paths(draw, roots=None):
    """Random access paths over a tiny fixed set of roots/fields."""
    if roots is None:
        t = obj_type()
        roots = [VarRoot(sym(n, t)) for n in "ab"]
    node = draw(st.sampled_from(roots))
    arr = ty.ArrayType(ty.INTEGER, None)
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.sampled_from(["q", "d", "s"]))
        if kind == "q":
            node = Qualify(node, draw(st.sampled_from("fg")), ty.RefType(arr), None)
        elif kind == "d":
            node = Deref(node, arr)
        else:
            node = Subscript(node, ConstIndex(draw(st.integers(0, 2))), ty.INTEGER)
    return node


@given(paths())
def test_hash_eq_consistency(p):
    assert p == p
    assert hash(p) == hash(p)
    assert strip_index(p) == strip_index(p)


@given(paths(), paths())
def test_equality_symmetric(p, q):
    assert (p == q) == (q == p)
    if p == q:
        assert hash(p) == hash(q)
