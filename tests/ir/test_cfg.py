"""CFG structure tests: reverse postorder, predecessors, reachability."""

from repro.ir import instructions as ins
from repro.ir.cfg import BasicBlock
from repro.ir.lowering import lower_program


def lower(body, decls="VAR x: INTEGER;"):
    return lower_program("MODULE M; {} BEGIN {} END M.".format(decls, body))


def test_entry_first_in_rpo():
    program = lower("IF x = 1 THEN x := 2; ELSE x := 3; END;")
    blocks = program.main.blocks()
    assert blocks[0] is program.main.entry


def test_blocks_only_reachable():
    # code after RETURN is unreachable and must not appear
    program = lower("RETURN; x := 1;")
    for block in program.main.blocks():
        for instr in block.all_instrs():
            assert not (isinstance(instr, ins.StoreVar) and instr.symbol.name == "x")


def test_predecessors_inverse_of_successors():
    program = lower("WHILE x < 3 DO IF x = 1 THEN x := 2; END; END;")
    proc = program.main
    preds = proc.predecessors()
    for block in proc.blocks():
        for succ in block.successors():
            assert block in preds[succ]
    for block, plist in preds.items():
        for p in plist:
            assert block in p.successors()


def test_terminated_block_rejects_append():
    import pytest

    block = BasicBlock()
    block.terminate(ins.Return(None))
    with pytest.raises(AssertionError):
        block.append(ins.ConstInstr(ins.Temp(0), 1))


def test_double_terminate_rejected():
    import pytest

    block = BasicBlock()
    block.terminate(ins.Return(None))
    with pytest.raises(AssertionError):
        block.terminate(ins.Return(None))


def test_heap_loads_and_stores_listing():
    program = lower(
        "t.n := t.n + 1;",
        "TYPE T = OBJECT n: INTEGER; END; VAR t: T; x: INTEGER;",
    )
    proc = program.main
    assert len(proc.heap_loads()) == 1
    assert len(proc.heap_stores()) == 1


def test_program_all_instrs_spans_procs():
    program = lower_program(
        """
        MODULE M;
        VAR x: INTEGER;
        PROCEDURE P () = BEGIN x := 1; END P;
        BEGIN P (); END M.
        """
    )
    uids = [i.uid for i in program.all_instrs()]
    assert len(uids) == len(set(uids))
    assert program.proc_order == ["P", "<main>"]
