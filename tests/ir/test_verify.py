"""IR verifier tests: all passes keep the IR well-formed."""

import pytest

from repro.ir import instructions as ins
from repro.ir.cfg import BasicBlock
from repro.ir.lowering import lower_program
from repro.ir.verify import IRVerificationError, verify_proc, verify_program
from repro.bench import registry
from repro.bench.suite import RunConfig


def lower(body, decls="VAR x: INTEGER;"):
    return lower_program("MODULE M; {} BEGIN {} END M.".format(decls, body))


def test_lowered_code_verifies():
    program = lower(
        """
        WHILE x < 3 DO
          IF x = 1 THEN x := 2; ELSE x := x + 1; END;
        END;
        """
    )
    verify_program(program)


def test_missing_terminator_detected():
    program = lower("x := 1;")
    program.main.entry.terminator = None
    with pytest.raises(IRVerificationError):
        verify_proc(program.main)


def test_read_before_write_detected():
    program = lower("x := 1;")
    ghost = ins.Temp(program.main.n_temps - 1)
    bad = ins.Temp(program.main.n_temps)
    program.main.n_temps += 1
    program.main.entry.instrs.insert(0, ins.Move(ghost, bad))
    with pytest.raises(IRVerificationError):
        verify_proc(program.main)


def test_out_of_range_temp_detected():
    program = lower("x := 1;")
    wild = ins.Temp(10_000)
    program.main.entry.instrs.append(ins.ConstInstr(wild, 0))
    with pytest.raises(IRVerificationError):
        verify_proc(program.main)


def test_unknown_target_detected():
    program = lower("x := 1;")
    orphan = BasicBlock("orphan")
    orphan.terminate(ins.Return(None))
    block = program.main.blocks()[0]
    block.terminator = ins.Jump(orphan)
    # orphan is now reachable, so insert a target that is NOT:
    secret = BasicBlock("secret")
    secret.terminate(ins.Return(None))
    orphan.terminator = ins.Branch(ins.Temp(0), secret, orphan)
    # branch reads t0 which may be unwritten — ensure t0 exists & written
    program.main.entry.instrs.insert(0, ins.ConstInstr(ins.Temp(0), True))
    verify_proc(program.main)  # all reachable now — fine


@pytest.mark.parametrize("name", registry.benchmark_names())
def test_benchmarks_verify_after_lowering(suite, name):
    from repro.ir.lowering import lower_module

    verify_program(lower_module(suite.program(name).checked))


@pytest.mark.parametrize("name", ["format", "k-tree", "slisp", "pp"])
@pytest.mark.parametrize(
    "config",
    [
        RunConfig(analysis="SMFieldTypeRefs"),
        RunConfig(analysis="TypeDecl", hoist=False),
        RunConfig(minv_inline=True),
        RunConfig(analysis="SMFieldTypeRefs", minv_inline=True),
        RunConfig(analysis="SMFieldTypeRefs", see_dope_loads=True),
    ],
    ids=["rle", "rle-nohoist", "minv", "all", "dope"],
)
def test_benchmarks_verify_after_optimization(suite, name, config):
    result = suite.build(name, config)
    verify_program(result.program)
