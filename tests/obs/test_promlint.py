"""Promtool-style self-lint of every Prometheus exposition we emit."""

import os

import pytest

from repro.obs import metrics, promtext
from repro.obs.promlint import PromLintError, check, lint, main

VALID = """\
# HELP repro_requests Requests served.
# TYPE repro_requests counter
repro_requests{op="alias"} 12
repro_requests{op="ping"} 3
# TYPE repro_warm gauge
repro_warm 2
# TYPE repro_latency histogram
repro_latency_bucket{le="0.1"} 4
repro_latency_bucket{le="1"} 9
repro_latency_bucket{le="+Inf"} 10
repro_latency_sum 5.5
repro_latency_count 10
"""


def test_valid_exposition_is_clean():
    assert lint(VALID) == []
    check(VALID)  # must not raise


def test_label_escaping_rules():
    assert lint('# TYPE m counter\nm{l="a\\\\b\\"c\\nd"} 1\n') == []
    (problem,) = lint('# TYPE m counter\nm{l="bad\\t"} 1\n')
    assert "bad escape" in problem


def test_duplicate_series_is_flagged():
    text = '# TYPE m counter\nm{op="a"} 1\nm{op="a"} 2\n'
    (problem,) = lint(text)
    assert "duplicate series" in problem


def test_interleaved_families_are_flagged():
    text = ("# TYPE a counter\na 1\n"
            "# TYPE b counter\nb 1\n"
            "a 2\n")
    problems = lint(text)
    assert any("contiguous" in p for p in problems)


def test_help_must_precede_type_and_samples():
    text = "# TYPE m counter\n# HELP m too late\nm 1\n"
    problems = lint(text)
    assert any("HELP" in p and "precede" in p for p in problems)


def test_histogram_invariants():
    missing_inf = ("# TYPE h histogram\n"
                   'h_bucket{le="1"} 2\nh_sum 1\nh_count 2\n')
    assert any("+Inf" in p for p in lint(missing_inf))
    non_cumulative = ("# TYPE h histogram\n"
                      'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                      "h_sum 1\nh_count 3\n")
    assert any("not cumulative" in p for p in lint(non_cumulative))
    count_mismatch = ("# TYPE h histogram\n"
                      'h_bucket{le="+Inf"} 3\nh_sum 1\nh_count 4\n')
    assert any("_count 4" in p for p in lint(count_mismatch))


def test_negative_counter_and_garbage_lines():
    assert any("negative" in p for p in lint("# TYPE m counter\nm -1\n"))
    assert any("unparseable" in p for p in lint("!! not a sample\n"))
    assert any("bad sample value" in p for p in lint("m xyz\n"))


def test_check_raises_with_every_problem():
    with pytest.raises(PromLintError, match="2 problem"):
        check('# TYPE m counter\nm -1\nm{x="a\\t"} 1\n', source="unit")


def test_live_registry_rendering_lints_clean():
    registry = metrics.MetricsRegistry()
    registry.counter("serve.request.total", op="alias").inc(4)
    registry.gauge("serve.request.ms.p99", op="alias").set(12.5)
    registry.histogram("alias.latency", buckets=(0.1, 1.0)).observe(0.5)
    text = promtext.render(registry)
    assert lint(text) == [], text
    helped = promtext.render(
        registry, help_texts={"serve.request.total": "Requests served."})
    assert lint(helped) == [], helped
    assert "# HELP repro_serve_request_total Requests served." in helped


def test_committed_bench_exposition_lints_clean():
    # BENCH_obs.prom is a scraper-facing artifact: its format is part of
    # the repo's contract, so the committed copy must stay lint-clean.
    path = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "BENCH_obs.prom")
    if not os.path.exists(path):
        pytest.skip("no committed BENCH_obs.prom")
    with open(path) as handle:
        text = handle.read()
    assert lint(text) == []


def test_cli_reports_ok_and_invalid(tmp_path, capsys):
    good = tmp_path / "good.prom"
    good.write_text(VALID)
    bad = tmp_path / "bad.prom"
    bad.write_text("# TYPE m counter\nm -1\n")
    assert main([str(good)]) == 0
    assert "ok (3 families)" in capsys.readouterr().out
    assert main([str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "INVALID (1 problems)" in out
    assert main([]) == 2
