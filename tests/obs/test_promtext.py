"""Prometheus text-format export."""

from repro.obs import metrics
from repro.obs.promtext import metric_name, render, write_prom


def test_metric_name_sanitisation():
    assert metric_name("alias.cache.hits") == "repro_alias_cache_hits"
    assert metric_name("repro_already") == "repro_already"
    assert metric_name("weird-name!") == "repro_weird_name_"


def test_counter_and_gauge_render():
    registry = metrics.MetricsRegistry()
    registry.counter("alias.cache.hits", analysis="TypeDecl").inc(7)
    registry.gauge("smtyperefs.groups").set(4)
    text = render(registry)
    assert "# TYPE repro_alias_cache_hits counter" in text
    assert 'repro_alias_cache_hits{analysis="TypeDecl"} 7' in text
    assert "# TYPE repro_smtyperefs_groups gauge" in text
    assert "repro_smtyperefs_groups 4" in text
    assert text.endswith("\n")


def test_histogram_renders_cumulative_buckets():
    registry = metrics.MetricsRegistry()
    h = registry.histogram("group.size", buckets=(1.0, 5.0))
    for v in (1, 1, 3, 100):
        h.observe(v)
    text = render(registry)
    assert 'repro_group_size_bucket{le="1"} 2' in text
    assert 'repro_group_size_bucket{le="5"} 3' in text
    assert 'repro_group_size_bucket{le="+Inf"} 4' in text
    assert "repro_group_size_sum 105" in text
    assert "repro_group_size_count 4" in text


def test_label_escaping():
    registry = metrics.MetricsRegistry()
    registry.counter("c", cfg='say "hi"').inc()
    assert 'cfg="say \\"hi\\""' in render(registry)


def test_empty_registry_renders_empty():
    assert render(metrics.MetricsRegistry()) == ""


def test_write_prom_counts_lines(tmp_path):
    registry = metrics.MetricsRegistry()
    registry.counter("one").inc()
    path = str(tmp_path / "obs.prom")
    assert write_prom(path, registry) == 2  # TYPE header + sample
    with open(path) as f:
        assert f.read() == "# TYPE repro_one counter\nrepro_one 1\n"
