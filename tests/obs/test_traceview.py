"""Stitching multi-process trace records into one tree, and rollups."""

import pytest

from repro.obs.traceview import (
    merge_trace,
    render_rollup,
    render_trace,
    rollup,
    summarize_traces,
)


def _span(sid, parent, name, ms=1.0):
    return {"name": name, "id": sid, "parent": parent,
            "duration_ms": ms}


def _record(proc, origin, spans, parent=None, op="op", ms=10.0,
            ok=True, ts="2026-01-01T00:00:00Z", trace="t"):
    return {
        "kind": "trace_record", "schema": 1, "trace": trace,
        "proc": proc, "origin": origin, "op": op, "unit": None,
        "ms": ms, "ok": ok, "ts": ts, "parent": parent, "spans": spans,
        "notes": {}, "dropped": 0,
    }


def _three_process_trace():
    """client -> daemon -> forked worker, like the trace-smoke battery."""
    client = _record("cli0", "client", [
        _span(1, None, "client.root", 100.0),
        _span(2, 1, "client.query", 60.0),
        _span(3, 1, "client.corpus", 30.0),
    ])
    daemon = _record("dmn0", "daemon", [
        _span(1, None, "serve.request", 50.0),
        _span(2, 1, "compile", 20.0),
    ], parent={"proc": "cli0", "span": 2})
    worker = _record("wrk0", "corpus-worker", [
        _span(7, None, "corpus.shard.worker", 25.0),
    ], parent={"proc": "cli0", "span": 3})
    return [client, daemon, worker]


def test_merge_links_three_processes_under_one_root():
    roots = merge_trace(_three_process_trace())
    assert len(roots) == 1
    root = roots[0]
    assert root.name == "client.root"
    assert not root.detached
    children = {c.name: c for c in root.children}
    assert set(children) == {"client.query", "client.corpus"}
    assert [c.name for c in children["client.query"].children] == \
        ["serve.request"]
    assert [c.name for c in children["client.corpus"].children] == \
        ["corpus.shard.worker"]
    # Process boundaries carry the producing record's identity.
    assert children["client.query"].children[0].proc == "dmn0"
    assert children["client.query"].children[0].origin == "daemon"


def test_missing_remote_parent_surfaces_as_detached_root():
    records = _three_process_trace()[1:]  # client record lost
    roots = merge_trace(records)
    assert len(roots) == 2
    assert all(r.detached for r in roots)
    assert {r.name for r in roots} == {"serve.request",
                                       "corpus.shard.worker"}


def test_duplicate_flush_first_write_wins():
    records = _three_process_trace()
    dupe = dict(records[1])
    dupe["spans"] = [_span(1, None, "serve.request.DUPE", 1.0)]
    roots = merge_trace(records + [dupe])
    names = []

    def walk(node):
        names.append(node.name)
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    assert "serve.request" in names
    assert "serve.request.DUPE" not in names


def test_render_marks_process_boundaries_and_detachment():
    text = render_trace("t", _three_process_trace())
    assert text.startswith(
        "trace t  (3 records, 3 processes: client, corpus-worker, "
        "daemon)")
    assert "[proc=cli0 client]" in text
    assert "[proc=dmn0 daemon]" in text
    assert "(detached)" not in text
    partial = render_trace("t", _three_process_trace()[1:])
    assert "(detached)" in partial


def test_render_empty_trace():
    assert "(no spans recorded)" in render_trace("t", [])


def test_rollup_by_phase_computes_self_time():
    records = [_record("p0", "x", [
        _span(1, None, "outer", 10.0),
        _span(2, 1, "inner", 4.0),
        _span(3, 1, "inner", 3.0),
    ])]
    rows = {row[0]: row for row in rollup(records, by="phase")}
    assert rows["inner"][1] == 2          # count
    assert rows["inner"][2] == pytest.approx(7.0)   # total
    assert rows["inner"][3] == pytest.approx(7.0)   # self
    assert rows["outer"][2] == pytest.approx(10.0)
    assert rows["outer"][3] == pytest.approx(3.0)   # 10 - (4 + 3)
    # Shares sum to 100% of grand self time.
    shares = [float(row[4].rstrip("%")) for row in rows.values()]
    assert sum(shares) == pytest.approx(100.0, abs=0.2)


def test_rollup_by_op_groups_whole_records():
    records = [
        _record("p0", "x", [], op="alias", ms=10.0),
        _record("p0", "x", [], op="alias", ms=20.0),
        _record("p1", "y", [], op="tables", ms=5.0),
    ]
    rows = rollup(records, by="op")
    assert rows[0][:3] == ["alias", 2, 30.0]
    assert rows[1][:3] == ["tables", 1, 5.0]


def test_rollup_rejects_unknown_grouping():
    with pytest.raises(ValueError):
        rollup([], by="nonsense")


def test_render_rollup_table():
    text = render_rollup(_three_process_trace(), by="phase")
    assert "client.root" in text
    assert "self share" in text
    assert render_rollup([], by="phase") == "(no trace records)\n"


def test_summarize_traces_newest_first():
    grouped = {
        "old": [_record("p0", "client", [], ts="2026-01-01", trace="old")],
        "new": [
            _record("p0", "client", [], ts="2026-01-02", trace="new",
                    ms=5.0),
            _record("p1", "daemon", [], ts="2026-01-03", trace="new",
                    ms=9.0, ok=False, op="alias"),
        ],
    }
    summaries = summarize_traces(grouped)
    assert [s["trace"] for s in summaries] == ["new", "old"]
    newest = summaries[0]
    assert newest["records"] == 2
    assert newest["procs"] == 2
    assert newest["origins"] == ["client", "daemon"]
    assert newest["ms"] == 9.0
    assert newest["ok"] is False
