"""Recorder and span semantics: nesting, no-op mode, thread safety."""

import threading

import pytest

from repro.obs import core


@pytest.fixture
def recorder():
    """A private recorder (the process-wide one stays untouched)."""
    return core.Recorder()


def test_disabled_recorder_returns_the_shared_null_span(recorder):
    assert not recorder.is_enabled
    a = recorder.span("parse", unit="x")
    b = recorder.span("typecheck")
    # Identity, not just equality: disabled tracing allocates nothing.
    assert a is core.NULL_SPAN
    assert b is core.NULL_SPAN
    with a as entered:
        assert entered is core.NULL_SPAN
        entered.annotate(ignored=True)  # must be accepted and dropped
    assert recorder.spans() == []


def test_module_level_span_is_null_when_disabled():
    assert not core.enabled()
    assert core.span("anything") is core.NULL_SPAN


def test_nesting_records_parent_child_edges(recorder):
    recorder.enable()
    with recorder.span("root"):
        with recorder.span("child_a"):
            with recorder.span("grandchild"):
                pass
        with recorder.span("child_b"):
            pass
    spans = {s.name: s for s in recorder.spans()}
    assert len(spans) == 4
    root = spans["root"]
    assert root.parent_id is None and root.depth == 0
    assert spans["child_a"].parent_id == root.span_id
    assert spans["child_b"].parent_id == root.span_id
    assert spans["child_a"].depth == spans["child_b"].depth == 1
    assert spans["grandchild"].parent_id == spans["child_a"].span_id
    assert spans["grandchild"].depth == 2
    children = recorder.children_of()
    assert [s.name for s in children[root.span_id]] == ["child_a", "child_b"]
    assert recorder.roots() == [root]


def test_child_durations_are_bounded_by_parent(recorder):
    recorder.enable()
    with recorder.span("outer"):
        with recorder.span("inner"):
            pass
    spans = {s.name: s for s in recorder.spans()}
    assert 0 <= spans["inner"].duration <= spans["outer"].duration


def test_exception_is_recorded_and_propagated(recorder):
    recorder.enable()
    with pytest.raises(ValueError):
        with recorder.span("boom"):
            raise ValueError("no")
    (span,) = recorder.spans()
    assert span.error == "ValueError"
    # The stack must be clean for the next span.
    with recorder.span("after"):
        pass
    assert recorder.spans()[-1].parent_id is None


def test_annotate_attaches_attributes(recorder):
    recorder.enable()
    with recorder.span("fuzz.seed", seed=3) as s:
        s.annotate(failure="TrapMismatch")
    (span,) = recorder.spans()
    assert span.attrs == {"seed": 3, "failure": "TrapMismatch"}


def test_reset_drops_spans_and_restarts_ids(recorder):
    recorder.enable()
    with recorder.span("one"):
        pass
    recorder.reset()
    assert recorder.spans() == []
    with recorder.span("two"):
        pass
    assert recorder.spans()[0].span_id == 1


def test_threaded_spans_nest_per_thread(recorder):
    """Each thread gets its own stack: no cross-thread parent edges."""
    recorder.enable()
    errors = []

    def work(tag):
        try:
            for _ in range(50):
                with recorder.span("outer", tag=tag):
                    with recorder.span("inner", tag=tag):
                        pass
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    spans = recorder.spans()
    assert len(spans) == 4 * 50 * 2
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        if s.name == "inner":
            parent = by_id[s.parent_id]
            assert parent.name == "outer"
            # The parent must come from the same thread's stack.
            assert parent.attrs["tag"] == s.attrs["tag"]
            assert parent.thread == s.thread


def test_span_ids_are_unique_under_concurrency(recorder):
    recorder.enable()

    def work():
        for _ in range(100):
            with recorder.span("s"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    ids = [s.span_id for s in recorder.spans()]
    assert len(ids) == len(set(ids)) == 400
