"""Recorder and span semantics: nesting, no-op mode, thread safety."""

import threading

import pytest

from repro.obs import core


@pytest.fixture
def recorder():
    """A private recorder (the process-wide one stays untouched)."""
    return core.Recorder()


def test_disabled_recorder_returns_the_shared_null_span(recorder):
    assert not recorder.is_enabled
    a = recorder.span("parse", unit="x")
    b = recorder.span("typecheck")
    # Identity, not just equality: disabled tracing allocates nothing.
    assert a is core.NULL_SPAN
    assert b is core.NULL_SPAN
    with a as entered:
        assert entered is core.NULL_SPAN
        entered.annotate(ignored=True)  # must be accepted and dropped
    assert recorder.spans() == []


def test_module_level_span_is_null_when_disabled():
    assert not core.enabled()
    assert core.span("anything") is core.NULL_SPAN


def test_nesting_records_parent_child_edges(recorder):
    recorder.enable()
    with recorder.span("root"):
        with recorder.span("child_a"):
            with recorder.span("grandchild"):
                pass
        with recorder.span("child_b"):
            pass
    spans = {s.name: s for s in recorder.spans()}
    assert len(spans) == 4
    root = spans["root"]
    assert root.parent_id is None and root.depth == 0
    assert spans["child_a"].parent_id == root.span_id
    assert spans["child_b"].parent_id == root.span_id
    assert spans["child_a"].depth == spans["child_b"].depth == 1
    assert spans["grandchild"].parent_id == spans["child_a"].span_id
    assert spans["grandchild"].depth == 2
    children = recorder.children_of()
    assert [s.name for s in children[root.span_id]] == ["child_a", "child_b"]
    assert recorder.roots() == [root]


def test_child_durations_are_bounded_by_parent(recorder):
    recorder.enable()
    with recorder.span("outer"):
        with recorder.span("inner"):
            pass
    spans = {s.name: s for s in recorder.spans()}
    assert 0 <= spans["inner"].duration <= spans["outer"].duration


def test_exception_is_recorded_and_propagated(recorder):
    recorder.enable()
    with pytest.raises(ValueError):
        with recorder.span("boom"):
            raise ValueError("no")
    (span,) = recorder.spans()
    assert span.error == "ValueError"
    # The stack must be clean for the next span.
    with recorder.span("after"):
        pass
    assert recorder.spans()[-1].parent_id is None


def test_annotate_attaches_attributes(recorder):
    recorder.enable()
    with recorder.span("fuzz.seed", seed=3) as s:
        s.annotate(failure="TrapMismatch")
    (span,) = recorder.spans()
    assert span.attrs == {"seed": 3, "failure": "TrapMismatch"}


def test_reset_drops_spans_and_restarts_ids(recorder):
    recorder.enable()
    with recorder.span("one"):
        pass
    recorder.reset()
    assert recorder.spans() == []
    with recorder.span("two"):
        pass
    assert recorder.spans()[0].span_id == 1


def test_threaded_spans_nest_per_thread(recorder):
    """Each thread gets its own stack: no cross-thread parent edges."""
    recorder.enable()
    errors = []

    def work(tag):
        try:
            for _ in range(50):
                with recorder.span("outer", tag=tag):
                    with recorder.span("inner", tag=tag):
                        pass
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    spans = recorder.spans()
    assert len(spans) == 4 * 50 * 2
    by_id = {s.span_id: s for s in spans}
    for s in spans:
        if s.name == "inner":
            parent = by_id[s.parent_id]
            assert parent.name == "outer"
            # The parent must come from the same thread's stack.
            assert parent.attrs["tag"] == s.attrs["tag"]
            assert parent.thread == s.thread


def test_span_ids_are_unique_under_concurrency(recorder):
    recorder.enable()

    def work():
        for _ in range(100):
            with recorder.span("s"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    ids = [s.span_id for s in recorder.spans()]
    assert len(ids) == len(set(ids)) == 400


# ----------------------------------------------------------------------
# Trace scopes across threads: scopes are strictly thread-local, nest
# on one thread, and collect only their own thread's spans.


def test_trace_scopes_nest_and_restore_on_one_thread():
    with core.trace_scope("outer-trace", collect=True) as outer:
        assert core.current_trace() == "outer-trace"
        with core.span("a"):
            pass
        with core.trace_scope("inner-trace", collect=True) as inner:
            assert core.current_trace() == "inner-trace"
            with core.span("b"):
                pass
        # Exiting the inner scope restores the outer one.
        assert core.current_scope() is outer
        with core.span("c"):
            pass
    assert core.current_scope() is None
    assert [s.name for s in outer.spans] == ["a", "c"]
    assert [s.name for s in inner.spans] == ["b"]


def test_trace_scopes_are_thread_local():
    ready = threading.Barrier(2)
    seen = {}

    def work(tag):
        with core.trace_scope("trace-{}".format(tag),
                              collect=True) as scope:
            ready.wait(timeout=10)  # both scopes provably live at once
            with core.span("work", tag=tag):
                pass
            seen[tag] = (core.current_trace(), scope)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert seen[0][0] == "trace-0"
    assert seen[1][0] == "trace-1"
    for tag in (0, 1):
        scope = seen[tag][1]
        assert [s.attrs["tag"] for s in scope.spans] == [tag]
        assert all(s.trace_id == "trace-{}".format(tag)
                   for s in scope.spans)


def test_nested_scopes_on_threads_do_not_leak_into_the_spawner():
    with core.trace_scope("parent-trace", collect=True) as parent:
        result = {}

        def work():
            # A fresh thread starts with no scope, even while the
            # spawning thread's scope is active.
            result["scope"] = core.current_scope()
            with core.trace_scope("child-trace", collect=True) as child:
                with core.span("child-span"):
                    pass
                result["child"] = child

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        with core.span("parent-span"):
            pass
    assert result["scope"] is None
    assert [s.name for s in result["child"].spans] == ["child-span"]
    assert [s.name for s in parent.spans] == ["parent-span"]


def test_reset_inherited_trace_state_clears_scope_and_stack():
    with core.trace_scope("doomed", collect=True):
        span = core.span("open-span")
        span.__enter__()
        assert core.current_span_id() is not None
        core.reset_inherited_trace_state()
        assert core.current_scope() is None
        assert core.current_span_id() is None
        # Restore a scope so the context manager can exit cleanly.
        core._TRACE.scope = core.TraceScope("doomed")
