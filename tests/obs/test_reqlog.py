"""Request journal ring + sampled slow-request access log."""

import json

import pytest

from repro.obs import metrics
from repro.obs.reqlog import (
    ACCESS_LOG_KEYS,
    AccessLog,
    RequestJournal,
    RequestRecord,
    validate_access_line,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    metrics.registry().reset()
    yield
    metrics.registry().reset()


def make_record(op="alias", trace="t-1", ms=1.5, ok=True, error=None,
                cache="hit", ts=1000.0):
    return RequestRecord(op=op, trace_id=trace, unit="smoke", ms=ms,
                        ok=ok, error_kind=error, cache=cache, ts=ts)


def test_record_json_schema_matches_access_log_keys():
    obj = dict(make_record().to_json(), slow=True)
    assert set(obj) == set(ACCESS_LOG_KEYS)


def test_journal_is_a_bounded_newest_first_ring():
    journal = RequestJournal(size=3)
    for i in range(5):
        journal.record(make_record(trace="t-{}".format(i)))
    assert journal.total == 5  # evictions still counted
    recent = journal.recent()
    assert [r.trace_id for r in recent] == ["t-4", "t-3", "t-2"]
    assert [r.trace_id for r in journal.recent(limit=1)] == ["t-4"]


def test_journal_snapshot_payload():
    journal = RequestJournal(size=8)
    journal.record(make_record(ok=False, error="compile", cache=None))
    snap = journal.snapshot()
    assert snap["total"] == 1
    (entry,) = snap["requests"]
    assert entry["error"] == "compile"
    assert entry["ok"] is False
    assert entry["cache"] is None
    assert entry["trace"] == "t-1"


def test_access_log_skips_fast_requests(tmp_path):
    log = AccessLog(str(tmp_path / "access.jsonl"), slow_ms=10.0)
    assert log.maybe_log(make_record(ms=9.99)) is False
    assert not (tmp_path / "access.jsonl").exists()


def test_access_log_writes_validated_slow_lines(tmp_path):
    path = tmp_path / "access.jsonl"
    log = AccessLog(str(path), slow_ms=10.0)
    assert log.maybe_log(make_record(ms=25.0)) is True
    (line,) = path.read_text().splitlines()
    obj = validate_access_line(line)
    assert obj["slow"] is True
    assert obj["ms"] == 25.0
    assert obj["trace"] == "t-1"
    assert metrics.registry().counter("serve.accesslog.lines").value == 1


def test_access_log_sampling_is_deterministic_every_nth(tmp_path):
    path = tmp_path / "access.jsonl"
    log = AccessLog(str(path), slow_ms=0.0, sample=3)
    written = [log.maybe_log(make_record(trace="t-{}".format(i)))
               for i in range(7)]
    assert written == [True, False, False, True, False, False, True]
    traces = [json.loads(line)["trace"]
              for line in path.read_text().splitlines()]
    assert traces == ["t-0", "t-3", "t-6"]
    assert metrics.registry().counter(
        "serve.accesslog.sampled_out").value == 4


def test_access_log_write_failure_never_raises(tmp_path):
    # Pointing the log at a directory makes every append an OSError.
    log = AccessLog(str(tmp_path), slow_ms=0.0)
    assert log.maybe_log(make_record()) is False
    assert metrics.registry().counter("serve.accesslog.errors").value == 1


def test_validate_access_line_rejects_bad_lines():
    good = json.dumps(dict(make_record().to_json(), slow=True))
    validate_access_line(good)
    with pytest.raises(ValueError, match="not JSON"):
        validate_access_line("{torn")
    with pytest.raises(ValueError, match="JSON object"):
        validate_access_line("[1, 2]")
    with pytest.raises(ValueError, match="missing keys"):
        validate_access_line("{}")
    broken = dict(make_record().to_json(), slow=True, trace="")
    with pytest.raises(ValueError, match="trace"):
        validate_access_line(json.dumps(broken))
    not_slow = dict(make_record().to_json(), slow=False)
    with pytest.raises(ValueError, match="slow"):
        validate_access_line(json.dumps(not_slow))
