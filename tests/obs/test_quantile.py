"""Streaming P² quantile estimation backing the /v1/metrics gauges."""

import random
import threading

import pytest

from repro.obs.quantile import DEFAULT_QUANTILES, P2Quantile, QuantileSet


def _exact(values, q):
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def test_rejects_degenerate_quantiles():
    for q in (0.0, 1.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            P2Quantile(q)


def test_empty_estimator_has_no_value():
    assert P2Quantile(0.5).value() is None


def test_exact_below_five_observations():
    est = P2Quantile(0.5)
    for value in (5.0, 1.0, 3.0):
        est.observe(value)
    assert est.value() == 3.0  # exact median of {1, 3, 5}
    est.observe(7.0)
    assert est.value() == pytest.approx(4.0)  # interpolated


def test_tracks_uniform_stream_closely():
    rng = random.Random(7)
    values = [rng.uniform(0.0, 100.0) for _ in range(5000)]
    for q in DEFAULT_QUANTILES:
        est = P2Quantile(q)
        for value in values:
            est.observe(value)
        # Uniform spread 100: a couple of percent of the range is ample
        # for dashboard latency gauges.
        assert est.value() == pytest.approx(_exact(values, q), abs=3.0)


def test_tracks_long_tailed_stream():
    rng = random.Random(11)
    values = [rng.lognormvariate(0.0, 1.0) for _ in range(20000)]
    est = P2Quantile(0.99)
    for value in values:
        est.observe(value)
    exact = _exact(values, 0.99)
    assert est.value() == pytest.approx(exact, rel=0.15)


def test_estimates_are_ordered_across_quantiles():
    rng = random.Random(3)
    qs = QuantileSet()
    for _ in range(2000):
        qs.observe(rng.expovariate(0.1))
    snap = qs.snapshot()
    assert snap[0.5] <= snap[0.95] <= snap[0.99]
    assert qs.count == 2000


def test_quantile_set_empty_snapshot():
    qs = QuantileSet()
    assert qs.snapshot() == {0.5: None, 0.95: None, 0.99: None}
    assert qs.count == 0


def test_quantile_set_is_thread_safe():
    qs = QuantileSet()
    n_threads, per_thread = 8, 500

    def hammer(seed):
        rng = random.Random(seed)
        for _ in range(per_thread):
            qs.observe(rng.uniform(0.0, 10.0))

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert qs.count == n_threads * per_thread
    snap = qs.snapshot()
    assert all(0.0 <= v <= 10.0 for v in snap.values())


# ----------------------------------------------------------------------
# Adversarial streams: orderings and shapes that stress the P² marker
# dynamics (DESIGN.md §6k test battery).  Error is judged against the
# exact quantile of the same stream.


def _p2_error(values, q):
    est = P2Quantile(q)
    for value in values:
        est.observe(value)
    return abs(est.value() - _exact(values, q))


def test_sorted_ascending_stream():
    values = [float(i) for i in range(2000)]
    for q in DEFAULT_QUANTILES:
        # Range 0..1999: stay within a few percent of the range.
        assert _p2_error(values, q) <= 60.0


def test_sorted_descending_stream():
    values = [float(i) for i in range(2000, 0, -1)]
    for q in DEFAULT_QUANTILES:
        assert _p2_error(values, q) <= 60.0


def test_constant_stream_is_exact():
    values = [42.0] * 1000
    for q in DEFAULT_QUANTILES:
        est = P2Quantile(q)
        for value in values:
            est.observe(value)
        assert est.value() == pytest.approx(42.0)


def test_two_cluster_stream():
    # Bimodal latency (fast cache hits vs slow cold compiles) is the
    # shape serving actually produces; the p50/p95 must land in or
    # between the clusters, not outside them.
    rng = random.Random(11)
    values = [rng.uniform(1.0, 2.0) for _ in range(1500)] + \
             [rng.uniform(100.0, 110.0) for _ in range(500)]
    rng.shuffle(values)
    for q in DEFAULT_QUANTILES:
        est = P2Quantile(q)
        for value in values:
            est.observe(value)
        assert 1.0 <= est.value() <= 110.0
    # p50 sits in the fast cluster (75% of mass), p99 in the slow one.
    p50 = P2Quantile(0.5)
    p99 = P2Quantile(0.99)
    for value in values:
        p50.observe(value)
        p99.observe(value)
    assert p50.value() == pytest.approx(_exact(values, 0.5), abs=2.0)
    assert p99.value() == pytest.approx(_exact(values, 0.99), abs=8.0)


def test_interleaved_extremes_stream():
    # Alternating tiny/huge observations thrash the outer markers.
    values = []
    for i in range(1000):
        values.append(0.001 if i % 2 == 0 else 1000.0)
    est = P2Quantile(0.5)
    for value in values:
        est.observe(value)
    assert 0.001 <= est.value() <= 1000.0
