"""Phase-tree rendering, the tree-sum check, and the counter table."""

import pytest

from repro.obs import core, metrics
from repro.obs.profile import render_counter_table, render_phase_tree, tree_check


def build_recorder(durations):
    """A recorder holding root->children spans with fixed durations.

    ``durations`` maps ``root`` and child names to seconds; durations
    are overwritten after recording so the assertions are deterministic.
    """
    recorder = core.Recorder()
    recorder.enable()
    with recorder.span("root", target="t"):
        for name in durations:
            if name == "root":
                continue
            with recorder.span(name):
                pass
    for span in recorder.spans():
        span.duration = durations[span.name]
    return recorder


def test_empty_recorder_renders_placeholder():
    assert render_phase_tree(core.Recorder()) == "(no spans recorded)"


def test_tree_lines_show_time_share_and_attrs():
    recorder = build_recorder({"root": 0.100, "parse": 0.060, "lower": 0.039})
    text = render_phase_tree(recorder)
    lines = text.splitlines()
    assert lines[0].startswith("root")
    assert "100.0%" in lines[0]
    assert "[target=t]" in lines[0]
    assert lines[1].strip().startswith("parse")
    assert "60.0%" in lines[1]
    # Children cover 99% of the root: no (unaccounted) line.
    assert "(unaccounted)" not in text


def test_unaccounted_gap_gets_a_line():
    recorder = build_recorder({"root": 0.100, "parse": 0.050})
    text = render_phase_tree(recorder)
    assert "(unaccounted)" in text
    assert "50.0%" in text


def test_tree_check_passes_when_children_fit():
    recorder = build_recorder({"root": 0.100, "parse": 0.060, "lower": 0.039})
    tree_check(recorder)  # must not raise


def test_tree_check_fails_on_impossible_children():
    recorder = build_recorder({"root": 0.010, "parse": 0.900})
    with pytest.raises(AssertionError, match="children of span 'root'"):
        tree_check(recorder, tolerance=0.25)


def test_counter_table_sorts_by_value_and_respects_top():
    registry = metrics.MetricsRegistry()
    registry.counter("small").inc(1)
    registry.counter("big", analysis="TypeDecl").inc(100)
    registry.gauge("middle").set(50)
    text = render_counter_table(registry, top=2)
    assert "big" in text and "middle" in text
    assert "small" not in text
    assert text.index("big") < text.index("middle")
    assert "analysis=TypeDecl" in text


def test_counter_table_empty_registry():
    assert render_counter_table(metrics.MetricsRegistry()) == \
        "(no metrics recorded)"
