"""JSONL trace schema: golden layout, writer/validator round trip."""

import json

import pytest

from repro.obs import core, metrics
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    trace_lines,
    validate_file,
    validate_line,
    validate_lines,
    write_trace,
)


@pytest.fixture
def recorded():
    """A private recorder+registry holding one tiny recorded run."""
    recorder = core.Recorder()
    registry = metrics.MetricsRegistry()
    recorder.enable()
    with recorder.span("compile", unit="t.m3"):
        with recorder.span("lang.parse", bytes=12):
            pass
    registry.counter("alias.cache.hits", analysis="TypeDecl").inc(5)
    registry.gauge("smtyperefs.groups").set(3)
    registry.histogram("steensgaard.group.size", buckets=(1.0, 2.0)).observe(2)
    return recorder, registry


def test_golden_line_layout(recorded):
    """Pin the exact key sets; a layout change must bump the schema."""
    recorder, registry = recorded
    lines = list(trace_lines(recorder, registry))
    assert [l["kind"] for l in lines] == [
        "meta", "span", "span", "counter", "gauge", "histogram"]
    meta, root, child, counter, gauge, histogram = lines
    assert meta == {"schema": 1, "kind": "meta", "tool": "repro",
                    "trace_schema": 1}
    assert set(root) == {"schema", "kind", "name", "id", "parent", "depth",
                         "start_ms", "duration_ms", "thread", "attrs",
                         "error"}
    assert root["name"] == "compile" and root["parent"] is None
    assert child["name"] == "lang.parse" and child["parent"] == root["id"]
    assert child["attrs"] == {"bytes": 12}
    assert set(counter) == {"schema", "kind", "name", "labels", "value"}
    assert counter["value"] == 5
    assert gauge["value"] == 3
    assert set(histogram) == {"schema", "kind", "name", "labels", "buckets",
                              "bucket_counts", "count", "sum", "min", "max"}
    assert histogram["bucket_counts"] == [0, 1, 0]


def test_every_line_is_json_serialisable(recorded):
    recorder, registry = recorded
    for line in trace_lines(recorder, registry):
        validate_line(json.loads(json.dumps(line)))


def test_write_and_validate_file_round_trip(recorded, tmp_path):
    recorder, registry = recorded
    path = str(tmp_path / "trace.jsonl")
    n = write_trace(path, recorder, registry)
    assert n == 6
    assert validate_file(path) == 6


def test_validator_rejects_bad_schema_version():
    with pytest.raises(ValueError, match="schema"):
        validate_line({"schema": 99, "kind": "meta", "tool": "repro",
                       "trace_schema": 99})


def test_validator_rejects_unknown_kind():
    with pytest.raises(ValueError, match="kind"):
        validate_line({"schema": TRACE_SCHEMA_VERSION, "kind": "event"})


def test_validator_rejects_missing_keys():
    with pytest.raises(ValueError, match="missing key"):
        validate_line({"schema": TRACE_SCHEMA_VERSION, "kind": "counter",
                       "name": "x", "labels": {}})


def test_validator_requires_meta_first(recorded):
    recorder, registry = recorded
    lines = list(trace_lines(recorder, registry))
    with pytest.raises(ValueError, match="meta"):
        validate_lines(lines[1:])
    with pytest.raises(ValueError, match="duplicate meta"):
        validate_lines([lines[0], lines[0]])


def test_validator_requires_parent_before_child(recorded):
    recorder, registry = recorded
    lines = list(trace_lines(recorder, registry))
    swapped = [lines[0], lines[2], lines[1]]  # child before its parent
    with pytest.raises(ValueError, match="unknown parent"):
        validate_lines(swapped)


def test_validator_rejects_empty_trace():
    with pytest.raises(ValueError, match="empty"):
        validate_lines([])


def test_trace_cli_main(recorded, tmp_path, capsys):
    from repro.obs import trace as trace_mod

    recorder, registry = recorded
    good = str(tmp_path / "good.jsonl")
    write_trace(good, recorder, registry)
    bad = str(tmp_path / "bad.jsonl")
    with open(bad, "w") as f:
        f.write("{not json\n")
    assert trace_mod.main([good]) == 0
    assert "ok (6 lines" in capsys.readouterr().out
    assert trace_mod.main([good, bad]) == 1
    captured = capsys.readouterr()
    assert "INVALID" in captured.err


# ----------------------------------------------------------------------
# Malformed trace *files* through the validator entry points


def written_trace(recorded, tmp_path):
    recorder, registry = recorded
    path = tmp_path / "trace.jsonl"
    write_trace(str(path), recorder, registry)
    return path


def test_validate_file_rejects_truncated_jsonl(recorded, tmp_path):
    path = written_trace(recorded, tmp_path)
    lines = path.read_text().splitlines()
    # Chop the last line mid-object, as a killed writer would leave it.
    path.write_text("\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]))
    with pytest.raises(ValueError, match=r"trace\.jsonl:6: not JSON"):
        validate_file(str(path))


def test_validate_file_rejects_missing_meta_line(recorded, tmp_path):
    path = written_trace(recorded, tmp_path)
    lines = path.read_text().splitlines()
    path.write_text("\n".join(lines[1:]) + "\n")
    with pytest.raises(ValueError, match="meta"):
        validate_file(str(path))


def test_validate_file_rejects_unknown_schema_version(recorded, tmp_path):
    path = written_trace(recorded, tmp_path)
    lines = path.read_text().splitlines()
    meta = json.loads(lines[0])
    meta["schema"] = meta["trace_schema"] = TRACE_SCHEMA_VERSION + 1
    path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
    with pytest.raises(ValueError, match="schema"):
        validate_file(str(path))


def test_trace_cli_reports_malformed_files(recorded, tmp_path, capsys):
    from repro.obs import trace as trace_mod

    truncated = written_trace(recorded, tmp_path)
    text = truncated.read_text()
    truncated.write_text(text[: len(text) - 10])
    no_meta = tmp_path / "no_meta.jsonl"
    no_meta.write_text(text.split("\n", 1)[1])
    assert trace_mod.main([str(truncated), str(no_meta)]) == 1
    err = capsys.readouterr().err
    assert err.count("INVALID") == 2
