"""Metric primitives and registry aggregation semantics."""

import threading

import pytest

from repro.obs import metrics


@pytest.fixture
def registry():
    """A private registry (the process-wide one stays untouched)."""
    return metrics.MetricsRegistry()


def test_counter_inc_and_reset(registry):
    c = registry.counter("q.total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    c.reset()
    assert c.value == 0


def test_shared_counter_is_get_or_create(registry):
    a = registry.counter("hits", analysis="TypeDecl")
    b = registry.counter("hits", analysis="TypeDecl")
    c = registry.counter("hits", analysis="FieldTypeDecl")
    assert a is b
    assert a is not c


def test_child_counters_aggregate_in_snapshot(registry):
    a = registry.new_counter("hits", analysis="TypeDecl")
    b = registry.new_counter("hits", analysis="TypeDecl")
    a.inc(3)
    b.inc(4)
    (entry,) = registry.snapshot()
    assert entry["kind"] == "counter"
    assert entry["name"] == "hits"
    assert entry["labels"] == {"analysis": "TypeDecl"}
    assert entry["value"] == 7


def test_kind_conflict_is_rejected(registry):
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_gauge_set_and_last_write_wins(registry):
    old = registry.new_gauge("groups")
    new = registry.new_gauge("groups")
    old.set(10)
    new.set(3)
    (entry,) = registry.snapshot()
    assert entry["value"] == 3  # most recently allocated child wins


def test_histogram_buckets_and_merge(registry):
    h1 = registry.new_histogram("sizes", buckets=(1.0, 10.0))
    h2 = registry.new_histogram("sizes", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 100.0):
        h1.observe(v)
    h2.observe(1.0)  # boundary lands in the first bucket (le semantics)
    (entry,) = registry.snapshot()
    assert entry["buckets"] == [1.0, 10.0]
    assert entry["bucket_counts"] == [2, 1, 1]
    assert entry["count"] == 4
    assert entry["sum"] == pytest.approx(106.5)
    assert entry["min"] == 0.5 and entry["max"] == 100.0


def test_registry_reset_zeroes_in_place(registry):
    c = registry.new_counter("hits")
    c.inc(9)
    registry.reset()
    # Owners keep their reference; the object itself is zeroed.
    assert c.value == 0
    c.inc()
    (entry,) = registry.snapshot()
    assert entry["value"] == 1


def test_snapshot_is_sorted_and_lists_names(registry):
    registry.counter("b.second")
    registry.counter("a.first", k="2")
    registry.counter("a.first", k="1")
    names = [(e["name"], e["labels"]) for e in registry.snapshot()]
    assert names == [("a.first", {"k": "1"}), ("a.first", {"k": "2"}),
                     ("b.second", {})]
    assert registry.names() == ["a.first", "b.second"]


def test_counter_inc_is_thread_safe(registry):
    c = registry.counter("contended")

    def work():
        for _ in range(10_000):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 40_000


def test_label_values_are_stringified(registry):
    c = registry.counter("labelled", open_world=False, n=3)
    (entry,) = registry.snapshot()
    assert entry["labels"] == {"open_world": "False", "n": "3"}
    assert c.labels == (("n", "3"), ("open_world", "False"))
