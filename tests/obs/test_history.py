"""Benchmark-run ledger: record collection, schema validation, selection."""

import json

import pytest

from repro.obs import core, metrics
from repro.obs import history
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    HOST_KEYS,
    RECORD_KIND,
    REQUIRED_KEYS,
    SUITE_BUCKET,
    append_record,
    collect_record,
    counter_values,
    host_fingerprint,
    phase_seconds,
    read_history,
    resolve_selection,
    select_records,
    validate_file,
    validate_record,
)


@pytest.fixture
def recorded():
    """A private recorder+registry with two attributed benchmark runs."""
    recorder = core.Recorder()
    registry = metrics.MetricsRegistry()
    recorder.enable()
    with recorder.span("bench.run", program="write-pickle"):
        with recorder.span("run.interp", module="WritePickle"):
            pass
        with recorder.span("run.cachesim"):
            pass
    with recorder.span("bench.run", program="write-pickle"):
        pass
    with recorder.span("quick.table5"):
        pass
    registry.counter("run.interp.instructions").inc(100)
    registry.counter("limit.category", category="Rest").inc(3)
    registry.histogram("steensgaard.group.size", buckets=(1.0,)).observe(2)
    return recorder, registry


def make_record(recorded, **overrides):
    recorder, registry = recorded
    record = collect_record("bench", recorder=recorder, registry=registry,
                            sha="a" * 40, timestamp="2026-08-05T00:00:00Z")
    record.update(overrides)
    return record


# ----------------------------------------------------------------------
# Phase bucketing and counter flattening


def test_phase_seconds_buckets_by_nearest_program(recorded):
    recorder, _ = recorded
    phases = phase_seconds(recorder)
    # Child spans without their own ``program`` attr inherit the
    # ancestor's benchmark bucket; unattributed roots land in (suite).
    assert set(phases) == {"write-pickle", SUITE_BUCKET}
    assert set(phases["write-pickle"]) == {
        "bench.run", "run.interp", "run.cachesim"}
    assert set(phases[SUITE_BUCKET]) == {"quick.table5"}


def test_phase_seconds_sums_repeated_spans(recorded):
    recorder, _ = recorded
    spans = [s for s in recorder.spans() if s.name == "bench.run"]
    assert len(spans) == 2
    phases = phase_seconds(recorder)
    total = sum(s.duration for s in spans)
    assert phases["write-pickle"]["bench.run"] == pytest.approx(
        total, abs=1e-6)


def test_counter_values_flatten_labels_and_histograms(recorded):
    _, registry = recorded
    values = counter_values(registry)
    assert values["run.interp.instructions"] == 100
    assert values["limit.category{category=Rest}"] == 3
    assert values["steensgaard.group.size:count"] == 1


# ----------------------------------------------------------------------
# Record collection and the append/read round trip


def test_collect_record_layout(recorded):
    record = make_record(recorded)
    assert set(REQUIRED_KEYS) <= set(record)
    assert record["schema"] == HISTORY_SCHEMA_VERSION
    assert record["kind"] == RECORD_KIND
    assert record["git_sha"] == "a" * 40
    assert set(HOST_KEYS) <= set(record["host"])
    validate_record(record)


def test_collect_record_merges_extra_phases(recorded):
    recorder, registry = recorded
    record = collect_record(
        "bench-quick", recorder=recorder, registry=registry,
        extra_phases={"m3cg": {"quick.query.TypeDecl": 0.5},
                      SUITE_BUCKET: {"quick.table5": 0.25}})
    assert record["phases"]["m3cg"]["quick.query.TypeDecl"] == 0.5
    # Merged series add to span-derived ones rather than replacing them.
    assert record["phases"][SUITE_BUCKET]["quick.table5"] >= 0.25


def test_host_fingerprint_carries_required_keys():
    host = host_fingerprint()
    for key in HOST_KEYS:
        assert key in host
    assert host["cpu_count"] >= 1


def test_append_and_read_round_trip(recorded, tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_record(path, make_record(recorded))
    append_record(path, make_record(recorded, git_sha="b" * 40))
    records = read_history(path)
    assert len(records) == 2
    assert validate_file(path) == 2
    assert records[1]["git_sha"] == "b" * 40


def test_append_refuses_invalid_record(recorded, tmp_path):
    path = str(tmp_path / "hist.jsonl")
    with pytest.raises(ValueError, match="schema"):
        append_record(path, make_record(recorded, schema=99))
    assert not (tmp_path / "hist.jsonl").exists()


# ----------------------------------------------------------------------
# Validation errors


@pytest.mark.parametrize("mutate,match", [
    ({"schema": 99}, "unknown schema version"),
    ({"kind": "trace"}, "unknown record kind"),
    ({"label": ""}, "label"),
    ({"git_sha": 5}, "git_sha"),
    ({"timestamp_utc": "yesterday"}, "timestamp_utc"),
    ({"host": []}, "host"),
    ({"host": {"python": "3"}}, "host fingerprint missing"),
    ({"phases": {"b": {"p": -1.0}}}, "non-negative"),
    ({"phases": {"b": [1.0]}}, "must be an object"),
    ({"counters": {"c": "many"}}, "numeric"),
])
def test_validate_record_rejects(recorded, mutate, match):
    record = make_record(recorded, **mutate)
    with pytest.raises(ValueError, match=match):
        validate_record(record)


def test_validate_record_rejects_missing_key(recorded):
    record = make_record(recorded)
    del record["phases"]
    with pytest.raises(ValueError, match="missing key"):
        validate_record(record)


def test_validate_record_rejects_non_object():
    with pytest.raises(ValueError, match="not an object"):
        validate_record([1, 2])


def test_read_history_skips_torn_lines_with_warning(recorded, tmp_path):
    # A line that is not JSON is a *torn append* — the artifact of a
    # writer dying mid-write — and must never wedge compare/gate: it is
    # skipped, warned about, and counted.
    metrics.registry().reset()
    path = str(tmp_path / "hist.jsonl")
    append_record(path, make_record(recorded))
    with open(path, "a") as f:
        f.write("{truncated\n")
    append_record(path, make_record(recorded))
    records = read_history(path)
    assert len(records) == 2
    assert metrics.registry().counter("obs.history.torn_skipped").value == 1


def test_read_history_strict_mode_reports_path_and_line(recorded, tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_record(path, make_record(recorded))
    with open(path, "a") as f:
        f.write("{truncated\n")
    with pytest.raises(ValueError, match=r"hist\.jsonl:2: not JSON"):
        read_history(path, skip_torn=False)


def test_read_history_still_rejects_schema_corruption(recorded, tmp_path):
    # A line that *decodes* but fails validation is corruption, not
    # tearing: silently dropping it would hide real damage.
    path = str(tmp_path / "hist.jsonl")
    append_record(path, make_record(recorded))
    with open(path, "a") as f:
        f.write(json.dumps({"schema": 999}) + "\n")
    with pytest.raises(ValueError, match=r"hist\.jsonl:2: "):
        read_history(path)


def test_append_record_torn_by_chaos_is_skipped_on_read(recorded, tmp_path):
    from repro.qa import chaos

    metrics.registry().reset()
    path = str(tmp_path / "hist.jsonl")
    plan = chaos.FaultPlan(rules=(
        chaos.FaultRule("history.append", after=1, times=1),))
    with chaos.armed(plan):
        append_record(path, make_record(recorded))
        append_record(path, make_record(recorded))  # torn mid-line
        append_record(path, make_record(recorded))
    registry = metrics.registry()
    assert registry.counter("obs.history.torn_writes").value == 1
    assert len(read_history(path)) == 2
    assert registry.counter("obs.history.torn_skipped").value == 1
    assert validate_file(path) == 2


def test_read_history_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("\n\n")
    with pytest.raises(ValueError, match="empty history"):
        read_history(str(path))


# ----------------------------------------------------------------------
# Selection


def test_select_latest_takes_trailing_same_sha_run(recorded):
    records = [
        make_record(recorded, git_sha="a" * 40),
        make_record(recorded, git_sha="b" * 40),
        make_record(recorded, git_sha="b" * 40),
    ]
    chosen = select_records(records, "latest")
    assert len(chosen) == 2
    assert all(r["git_sha"] == "b" * 40 for r in chosen)


def test_select_by_sha_prefix(recorded):
    records = [make_record(recorded, git_sha="a" * 40),
               make_record(recorded, git_sha="b" * 40)]
    assert select_records(records, "aaaa") == [records[0]]
    with pytest.raises(ValueError, match="no history records match"):
        select_records(records, "ffff")


def test_resolve_selection_prefers_ledger_files(recorded, tmp_path):
    path = str(tmp_path / "base.jsonl")
    append_record(path, make_record(recorded, git_sha="c" * 40))
    chosen = resolve_selection(path, history_path=str(tmp_path / "none"))
    assert len(chosen) == 1 and chosen[0]["git_sha"] == "c" * 40


def test_resolve_selection_latest_from_history_file(recorded, tmp_path):
    path = str(tmp_path / "hist.jsonl")
    append_record(path, make_record(recorded))
    assert len(resolve_selection("latest", path)) == 1


# ----------------------------------------------------------------------
# Validator CLI (mirrors python -m repro.obs.trace)


def test_history_cli_ok_and_invalid(recorded, tmp_path, capsys):
    good = str(tmp_path / "good.jsonl")
    append_record(good, make_record(recorded))
    bad = str(tmp_path / "bad.jsonl")
    with open(bad, "w") as f:
        f.write(json.dumps({"schema": 99}) + "\n")
    missing = str(tmp_path / "missing.jsonl")
    assert history.main([good]) == 0
    assert "ok (1 records, schema 1)" in capsys.readouterr().out
    assert history.main([good, bad, missing]) == 1
    captured = capsys.readouterr()
    assert "ok (1 records" in captured.out
    assert captured.err.count("INVALID") == 2
