"""Deterministic head sampling and the cross-process trace context."""

import pytest

from repro.obs import core as obs
from repro.obs import sampler


def test_context_header_round_trip():
    ctx = sampler.TraceContext("trace-a", "deadbeef", 42, True)
    parsed = sampler.TraceContext.parse(ctx.header())
    assert parsed == ctx
    assert parsed.trace_id == "trace-a"
    assert parsed.proc == "deadbeef"
    assert parsed.span_id == 42
    assert parsed.sampled is True


def test_context_trace_id_may_contain_dashes():
    ctx = sampler.TraceContext("a-b-c-d", "p0", None, False)
    parsed = sampler.TraceContext.parse(ctx.header())
    assert parsed.trace_id == "a-b-c-d"
    assert parsed.span_id is None
    assert parsed.sampled is False


def test_context_zero_span_means_no_parent_span():
    parsed = sampler.TraceContext.parse("t-p-0-01")
    assert parsed.span_id is None


@pytest.mark.parametrize("header", [
    "",                      # nothing
    "t-p-1",                 # too few fields
    "t-p-xyz-01",            # span not hex
    "t-p-1-02",              # bad flag
    "t-p-1-0",               # flag wrong width
    "--1-01",                # empty trace and proc
])
def test_context_parse_rejects_malformed(header):
    with pytest.raises(ValueError):
        sampler.TraceContext.parse(header)


def test_context_rejects_non_string():
    with pytest.raises(ValueError):
        sampler.TraceContext.parse(12)


def test_sampler_rejects_out_of_range_rates():
    for rate in (-0.1, 1.1):
        with pytest.raises(ValueError):
            sampler.HeadSampler(rate)


def test_sampler_extremes_short_circuit():
    assert sampler.HeadSampler(1.0).decide("anything") is True
    assert sampler.HeadSampler(0.0).decide("anything") is False


def test_sampler_is_deterministic_per_trace_id():
    a = sampler.HeadSampler(0.5)
    b = sampler.HeadSampler(0.5)
    ids = ["trace-{}".format(i) for i in range(200)]
    assert [a.decide(t) for t in ids] == [b.decide(t) for t in ids]


def test_sampler_rate_is_roughly_honoured():
    ids = ["trace-{}".format(i) for i in range(2000)]
    hits = sum(sampler.HeadSampler(0.25).decide(t) for t in ids)
    assert 0.18 * len(ids) < hits < 0.32 * len(ids)


def test_sampler_salt_rotates_the_sampled_set():
    ids = ["trace-{}".format(i) for i in range(500)]
    base = [sampler.HeadSampler(0.5, salt=0).decide(t) for t in ids]
    salted = [sampler.HeadSampler(0.5, salt=1).decide(t) for t in ids]
    assert base != salted


def test_proc_id_is_stable_within_a_process():
    assert sampler.proc_id() == sampler.proc_id()
    assert len(sampler.proc_id()) == 8
    assert "-" not in sampler.proc_id()


def test_proc_id_reminted_after_fork(monkeypatch):
    # Simulate fork by faking a pid change: the cached token must be
    # discarded so pool workers never share the parent's identity.
    first = sampler.proc_id()
    monkeypatch.setattr(sampler.os, "getpid",
                        lambda: sampler._PROC_PID + 1)
    second = sampler.proc_id()
    assert second != first


def test_current_context_outside_scope_is_none():
    assert sampler.current_context() is None


def test_current_context_carries_open_span_and_collect_flag():
    with obs.trace_scope("ctx-trace", collect=True):
        outer = sampler.current_context()
        assert outer.trace_id == "ctx-trace"
        assert outer.sampled is True
        assert outer.span_id is None  # no open span yet
        with obs.span("phase.one") as live:
            inner = sampler.current_context()
            assert inner.span_id == live.span_id
    assert sampler.current_context() is None


def test_export_and_read_back_env_round_trip():
    env = {}
    ctx = sampler.TraceContext("t", "p0", 7, True)
    sampler.export_context(ctx, env=env, store_dir="/tmp/store")
    assert env[sampler.TRACEPARENT_ENV] == ctx.header()
    assert env[sampler.TRACE_STORE_ENV] == "/tmp/store"
    assert sampler.context_from_env(env) == ctx
    sampler.clear_env_context(env)
    assert env == {}
    assert sampler.context_from_env(env) is None


def test_context_from_env_swallows_garbage():
    env = {sampler.TRACEPARENT_ENV: "not a header"}
    assert sampler.context_from_env(env) is None
