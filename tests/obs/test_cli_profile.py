"""End-to-end `repro profile` / `--trace` through the CLI entry point."""

import pytest

from repro.cli import main
from repro.obs import core, log
from repro.obs.trace import validate_file

SOURCE = """
MODULE Tiny;
TYPE T = OBJECT f: T; END;
VAR t: T;
BEGIN
  t := NEW (T, f := NEW (T));
  IF t.f # NIL THEN t.f := NIL; END;
END Tiny.
"""


@pytest.fixture(autouse=True)
def clean_obs_state():
    yield
    core.disable()
    core.reset()
    log.set_level(log.NORMAL)


@pytest.fixture
def tiny(tmp_path):
    path = tmp_path / "tiny.m3"
    path.write_text(SOURCE)
    return str(path)


def test_profile_prints_tree_and_counters(tiny, capsys):
    assert main(["profile", tiny, "--check"]) == 0
    out = capsys.readouterr().out
    assert "profile" in out.splitlines()[0]
    assert "load" in out and "optimize" in out
    assert "lang.parse" in out
    assert "alias.cache" in out
    assert "100.0%" in out
    # The recorder must be switched off again afterwards.
    assert not core.enabled()


def test_profile_accepts_registry_benchmark_name(capsys):
    assert main(["profile", "slisp", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "profile: slisp" in out
    assert "Top 3 metrics" in out


def test_profile_run_flag_adds_execute_phase(tiny, capsys):
    assert main(["profile", tiny, "--run"]) == 0
    assert "execute" in capsys.readouterr().out


def test_trace_flag_writes_valid_jsonl(tiny, tmp_path, capsys):
    trace = str(tmp_path / "out.jsonl")
    assert main(["alias", tiny, "--trace", trace]) == 0
    assert validate_file(trace) > 1
    assert "trace: wrote" in capsys.readouterr().err
    assert not core.enabled()


def test_trace_flag_flushes_even_on_failure(tmp_path, capsys):
    trace = str(tmp_path / "out.jsonl")
    missing = str(tmp_path / "missing.m3")
    assert main(["alias", missing, "--trace", trace]) == 1
    # The bulkhead still flushed a (meta-only) trace.
    assert validate_file(trace) >= 1


def test_quiet_flag_suppresses_trace_note(tiny, tmp_path, capsys):
    trace = str(tmp_path / "out.jsonl")
    assert main(["-q", "alias", tiny, "--trace", trace]) == 0
    assert "trace: wrote" not in capsys.readouterr().err
    assert validate_file(trace) > 1


def test_profile_limit_flag_adds_limit_phases(tiny, capsys):
    assert main(["profile", tiny, "--run", "--limit", "--check"]) == 0
    out = capsys.readouterr().out
    assert "execute" in out and "run.interp" in out
    assert "limit.replay" in out and "limit.classify" in out


def test_profile_check_tol_is_configurable(tiny, capsys):
    # An absurdly generous tolerance must always pass ...
    assert main(["profile", tiny, "--check", "--check-tol", "10.0"]) == 0
    # ... and the flag reaches tree_check: a *negative* tolerance makes
    # every parent/child sum violate the bound.
    with pytest.raises(AssertionError):
        main(["profile", tiny, "--check", "--check-tol", "-1.0"])
