"""Windowed SLO burn rates: windows, breaches, gauges, exemplars."""

import pytest

from repro.obs import metrics
from repro.obs.burn import BurnTracker


@pytest.fixture(autouse=True)
def fresh_registry():
    metrics.registry().reset()
    yield


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _tracker(slo_ms=100.0, **kwargs):
    clock = FakeClock()
    tracker = BurnTracker(slo_ms, clock=clock, **kwargs)
    return tracker, clock


def test_requires_at_least_one_window():
    with pytest.raises(ValueError):
        BurnTracker(100.0, windows=())


def test_burn_rate_is_breach_fraction_per_window():
    tracker, clock = _tracker(slo_ms=100.0)
    for ms in (50.0, 50.0, 150.0, 250.0):
        tracker.observe(ms)
        clock.advance(1.0)
    snap = tracker.snapshot()
    assert snap["5m"]["requests"] == 4
    assert snap["5m"]["breaches"] == 2
    assert snap["5m"]["burn_rate"] == pytest.approx(0.5)
    assert snap["1h"]["burn_rate"] == pytest.approx(0.5)


def test_error_counts_as_breach_regardless_of_latency():
    tracker, _clock = _tracker(slo_ms=100.0)
    tracker.observe(1.0, ok=False)
    snap = tracker.snapshot()
    assert snap["5m"]["breaches"] == 1
    assert snap["5m"]["burn_rate"] == pytest.approx(1.0)


def test_old_events_age_out_of_the_fast_window():
    tracker, clock = _tracker(slo_ms=100.0)
    tracker.observe(500.0)  # breach
    clock.advance(301.0)    # past the 5m window, inside 1h
    tracker.observe(10.0)
    snap = tracker.snapshot()
    assert snap["5m"]["requests"] == 1
    assert snap["5m"]["burn_rate"] == pytest.approx(0.0)
    assert snap["1h"]["requests"] == 2
    assert snap["1h"]["burn_rate"] == pytest.approx(0.5)


def test_events_past_the_horizon_are_pruned_entirely():
    tracker, clock = _tracker(slo_ms=100.0)
    tracker.observe(500.0)
    clock.advance(3601.0)
    snap = tracker.snapshot()
    assert snap["1h"]["requests"] == 0
    assert snap["1h"]["burn_rate"] is None
    assert snap["1h"]["quantiles_ms"]["p50"] is None


def test_observe_sets_the_registry_gauges():
    tracker, _clock = _tracker(slo_ms=100.0)
    tracker.observe(500.0)
    registry = metrics.registry()
    assert registry.gauge("serve.slo.burn_rate_5m").value == 1.0
    assert registry.gauge("serve.slo.burn_rate_1h").value == 1.0
    tracker.observe(1.0)
    assert registry.gauge("serve.slo.burn_rate_5m").value == 0.5


def test_snapshot_quantiles_and_slowest_exemplars():
    tracker, clock = _tracker(slo_ms=1000.0)
    for i, ms in enumerate((10.0, 20.0, 30.0, 40.0, 500.0)):
        tracker.observe(ms, trace_id="trace-{}".format(i))
        clock.advance(0.5)
    snap = tracker.snapshot()["5m"]
    assert snap["quantiles_ms"]["p50"] == pytest.approx(30.0)
    assert snap["quantiles_ms"]["p99"] <= 500.0
    slowest = snap["slowest"]
    assert len(slowest) == 3
    assert slowest[0] == {"trace": "trace-4", "ms": 500.0}
    assert [e["ms"] for e in slowest] == sorted(
        (e["ms"] for e in slowest), reverse=True)


def test_ring_is_bounded():
    tracker, _clock = _tracker(slo_ms=100.0, max_events=8)
    for i in range(100):
        tracker.observe(float(i))
    assert tracker.snapshot()["1h"]["requests"] == 8
