"""Leveled stderr logging behind -q/-v."""

import io

import pytest

from repro.obs import log


@pytest.fixture(autouse=True)
def restore_level():
    level = log.get_level()
    yield
    log.set_level(level)


def capture(fn, *args):
    stream = io.StringIO()
    fn(*args, stream=stream)
    return stream.getvalue()


def test_default_level_prints_info_not_debug():
    log.set_verbosity()
    assert capture(log.info, "hello") == "hello\n"
    assert capture(log.warn, "careful") == "warning: careful\n"
    assert capture(log.debug, "detail") == ""
    assert capture(log.error, "bad") == "bad\n"


def test_quiet_suppresses_everything_but_errors():
    log.set_verbosity(quiet=True)
    assert capture(log.info, "hello") == ""
    assert capture(log.warn, "careful") == ""
    assert capture(log.debug, "detail") == ""
    assert capture(log.error, "bad") == "bad\n"


def test_verbose_enables_debug():
    log.set_verbosity(verbose=True)
    assert capture(log.debug, "detail") == "debug: detail\n"


def test_quiet_wins_over_verbose():
    log.set_verbosity(quiet=True, verbose=True)
    assert log.get_level() == log.QUIET


def test_defaults_to_stderr(capsys):
    log.set_verbosity()
    log.info("to-stderr")
    captured = capsys.readouterr()
    assert captured.out == ""
    assert captured.err == "to-stderr\n"
