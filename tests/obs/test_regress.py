"""Noise-banded regression detection over ledger records."""

import pytest

from repro.obs.regress import (
    DEFAULT_MAD_K,
    DEFAULT_TOLERANCE,
    compare_records,
    mad,
    median,
)


def record(phases, counters=None, sha="a" * 40):
    """A minimal well-formed ledger record for comparison tests."""
    return {
        "schema": 1, "kind": "bench_run", "tool": "repro", "label": "bench",
        "git_sha": sha, "timestamp_utc": "2026-08-05T00:00:00Z",
        "host": {"python": "3", "platform": "linux", "machine": "x86_64",
                 "cpu_count": 4},
        "phases": phases,
        "counters": counters or {},
    }


def one_series(*values):
    """Records each holding one observation of write-pickle/bench.run."""
    return [record({"write-pickle": {"bench.run": v}}) for v in values]


# ----------------------------------------------------------------------
# Statistics


def test_median_odd_and_even():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5


def test_mad():
    assert mad([1.0, 1.0, 5.0]) == 0.0
    assert mad([1.0, 2.0, 4.0]) == 1.0


# ----------------------------------------------------------------------
# Judgments


def test_clear_regression_detected():
    report = compare_records(one_series(0.010, 0.011), one_series(0.050))
    assert report.has_regressions
    (c,) = report.regressions
    assert (c.benchmark, c.phase) == ("write-pickle", "bench.run")
    assert c.status == "regression"
    assert c.ratio == pytest.approx(5.0)
    assert "write-pickle/bench.run" in c.describe()


def test_within_tolerance_is_ok():
    report = compare_records(one_series(0.100), one_series(0.110))
    assert not report.has_regressions
    assert report.comparisons[0].status == "ok"


def test_min_of_k_uses_best_observation():
    # One noisy new repeat does not gate when another repeat was fine.
    report = compare_records(one_series(0.100), one_series(0.500, 0.101))
    assert not report.has_regressions


def test_mad_band_absorbs_one_lucky_old_observation():
    # Old best 0.01 is an outlier; the old median+MAD band keeps a new
    # best inside ordinary jitter from gating.
    old = one_series(0.010, 0.100, 0.100, 0.102, 0.098)
    report = compare_records(old, one_series(0.099), mad_k=DEFAULT_MAD_K)
    assert not report.has_regressions


def test_min_seconds_floor_never_gates_microsecond_phases():
    report = compare_records(one_series(0.0001), one_series(0.004))
    assert not report.has_regressions
    # The same ratio above the floor does gate.
    report = compare_records(one_series(0.010), one_series(0.400))
    assert report.has_regressions


def test_min_delta_floor_suppresses_tiny_absolute_moves():
    report = compare_records(one_series(0.005), one_series(0.0065),
                             min_delta_seconds=0.002)
    assert not report.has_regressions


def test_improvement_reported_symmetrically():
    report = compare_records(one_series(0.100), one_series(0.050))
    assert not report.has_regressions
    assert [c.status for c in report.improvements] == ["improved"]


def test_new_and_missing_series_do_not_gate():
    old = [record({"write-pickle": {"bench.run": 0.1}})]
    new = [record({"write-pickle": {"run.interp": 0.2}})]
    report = compare_records(old, new)
    statuses = {(c.phase): c.status for c in report.comparisons}
    assert statuses == {"bench.run": "missing", "run.interp": "new"}
    assert not report.has_regressions


def test_default_thresholds_recorded_on_report():
    report = compare_records(one_series(0.1), one_series(0.1))
    assert report.tolerance == DEFAULT_TOLERANCE
    assert report.mad_k == DEFAULT_MAD_K
    assert "1 series compared" in report.summary()


# ----------------------------------------------------------------------
# Rendering


def regressing_report():
    old = [record({"write-pickle": {"bench.run": 0.010}},
                  counters={"run.interp.instructions": 100})]
    new = [record({"write-pickle": {"bench.run": 0.050}},
                  counters={"run.interp.instructions": 120}, sha="b" * 40)]
    return compare_records(old, new)


def test_render_text_names_the_regression():
    text = regressing_report().render_text()
    assert "REGRESSION" in text
    assert "REGRESSION: write-pickle/bench.run" in text
    assert "counter drift (informational):" in text
    assert "run.interp.instructions: 100 -> 120" in text


def test_render_markdown_bolds_regressions():
    md = regressing_report().render_markdown()
    assert "| Benchmark | Phase |" in md
    assert "**REGRESSION**" in md
    assert "`run.interp.instructions`: 100 -> 120" in md


def test_render_handles_empty_comparison():
    report = compare_records([record({})], [record({})])
    assert "(no comparable series)" in report.render_text()
    assert "_No comparable series._" in report.render_markdown()
