"""The bounded on-disk trace store: segments, eviction, torn lines."""

import json

import pytest

from repro.obs import core as obs
from repro.obs import metrics
from repro.obs.tracestore import (
    TraceStore,
    make_record,
    validate_trace_record,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    metrics.registry().reset()
    yield


def _record(i=0, trace=None, spans=None):
    return {
        "kind": "trace_record", "schema": 1,
        "trace": trace or "trace-{}".format(i),
        "proc": "testproc", "origin": "test", "op": "unit.test",
        "unit": None, "ms": 1.0 + i, "ok": True, "ts": "2026-01-01",
        "parent": None,
        "spans": spans if spans is not None else [
            {"name": "root", "id": 1, "parent": None,
             "duration_ms": 1.0}],
        "notes": {}, "dropped": 0,
    }


def test_append_and_read_round_trip(tmp_path):
    store = TraceStore(tmp_path / "traces")
    for i in range(5):
        assert store.append(_record(i)) is True
    records = store.records()
    assert [r["trace"] for r in records] == [
        "trace-{}".format(i) for i in range(5)]
    assert metrics.registry().counter("obs.trace.flushed").value == 5


def test_trace_and_traces_group_by_id(tmp_path):
    store = TraceStore(tmp_path / "traces")
    store.append(_record(0, trace="shared"))
    store.append(_record(1, trace="shared"))
    store.append(_record(2, trace="solo"))
    grouped = store.traces()
    assert set(grouped) == {"shared", "solo"}
    assert len(store.trace("shared")) == 2
    assert store.trace("unknown") == []


def test_segments_rotate_at_the_size_cap(tmp_path):
    store = TraceStore(tmp_path / "traces", segment_bytes=512)
    for i in range(20):
        store.append(_record(i))
    segments = list((tmp_path / "traces").glob("seg-*.jsonl"))
    assert len(segments) > 1
    # Rotation must not lose records.
    assert len(store.records()) == 20


def test_eviction_drops_oldest_but_never_the_open_segment(tmp_path):
    store = TraceStore(tmp_path / "traces", max_bytes=1500,
                       segment_bytes=400)
    for i in range(40):
        store.append(_record(i))
    total = sum(p.stat().st_size
                for p in (tmp_path / "traces").glob("seg-*.jsonl"))
    assert total <= 1500 + 400  # cap plus at most the open segment
    assert metrics.registry().counter("obs.trace.evicted").value > 0
    survivors = store.records()
    assert survivors  # newest records survive
    assert survivors[-1]["trace"] == "trace-39"


def test_torn_line_is_skipped_with_counter(tmp_path):
    store = TraceStore(tmp_path / "traces")
    store.append(_record(0))
    store.append(_record(1))
    segment = next((tmp_path / "traces").glob("seg-*.jsonl"))
    lines = segment.read_text().splitlines()
    # Tear the first record mid-line, as a writer dying would.
    segment.write_text(lines[0][: len(lines[0]) // 3] + "\n"
                       + lines[1] + "\n")
    records = store.records()
    assert [r["trace"] for r in records] == ["trace-1"]
    assert metrics.registry().counter("obs.trace.torn_skipped").value == 1


def test_invalid_record_is_skipped_with_its_own_counter(tmp_path):
    store = TraceStore(tmp_path / "traces")
    store.append(_record(0))
    segment = next((tmp_path / "traces").glob("seg-*.jsonl"))
    with open(segment, "a") as f:
        f.write(json.dumps({"kind": "not_a_trace"}) + "\n")
    assert len(store.records()) == 1
    registry = metrics.registry()
    assert registry.counter("obs.trace.invalid_skipped").value == 1
    assert registry.counter("obs.trace.torn_skipped").value == 0


def test_append_never_raises_on_a_bad_record(tmp_path):
    store = TraceStore(tmp_path / "traces")
    assert store.append({"kind": "wrong"}) is False
    assert store.append(_record(0, spans=[{"no": "name"}])) is False
    registry = metrics.registry()
    assert registry.counter("obs.trace.store_errors").value == 2
    assert store.records() == []


def test_append_never_raises_on_an_unwritable_root(tmp_path):
    blocked = tmp_path / "blocked"
    blocked.write_text("a file where the store dir should be")
    store = TraceStore(blocked / "traces")
    assert store.append(_record(0)) is False
    assert metrics.registry().counter(
        "obs.trace.store_errors").value == 1


def test_reading_a_missing_store_is_empty(tmp_path):
    store = TraceStore(tmp_path / "never-created")
    assert store.records() == []
    assert store.traces() == {}
    assert store.stats()["segments"] == 0


def test_make_record_from_a_collecting_scope():
    scope = obs.trace_scope("rec-trace", collect=True,
                            remote_parent=("parentproc", 9))
    with scope:
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        obs.trace_note("cache", "hit")
    record = make_record(scope, origin="test", op="unit", ms=12.5,
                         ok=True, unit="demo")
    validate_trace_record(record)
    assert record["trace"] == "rec-trace"
    assert record["parent"] == {"proc": "parentproc", "span": 9}
    assert record["unit"] == "demo"
    assert record["notes"] == {"cache": "hit"}
    names = [s["name"] for s in record["spans"]]
    assert names == ["outer", "inner"]


def test_validate_rejects_missing_keys_and_bad_types():
    with pytest.raises(ValueError):
        validate_trace_record([])
    record = _record(0)
    del record["spans"]
    with pytest.raises(ValueError):
        validate_trace_record(record)
    record = _record(0)
    record["ok"] = "yes"
    with pytest.raises(ValueError):
        validate_trace_record(record)
    record = _record(0)
    record["parent"] = {"proc": 5, "span": 1}
    with pytest.raises(ValueError):
        validate_trace_record(record)
