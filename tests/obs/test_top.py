"""``repro top``: exposition parsing, frame rendering, the --once loop."""

import io

import pytest

from repro.obs import metrics
from repro.obs.top import (
    Snapshot,
    TopError,
    fetch_snapshot,
    parse_prom,
    render_frame,
    run_top,
)


def test_parse_prom_reads_samples_and_labels():
    samples = parse_prom(
        "# TYPE a counter\n"
        'a{op="alias"} 3\n'
        'a{op="ping",unit="x"} 2\n'
        "b 1.5\n"
        "# a comment\n"
        "garbage line without value\n")
    assert samples[("a", (("op", "alias"),))] == 3.0
    assert samples[("a", (("op", "ping"), ("unit", "x")))] == 2.0
    assert samples[("b", ())] == 1.5
    assert len(samples) == 3  # garbage skipped, never raised


def test_parse_prom_handles_escaped_label_values():
    samples = parse_prom('m{l="a\\"b"} 7\n')
    assert samples[("m", (("l", 'a"b'),))] == 7.0


def _snapshot(total=10.0, errors=1.0, taken=100.0):
    samples = {
        ("repro_serve_request_total", (("op", "alias"),)): total - 2,
        ("repro_serve_request_total", (("op", "ping"),)): 2.0,
        ("repro_serve_request_errors", (("op", "alias"),)): errors,
        ("repro_serve_request_ms_p50", (("op", "alias"),)): 4.5,
        ("repro_serve_request_ms_p95", (("op", "alias"),)): 9.0,
        ("repro_serve_request_ms_p99", (("op", "alias"),)): 12.0,
        ("repro_serve_slo_ok", (("op", "alias"),)): total - 3,
        ("repro_serve_slo_breach", (("op", "alias"),)): 1.0,
        ("repro_serve_session_hit", ()): 6.0,
        ("repro_serve_session_miss", ()): 2.0,
    }
    journal = {"total": int(total), "requests": [
        {"trace": "trace-slow", "op": "alias", "ms": 12.0, "cache": "build",
         "ok": True, "error": None},
        {"trace": "trace-err", "op": "alias", "ms": 2.0, "cache": None,
         "ok": False, "error": "compile"},
    ]}
    ping = {"ok": True, "result": {"version": "1.0.0", "protocol": 1,
                                   "degraded": False, "draining": False,
                                   "slo_ms": 250.0}}
    return Snapshot(samples, journal, ping, taken)


def test_render_frame_shows_ops_cache_and_slow_traces():
    frame = render_frame(_snapshot())
    assert "repro top — daemon v1.0.0 proto 1  [healthy]" in frame
    assert "requests: 10 total, 1 errors" in frame
    assert "rate: n/a req/s" in frame
    assert "slo: 250 ms" in frame
    assert "session 75.0% (6/8)" in frame
    assert "alias" in frame and "4.50" in frame and "12.00" in frame
    assert "trace-slow" in frame
    assert "trace-err" in frame and "compile" in frame


def test_render_frame_rate_from_previous_snapshot():
    previous = _snapshot(total=10.0, taken=100.0)
    current = _snapshot(total=30.0, taken=104.0)
    frame = render_frame(current, previous)
    assert "rate: 5.0 req/s" in frame  # (30-10)/4s


def test_render_frame_degraded_and_empty():
    snap = _snapshot()
    snap.ping["result"]["degraded"] = True
    snap.ping["result"]["draining"] = True
    snap.samples = {}
    snap.journal = {"total": 0, "requests": []}
    frame = render_frame(snap)
    assert "[DEGRADED DRAINING]" in frame
    assert "(no requests served yet)" in frame
    assert "(request journal is empty)" in frame


def test_fetch_snapshot_refuses_dead_daemon():
    with pytest.raises(TopError, match="GET /v1/metrics failed"):
        fetch_snapshot(port=1)  # nothing listens on port 1


def test_run_top_once_against_live_daemon(tmp_path):
    from repro.serve.client import SMOKE_SOURCE
    from repro.serve.daemon import Daemon
    from repro.serve.factcache import FactStore
    from repro.serve.session import SessionManager

    metrics.registry().reset()
    daemon = Daemon(SessionManager(store=FactStore(tmp_path / "store")))
    port = daemon.start_http()
    try:
        from repro.serve.client import HttpClient

        client = HttpClient(port)
        assert client.query({"op": "alias", "source": SMOKE_SOURCE,
                             "name": "smoke", "id": "warm"})["ok"]
        out = io.StringIO()
        assert run_top(port, once=True, out=out) == 0
        frame = out.getvalue()
        assert "repro top" in frame
        assert "alias" in frame
        assert "\x1b[2J" not in frame  # --once never clears the screen
    finally:
        daemon.stop_http()


def test_run_top_exits_one_when_daemon_unreachable():
    out = io.StringIO()
    assert run_top(port=1, once=True, out=out) == 1


def test_run_top_exits_one_when_listener_is_not_http(capsys):
    # A listener that answers garbage instead of HTTP used to escape as
    # a raw http.client.BadStatusLine traceback; it must be the same
    # one-line failure as a dead daemon.
    import socket
    import threading

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]

    def answer_garbage():
        try:
            conn, _addr = server.accept()
        except OSError:
            return
        with conn:
            conn.recv(4096)
            conn.sendall(b"I AM NOT SPEAKING HTTP\r\n")

    thread = threading.Thread(target=answer_garbage, daemon=True)
    thread.start()
    try:
        assert run_top(port=port, once=True, out=io.StringIO()) == 1
    finally:
        server.close()
        thread.join(timeout=5)
    err = capsys.readouterr().err
    assert err.startswith("repro top: GET /v1/metrics failed")
    assert "Traceback" not in err
    assert len(err.strip().splitlines()) == 1


def test_fetch_snapshot_rejects_wrong_shape_json(monkeypatch):
    from repro.obs import top as top_mod

    answers = {"/v1/metrics": "repro_serve_request_total 1\n",
               "/v1/requests": "[]",  # a list where a dict is required
               "/v1/ping": "{}"}
    monkeypatch.setattr(top_mod, "_get",
                        lambda base, path: answers[path])
    with pytest.raises(TopError, match="wrong shape"):
        fetch_snapshot(port=9999)


def test_render_frame_shows_slo_burn_and_trace_counters():
    snap = _snapshot()
    snap.samples[("repro_serve_slo_burn_rate_5m", ())] = 0.25
    snap.samples[("repro_serve_slo_burn_rate_1h", ())] = 0.105
    snap.samples[("repro_obs_trace_sampled", ())] = 7.0
    snap.samples[("repro_obs_trace_flushed", ())] = 3.0
    frame = render_frame(snap)
    assert "slo burn: 5m 25.0%   1h 10.5%" in frame
    assert "traces: 7 sampled, 3 stored" in frame


def test_render_frame_burn_falls_back_to_na_without_gauges():
    frame = render_frame(_snapshot())
    assert "slo burn: 5m n/a   1h n/a" in frame
    assert "traces: 0 sampled, 0 stored" in frame
