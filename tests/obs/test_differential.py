"""Tracing must observe, never perturb: Table 5 numbers are identical
with the recorder enabled and disabled."""

import pytest

from repro import compile_program
from repro.analysis import ANALYSIS_NAMES
from repro.obs import core, metrics

SOURCE = """
MODULE Diff;
TYPE
  T = OBJECT f, g: T; END;
  S = T OBJECT a: INTEGER; END;
VAR t: T; s: S; x: INTEGER;

PROCEDURE P1 () =
BEGIN
  t.f := t.g;
  IF t.f # NIL THEN t.g := t.f.f; END;
END P1;

PROCEDURE P2 () =
BEGIN
  s.f := NIL;
  x := s.a;
END P2;

BEGIN
  P1 ();
  P2 ();
END Diff.
"""


def table5_numbers():
    program = compile_program(SOURCE, "diff.m3")
    out = {}
    for name in ANALYSIS_NAMES:
        report = program.alias_pairs(name)
        out[name] = (report.references, report.local_pairs,
                     report.global_pairs)
    return out


@pytest.fixture
def traced_recorder():
    """Enable the process-wide recorder for one test, then restore."""
    recorder = core.recorder()
    was_enabled = recorder.is_enabled
    recorder.reset()
    recorder.enable()
    yield recorder
    if not was_enabled:
        recorder.disable()
    recorder.reset()


def test_tracing_does_not_change_table5(traced_recorder):
    core.disable()
    baseline = table5_numbers()
    core.enable()
    traced = table5_numbers()
    assert traced == baseline
    # And the run really was traced.
    names = {s.name for s in traced_recorder.spans()}
    assert "compile" in names
    assert "aliaspairs.count" in names
    assert "analysis.build" in names


def test_tracing_does_not_change_rle(traced_recorder):
    # load_status is keyed by process-global instruction ids, so compare
    # the per-status counts (the Table 6 inputs), not the raw keys.
    from collections import Counter

    core.disable()
    program = compile_program(SOURCE, "diff.m3")
    baseline = Counter(program.optimize("SMFieldTypeRefs").load_status.values())
    core.enable()
    program = compile_program(SOURCE, "diff.m3")
    traced = Counter(program.optimize("SMFieldTypeRefs").load_status.values())
    assert traced == baseline


def test_metrics_record_identically_with_and_without_tracing():
    """Counters live outside the recorder: same totals either way."""
    registry = metrics.registry()

    core.disable()
    registry.reset()
    table5_numbers()
    baseline = {(e["name"], tuple(sorted(e["labels"].items()))): e.get("value")
                for e in registry.snapshot() if e["kind"] == "counter"}

    recorder = core.recorder()
    recorder.reset()
    core.enable()
    try:
        registry.reset()
        table5_numbers()
    finally:
        core.disable()
        recorder.reset()
    traced = {(e["name"], tuple(sorted(e["labels"].items()))): e.get("value")
              for e in registry.snapshot() if e["kind"] == "counter"}
    assert traced == baseline
