"""Shared fixtures for the test suite.

The expensive objects (compiled benchmark programs, the suite driver) are
session-scoped: many test modules reuse them, and compilation is pure.
"""

import pytest

from repro import compile_program
from repro.bench.suite import BenchmarkSuite

# A small program exercising most front-end features; reused across
# lexer/parser/checker/lowering tests.
DEMO_SOURCE = """
MODULE Demo;

TYPE
  T = OBJECT f, g: T; METHODS size (): INTEGER := TSize; END;
  S1 = T OBJECT x: INTEGER; OVERRIDES size := S1Size; END;
  S2 = T OBJECT y: INTEGER; END;
  Buf = REF ARRAY OF CHAR;
  Node = BRANDED "node" REF RECORD value: INTEGER; next: Node; END;
  Cell = REF INTEGER;

CONST
  Limit = 16;

VAR
  t: T;
  s: S1;
  buf: Buf;
  cell: Cell;

PROCEDURE TSize (self: T): INTEGER =
BEGIN
  IF self.f = NIL THEN RETURN 1; END;
  RETURN 1 + self.f.size ();
END TSize;

PROCEDURE S1Size (self: S1): INTEGER =
BEGIN
  RETURN self.x;
END S1Size;

PROCEDURE Fill (b: Buf; VAR count: INTEGER) =
VAR i: INTEGER;
BEGIN
  i := 0;
  WHILE i < NUMBER (b^) DO
    b^[i] := VAL (ORD ('a') + i MOD 26, CHAR);
    INC (i);
  END;
  count := i;
END Fill;

VAR n: INTEGER;

BEGIN
  t := NEW (S1, x := 3);
  s := NARROW (t, S1);
  t.f := NEW (T);
  buf := NEW (Buf, Limit);
  cell := NEW (Cell);
  cell^ := 7;
  Fill (buf, n);
  WITH h = t.f DO
    h := NIL;
  END;
  IF ISTYPE (t, S1) THEN
    PutInt (t.size ());
  END;
  FOR i := 0 TO n - 1 BY 2 DO
    PutChar (buf^[i]);
  END;
  PutText (" n=" & IntToText (n + cell^));
END Demo.
"""


@pytest.fixture(scope="session")
def demo_program():
    return compile_program(DEMO_SOURCE, "demo.m3")


@pytest.fixture(scope="session")
def demo_checked(demo_program):
    return demo_program.checked


@pytest.fixture(scope="session")
def suite():
    """One shared BenchmarkSuite (heavy runs are cached inside)."""
    return BenchmarkSuite()


def compile_src(source: str):
    """Convenience for tests building ad-hoc programs."""
    return compile_program(source, "<test>")
