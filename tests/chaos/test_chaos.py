"""The seeded fault-injection framework: plans, determinism, batteries.

The expensive end-to-end batteries (`run_chaos`) are exercised here for
two cheap plans; ``make chaos-smoke`` runs a wider selection through the
CLI.  Everything else is unit-level: rule streams must be deterministic
per (seed, rule, point), plans must round-trip through JSON (that is how
forked corpus workers inherit them), and an unarmed ``fire`` must be a
no-op fast path.
"""

import json
import os

import pytest

from repro.obs import metrics
from repro.qa import chaos
from repro.qa.chaos import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    InjectedIOError,
    armed,
    built_in_plans,
    fire,
    plan_spec,
    run_chaos,
)


@pytest.fixture(autouse=True)
def _clean_state():
    chaos.clear_plan()
    metrics.registry().reset()
    yield
    chaos.clear_plan()
    metrics.registry().reset()


# -- rules and plans ----------------------------------------------------


def test_unarmed_fire_is_a_noop():
    assert chaos.active_plan() is None
    assert fire("factstore.load", key="abc") is None
    assert fire("session.compile") is None


def test_unknown_point_rejected_at_rule_construction():
    with pytest.raises(ValueError):
        FaultRule("no.such.point", probability=1.0)
    with pytest.raises(ValueError):
        FaultRule("factstore.load", probability=1.5)


def test_plan_json_roundtrip_preserves_rules():
    plan = FaultPlan(
        seed=42,
        name="rt",
        rules=(
            FaultRule("factstore.load", probability=0.25),
            FaultRule("corpus.worker_kill", probability=1.0, times=2,
                      after=1, match={"shard": 1}),
            FaultRule("daemon.handler", probability=0.5, arg=0.3),
        ),
    )
    back = FaultPlan.from_json(json.loads(json.dumps(plan.to_json())))
    assert back.seed == plan.seed
    assert back.name == plan.name
    assert back.rules == plan.rules


def test_armed_plan_propagates_to_children_via_env():
    plan = FaultPlan(seed=7, name="env",
                     rules=(FaultRule("factstore.load", probability=1.0),))
    with armed(plan, env=True):
        encoded = os.environ.get(chaos.PLAN_ENV_VAR)
        assert encoded is not None
        back = FaultPlan.from_json(json.loads(encoded))
        assert back.rules == plan.rules
    assert chaos.PLAN_ENV_VAR not in os.environ


# -- deterministic firing -----------------------------------------------


def _firing_pattern(seed, probability, n=40):
    plan = FaultPlan(seed=seed, rules=(
        FaultRule("factstore.load", probability=probability),))
    pattern = []
    with armed(plan):
        for _ in range(n):
            try:
                fire("factstore.load")
                pattern.append(0)
            except InjectedIOError:
                pattern.append(1)
    return pattern


def test_same_seed_fires_identically_different_seed_differs():
    a = _firing_pattern(seed=3, probability=0.5)
    b = _firing_pattern(seed=3, probability=0.5)
    c = _firing_pattern(seed=4, probability=0.5)
    assert a == b
    assert 0 < sum(a) < len(a)  # actually probabilistic, not all-or-none
    assert a != c  # one specific pair could collide; these seeds do not


def test_interleaving_does_not_shift_a_points_stream():
    """Each point consumes its own RNG stream, so traffic on one point
    never changes when (only whether code reaches) another fires."""
    plan = FaultPlan(seed=9, rules=(
        FaultRule("factstore.load", probability=0.5),
        FaultRule("factstore.store", probability=0.5),
    ))

    def load_pattern(interleave):
        pattern = []
        with armed(plan.with_seed(9)):
            for i in range(30):
                if interleave:
                    try:
                        fire("factstore.store")
                    except InjectedIOError:
                        pass
                try:
                    fire("factstore.load")
                    pattern.append(0)
                except InjectedIOError:
                    pattern.append(1)
        return pattern

    assert load_pattern(False) == load_pattern(True)


def test_times_after_and_match_limit_firing():
    plan = FaultPlan(seed=0, rules=(
        FaultRule("session.compile", probability=1.0, after=2, times=2,
                  match={"module": "target"}),))
    fired = []
    with armed(plan):
        for i in range(8):
            module = "target" if i % 2 == 0 else "other"
            try:
                fire("session.compile", module=module)
                fired.append(0)
            except InjectedFault:
                fired.append(1)
    # Matching encounters are i = 0, 2, 4, 6: the first two are skipped
    # by `after`, the next two fire, and `times` stops anything further.
    assert fired == [0, 0, 0, 0, 1, 0, 1, 0]


def test_injected_errors_are_typed():
    assert issubclass(InjectedIOError, OSError)
    assert issubclass(InjectedFault, RuntimeError)
    assert not issubclass(InjectedFault, OSError)


# -- built-in plans and batteries ---------------------------------------


def test_built_in_plans_cover_serve_and_corpus():
    specs = built_in_plans()
    names = {s.name for s in specs}
    assert {"cache-flaky", "cache-corrupt", "compile-crash",
            "slow-handler", "client-drop", "mixed",
            "worker-kill", "poison-shard", "shard-hang",
            "stdio-flaky", "ledger-torn", "tracestore-torn"} <= names
    targets = {s.target for s in specs}
    assert targets == {"serve", "corpus", "stdio", "ledger",
                       "tracestore"}
    for spec in specs:
        plan = spec.plan(seed=1)
        assert plan.rules, spec.name
        assert FaultPlan.from_json(plan.to_json()).rules == plan.rules
    with pytest.raises(ValueError):
        plan_spec("no-such-plan")


def test_run_chaos_cache_corrupt_self_heals(tmp_path):
    report = run_chaos("cache-corrupt", seed=0, work_dir=tmp_path)
    assert report["ok"], report
    assert report["violations"] == []
    assert report["injected"].get("factstore.corrupt", 0) > 0
    assert report["ok_responses"] == report["requests"]


def test_run_chaos_compile_crash_yields_typed_errors(tmp_path):
    report = run_chaos("compile-crash", seed=0, work_dir=tmp_path)
    assert report["ok"], report
    assert report["violations"] == []
    injected = report["injected"].get("session.compile", 0)
    assert injected > 0
    assert report["typed_errors"].get("internal", 0) == injected
    assert report["ok_responses"] + injected == report["requests"]


def test_run_chaos_ledger_torn_never_wedges_the_gate(tmp_path):
    report = run_chaos("ledger-torn", seed=0, work_dir=tmp_path)
    assert report["ok"], report
    assert report["violations"] == []
    assert 0 < report["torn"] < report["appended"]
    assert report["read"] == report["appended"] - report["torn"]
    assert report["validated"] == report["read"]
    assert report["compared"] is True


def test_run_chaos_tracestore_torn_never_degrades_serving(tmp_path):
    report = run_chaos("tracestore-torn", seed=0, work_dir=tmp_path)
    assert report["ok"], report
    assert report["violations"] == []
    # Phase one: direct appends, about half torn, readers skip exactly.
    assert 0 < report["torn"] < report["appended"]
    assert report["read"] == report["appended"] - report["torn"]
    # Phase two: torn flushes under a live daemon never cost an answer.
    assert report["daemon_torn"] > 0
    assert report["ok_responses"] == report["requests"]
    assert report["daemon_records"] > 0


def test_run_chaos_stdio_crosses_the_process_boundary(tmp_path):
    report = run_chaos("stdio-flaky", seed=0, work_dir=tmp_path)
    assert report["ok"], report
    assert report["violations"] == []
    # The plan armed in a *subprocess* via REPRO_CHAOS_PLAN; its own
    # counters prove the faults fired on the far side of the pipe.
    assert report["injected"]["child"] > 0
    assert report["chaos_injected_total"] == report["injected"]["child"]
    # Every answer that crossed the pipe was pinned-correct or typed.
    assert report["ok_responses"] + \
        sum(report["typed_errors"].values()) == report["requests"]


def test_run_chaos_is_deterministic_per_seed(tmp_path):
    a = run_chaos("cache-corrupt", seed=5, work_dir=tmp_path / "a")
    b = run_chaos("cache-corrupt", seed=5, work_dir=tmp_path / "b")
    assert a == b
