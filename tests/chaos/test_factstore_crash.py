"""FactStore crash safety: every torn on-disk state reads as a miss.

The store's write protocol is: write partition to ``.tmp`` → ``os.replace``
partition → update in-memory index → ``os.replace`` the index.  A kill at
any point between those steps leaves one of a small set of torn states;
each one must (a) read as a plain miss — never an exception, never a
wrong bundle — and (b) self-heal on the next ``store``.
"""

import json

from repro.analysis.facts import new_bundle
from repro.obs import metrics
from repro.serve.factcache import INDEX_NAME, FactStore


def _bundle(tag, n_procs=2):
    import hashlib

    key = hashlib.sha256(tag.encode()).hexdigest()
    return new_bundle("Mod" + tag, key,
                      {"P%d" % i: "h%d" % i for i in range(n_procs)})


def _reset():
    metrics.registry().reset()


def _heals(store, bundle):
    """The canonical recovery check: re-store then load back."""
    store.store(bundle)
    loaded = store.load(bundle.module_hash)
    assert loaded is not None
    assert loaded.module_hash == bundle.module_hash
    assert loaded.proc_hashes == bundle.proc_hashes


def test_kill_between_partition_write_and_index_replace(tmp_path):
    """Partition on disk, index still old: the orphan is invisible."""
    _reset()
    store = FactStore(tmp_path)
    a, b = _bundle("a"), _bundle("b")
    store.store(a)
    index_before_b = (tmp_path / INDEX_NAME).read_bytes()
    store.store(b)
    # Simulate the kill: b's partition survived, the index replace did
    # not.  Roll the index file back and reopen as a fresh process would.
    (tmp_path / INDEX_NAME).write_bytes(index_before_b)
    reopened = FactStore(tmp_path)

    assert reopened.load(b.module_hash) is None  # orphan = miss
    assert reopened.load(a.module_hash) is not None  # older data intact
    _heals(reopened, b)


def test_mid_byte_partition_truncation_reads_as_miss(tmp_path):
    """Torn partition write (or chaos ``factstore.corrupt``)."""
    _reset()
    store = FactStore(tmp_path)
    bundle = _bundle("torn")
    store.store(bundle)
    full = next(tmp_path.glob("facts-*.pkl")).stat().st_size
    for cut in (full // 2, 3, 1):
        store.store(bundle)  # restore a good copy to truncate again
        pkl = next(tmp_path.glob("facts-*.pkl"))
        pkl.write_bytes(pkl.read_bytes()[:cut])
        assert store.load(bundle.module_hash) is None, cut
    counted = metrics.registry().counter("serve.factcache.corrupt").value
    assert counted >= 3
    _heals(store, bundle)


def test_mid_byte_index_truncation_opens_empty(tmp_path):
    """Torn index write: the whole store degrades to cold misses."""
    _reset()
    store = FactStore(tmp_path)
    bundle = _bundle("ixtorn")
    store.store(bundle)
    index_path = tmp_path / INDEX_NAME
    index_path.write_bytes(index_path.read_bytes()[: index_path.stat()
                           .st_size // 2])
    reopened = FactStore(tmp_path)
    assert reopened.keys() == []
    assert reopened.load(bundle.module_hash) is None
    _heals(reopened, bundle)


def test_leftover_index_tmp_is_harmless(tmp_path):
    """Kill before the index ``os.replace``: the ``.tmp`` is ignored."""
    _reset()
    store = FactStore(tmp_path)
    bundle = _bundle("tmpfile")
    store.store(bundle)
    (tmp_path / "index.tmp").write_text("{ torn json")
    reopened = FactStore(tmp_path)
    assert reopened.load(bundle.module_hash) is not None
    _heals(reopened, _bundle("tmpfile2"))


def test_index_entry_without_partition_reads_as_miss(tmp_path):
    """The inverse orphan: indexed key whose partition file is gone."""
    _reset()
    store = FactStore(tmp_path)
    bundle = _bundle("ghost")
    store.store(bundle)
    next(tmp_path.glob("facts-*.pkl")).unlink()
    reopened = FactStore(tmp_path)
    assert bundle.module_hash in reopened.keys()  # index says yes...
    assert reopened.load(bundle.module_hash) is None  # ...disk says miss
    assert reopened.keys() == []  # and the dangling entry is dropped
    _heals(reopened, bundle)


def test_index_swapped_with_garbage_json_opens_empty(tmp_path):
    """A wrong-shape but parseable index is rejected wholesale."""
    _reset()
    store = FactStore(tmp_path)
    store.store(_bundle("shape"))
    (tmp_path / INDEX_NAME).write_text(json.dumps(["not", "a", "dict"]))
    reopened = FactStore(tmp_path)
    assert reopened.keys() == []
    _heals(reopened, _bundle("shape"))
