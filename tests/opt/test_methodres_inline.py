"""Method resolution and inlining tests (the Figure 11 machinery)."""

from repro import compile_program
from repro.analysis.openworld import AnalysisContext
from repro.analysis.smtyperefs import SMTypeRefsOracle
from repro.ir import instructions as ins
from repro.ir.lowering import lower_module
from repro.opt.inline import Inliner
from repro.opt.methodres import MethodResolution
from repro.runtime import Interpreter, MachineModel


def lower_fresh(source):
    return compile_program(source), None


def build(source):
    prog = compile_program(source)
    return prog, lower_module(prog.checked)


def run(program):
    return Interpreter(program, machine=MachineModel()).run()


SINGLE_IMPL = """
MODULE M;
TYPE T = OBJECT n: INTEGER; METHODS get (): INTEGER := Get; END;
VAR t: T; x: INTEGER;
PROCEDURE Get (self: T): INTEGER = BEGIN RETURN self.n; END Get;
BEGIN
  t := NEW (T, n := 5);
  x := t.get ();
  PutInt (x);
END M.
"""

MULTI_IMPL = """
MODULE M;
TYPE
  T = OBJECT METHODS tag (): INTEGER := TTag; END;
  S = T OBJECT OVERRIDES tag := STag; END;
VAR t: T; x: INTEGER;
PROCEDURE TTag (self: T): INTEGER = BEGIN RETURN 1; END TTag;
PROCEDURE STag (self: S): INTEGER = BEGIN RETURN 2; END STag;
BEGIN
  t := NEW (S);
  x := t.tag ();
  PutInt (x);
END M.
"""

PRUNABLE = """
MODULE M;
TYPE
  T = OBJECT METHODS tag (): INTEGER := TTag; END;
  S = T OBJECT OVERRIDES tag := STag; END;   (* never assigned to a T *)
VAR t: T; x: INTEGER;
PROCEDURE TTag (self: T): INTEGER = BEGIN RETURN 1; END TTag;
PROCEDURE STag (self: S): INTEGER = BEGIN RETURN 2; END STag;
BEGIN
  t := NEW (T);
  x := t.tag ();
  PutInt (x);
END M.
"""


class TestMethodResolution:
    def test_single_impl_devirtualized(self):
        prog, program = build(SINGLE_IMPL)
        stats = MethodResolution(program).run()
        assert stats.method_calls == 1
        assert stats.resolved == 1
        methods = [i for i in program.all_instrs() if isinstance(i, ins.CallMethod)]
        assert not methods
        assert run(program).output_text() == "5"

    def test_multiple_impls_not_resolved_without_type_refs(self):
        prog, program = build(MULTI_IMPL)
        stats = MethodResolution(program).run()
        assert stats.resolved == 0
        assert run(program).output_text() == "2"

    def test_type_refs_prune_unassigned_subtype(self):
        """SMTypeRefs knows no S was ever assigned into a T path, so the
        dispatch on t can only reach TTag — TBAA-assisted Minv."""
        prog, program = build(PRUNABLE)
        ctx = AnalysisContext(prog.checked)
        oracle = SMTypeRefsOracle(prog.checked, ctx.subtypes, ctx.assignments)
        stats = MethodResolution(program, oracle).run()
        assert stats.resolved == 1
        assert run(program).output_text() == "1"

    def test_without_type_refs_same_case_unresolved(self):
        prog, program = build(PRUNABLE)
        stats = MethodResolution(program).run()
        assert stats.resolved == 0


class TestInliner:
    CALL_HEAVY = """
    MODULE M;
    TYPE T = OBJECT n: INTEGER; END;
    VAR t: T; x, i: INTEGER;
    PROCEDURE Get (o: T): INTEGER = BEGIN RETURN o.n; END Get;
    PROCEDURE Bump (VAR v: INTEGER) = BEGIN v := v + 1; END Bump;
    BEGIN
      t := NEW (T, n := 2);
      FOR i := 1 TO 10 DO
        x := x + Get (t);
        Bump (x);
      END;
      PutInt (x);
    END M.
    """

    def test_small_procs_inlined(self):
        prog, program = build(self.CALL_HEAVY)
        stats = Inliner(program).run()
        assert stats.inlined_calls == 2
        calls = [i for i in program.main.all_instrs() if isinstance(i, ins.Call)]
        assert not calls

    def test_inlining_preserves_output(self):
        prog, program = build(self.CALL_HEAVY)
        baseline = run(lower_module(prog.checked)).output_text()
        Inliner(program).run()
        assert run(program).output_text() == baseline == "30"

    def test_recursive_not_inlined(self):
        source = """
        MODULE M;
        VAR x: INTEGER;
        PROCEDURE Fact (n: INTEGER): INTEGER =
        BEGIN
          IF n <= 1 THEN RETURN 1; END;
          RETURN n * Fact (n - 1);
        END Fact;
        BEGIN x := Fact (5); PutInt (x); END M.
        """
        prog, program = build(source)
        stats = Inliner(program).run()
        assert stats.inlined_calls == 0
        assert run(program).output_text() == "120"

    def test_mutually_recursive_not_inlined(self):
        source = """
        MODULE M;
        VAR x: INTEGER;
        PROCEDURE IsEven (n: INTEGER): BOOLEAN =
        BEGIN
          IF n = 0 THEN RETURN TRUE; END;
          RETURN IsOdd (n - 1);
        END IsEven;
        PROCEDURE IsOdd (n: INTEGER): BOOLEAN =
        BEGIN
          IF n = 0 THEN RETURN FALSE; END;
          RETURN IsEven (n - 1);
        END IsOdd;
        BEGIN
          IF IsEven (10) THEN x := 1; END;
          PutInt (x);
        END M.
        """
        prog, program = build(source)
        stats = Inliner(program).run()
        assert stats.inlined_calls == 0
        assert run(program).output_text() == "1"

    def test_size_threshold_respected(self):
        prog, program = build(self.CALL_HEAVY)
        stats = Inliner(program, max_callee_size=1).run()
        assert stats.inlined_calls == 0

    def test_var_params_inline_correctly(self):
        source = """
        MODULE M;
        VAR x, y: INTEGER;
        PROCEDURE Swap (VAR a, b: INTEGER) =
        VAR t: INTEGER;
        BEGIN
          t := a; a := b; b := t;
        END Swap;
        BEGIN
          x := 1; y := 2;
          Swap (x, y);
          PutInt (x); PutInt (y);
        END M.
        """
        prog, program = build(source)
        stats = Inliner(program).run()
        assert stats.inlined_calls == 1
        assert run(program).output_text() == "21"

    def test_multiple_returns_join(self):
        source = """
        MODULE M;
        VAR x: INTEGER;
        PROCEDURE Sign (n: INTEGER): INTEGER =
        BEGIN
          IF n > 0 THEN RETURN 1; END;
          IF n < 0 THEN RETURN -1; END;
          RETURN 0;
        END Sign;
        BEGIN
          x := Sign (5) + Sign (-3) * 10 + Sign (0);
          PutInt (x);
        END M.
        """
        prog, program = build(source)
        stats = Inliner(program).run()
        assert stats.inlined_calls == 3
        assert run(program).output_text() == "-9"

    def test_inline_removes_call_overhead_but_not_breakup_loads(self):
        """The Figure 11 interaction, faithfully: inlining removes call
        overhead, but the exposed loads reach RLE through a parameter
        *copy* (o := t; ... o.n), and the paper's optimizer "does not do
        copy propagation" — so the load count stays (it later shows up as
        the 'Breakup' category in the limit study)."""
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T; x, i: INTEGER;
        PROCEDURE Get (o: T): INTEGER = BEGIN RETURN o.n; END Get;
        BEGIN
          t := NEW (T, n := 1);
          FOR i := 1 TO 50 DO
            x := x + Get (t);
          END;
          PutInt (x);
        END M.
        """
        prog = compile_program(source)
        rle_only = prog.optimize("SMFieldTypeRefs")
        both = prog.optimize("SMFieldTypeRefs", minv_inline=True)
        s_rle = prog.run(rle_only)
        s_both = prog.run(both)
        assert s_rle.output_text() == s_both.output_text() == "50"
        assert s_both.heap_loads == s_rle.heap_loads  # breakup blocks RLE
        assert s_both.cycles < s_rle.cycles  # call overhead gone
