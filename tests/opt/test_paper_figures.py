"""The paper's Figure 6 and Figure 7 examples, as executable tests.

Figure 6 — "Eliminating Loop Invariant Memory Loads": a loop containing
``... := a.b^[i]`` and ``... := a.b^[j]`` on two branches; RLE hoists
``t := a.b^`` in front of the loop and both branches index ``t``.

Figure 7 — "Eliminating Redundant Memory Loads": straight-line code
loading ``a.b^[i]`` and then ``a.b^[j]``; the second fetch of ``a.b^``
is replaced by the cached value.
"""

from repro import compile_program
from repro.ir import instructions as ins


FIGURE6 = """
MODULE Fig6;
TYPE
  Inner = REF ARRAY [0..15] OF INTEGER;
  A = OBJECT b: Inner; END;
VAR a: A; x, i, j: INTEGER;
BEGIN
  a := NEW (A, b := NEW (Inner));
  i := 0;
  j := 15;
  WHILE i < j DO
    IF i MOD 2 = 0 THEN
      x := x + a.b^[i];    (* ... := a.b^[i] *)
    ELSE
      x := x + a.b^[j];    (* ... := a.b^[j] *)
    END;
    INC (i);
    DEC (j);
  END;
  PutInt (x);
END Fig6.
"""

FIGURE7 = """
MODULE Fig7;
TYPE
  Inner = REF ARRAY [0..15] OF INTEGER;
  A = OBJECT b: Inner; END;
VAR a: A; x, y, i, j: INTEGER;
BEGIN
  a := NEW (A, b := NEW (Inner));
  a.b^[3] := 30;
  a.b^[7] := 70;
  i := 3;
  j := 7;
  x := a.b^[i];            (* t := a.b^; x := t[i] *)
  y := a.b^[j];            (* redundant a.b^ load; y := t[j] *)
  PutInt (x + y);
END Fig7.
"""


def loads_of_field(program_ir, proc_name, field):
    return [
        instr
        for instr in program_ir.procs[proc_name].all_instrs()
        if isinstance(instr, ins.LoadField) and instr.field == field
    ]


class TestFigure6:
    def test_invariant_base_hoisted(self):
        program = compile_program(FIGURE6)
        result = program.optimize("SMFieldTypeRefs")
        assert result.rle is not None
        # `a.b` is hoisted: at least one path moved to the preheader...
        assert result.rle.hoisted_paths >= 1
        # ...and the loop body no longer re-loads a.b every iteration:
        base_stats = program.run(program.base())
        opt_stats = program.run(result)
        assert opt_stats.output_text() == base_stats.output_text()
        assert opt_stats.heap_loads < base_stats.heap_loads

    def test_dynamic_ab_loads_once(self):
        """After hoisting, a.b is loaded O(1) times instead of O(n)."""
        from repro.runtime import LoadStoreTracer, Interpreter

        program = compile_program(FIGURE6)
        result = program.optimize("SMFieldTypeRefs")
        tracer = LoadStoreTracer()
        Interpreter(result.program, tracer=tracer).run()
        b_loads = [
            count
            for uid, count in tracer.loads_by_instr.items()
        ]
        ab_instrs = loads_of_field(result.program, "<main>", "b")
        dynamic_ab = sum(tracer.loads_by_instr.get(i.uid, 0) for i in ab_instrs)
        assert dynamic_ab <= 2  # preheader execution(s) only


class TestFigure7:
    def test_second_base_load_eliminated(self):
        program = compile_program(FIGURE7)
        result = program.optimize("SMFieldTypeRefs")
        # Static: only one surviving load of field b in main.
        surviving = loads_of_field(result.program, "<main>", "b")
        assert len(surviving) == 1
        # Semantics intact; the subscripts i and j stay distinct loads.
        stats = program.run(result)
        assert stats.output_text() == "100"

    def test_distinct_subscripts_not_merged(self):
        """t[i] and t[j] are different locations (Figure 7 keeps both)."""
        program = compile_program(FIGURE7)
        result = program.optimize("SMFieldTypeRefs")
        elems = [
            instr
            for instr in result.program.main.all_instrs()
            if isinstance(instr, ins.LoadElem)
        ]
        assert len(elems) == 2

    def test_typedecl_suffices_here(self):
        """No aliasing subtlety in the example: even TypeDecl-based RLE
        gets it (the paper's point that TypeDecl captures many wins)."""
        program = compile_program(FIGURE7)
        result = program.optimize("TypeDecl")
        surviving = loads_of_field(result.program, "<main>", "b")
        assert len(surviving) == 1
