"""Pipeline driver tests."""

import pytest

from repro import compile_program

SOURCE = """
MODULE M;
TYPE T = OBJECT n: INTEGER; METHODS m (): INTEGER := P; END;
VAR t: T; x, i: INTEGER;
PROCEDURE P (self: T): INTEGER = BEGIN RETURN self.n; END P;
BEGIN
  t := NEW (T, n := 1);
  FOR i := 1 TO 10 DO
    x := x + t.m ();
  END;
  PutInt (x);
END M.
"""


@pytest.fixture(scope="module")
def program():
    return compile_program(SOURCE)


def test_base_label(program):
    assert program.base().label == "base"


def test_build_labels(program):
    assert "rle[SMFieldTypeRefs]" in program.optimize("SMFieldTypeRefs").label
    combo = program.pipeline.build(
        analysis="TypeDecl", minv_inline=True, copyprop=True, pre=True
    )
    assert "minv+inline" in combo.label
    assert "copyprop" in combo.label
    assert "pre" in combo.label
    open_result = program.optimize("SMFieldTypeRefs", open_world=True)
    assert "open-world" in open_result.label


def test_each_config_lowers_fresh_ir(program):
    a = program.optimize("SMFieldTypeRefs")
    b = program.optimize("SMFieldTypeRefs")
    assert a.program is not b.program


def test_context_cached_per_world(program):
    assert program.pipeline.context(False) is program.pipeline.context(False)
    assert program.pipeline.context(False) is not program.pipeline.context(True)


def test_load_status_empty_for_base(program):
    assert program.base().load_status == {}


def test_load_status_populated_after_rle(program):
    result = program.optimize("SMFieldTypeRefs")
    assert result.load_status


def test_stats_attached_per_pass(program):
    result = program.pipeline.build(
        analysis="SMFieldTypeRefs", minv_inline=True, copyprop=True
    )
    assert result.rle is not None
    assert result.methodres is not None
    assert result.inline is not None
    assert result.copyprop is not None


def test_rle_disabled(program):
    result = program.pipeline.build(analysis=None, rle=False, minv_inline=True)
    assert result.rle is None
    assert result.methodres is not None


def test_all_configs_agree_on_output(program):
    expected = program.run(program.base()).output_text()
    configs = [
        dict(analysis="TypeDecl"),
        dict(analysis="FieldTypeDecl", hoist=False),
        dict(analysis="SMFieldTypeRefs", minv_inline=True),
        dict(analysis="SMFieldTypeRefs", copyprop=True, pre=True),
        dict(analysis="SMFieldTypeRefs", open_world=True, see_dope_loads=True),
    ]
    for kwargs in configs:
        result = program.pipeline.build(**kwargs)
        assert program.run(result).output_text() == expected, kwargs


def test_backend_cse_runs_in_base():
    source = """
    MODULE M;
    TYPE T = OBJECT n: INTEGER; END;
    VAR t: T; x: INTEGER;
    BEGIN
      t := NEW (T, n := 1);
      x := t.n;
      x := x + t.n;   (* block-local: the GCC-style backend merges it *)
      PutInt (x);
    END M.
    """
    program = compile_program(source)
    stats = program.run(program.base())
    assert stats.heap_loads == 1
