"""RLE unit tests: CSE, kills, hoisting, statuses."""

import pytest

from repro import compile_program
from repro.analysis.modref import ModRefAnalysis
from repro.analysis.openworld import AnalysisContext
from repro.ir import instructions as ins
from repro.ir.lowering import lower_module
from repro.opt.rle import RedundantLoadElimination
from repro.runtime import Interpreter, MachineModel
from repro.runtime.limit import (
    STATUS_ELIMINATED,
    STATUS_KILLED_CALL,
    STATUS_KILLED_STORE,
    STATUS_PARTIAL,
)


def optimize(source, analysis="SMFieldTypeRefs", **kwargs):
    """Lower fresh and run RLE only (no backend pass) for surgical tests."""
    program_obj = compile_program(source)
    checked = program_obj.checked
    program = lower_module(checked)
    ctx = AnalysisContext(checked)
    rle = RedundantLoadElimination(
        program, ctx.build(analysis), ModRefAnalysis(program), **kwargs
    )
    stats = rle.run()
    return program, stats


def run(program):
    return Interpreter(program, machine=MachineModel()).run()


DECLS = """
TYPE
  T = OBJECT n: INTEGER; f: T; END;
  U = OBJECT m: INTEGER; END;
VAR t, t2: T; u: U; x: INTEGER;
PROCEDURE Noop () = BEGIN END Noop;
PROCEDURE WriteT () = BEGIN t.n := 5; END WriteT;
PROCEDURE WriteU () = BEGIN u.m := 5; END WriteU;
"""


def wrap(body):
    return "MODULE M; {} BEGIN t := NEW (T); t2 := NEW (T); u := NEW (U); {} END M.".format(
        DECLS, body
    )


class TestCSE:
    def test_straight_line_redundant_load_removed(self):
        program, stats = optimize(wrap("x := t.n; x := x + t.n;"))
        assert stats.eliminated_loads == 1

    def test_load_after_same_path_store_forwarded(self):
        program, stats = optimize(wrap("t.n := 3; x := t.n;"))
        assert stats.eliminated_loads == 1

    def test_non_aliasing_store_does_not_kill(self):
        # u.m and t.n have the same value type but different fields of
        # unrelated objects — FieldTypeDecl keeps them apart.
        program, stats = optimize(wrap("x := t.n; u.m := 9; x := x + t.n;"))
        assert stats.eliminated_loads == 1

    def test_aliasing_store_kills(self):
        program, stats = optimize(wrap("x := t.n; t2.n := 9; x := x + t.n;"))
        assert stats.eliminated_loads == 0
        killed = [s for s in stats.load_status.values() if s == STATUS_KILLED_STORE]
        assert killed

    def test_root_redefinition_kills(self):
        program, stats = optimize(wrap("x := t.n; t := t2; x := x + t.n;"))
        assert stats.eliminated_loads == 0

    def test_call_with_relevant_writes_kills(self):
        program, stats = optimize(wrap("x := t.n; WriteT (); x := x + t.n;"))
        assert stats.eliminated_loads == 0
        assert STATUS_KILLED_CALL in stats.load_status.values()

    def test_call_with_irrelevant_writes_does_not_kill(self):
        """Interprocedural mod-ref: WriteU touches only U objects."""
        program, stats = optimize(wrap("x := t.n; WriteU (); x := x + t.n;"))
        assert stats.eliminated_loads == 1

    def test_pure_call_does_not_kill(self):
        program, stats = optimize(wrap("x := t.n; Noop (); x := x + t.n;"))
        assert stats.eliminated_loads == 1

    def test_availability_must_hold_on_all_paths(self):
        body = """
        IF x > 0 THEN
          x := t.n;
        END;
        x := x + t.n;
        """
        program, stats = optimize(wrap(body))
        assert stats.eliminated_loads == 0
        assert STATUS_PARTIAL in stats.load_status.values()

    def test_available_on_both_paths_eliminated(self):
        body = """
        IF x > 0 THEN
          x := t.n;
        ELSE
          x := t.n + 1;
        END;
        x := x + t.n;
        """
        program, stats = optimize(wrap(body))
        assert stats.eliminated_loads == 1

    def test_subscript_index_matters(self):
        source = """
        MODULE M;
        TYPE B = REF ARRAY OF INTEGER;
        VAR b: B; x, i, j: INTEGER;
        BEGIN
          b := NEW (B, 4);
          x := b^[i] + b^[j];
          x := x + b^[i];
        END M.
        """
        program, stats = optimize(source)
        # b^[i] reloaded -> eliminated; b^[j] distinct
        assert stats.eliminated_loads == 1

    def test_index_redefinition_kills(self):
        source = """
        MODULE M;
        TYPE B = REF ARRAY OF INTEGER;
        VAR b: B; x, i: INTEGER;
        BEGIN
          b := NEW (B, 4);
          x := b^[i];
          i := i + 1;
          x := x + b^[i];
        END M.
        """
        program, stats = optimize(source)
        assert stats.eliminated_loads == 0

    def test_dope_loads_invisible_by_default(self):
        source = """
        MODULE M;
        TYPE B = REF ARRAY OF INTEGER;
        VAR b: B; x: INTEGER;
        BEGIN
          b := NEW (B, 4);
          x := b^[0];
          x := x + b^[1];
        END M.
        """
        program, stats = optimize(source)
        dopes = [
            i for i in program.main.all_instrs() if isinstance(i, ins.LoadDopeData)
        ]
        assert len(dopes) == 2  # both dope loads survive

    def test_dope_ablation_eliminates(self):
        source = """
        MODULE M;
        TYPE B = REF ARRAY OF INTEGER;
        VAR b: B; x: INTEGER;
        BEGIN
          b := NEW (B, 4);
          x := b^[0];
          x := x + b^[1];
        END M.
        """
        program, stats = optimize(source, see_dope_loads=True)
        dopes = [
            i for i in program.main.all_instrs() if isinstance(i, ins.LoadDopeData)
        ]
        assert len(dopes) == 1


class TestHoisting:
    LOOP = """
    MODULE M;
    TYPE T = OBJECT n: INTEGER; END;
    VAR t: T; x, i: INTEGER;
    BEGIN
      t := NEW (T, n := 2);
      i := 0;
      WHILE i < 10 DO
        x := x + t.n;
        INC (i);
      END;
      PutInt (x);
    END M.
    """

    def test_invariant_load_hoisted(self):
        program, stats = optimize(self.LOOP)
        assert stats.hoisted_paths >= 1
        assert stats.eliminated_loads >= 1

    def test_hoisting_preserves_semantics_and_saves_loads(self):
        base_prog, _ = optimize(self.LOOP, hoist=False)
        hoist_prog, _ = optimize(self.LOOP, hoist=True)
        s0 = run(base_prog)
        s1 = run(hoist_prog)
        assert s0.output_text() == s1.output_text() == "20"
        assert s1.heap_loads < s0.heap_loads

    def test_store_in_loop_prevents_hoist(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T; x, i: INTEGER;
        BEGIN
          t := NEW (T);
          i := 0;
          WHILE i < 10 DO
            x := x + t.n;
            t.n := x;
            INC (i);
          END;
        END M.
        """
        program, stats = optimize(source)
        assert stats.hoisted_paths == 0

    def test_changing_base_prevents_hoist(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; f: T; END;
        VAR t: T; x: INTEGER;
        BEGIN
          t := NEW (T, f := NEW (T));
          WHILE t # NIL DO
            x := x + t.n;
            t := t.f;
          END;
        END M.
        """
        program, stats = optimize(source)
        assert stats.hoisted_paths == 0

    def test_conditional_load_not_hoisted(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T; x, i: INTEGER;
        BEGIN
          t := NEW (T);
          i := 0;
          WHILE i < 10 DO
            IF i MOD 2 = 0 THEN
              x := x + t.n;
            END;
            INC (i);
          END;
        END M.
        """
        program, stats = optimize(source)
        assert stats.hoisted_paths == 0

    def test_zero_trip_loop_safe(self):
        """Hoisted loads are speculative: a zero-trip loop over a NIL base
        must not trap."""
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T; x, i: INTEGER;
        BEGIN
          i := 99;
          WHILE i < 10 DO
            x := x + t.n;   (* t is NIL, but the loop never runs *)
            INC (i);
          END;
          PutInt (x);
        END M.
        """
        program, stats = optimize(source)
        stats_run = run(program)
        assert stats_run.output_text() == "0"


class TestCorrectnessSpot:
    def test_outputs_match_after_rle(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; f: T; END;
        VAR a, b: T; x, i: INTEGER;
        BEGIN
          a := NEW (T, n := 1);
          b := NEW (T, n := 2);
          a.f := b;
          FOR i := 0 TO 20 DO
            x := x + a.n + a.f.n;
            IF i MOD 3 = 0 THEN
              b.n := b.n + 1;   (* aliases a.f.n! *)
            END;
          END;
          PutInt (x);
        END M.
        """
        plain = compile_program(source)
        base = plain.run(plain.base())
        opt = plain.optimize("SMFieldTypeRefs")
        after = plain.run(opt)
        assert base.output_text() == after.output_text()
        assert after.heap_loads <= base.heap_loads
