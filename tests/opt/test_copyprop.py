"""Copy propagation tests — the Breakup-category fix."""

from repro import compile_program
from repro.ir.lowering import lower_module
from repro.ir.verify import verify_program
from repro.opt.copyprop import CopyPropagation
from repro.runtime import Interpreter, MachineModel


def run(program_ir):
    return Interpreter(program_ir, machine=MachineModel()).run()


BREAKUP = """
MODULE M;
TYPE T = OBJECT n: INTEGER; END;
VAR t, o: T; x: INTEGER;
BEGIN
  t := NEW (T, n := 5);
  x := t.n;
  o := t;            (* a reference copy *)
  x := x + o.n;      (* 'breakup': same location via a different path *)
  PutInt (x);
END M.
"""


class TestRewriting:
    def test_copy_fact_rewrites_path(self):
        prog = compile_program(BREAKUP)
        program = lower_module(prog.checked)
        stats = CopyPropagation(program).run()
        assert stats.facts_created >= 1
        assert stats.paths_rewritten >= 1
        aps = {
            str(i.ap)
            for i in program.main.all_instrs()
            if i.is_heap_load and not i.is_dope
        }
        # both loads are now rooted at t
        assert aps == {"t.n"}

    def test_semantics_preserved(self):
        prog = compile_program(BREAKUP)
        baseline = run(lower_module(prog.checked)).output_text()
        program = lower_module(prog.checked)
        CopyPropagation(program).run()
        verify_program(program)
        assert run(program).output_text() == baseline == "10"

    def test_enables_rle(self):
        prog = compile_program(BREAKUP)
        plain = prog.optimize("SMFieldTypeRefs")
        with_cp = prog.pipeline.build(analysis="SMFieldTypeRefs", copyprop=True)
        s_plain = prog.run(plain)
        s_cp = prog.run(with_cp)
        assert s_cp.output_text() == s_plain.output_text()
        assert s_cp.heap_loads < s_plain.heap_loads


class TestKills:
    def test_fact_killed_by_redefinition(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t, u, o: T; x: INTEGER;
        BEGIN
          t := NEW (T, n := 1);
          u := NEW (T, n := 2);
          o := t;
          t := u;              (* kills the o = t fact *)
          x := o.n;            (* still the OLD t's object! *)
          PutInt (x);
          PutInt (t.n);
        END M.
        """
        prog = compile_program(source)
        baseline = run(lower_module(prog.checked)).output_text()
        program = lower_module(prog.checked)
        CopyPropagation(program).run()
        assert run(program).output_text() == baseline == "12"
        # The o.n path must NOT have been rewritten to t.n.
        aps = [
            str(i.ap)
            for i in program.main.all_instrs()
            if i.is_heap_load and not i.is_dope
        ]
        assert "o.n" in aps

    def test_with_location_bindings_never_propagate(self):
        """WITH o = t binds the *location* of variable t (Modula-3
        semantics): o is a handle, not a copy — excluded from facts."""
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t, u: T; x: INTEGER;
        BEGIN
          t := NEW (T, n := 1);
          u := NEW (T, n := 2);
          WITH o = t DO
            t := u;            (* o sees the new t *)
            x := o.n;
          END;
          PutInt (x);
        END M.
        """
        prog = compile_program(source)
        program = lower_module(prog.checked)
        CopyPropagation(program).run()
        assert run(program).output_text() == "2"

    def test_address_taken_vars_excluded(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t, u: T; x: INTEGER;
        PROCEDURE Clobber (VAR p: T) = BEGIN p := NEW (T, n := 9); END Clobber;
        BEGIN
          t := NEW (T, n := 1);
          u := t;
          Clobber (u);         (* rewrites u behind the copy *)
          x := u.n;
          PutInt (x);
        END M.
        """
        prog = compile_program(source)
        baseline = run(lower_module(prog.checked)).output_text()
        program = lower_module(prog.checked)
        CopyPropagation(program).run()
        assert run(program).output_text() == baseline == "9"
        aps = [
            str(i.ap)
            for i in program.main.all_instrs()
            if i.is_heap_load and not i.is_dope
        ]
        assert "u.n" in aps  # not rewritten: u's address was taken

    def test_globals_excluded(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR g, t: T; x: INTEGER;
        PROCEDURE SetG () = BEGIN g := NEW (T, n := 7); END SetG;
        BEGIN
          g := NEW (T, n := 1);
          t := g;
          SetG ();
          x := t.n;   (* must still read through t, not g *)
          PutInt (x);
        END M.
        """
        prog = compile_program(source)
        program = lower_module(prog.checked)
        CopyPropagation(program).run()
        assert run(program).output_text() == "1"


class TestMergePoints:
    def test_facts_intersect_at_joins(self):
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t, u, o: T; x: INTEGER; flip: BOOLEAN;
        BEGIN
          t := NEW (T, n := 1);
          u := NEW (T, n := 2);
          IF flip THEN
            o := t;
          ELSE
            o := u;
          END;
          x := o.n;     (* o could be either: no rewrite allowed *)
          PutInt (x);
        END M.
        """
        prog = compile_program(source)
        program = lower_module(prog.checked)
        CopyPropagation(program).run()
        aps = [
            str(i.ap)
            for i in program.main.all_instrs()
            if i.is_heap_load and not i.is_dope
        ]
        assert "o.n" in aps
        assert run(program).output_text() == "2"  # flip defaults FALSE


class TestIndexPropagation:
    def test_subscript_index_copies(self):
        source = """
        MODULE M;
        TYPE B = REF ARRAY OF INTEGER;
        VAR b: B; i, j, x: INTEGER;
        BEGIN
          b := NEW (B, 4);
          i := 2;
          b^[i] := 5;
          j := i;
          x := b^[j];   (* same element, provable after propagation *)
          PutInt (x);
        END M.
        """
        prog = compile_program(source)
        program = lower_module(prog.checked)
        CopyPropagation(program).run()
        aps = {
            str(i.ap)
            for i in program.main.all_instrs()
            if (i.is_heap_load or i.is_heap_store) and not i.is_dope
        }
        assert aps == {"b^[i]"}
        assert run(program).output_text() == "5"


class TestSuiteIntegration:
    def test_benchmarks_unchanged_semantics(self, suite):
        from repro.bench.suite import BASE, RunConfig

        for name in ("format", "slisp", "m3cg"):
            base = suite.run(name, BASE)
            cp = suite.run(
                name,
                RunConfig(analysis="SMFieldTypeRefs", copyprop=True, minv_inline=True),
            )
            assert cp.output_text() == base.output_text()
            assert cp.heap_loads <= base.heap_loads
