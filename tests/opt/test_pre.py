"""PRE-of-loads tests — the Conditional-category fix (paper future work)."""

from repro import compile_program
from repro.ir.verify import verify_program
from repro.runtime.limit import Category


CONDITIONAL = """
MODULE M;
TYPE T = OBJECT n: INTEGER; END;
VAR t, u: T; x, i: INTEGER;
BEGIN
  t := NEW (T, n := 3);
  u := NEW (T, n := 0);
  i := 0;
  WHILE i < 30 DO
    IF i MOD 2 = 0 THEN
      x := x + t.n;     (* t.n available on this path... *)
    ELSE
      u.n := x MOD 7;   (* ...killed here (u.n may alias t.n) *)
    END;
    x := x + t.n;       (* partially redundant: PRE bait *)
    INC (i);
  END;
  PutInt (x);
END M.
"""

DIAMOND = """
MODULE M;
TYPE T = OBJECT n: INTEGER; END;
VAR t: T; x: INTEGER; flip: BOOLEAN;
BEGIN
  t := NEW (T, n := 7);
  IF flip THEN
    x := t.n;
  ELSE
    x := 1;
  END;
  x := x + t.n;         (* available on the THEN path only *)
  PutInt (x);
END M.
"""


class TestPRE:
    def test_semantics_preserved(self):
        prog = compile_program(CONDITIONAL)
        base = prog.run(prog.base())
        pre = prog.pipeline.build(analysis="SMFieldTypeRefs", pre=True)
        verify_program(pre.program)
        s = prog.run(pre)
        assert s.output_text() == base.output_text()

    def test_pre_inserts_and_pays_off(self):
        prog = compile_program(CONDITIONAL)
        plain = prog.pipeline.build(analysis="SMFieldTypeRefs")
        pre = prog.pipeline.build(analysis="SMFieldTypeRefs", pre=True)
        assert pre.rle is not None and pre.rle.pre_inserted > 0
        s_plain = prog.run(plain)
        s_pre = prog.run(pre)
        assert s_pre.output_text() == s_plain.output_text()
        # The partially redundant load becomes fully redundant.
        assert s_pre.heap_loads <= s_plain.heap_loads

    def test_diamond_edge_insertion(self):
        prog = compile_program(DIAMOND)
        base = prog.run(prog.base())
        pre = prog.pipeline.build(analysis="SMFieldTypeRefs", pre=True)
        verify_program(pre.program)
        s = prog.run(pre)
        assert s.output_text() == base.output_text() == "8"

    def test_conditional_category_shrinks(self):
        """PRE removes the Figure 10 'Conditional' residue."""
        prog = compile_program(CONDITIONAL)
        plain = prog.pipeline.build(analysis="SMFieldTypeRefs")
        plain_report = prog.limit_study(plain)
        pre = prog.pipeline.build(analysis="SMFieldTypeRefs", pre=True)
        pre_report = prog.limit_study(pre)
        assert (
            pre_report.by_category[Category.CONDITIONAL]
            <= plain_report.by_category[Category.CONDITIONAL]
        )
        assert pre_report.redundant_loads <= plain_report.redundant_loads

    def test_speculative_insertion_does_not_trap(self):
        """PRE may insert a load on a path where the base is NIL; the
        inserted load must be speculative."""
        source = """
        MODULE M;
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T; x: INTEGER; flip: BOOLEAN;
        BEGIN
          IF flip THEN
            t := NEW (T, n := 1);
            x := t.n;
          END;
          IF flip THEN
            x := x + t.n;
          END;
          PutInt (x);
        END M.
        """
        prog = compile_program(source)
        pre = prog.pipeline.build(analysis="SMFieldTypeRefs", pre=True)
        s = prog.run(pre)  # flip is FALSE: t stays NIL everywhere
        assert s.output_text() == "0"


class TestSuiteIntegration:
    def test_benchmarks_unchanged_semantics(self, suite):
        from repro.bench.suite import BASE, RunConfig

        for name in ("format", "dformat", "k-tree"):
            base = suite.run(name, BASE)
            pre = suite.run(name, RunConfig(analysis="SMFieldTypeRefs", pre=True))
            assert pre.output_text() == base.output_text()

    def test_pre_reduces_conditional_residue_on_format(self, suite):
        from repro.bench.suite import RunConfig

        plain = suite.limit_study(name="format", config=RunConfig(analysis="SMFieldTypeRefs"))
        pre = suite.limit_study(
            name="format", config=RunConfig(analysis="SMFieldTypeRefs", pre=True)
        )
        assert (
            pre.by_category[Category.CONDITIONAL]
            <= plain.by_category[Category.CONDITIONAL]
        )
