"""Cache simulator and cost model tests."""

from repro.runtime.machine import CacheSim, MachineModel


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        cache = CacheSim(size=1024, line_size=32)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(31)  # same line
        assert not cache.access(32)  # next line

    def test_direct_mapped_conflict(self):
        cache = CacheSim(size=1024, line_size=32)
        cache.access(0)
        cache.access(1024)  # maps to the same index, evicts
        assert not cache.access(0)

    def test_counts(self):
        cache = CacheSim(size=1024, line_size=32)
        for addr in (0, 0, 64, 64, 128):
            cache.access(addr)
        assert cache.hits == 2
        assert cache.misses == 3

    def test_reset(self):
        cache = CacheSim()
        cache.access(0)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert not cache.access(0)

    def test_default_geometry(self):
        cache = CacheSim()
        assert cache.size == 32 * 1024  # the paper's enlarged primary cache
        assert cache.n_lines * cache.line_size == cache.size


class TestMachineModel:
    def test_load_latencies(self):
        m = MachineModel(CacheSim(size=1024, line_size=32))
        m.load(0)  # miss
        assert m.cycles == m.MISS_LATENCY
        m.load(0)  # hit
        assert m.cycles == m.MISS_LATENCY + m.HIT_LATENCY

    def test_store_updates_cache_without_cycles(self):
        m = MachineModel(CacheSim(size=1024, line_size=32))
        m.store(0)
        assert m.cycles == 0
        m.load(0)  # now a hit thanks to the store
        assert m.cycles == m.HIT_LATENCY

    def test_instruction_counting(self):
        m = MachineModel()
        m.instruction(5)
        assert m.cycles == 5

    def test_reset(self):
        m = MachineModel()
        m.load(0)
        m.reset()
        assert m.cycles == 0
