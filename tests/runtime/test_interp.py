"""Interpreter semantics tests: every language feature end to end."""

import pytest

from repro import compile_program
from repro.runtime import Interpreter, M3RuntimeError, MachineModel


def run(body, decls=""):
    program = compile_program(
        "MODULE M; {} BEGIN {} END M.".format(decls, body)
    )
    return program.run()


def out(body, decls=""):
    return run(body, decls).output_text()


class TestScalars:
    def test_arithmetic(self):
        assert out("PutInt (2 + 3 * 4 - 1);") == "13"

    def test_div_mod_floor_semantics(self):
        assert out("PutInt ((-7) DIV 2); PutText (\" \"); PutInt ((-7) MOD 2);") == "-4 1"

    def test_div_by_zero_traps(self):
        with pytest.raises(M3RuntimeError):
            run("PutInt (1 DIV 0);")

    def test_comparisons_and_bools(self):
        assert out("IF 1 < 2 AND NOT (3 = 4) THEN PutText (\"yes\"); END;") == "yes"

    def test_short_circuit_and(self):
        # right operand would trap; short-circuit must skip it
        decls = "VAR c: REF INTEGER;"
        assert out("IF c # NIL AND c^ = 1 THEN PutText (\"y\"); ELSE PutText (\"n\"); END;", decls) == "n"

    def test_short_circuit_or(self):
        decls = "VAR c: REF INTEGER;"
        assert out("IF c = NIL OR c^ = 1 THEN PutText (\"y\"); END;", decls) == "y"

    def test_char_ord_val(self):
        assert out("PutInt (ORD ('a')); PutChar (VAL (98, CHAR));") == "97b"

    def test_min_max_abs(self):
        assert out("PutInt (MIN (2, 1) + MAX (2, 1) + ABS (-4));") == "7"

    def test_text_ops(self):
        assert out('PutInt (TextLen ("abc")); PutChar (TextChar ("abc", 1));') == "3b"
        assert out('PutText ("a" & "b" & IntToText (7) & CharToText (\'!\'));') == "ab7!"


class TestControlFlow:
    def test_while(self):
        assert out(
            "VAR i: INTEGER := 0; BEGIN WHILE i < 3 DO INC (i); END; PutInt (i);"
            .replace("VAR i: INTEGER := 0; BEGIN ", ""),
            "VAR i: INTEGER;",
        ) == "3"

    def test_repeat_runs_at_least_once(self):
        assert out("REPEAT PutChar ('x'); UNTIL TRUE;") == "x"

    def test_for_with_negative_step(self):
        assert out("FOR i := 3 TO 1 BY -1 DO PutInt (i); END;") == "321"

    def test_for_zero_trip(self):
        assert out("FOR i := 3 TO 1 DO PutInt (i); END; PutChar ('.');") == "."

    def test_loop_exit(self):
        assert out(
            "i := 0; LOOP INC (i); IF i = 4 THEN EXIT; END; END; PutInt (i);",
            "VAR i: INTEGER;",
        ) == "4"

    def test_nested_loop_exit_inner_only(self):
        assert out(
            """
            FOR i := 0 TO 1 DO
              LOOP EXIT; END;
              PutInt (i);
            END;
            """,
        ) == "01"

    def test_case_with_else(self):
        assert out(
            "FOR i := 0 TO 3 DO CASE i OF | 1 => PutChar ('a'); | 2, 3 => PutChar ('b'); ELSE PutChar ('?'); END; END;"
        ) == "?abb"

    def test_assert_traps(self):
        with pytest.raises(M3RuntimeError):
            run("ASSERT (FALSE);")


class TestHeap:
    DECLS = """
    TYPE
      T = OBJECT n: INTEGER; f: T; END;
      B = REF ARRAY OF CHAR;
      F = REF ARRAY [0..3] OF INTEGER;
      R = REF RECORD a, b: INTEGER; END;
      C = REF INTEGER;
    VAR t: T; b: B; fx: F; r: R; c: C;
    """

    def test_object_fields_default_and_set(self):
        assert out("t := NEW (T); PutInt (t.n); t.n := 5; PutInt (t.n);", self.DECLS) == "05"

    def test_field_inits(self):
        assert out("t := NEW (T, n := 9, f := NEW (T, n := 1)); PutInt (t.n + t.f.n);", self.DECLS) == "10"

    def test_nil_deref_traps(self):
        with pytest.raises(M3RuntimeError):
            run("t.n := 1;", self.DECLS)

    def test_open_array(self):
        assert out(
            "b := NEW (B, 3); b^[0] := 'x'; PutInt (NUMBER (b^)); PutChar (b^[0]); PutChar (b^[2]);",
            self.DECLS,
        ) == "3x\0"

    def test_array_bounds_trap(self):
        with pytest.raises(M3RuntimeError):
            run("b := NEW (B, 2); b^[2] := 'x';", self.DECLS)

    def test_negative_index_traps(self):
        with pytest.raises(M3RuntimeError):
            run("b := NEW (B, 2); b^[-1] := 'x';", self.DECLS)

    def test_fixed_array(self):
        assert out("fx := NEW (F); fx^[3] := 7; PutInt (fx^[3] + NUMBER (fx^));", self.DECLS) == "11"

    def test_ref_record(self):
        assert out("r := NEW (R, a := 2); r^.b := 3; PutInt (r^.a * r^.b);", self.DECLS) == "6"

    def test_scalar_cell(self):
        assert out("c := NEW (C); c^ := 41; c^ := c^ + 1; PutInt (c^);", self.DECLS) == "42"

    def test_reference_equality_is_identity(self):
        assert out(
            "t := NEW (T); IF t = t THEN PutChar ('='); END; IF t # NEW (T) THEN PutChar ('#'); END;",
            self.DECLS,
        ) == "=#"


class TestProceduresAndMethods:
    def test_recursion(self):
        decls = """
        PROCEDURE Fib (n: INTEGER): INTEGER =
        BEGIN
          IF n < 2 THEN RETURN n; END;
          RETURN Fib (n - 1) + Fib (n - 2);
        END Fib;
        """
        assert out("PutInt (Fib (10));", decls) == "55"

    def test_var_params_write_back(self):
        decls = """
        VAR x: INTEGER;
        PROCEDURE Swap (VAR a, b: INTEGER) =
        VAR t: INTEGER;
        BEGIN
          t := a; a := b; b := t;
        END Swap;
        VAR y: INTEGER;
        """
        assert out("x := 1; y := 2; Swap (x, y); PutInt (x); PutInt (y);", decls) == "21"

    def test_var_param_on_heap_field(self):
        decls = """
        TYPE T = OBJECT n: INTEGER; END;
        VAR t: T;
        PROCEDURE Bump (VAR v: INTEGER) = BEGIN v := v + 1; END Bump;
        """
        assert out("t := NEW (T, n := 6); Bump (t.n); PutInt (t.n);", decls) == "7"

    def test_var_param_on_element(self):
        decls = """
        TYPE B = REF ARRAY OF INTEGER;
        VAR b: B;
        PROCEDURE Bump (VAR v: INTEGER) = BEGIN v := v + 1; END Bump;
        """
        assert out("b := NEW (B, 2); Bump (b^[1]); PutInt (b^[1]);", decls) == "1"

    def test_method_dispatch_dynamic(self):
        decls = """
        TYPE
          A = OBJECT METHODS tag (): INTEGER := ATag; END;
          B = A OBJECT OVERRIDES tag := BTag; END;
        VAR a: A;
        PROCEDURE ATag (self: A): INTEGER = BEGIN RETURN 1; END ATag;
        PROCEDURE BTag (self: B): INTEGER = BEGIN RETURN 2; END BTag;
        """
        assert out("a := NEW (A); PutInt (a.tag ()); a := NEW (B); PutInt (a.tag ());", decls) == "12"

    def test_method_on_nil_traps(self):
        decls = """
        TYPE A = OBJECT METHODS m () := P; END;
        VAR a: A;
        PROCEDURE P (self: A) = BEGIN END P;
        """
        with pytest.raises(M3RuntimeError):
            run("a.m ();", decls)

    def test_with_aliases_location(self):
        decls = "TYPE T = OBJECT n: INTEGER; END; VAR t: T;"
        assert out(
            "t := NEW (T, n := 1); WITH w = t.n DO w := w + 9; END; PutInt (t.n);",
            decls,
        ) == "10"

    def test_narrow_failure_traps(self):
        decls = "TYPE A = OBJECT END; B = A OBJECT END; VAR a: A; b: B;"
        with pytest.raises(M3RuntimeError):
            run("a := NEW (A); b := NARROW (a, B);", decls)

    def test_narrow_of_nil_ok(self):
        decls = "TYPE A = OBJECT END; B = A OBJECT END; VAR a: A; b: B;"
        assert out("b := NARROW (a, B); IF b = NIL THEN PutChar ('n'); END;", decls) == "n"

    def test_istype(self):
        decls = "TYPE A = OBJECT END; B = A OBJECT END; VAR a: A;"
        assert out(
            "a := NEW (B); IF ISTYPE (a, B) THEN PutChar ('y'); END; IF ISTYPE (NIL, A) THEN PutChar ('n'); END;",
            decls,
        ) == "yn"


class TestCounters:
    def test_heap_load_counting(self):
        decls = (
            "TYPE T = OBJECT n: INTEGER; END; VAR t: T; x: INTEGER; "
            "PROCEDURE P () = BEGIN END P;"
        )
        # The baseline includes the GCC-style backend CSE (with store-to-
        # load forwarding); a call conservatively kills availability, so
        # both loads stay.
        stats = run("t := NEW (T); x := t.n; P (); x := t.n;", decls)
        assert stats.heap_loads == 2
        assert stats.other_loads >= 2

    def test_backend_merges_adjacent_loads(self):
        decls = "TYPE T = OBJECT n: INTEGER; END; VAR t: T; x: INTEGER;"
        stats = run("t := NEW (T); x := t.n; x := t.n;", decls)
        assert stats.heap_loads == 1

    def test_dope_loads_counted_as_heap(self):
        decls = "TYPE B = REF ARRAY OF CHAR; VAR b: B; c: CHAR;"
        stats = run("b := NEW (B, 4); c := b^[1];", decls)
        # dope data + element
        assert stats.heap_loads == 2

    def test_cycles_include_load_latency(self):
        decls = "TYPE T = OBJECT n: INTEGER; END; VAR t: T; x: INTEGER;"
        stats = run("t := NEW (T); x := t.n;", decls)
        assert stats.cycles > stats.instructions

    def test_output_ordering(self):
        assert out('PutInt (1); PutText ("-"); PutChar (\'c\');') == "1-c"

    def test_call_counting(self):
        decls = "PROCEDURE P () = BEGIN END P;"
        stats = run("P (); P ();", decls)
        assert stats.calls == 3  # main + 2
