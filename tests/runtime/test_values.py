"""Heap value model tests: addresses, offsets, defaults."""

import pytest

from repro.lang import types as ty
from repro.runtime.values import (
    ArrayRef,
    DopeRef,
    HeapAllocator,
    M3RuntimeError,
    ObjectRef,
    RecordRef,
    default_value,
    element_size,
)


def obj_type():
    t = ty.ObjectType("T", ty.ROOT, [("a", ty.INTEGER), ("b", ty.BOOLEAN)])
    return ty.ObjectType("S", t, [("c", ty.TEXT)])


class TestAllocator:
    def test_monotone_and_aligned(self):
        heap = HeapAllocator()
        a = heap.allocate(24)
        b = heap.allocate(1)
        c = heap.allocate(8)
        assert a < b < c
        assert all(addr % 8 == 0 for addr in (a, b, c))

    def test_accounting(self):
        heap = HeapAllocator()
        heap.allocate(10)  # rounded to 16
        heap.allocate(8)
        assert heap.allocations == 2
        assert heap.allocated_bytes == 24


class TestObjectRef:
    def test_field_offsets_follow_layout(self):
        s = obj_type()
        ref = ObjectRef(s, 0x100)
        assert ref.field_addr("a") == 0x100
        assert ref.field_addr("b") == 0x108
        assert ref.field_addr("c") == 0x110

    def test_defaults_by_type(self):
        ref = ObjectRef(obj_type(), 0)
        assert ref.slots["a"] == 0
        assert ref.slots["b"] is False
        assert ref.slots["c"] == ""

    def test_size(self):
        assert ObjectRef.size_of(obj_type()) == 3 * 8


class TestRecordRef:
    def test_record_fields(self):
        rec = ty.RecordType([("x", ty.INTEGER), ("y", ty.CHAR)])
        ref_t = ty.RefType(rec)
        ref = RecordRef(ref_t, 0x200)
        assert ref.slots == {"x": 0, "y": "\0"}
        assert ref.field_addr("y") == 0x208

    def test_scalar_cell(self):
        ref_t = ty.RefType(ty.INTEGER)
        cell = RecordRef(ref_t, 0x300)
        assert cell.slots == {RecordRef.SCALAR_SLOT: 0}
        assert RecordRef.size_of(ref_t) == 8


class TestArrayRef:
    def test_int_elements_are_8_bytes(self):
        arr = ArrayRef(ty.INTEGER, 4, 0x400)
        assert arr.elem_addr(0) == 0x400
        assert arr.elem_addr(3) == 0x418

    def test_char_elements_are_1_byte(self):
        arr = ArrayRef(ty.CHAR, 16, 0x500)
        assert arr.elem_addr(15) == 0x50F
        assert element_size(ty.CHAR) == 1

    def test_bounds_check(self):
        arr = ArrayRef(ty.INTEGER, 2, 0)
        arr.check_index(0)
        arr.check_index(1)
        with pytest.raises(M3RuntimeError):
            arr.check_index(2)
        with pytest.raises(M3RuntimeError):
            arr.check_index(-1)

    def test_size_of(self):
        assert ArrayRef.size_of(ty.CHAR, 10) == 10
        assert ArrayRef.size_of(ty.INTEGER, 10) == 80


class TestDopeRef:
    def test_dope_layout(self):
        data = ArrayRef(ty.INTEGER, 3, 0x600)
        dope = DopeRef(data, 0x700)
        assert dope.count == 3
        assert dope.data_addr == 0x700
        assert dope.count_addr == 0x708
        assert dope.data is data


def test_default_values():
    assert default_value(ty.INTEGER) == 0
    assert default_value(ty.BOOLEAN) is False
    assert default_value(ty.CHAR) == "\0"
    assert default_value(ty.TEXT) == ""
    assert default_value(obj_type()) is None
    assert default_value(ty.RefType(ty.INTEGER)) is None
