"""Tracer and limit-study tests — the paper's dynamic-redundancy metric."""

from repro import compile_program
from repro.ir.instructions import Instr, LoadField
from repro.ir.access_path import Qualify, VarRoot
from repro.lang import types as ty
from repro.lang.errors import UNKNOWN_LOCATION
from repro.lang.symtab import Symbol
from repro.runtime import Interpreter, LimitStudy, LoadStoreTracer
from repro.runtime.limit import Category


def fake_load(ap=None):
    sym = Symbol("x", "var", ty.INTEGER, UNKNOWN_LOCATION)
    t = ty.ObjectType("T", ty.ROOT, [("f", ty.INTEGER)])
    ap = ap or Qualify(VarRoot(Symbol("t", "var", t, UNKNOWN_LOCATION)), "f", ty.INTEGER, t)
    from repro.ir.instructions import Temp

    return LoadField(Temp(0), Temp(1), "f", ap)


class TestTracerDefinition:
    """'Two consecutive loads of the same address load the same value in
    the same procedure activation.'"""

    def test_same_value_redundant(self):
        tracer = LoadStoreTracer()
        load = fake_load()
        tracer.on_load(load, 100, 7, activation=1)
        tracer.on_load(load, 100, 7, activation=1)
        assert tracer.redundant_loads == 1

    def test_different_value_not_redundant(self):
        tracer = LoadStoreTracer()
        load = fake_load()
        tracer.on_load(load, 100, 7, activation=1)
        tracer.on_load(load, 100, 8, activation=1)
        assert tracer.redundant_loads == 0

    def test_different_activation_not_redundant(self):
        tracer = LoadStoreTracer()
        load = fake_load()
        tracer.on_load(load, 100, 7, activation=1)
        tracer.on_load(load, 100, 7, activation=2)
        assert tracer.redundant_loads == 0

    def test_different_address_not_redundant(self):
        tracer = LoadStoreTracer()
        load = fake_load()
        tracer.on_load(load, 100, 7, activation=1)
        tracer.on_load(load, 108, 7, activation=1)
        assert tracer.redundant_loads == 0

    def test_store_writing_same_value_still_redundant(self):
        """ATOM compared values only: a store of the same value between
        two loads leaves them 'redundant' (the classifier uses the store
        clock to tell this case apart)."""
        events = []
        tracer = LoadStoreTracer(
            on_redundant=lambda i, p, s: events.append(s)
        )
        load = fake_load()
        tracer.on_load(load, 100, 7, activation=1)
        tracer.on_store(load, 100, 7, activation=1)
        tracer.on_load(load, 100, 7, activation=1)
        assert tracer.redundant_loads == 1
        assert events == [True]  # a store did intervene

    def test_no_store_intervened_flag(self):
        events = []
        tracer = LoadStoreTracer(on_redundant=lambda i, p, s: events.append(s))
        load = fake_load()
        tracer.on_load(load, 100, 7, activation=1)
        tracer.on_load(load, 100, 7, activation=1)
        assert events == [False]

    def test_reference_values_compared_by_identity(self):
        tracer = LoadStoreTracer()
        load = fake_load()

        class Ref:  # two equal-looking but distinct heap values
            def __eq__(self, other):
                return True

            def __hash__(self):
                return 0

        tracer.on_load(load, 100, Ref(), activation=1)
        tracer.on_load(load, 100, Ref(), activation=1)
        assert tracer.redundant_loads == 0

    def test_per_instr_counts(self):
        tracer = LoadStoreTracer()
        load = fake_load()
        for _ in range(3):
            tracer.on_load(load, 100, 7, activation=1)
        assert tracer.loads_by_instr[load.uid] == 3
        assert tracer.redundant_by_instr[load.uid] == 2


class TestLimitStudyEndToEnd:
    SOURCE = """
    MODULE M;
    TYPE T = OBJECT n: INTEGER; END;
        B = REF ARRAY OF INTEGER;
    VAR t: T; b: B; x: INTEGER;

    PROCEDURE Use () =
    VAR i: INTEGER;
    BEGIN
      i := 0;
      WHILE i < 10 DO
        x := x + t.n;        (* t.n redundant across iterations *)
        x := x + b^[0];      (* dope load redundant too *)
        INC (i);
      END;
    END Use;

    BEGIN
      t := NEW (T, n := 3);
      b := NEW (B, 2);
      Use ();
    END M.
    """

    def test_base_program_has_redundancy(self):
        program = compile_program(self.SOURCE)
        report = program.limit_study(program.base())
        assert report.redundant_loads > 0
        assert 0 < report.redundant_fraction <= 1

    def test_rle_reduces_redundancy(self):
        program = compile_program(self.SOURCE)
        before = program.limit_study(program.base())
        opt = program.optimize("SMFieldTypeRefs")
        after = program.limit_study(opt)
        assert after.redundant_loads < before.redundant_loads

    def test_residue_is_encapsulation(self):
        """After RLE the only redundant loads left are dope accesses."""
        program = compile_program(self.SOURCE)
        opt = program.optimize("SMFieldTypeRefs")
        report = program.limit_study(opt)
        non_dope = sum(
            count
            for cat, count in report.by_category.items()
            if cat is not Category.ENCAPSULATION
        )
        assert report.by_category[Category.ENCAPSULATION] > 0
        assert non_dope == 0

    def test_dope_ablation_removes_encapsulation(self):
        """Extension: when RLE may see dope loads, Encapsulation vanishes."""
        program = compile_program(self.SOURCE)
        opt = program.optimize("SMFieldTypeRefs", see_dope_loads=True)
        report = program.limit_study(opt)
        assert report.by_category[Category.ENCAPSULATION] == 0
