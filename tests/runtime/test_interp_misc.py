"""Interpreter odds and ends: stats properties, step limits, determinism."""

import pytest

from repro import compile_program
from repro.runtime import Interpreter, M3RuntimeError, MachineModel


SOURCE = """
MODULE M;
TYPE T = OBJECT n: INTEGER; END;
VAR t: T; x, i: INTEGER;
BEGIN
  t := NEW (T, n := 2);
  FOR i := 1 TO 100 DO
    x := x + t.n;
  END;
  PutInt (x);
END M.
"""

INFINITE = """
MODULE M;
VAR x: INTEGER;
BEGIN
  LOOP
    x := x + 1;
  END;
END M.
"""


def test_stats_properties():
    program = compile_program(SOURCE)
    stats = program.run()
    assert stats.loads == stats.heap_loads + stats.other_loads
    assert 0.0 < stats.heap_load_fraction < 1.0
    assert 0.0 <= stats.other_load_fraction < 1.0
    assert stats.output_text() == "200"
    assert "instrs" in repr(stats)


def test_step_limit_stops_runaway():
    from repro.lang.errors import ResourceLimitError

    program = compile_program(INFINITE)
    interp = Interpreter(program.base().program, max_steps=10_000)
    with pytest.raises(ResourceLimitError) as err:
        interp.run()
    assert err.value.kind == "steps"


def test_deadline_stops_runaway():
    from repro.lang.errors import ResourceLimitError
    from repro.qa.guards import Deadline, guarded

    program = compile_program(INFINITE)
    interp = Interpreter(program.base().program, deadline=Deadline(0.05, "test run"))
    with pytest.raises(ResourceLimitError) as err:
        interp.run()
    assert err.value.kind == "wall-clock"

    # The ambient guard stack works too, without threading a handle.
    with guarded(0.05, "ambient"):
        with pytest.raises(ResourceLimitError):
            Interpreter(program.base().program).run()


def test_no_machine_means_no_latency_cycles():
    program = compile_program(SOURCE)
    result = program.base()
    bare = Interpreter(result.program, machine=None).run()
    timed = Interpreter(result.program, machine=MachineModel()).run()
    assert bare.instructions == timed.instructions
    assert bare.cycles == bare.instructions  # only instruction cycles
    assert timed.cycles > timed.instructions


def test_allocations_counted():
    program = compile_program(SOURCE)
    stats = program.run()
    assert stats.allocations == 1


def test_empty_stats_fractions():
    from repro.runtime.interp import ExecutionStats

    stats = ExecutionStats()
    assert stats.heap_load_fraction == 0.0
    assert stats.other_load_fraction == 0.0
