"""Runtime instrumentation: spans, counters, and the do-not-perturb pin.

The interpreter and limit study gained span/counter instrumentation (and
the interpreter defers its cache simulation to a post-run replay).  The
differential tests here pin the acceptance criterion: enabling the
recorder changes **no** Figure 8 number (instructions, loads, stores,
cycles, cache hits/misses) and no Figure 9/10 number (redundancy counts,
category tallies).
"""

import pytest

from repro import compile_program
from repro.obs import core, metrics
from repro.runtime.limit import Category
from repro.runtime.machine import MachineModel

SOURCE = """
MODULE RtObs;
TYPE
  T = OBJECT f, g: T; n: INTEGER; END;
VAR t: T; x, i: INTEGER;

PROCEDURE Touch () =
BEGIN
  t.f := t.g;
  IF t.f # NIL THEN x := t.f.n; END;
  x := t.f.n + t.g.n;
END Touch;

BEGIN
  t := NEW (T, f := NEW (T, n := 2), g := NEW (T, n := 5));
  t.g := t.f;
  FOR i := 1 TO 8 DO
    Touch ();
  END;
  PutInt (x);
END RtObs.
"""


@pytest.fixture
def program():
    return compile_program(SOURCE, "rtobs.m3")


@pytest.fixture
def traced():
    """Enable the process recorder + a clean registry for one test."""
    core.reset()
    metrics.registry().reset()
    core.enable()
    yield core.recorder()
    core.disable()
    core.reset()
    metrics.registry().reset()


def figure8_numbers(program):
    machine = MachineModel()
    stats = program.run(program.base(), machine=machine)
    return {
        "instructions": stats.instructions,
        "heap_loads": stats.heap_loads,
        "other_loads": stats.other_loads,
        "heap_stores": stats.heap_stores,
        "calls": stats.calls,
        "cycles": stats.cycles,
        "output": stats.output_text(),
        "cache_hits": machine.cache.hits,
        "cache_misses": machine.cache.misses,
    }


def figure9_10_numbers(program):
    report = program.limit_study()
    return (report.total_heap_loads, report.redundant_loads,
            {c: report.by_category[c] for c in Category})


# ----------------------------------------------------------------------
# Differential: instrumentation must observe, never perturb


def test_recorder_does_not_change_figure8(program):
    core.disable()
    baseline = figure8_numbers(program)
    core.reset()
    metrics.registry().reset()
    core.enable()
    try:
        traced = figure8_numbers(program)
    finally:
        core.disable()
        core.reset()
        metrics.registry().reset()
    assert traced == baseline


def test_recorder_does_not_change_figures9_10(program):
    core.disable()
    baseline = figure9_10_numbers(program)
    core.reset()
    metrics.registry().reset()
    core.enable()
    try:
        traced = figure9_10_numbers(program)
    finally:
        core.disable()
        core.reset()
        metrics.registry().reset()
    assert traced == baseline


# ----------------------------------------------------------------------
# Spans


def test_run_emits_interp_and_cachesim_spans(program, traced):
    figure8_numbers(program)
    spans = {s.name: s for s in traced.spans()}
    assert "run.interp" in spans
    assert spans["run.interp"].attrs == {"module": "RtObs"}
    assert "run.cachesim" in spans
    assert spans["run.cachesim"].attrs["accesses"] > 0


def test_limit_emits_replay_and_classify_spans(program, traced):
    program.limit_study()
    names = [s.name for s in traced.spans()]
    assert "limit.replay" in names
    assert "limit.classify" in names
    # The replay drives the interpreter, so its span nests run.interp.
    spans = {s.name: s for s in traced.spans()}
    assert spans["run.interp"].parent_id == spans["limit.replay"].span_id


def test_cachesim_span_absent_without_machine(program, traced):
    # The limit study runs without a machine model: no replay to time.
    program.limit_study()
    assert "run.cachesim" not in [s.name for s in traced.spans()]


# ----------------------------------------------------------------------
# Counters (exported in bulk at end of run)


def counter(name, **labels):
    for entry in metrics.registry().snapshot():
        if entry["name"] == name and entry["labels"] == labels:
            return entry["value"]
    return None


def test_run_counters_match_execution_stats(program, traced):
    numbers = figure8_numbers(program)
    assert counter("run.interp.instructions") == numbers["instructions"]
    assert counter("run.interp.heap_loads") == numbers["heap_loads"]
    assert counter("run.interp.heap_stores") == numbers["heap_stores"]
    assert counter("run.interp.calls") == numbers["calls"]
    assert counter("run.cachesim.hits") == numbers["cache_hits"]
    assert counter("run.cachesim.misses") == numbers["cache_misses"]


def test_limit_counters_match_report(program, traced):
    report = program.limit_study()
    assert counter("limit.loads.total") == report.total_heap_loads
    assert counter("limit.loads.redundant") == report.redundant_loads
    for category in Category:
        value = counter("limit.category", category=category.value)
        assert value == report.by_category[category]


def test_counters_export_even_when_recorder_disabled(program):
    # The registry is always live (like alias.cache); only spans are
    # gated on the recorder.  Bulk export costs one call per run.
    core.disable()
    metrics.registry().reset()
    try:
        numbers = figure8_numbers(program)
        assert counter("run.interp.instructions") == numbers["instructions"]
    finally:
        metrics.registry().reset()
