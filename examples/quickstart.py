#!/usr/bin/env python
"""Quickstart: compile a MiniM3 program, ask TBAA alias queries, optimize.

This walks the three analyses of the paper over the type hierarchy of its
Figure 1, shows the SMTypeRefs TypeRefsTable of its Table 3, runs
redundant load elimination, and executes before/after on the simulated
machine.

Run:  python examples/quickstart.py
"""

from repro import compile_program
from repro.analysis import collect_heap_references
from repro.analysis.smtyperefs import SMTypeRefsOracle

SOURCE = """
MODULE Quickstart;

TYPE
  (* The paper's Figure 1 hierarchy. *)
  T  = OBJECT f, g: T; END;
  S1 = T OBJECT a: INTEGER; END;
  S2 = T OBJECT b: INTEGER; END;
  S3 = T OBJECT c: INTEGER; END;

VAR
  s1: S1 := NEW (S1);
  s2: S2 := NEW (S2);
  s3: S3 := NEW (S3);
  t: T;
  sum: INTEGER;

PROCEDURE Mix () =
BEGIN
  t := s1;   (* the paper's Statement 1 *)
  t := s2;   (* the paper's Statement 2 *)
END Mix;

PROCEDURE Walk (): INTEGER =
VAR n: T; depth: INTEGER;
BEGIN
  n := t;
  depth := 0;
  WHILE n # NIL DO
    depth := depth + 1;
    n := n.f;
  END;
  RETURN depth;
END Walk;

BEGIN
  Mix ();
  s1.f := s2;
  s2.f := s3;
  t := s1;
  sum := Walk ();
  PutText ("depth=" & IntToText (sum));
END Quickstart.
"""


def main() -> None:
    program = compile_program(SOURCE, "quickstart.m3")
    print("Compiled module:", program.name)

    # ------------------------------------------------------------------
    # 1. The TypeRefsTable (the paper's Table 3).
    ctx = program.pipeline.context()
    oracle = SMTypeRefsOracle(program.checked, ctx.subtypes, ctx.assignments)
    print("\nTypeRefsTable (SMTypeRefs, Figure 2 / Table 3):")
    for name in ("T", "S1", "S2", "S3"):
        refs = sorted(
            u.name for u in oracle.type_refs_types(program.checked.named_types[name])
        )
        print("  {:3} -> {}".format(name, ", ".join(refs)))

    # ------------------------------------------------------------------
    # 2. Alias queries under the three analyses.
    base = program.base()
    refs_by_proc = collect_heap_references(base.program)
    walk_refs = {str(ap): ap for ap in refs_by_proc["Walk"]}
    mix_like = {str(ap): ap for ap in refs_by_proc["<main>"]}
    print("\nHeap references seen in Walk:", sorted(walk_refs))
    print("Heap references seen in the module body:", sorted(mix_like))

    some = sorted(mix_like)[:2]
    if len(some) == 2:
        p, q = mix_like[some[0]], mix_like[some[1]]
        print("\nmay_alias({}, {}):".format(p, q))
        for name in ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"):
            analysis = program.analysis(name)
            print("  {:16} -> {}".format(name, analysis.may_alias(p, q)))

    # ------------------------------------------------------------------
    # 3. Optimize with RLE and compare simulated executions.
    print("\nRunning base vs RLE(SMFieldTypeRefs):")
    base_stats = program.run(base)
    optimized = program.optimize("SMFieldTypeRefs")
    opt_stats = program.run(optimized)
    print("  output       :", base_stats.output_text())
    print("  heap loads   : {} -> {}".format(base_stats.heap_loads, opt_stats.heap_loads))
    print("  cycles       : {} -> {}".format(base_stats.cycles, opt_stats.cycles))
    assert base_stats.output_text() == opt_stats.output_text()
    print(
        "  RLE removed {} loads statically, hoisted {} paths".format(
            optimized.rle.eliminated_loads, optimized.rle.hoisted_paths
        )
    )


if __name__ == "__main__":
    main()
