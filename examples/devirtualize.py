#!/usr/bin/env python
"""Method invocation resolution + inlining (Section 3.7 / Figure 11).

A shape-drawing scenario: an abstract ``Shape`` with an ``area`` method
and three concrete kinds.  The ``Square`` type is declared but never
stored into any ``Shape``-typed location, so TBAA's SMTypeRefs table lets
the devirtualizer remove it from consideration; calls whose remaining
target set is a single implementation become direct calls, which the
inliner then absorbs.

Run:  python examples/devirtualize.py
"""

from repro import compile_program
from repro.ir import instructions as ins

SOURCE = """
MODULE Shapes;

TYPE
  Shape = OBJECT w, h: INTEGER; METHODS area (): INTEGER := RectArea; END;
  Rect = Shape OBJECT END;
  Wide = Rect OBJECT pad: INTEGER; END;
  (* Square overrides area but is never put into a Shape variable. *)
  Square = Shape OBJECT side: INTEGER; OVERRIDES area := SquareArea; END;

VAR shapes: Shape; total: INTEGER;

PROCEDURE RectArea (self: Shape): INTEGER =
BEGIN
  RETURN self.w * self.h;
END RectArea;

PROCEDURE SquareArea (self: Square): INTEGER =
BEGIN
  RETURN self.side * self.side;
END SquareArea;

TYPE Cons = OBJECT shape: Shape; rest: Cons; END;

VAR all: Cons; i: INTEGER; sq: Square;

PROCEDURE SumAreas (c: Cons): INTEGER =
VAR s: INTEGER;
BEGIN
  s := 0;
  WHILE c # NIL DO
    s := s + c.shape.area ();    (* the devirtualization target *)
    c := c.rest;
  END;
  RETURN s;
END SumAreas;

BEGIN
  FOR i := 1 TO 30 DO
    IF i MOD 2 = 0 THEN
      all := NEW (Cons, shape := NEW (Rect, w := i, h := 2), rest := all);
    ELSE
      all := NEW (Cons, shape := NEW (Wide, w := i, h := 3), rest := all);
    END;
  END;
  sq := NEW (Square, side := 4);      (* used directly, never upcast *)
  total := SumAreas (all) + sq.area ();
  PutInt (total);
END Shapes.
"""


def count_method_calls(program_ir):
    return sum(
        1
        for instr in program_ir.all_instrs()
        if isinstance(instr, ins.CallMethod)
    )


def main() -> None:
    program = compile_program(SOURCE, "shapes.m3")

    base = program.base()
    print("Dynamic method-call sites before Minv:", count_method_calls(base.program))

    result = program.optimize("SMFieldTypeRefs", minv_inline=True)
    assert result.methodres is not None and result.inline is not None
    print(
        "Minv resolved {}/{} method calls; inliner absorbed {} direct calls".format(
            result.methodres.resolved,
            result.methodres.method_calls,
            result.inline.inlined_calls,
        )
    )
    print("Dynamic method-call sites after Minv:", count_method_calls(result.program))

    base_stats = program.run(base)
    rle_only = program.run(program.optimize("SMFieldTypeRefs"))
    combined = program.run(result)
    print("\nSimulated cycles:")
    print("  base               ", base_stats.cycles)
    print("  RLE only           ", rle_only.cycles)
    print("  RLE+Minv+Inlining  ", combined.cycles)
    print("Output:", base_stats.output_text())
    assert base_stats.output_text() == combined.output_text()
    assert combined.cycles <= rle_only.cycles <= base_stats.cycles


if __name__ == "__main__":
    main()
