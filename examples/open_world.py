#!/usr/bin/env python
"""Analyzing incomplete programs (Section 4 / Figure 12).

A library module is compiled without its clients.  Closed-world TBAA may
assume no unseen code exists; open-world TBAA must assume type-safe but
otherwise arbitrary callers:

* AddressTaken additionally holds wherever a pass-by-reference formal of
  identical type exists;
* SMTypeRefs conservatively merges all subtype-related *non-branded*
  types (unavailable code can reconstruct structural types, but not
  BRANDED ones).

This example shows both effects on a small "library", then reproduces the
paper's punchline: open-world RLE performs as well as closed-world.

Run:  python examples/open_world.py
"""

from repro import compile_program
from repro.analysis import collect_heap_references

LIBRARY = """
MODULE SeqLib;

TYPE
  (* A public, structural node type: unseen clients can reconstruct it. *)
  Node = OBJECT value: INTEGER; next: Node; END;
  (* A private, branded node: clients cannot forge one. *)
  Secret = BRANDED "SeqLib.Secret" OBJECT value: INTEGER; next: Secret; END;
  Wide = Node OBJECT extra: INTEGER; END;

TYPE
  Config = OBJECT scale: INTEGER; bias: INTEGER; END;

VAR
  pub: Node;
  priv: Secret;
  conf: Config;
  total: INTEGER;

PROCEDURE SumPublic (): INTEGER =
VAR n: Node; s: INTEGER;
BEGIN
  n := pub;
  s := 0;
  WHILE n # NIL DO
    (* conf.scale and conf.bias are loop-invariant heap loads: RLE bait *)
    s := s + n.value * conf.scale + conf.bias;
    n := n.next;
  END;
  RETURN s;
END SumPublic;

PROCEDURE SumPrivate (): INTEGER =
VAR n: Secret; s: INTEGER;
BEGIN
  n := priv;
  s := 0;
  WHILE n # NIL DO
    s := s + n.value * conf.scale;
    n := n.next;
  END;
  RETURN s;
END SumPrivate;

VAR i: INTEGER;

BEGIN
  conf := NEW (Config, scale := 3, bias := 1);
  FOR i := 1 TO 20 DO
    pub := NEW (Node, value := i, next := pub);
    priv := NEW (Secret, value := 2 * i, next := priv);
  END;
  total := SumPublic () + SumPrivate ();
  PutText ("total=" & IntToText (total));
END SeqLib.
"""


def main() -> None:
    program = compile_program(LIBRARY, "seqlib.m3")

    # ------------------------------------------------------------------
    # Static effect: the Wide subtype is never assigned into a Node path,
    # so closed-world SMTypeRefs keeps it apart; open world must merge it
    # (a client could do the assignment) — but the BRANDED Secret type
    # stays separate even in the open world.
    closed = program.pipeline.context(open_world=False)
    opened = program.pipeline.context(open_world=True)
    from repro.analysis.smtyperefs import SMTypeRefsOracle

    node = program.checked.named_types["Node"]
    for label, ctx in (("closed", closed), ("open", opened)):
        oracle = SMTypeRefsOracle(
            program.checked, ctx.subtypes, ctx.assignments,
            open_world=ctx.open_world,
        )
        refs = sorted(t.name for t in oracle.type_refs_types(node))
        print("TypeRefsTable(Node) [{} world]: {}".format(label, refs))

    # Alias-pair counts under both assumptions.
    for label, open_world in (("closed", False), ("open", True)):
        report = program.alias_pairs("SMFieldTypeRefs", open_world=open_world)
        print(
            "{} world: {} references, {} local pairs, {} global pairs".format(
                label, report.references, report.local_pairs, report.global_pairs
            )
        )

    # ------------------------------------------------------------------
    # Dynamic effect (Figure 12): RLE under both assumptions.
    base_stats = program.run(program.base())
    closed_stats = program.run(program.optimize("SMFieldTypeRefs"))
    open_stats = program.run(program.optimize("SMFieldTypeRefs", open_world=True))
    print("\nSimulated cycles:")
    print("  base        ", base_stats.cycles)
    print("  RLE closed  ", closed_stats.cycles)
    print("  RLE open    ", open_stats.cycles)
    assert base_stats.output_text() == closed_stats.output_text() == open_stats.output_text()
    print("\nOutput:", base_stats.output_text())
    print(
        "Open-world RLE achieves {:.1%} of the closed-world saving".format(
            (base_stats.cycles - open_stats.cycles)
            / max(1, base_stats.cycles - closed_stats.cycles)
        )
    )


if __name__ == "__main__":
    main()
