#!/usr/bin/env python
"""Watch RLE transform a procedure, instruction by instruction.

Compiles a list-summing program, dumps the IR of the hot procedure before
and after redundant load elimination, and reports what moved:

* the loop-invariant load ``header.limit`` is hoisted to a preheader;
* the repeated ``node.value`` load inside one iteration is CSE'd;
* loads killed by the may-aliased store stay (and the static status the
  limit study consumes says why).

Run:  python examples/optimize_program.py
"""

from repro import compile_program
from repro.ir.printer import format_proc
from repro.runtime.limit import STATUS_ELIMINATED

SOURCE = """
MODULE Walker;

TYPE
  Node = OBJECT value: INTEGER; next: Node; END;
  List = OBJECT head: Node; limit: INTEGER; total: INTEGER; END;

VAR list: List;

PROCEDURE Sum (l: List): INTEGER =
VAR n: Node; s: INTEGER;
BEGIN
  n := l.head;
  s := 0;
  WHILE n # NIL DO
    (* l.limit is loop-invariant: hoistable.
       n.value is loaded twice per iteration: CSE removes the second.
       l.total is stored, so loads of it cannot be cached across the
       store unless the paths are proven independent. *)
    IF n.value < l.limit THEN
      s := s + n.value;
    END;
    l.total := s;
    n := n.next;
  END;
  RETURN s;
END Sum;

VAR i: INTEGER;

BEGIN
  list := NEW (List, limit := 50);
  FOR i := 1 TO 60 DO
    list.head := NEW (Node, value := i, next := list.head);
  END;
  PutInt (Sum (list));
END Walker.
"""


def main() -> None:
    program = compile_program(SOURCE, "walker.m3")

    base = program.base()
    print("=== Sum before RLE ===")
    print(format_proc(base.program.procs["Sum"]))

    optimized = program.optimize("SMFieldTypeRefs")
    print("\n=== Sum after RLE (SMFieldTypeRefs) ===")
    print(format_proc(optimized.program.procs["Sum"]))

    assert optimized.rle is not None
    print("\nRLE statistics:")
    print("  eliminated loads:", optimized.rle.eliminated_loads)
    print("  hoisted paths   :", optimized.rle.hoisted_paths)
    eliminated = [
        uid for uid, st in optimized.rle.load_status.items() if st == STATUS_ELIMINATED
    ]
    print("  eliminated uids :", sorted(eliminated))

    base_stats = program.run(base)
    opt_stats = program.run(optimized)
    print("\nExecution (simulated Alpha-style machine):")
    print("  output    :", base_stats.output_text())
    print("  heap loads: {} -> {}".format(base_stats.heap_loads, opt_stats.heap_loads))
    print(
        "  cycles    : {} -> {}  ({:.1f}% faster)".format(
            base_stats.cycles,
            opt_stats.cycles,
            100.0 * (1 - opt_stats.cycles / base_stats.cycles),
        )
    )
    assert base_stats.output_text() == opt_stats.output_text()


if __name__ == "__main__":
    main()
