#!/usr/bin/env python
"""The limit study (Sections 3.5 / Figures 9-10) on one benchmark.

Shows, for the k-tree benchmark:

* what fraction of heap loads is dynamically redundant before RLE;
* how much of that RLE removes;
* the five-way classification of the residue (Encapsulation /
  Conditional / Breakup / Alias failure / Rest);
* the dope-vector ablation: what a lower-level RLE that *can* see dope
  loads would additionally recover (beyond the paper).

Run:  python examples/limit_study.py [benchmark]
"""

import sys

from repro.bench.suite import BASE, BenchmarkSuite, RunConfig
from repro.runtime.limit import Category


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "k-tree"
    suite = BenchmarkSuite()

    print("Benchmark:", name)
    before = suite.limit_study(name, BASE)
    print(
        "\nOriginal program: {} / {} heap loads dynamically redundant ({:.1%})".format(
            before.redundant_loads, before.total_heap_loads, before.redundant_fraction
        )
    )

    after = suite.limit_study(name, RunConfig(analysis="SMFieldTypeRefs"))
    removed = before.redundant_loads - after.redundant_loads
    print(
        "After RLE(SMFieldTypeRefs): {} redundant remain ({:.1%}); RLE removed {:.0%} of the redundancy".format(
            after.redundant_loads,
            after.redundant_fraction,
            removed / before.redundant_loads if before.redundant_loads else 0.0,
        )
    )

    print("\nClassification of the residue (Figure 10):")
    for category in Category:
        count = after.by_category[category]
        print(
            "  {:14} {:8}  ({:.2%} of heap loads)".format(
                category.value, count, after.category_fraction(category)
            )
        )

    ablated = suite.limit_study(
        name, RunConfig(analysis="SMFieldTypeRefs", see_dope_loads=True)
    )
    print(
        "\nAblation — RLE that can see dope-vector loads (beyond the paper):"
        "\n  redundant after: {:.1%} (vs {:.1%}); Encapsulated drops to {}".format(
            ablated.redundant_fraction,
            after.redundant_fraction,
            ablated.by_category[Category.ENCAPSULATION],
        )
    )


if __name__ == "__main__":
    main()
