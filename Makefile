# Convenience targets for the TBAA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick bench-gate tables examples fuzz \
	fuzz-smoke profile-smoke corpus-gen corpus-smoke serve-smoke \
	chaos-smoke obs-smoke trace-smoke clean

# Seeded smoke corpus shared by corpus-smoke and the bench gate.
CORPUS_SMOKE_DIR ?= benchmarks/results/corpus-smoke

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/
	$(MAKE) fuzz-smoke
	$(MAKE) corpus-smoke
	$(MAKE) profile-smoke
	$(MAKE) serve-smoke
	$(MAKE) chaos-smoke
	$(MAKE) obs-smoke
	$(MAKE) trace-smoke
	$(MAKE) bench-gate

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable alias-engine numbers: analysis construction time,
# may-alias query throughput, and Table 5 wall time under both the
# reference and the partition-based counting engines.  Every run also
# appends a ledger record to BENCH_history.jsonl so successive runs
# stay comparable (see `repro bench compare` / DESIGN.md §6f).
bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_analysis_cost.py benchmarks/bench_table5_alias_pairs.py --benchmark-only
	$(PYTHON) -m repro.bench.perfjson -o BENCH_alias.json --prom BENCH_obs.prom \
		--history BENCH_history.jsonl

# Perf-regression gate: measure the benchmark suite twice (min-of-k)
# and compare against the committed baseline ledger inside a median+MAD
# noise band.  Exits nonzero on a regression beyond the tolerance; the
# generous --tol absorbs cross-host and CI-load variance (tighten it
# for same-host comparisons).
bench-gate: corpus-gen
	PYTHONPATH=src $(PYTHON) -m repro -q bench gate \
		--baseline BENCH_baseline.jsonl --repeats 2 --no-history --tol 2.0 \
		--corpus $(CORPUS_SMOKE_DIR) --serve

tables:
	$(PYTHON) -m repro tables

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

fuzz:
	$(PYTHON) -m pytest tests/integration/test_fuzz_rle.py -q

# Fixed-seed soundness fuzz over generated programs: every analysis
# level is cross-checked against the refinement hierarchy, the fast
# engine, and a traced dynamic run.  Deterministic, so a failure here
# is reproducible by seed; crash bundles land under the --out dir.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --count 200 \
		--out benchmarks/results/fuzz-smoke

# Regenerate the seeded smoke corpus (content-hashed shards; the fixed
# seed makes this idempotent, so it is safe as a gate prerequisite).
corpus-gen:
	PYTHONPATH=src $(PYTHON) -m repro -q corpus gen $(CORPUS_SMOKE_DIR) \
		--count 60 --shard-size 20
	PYTHONPATH=src $(PYTHON) -m repro -q corpus verify $(CORPUS_SMOKE_DIR)

# Corpus pipeline smoke: generate + verify the sharded corpus, sweep it
# with the differential engine (bulk == fast == reference on every
# program) across 2 worker processes, then time the fast engine against
# the bulk kernels.  No history records: the committed ledger only
# carries deliberate runs.
corpus-smoke: corpus-gen
	PYTHONPATH=src $(PYTHON) -m repro -q corpus run $(CORPUS_SMOKE_DIR) \
		--jobs 2 --engine differential --no-history
	PYTHONPATH=src $(PYTHON) -m repro -q corpus bench $(CORPUS_SMOKE_DIR) \
		--repeats 2 --no-history

# Analysis-daemon smoke: boot the serve daemon with both transports
# (JSONL-on-stdio subprocess + localhost HTTP), fire the same batched
# query set over each, and require identical Table 5 rows, differential
# agreement with the cold fast/reference engines, warm == cold answers,
# and a clean shutdown (DESIGN.md §6h).
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro -q client --smoke

# Chaos smoke: fixed-seed fault-injection batteries over the serving
# stack (flaky + corrupting fact store, compile crashes, stalled
# handlers under a deadline, daemon kill + restart with a self-healing
# client) and the corpus pipeline (worker killed mid-shard, watchdog
# retry).  Green means: every answer that left the system was
# differential-pinned correct or a typed error (DESIGN.md §6i).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m repro -q chaos --seed 0 \
		--plan mixed --plan client-drop --plan worker-kill \
		--plan stdio-flaky --plan ledger-torn --plan tracestore-torn

# Live-observability smoke: boot a daemon with tracing + SLO tracking +
# access log on, run a traced --debug query end to end, lint the
# /v1/metrics Prometheus exposition, check the request journal and the
# slow-request access log carry the trace id, and render `repro top
# --once` against the live daemon (DESIGN.md §6j).
obs-smoke:
	PYTHONPATH=src $(PYTHON) -m repro -q client --obs-smoke

# Continuous-tracing smoke: one trace propagated client → subprocess
# stdio daemon → forked corpus workers, every record flushed into a
# bounded on-disk trace store and reconstructed by `repro trace
# ls/show/top` as a single parent-linked cross-process span tree
# (DESIGN.md §6k).
trace-smoke:
	PYTHONPATH=src $(PYTHON) -m repro -q client --trace-smoke

# Observability smoke: `repro profile` over two bundled benchmarks with
# the tree-sum check on, JSONL traces written and validated against the
# pinned schema.
profile-smoke:
	@mkdir -p benchmarks/results/profile-smoke
	PYTHONPATH=src $(PYTHON) -m repro -q profile m3cg --check \
		--trace benchmarks/results/profile-smoke/m3cg.jsonl
	PYTHONPATH=src $(PYTHON) -m repro -q profile slisp --check \
		--trace benchmarks/results/profile-smoke/slisp.jsonl
	PYTHONPATH=src $(PYTHON) -m repro.obs.trace \
		benchmarks/results/profile-smoke/m3cg.jsonl \
		benchmarks/results/profile-smoke/slisp.jsonl

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results \
		src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
