# Convenience targets for the TBAA reproduction.

PYTHON ?= python

.PHONY: install test bench tables examples fuzz clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

tables:
	$(PYTHON) -m repro tables

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

fuzz:
	$(PYTHON) -m pytest tests/integration/test_fuzz_rle.py -q

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results \
		src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
