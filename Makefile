# Convenience targets for the TBAA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick tables examples fuzz clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable alias-engine numbers: analysis construction time,
# may-alias query throughput, and Table 5 wall time under both the
# reference and the partition-based counting engines.
bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_analysis_cost.py benchmarks/bench_table5_alias_pairs.py --benchmark-only
	$(PYTHON) -m repro.bench.perfjson -o BENCH_alias.json

tables:
	$(PYTHON) -m repro tables

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

fuzz:
	$(PYTHON) -m pytest tests/integration/test_fuzz_rle.py -q

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results \
		src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
