# Convenience targets for the TBAA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick tables examples fuzz fuzz-smoke clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/
	$(MAKE) fuzz-smoke

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Machine-readable alias-engine numbers: analysis construction time,
# may-alias query throughput, and Table 5 wall time under both the
# reference and the partition-based counting engines.
bench-quick:
	$(PYTHON) -m pytest benchmarks/bench_analysis_cost.py benchmarks/bench_table5_alias_pairs.py --benchmark-only
	$(PYTHON) -m repro.bench.perfjson -o BENCH_alias.json

tables:
	$(PYTHON) -m repro tables

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

fuzz:
	$(PYTHON) -m pytest tests/integration/test_fuzz_rle.py -q

# Fixed-seed soundness fuzz over generated programs: every analysis
# level is cross-checked against the refinement hierarchy, the fast
# engine, and a traced dynamic run.  Deterministic, so a failure here
# is reproducible by seed; crash bundles land under the --out dir.
fuzz-smoke:
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed 0 --count 200 \
		--out benchmarks/results/fuzz-smoke

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results \
		src/repro.egg-info test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
