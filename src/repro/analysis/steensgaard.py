"""Steensgaard's merging applied to user types — the footnote 4 baseline.

The paper's footnote 4:

    "If we took Steensgaard's algorithm [32] and applied it to user
     defined types, it would not discover this asymmetry."

I.e. plain equivalence-class merging over declared types performs Steps 1
and 2 of Figure 2 but *not* Step 3's pruning by the subtype relation:
``TypeRefsTable(t)`` is the whole equivalence class of ``t``.  After
``t := s1; t := s2`` an AP of type S1 is then assumed able to reference
T and S2 objects — which SMTypeRefs's asymmetric table rules out.

This module exists as a measurable related-work baseline: it must be
sound, weaker than (or equal to) SMTypeRefs, and stronger than TypeDecl
is *not* guaranteed — the two are incomparable in general (Steensgaard
merging ignores subtyping entirely, TypeDecl ignores assignments
entirely), which the tests demonstrate.
"""

from typing import Dict, FrozenSet, List, Optional

from repro.analysis.address_taken import AddressTakenInfo
from repro.analysis.alias_base import TypeOracle
from repro.analysis.fieldtypedecl import FieldTypeDeclAnalysis
from repro.analysis.smtyperefs import PointerAssignment, collect_pointer_assignments
from repro.analysis.typehierarchy import SubtypeOracle
from repro.ir.access_path import AccessPath
from repro.lang.typecheck import CheckedModule
from repro.lang.types import Type
from repro.obs import metrics
from repro.util.unionfind import UnionFind


class SteensgaardTypesOracle(TypeOracle):
    """Union-find over types with NO subtype pruning (Steps 1-2 only)."""

    name = "SteensgaardTypes"

    def __init__(
        self,
        checked: CheckedModule,
        subtypes: SubtypeOracle,
        assignments: Optional[List[PointerAssignment]] = None,
    ):
        self.checked = checked
        self.subtypes = subtypes
        self.assignments = (
            assignments if assignments is not None else collect_pointer_assignments(checked)
        )
        self._table: Dict[int, FrozenSet[int]] = {}
        self._mask_table: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        pointer_types = self.checked.types.pointer_types()
        group: UnionFind = UnionFind(id(t) for t in pointer_types)
        for assignment in self.assignments:
            if assignment.is_merge():
                group.union(id(assignment.dst_type), id(assignment.src_type))
        # Steensgaard flavour: the *declared subtype relation* also forces
        # merges (a T-typed path may point at any subtype it was declared
        # able to reach) — without it the baseline would be unsound for
        # paths whose subtype flow predates any assignment we saw.
        # Following the footnote's reading, we stay closest to "apply
        # Steensgaard to user types": classes come from assignments only,
        # and the *query* unions the subtype set in (symmetrically).
        group_masks: Dict[int, int] = {}
        for t in pointer_types:
            root = group.find(id(t))
            group_masks[root] = group_masks.get(root, 0) | (
                1 << self.subtypes.type_bit(t)
            )
        for t in pointer_types:
            mask = group_masks[group.find(id(t))] | self.subtypes.subtype_mask(t)
            self._mask_table[id(t)] = mask
            self._table[id(t)] = frozenset(
                id(u) for u in self.subtypes.types_of_mask(mask)
            )
        # Over-merging is exactly what this baseline exists to measure
        # (cf. oversharing diagnostics in unification-based analyses):
        # record the equivalence-class size distribution per build.
        registry = metrics.registry()
        sizes = registry.new_histogram("steensgaard.group.size")
        for cls in group.classes():
            sizes.observe(len(cls))
        registry.gauge("steensgaard.groups").set(group.n_classes)
        registry.new_counter("steensgaard.unionfind.merges").inc(group.merges)

    def class_mask(self, t: Type) -> int:
        mask = self._mask_table.get(id(t))
        if mask is not None:
            return mask
        return self.subtypes.subtype_mask(t)

    def class_of(self, t: Type) -> FrozenSet[int]:
        cached = self._table.get(id(t))
        if cached is not None:
            return cached
        return self.subtypes.subtype_set(t)

    def types_compatible(self, p: AccessPath, q: AccessPath) -> bool:
        tp, tq = p.type, q.type
        if tp is tq:
            return True
        return (self.class_mask(tp) & self.class_mask(tq)) != 0

    def type_mask(self, t: Type) -> int:
        return self.class_mask(t)


def SteensgaardFieldTypeRefsAnalysis(
    checked: CheckedModule,
    subtypes: SubtypeOracle,
    address_taken: AddressTakenInfo,
    assignments: Optional[List[PointerAssignment]] = None,
) -> FieldTypeDeclAnalysis:
    """FieldTypeDecl over the unpruned Steensgaard class table."""
    oracle = SteensgaardTypesOracle(checked, subtypes, assignments)
    return FieldTypeDeclAnalysis(
        oracle, address_taken, name="SteensgaardFieldTypeRefs"
    )
