"""Bulk bitset-matrix alias kernels — the all-pairs ``bulk`` engine.

The reference engine asks one ``may_alias`` query per reference pair and
the fast engine asks one per *query-equivalence class* pair.  Both still
run per-pair Python on every count.  This module lowers each analysis's
decision procedure all the way to **packed bitvectors** so a whole
Table 5 count becomes a handful of AND/popcount kernels over dense
integer matrices:

* every query-equivalence class gets one row of a class-adjacency
  matrix, stored as a Python big int (bit *j* of ``class_rows[i]`` says
  "class *i* may alias class *j*"; the diagonal bit is self-adjacency,
  i.e. whether a path may alias its own occurrence elsewhere);
* every interned access path maps to its class, so
  :meth:`BulkAliasMatrix.path_row` expands one packed bitvector row per
  path uid over the path-index space on demand;
* counting local/global pairs reduces to popcounts and small
  matrix products — either pure-Python big-int kernels (stdlib-only,
  via :mod:`repro.util.bits`) or a numpy backend auto-detected at
  import time (``REPRO_BULK_BACKEND`` overrides the choice).

The lowering relies on one fact proved per oracle: every
``types_compatible`` is ``type_mask(t1) & type_mask(t2) != 0``, with the
mask never zero (it always contains the type's own bit, so the ``t1 is
t2`` shortcut coincides with self-intersection).  Three partition
schemes cover the analyses:

* ``typedecl`` — TypeDecl ignores structure entirely, so the class key
  *is* the type mask and adjacency is mask intersection.
* ``field`` — FieldTypeDecl (hence SMFieldTypeRefs and the Steensgaard
  baseline) dispatches on Table 2; its decision signatures bake the
  masks in (:class:`_FieldSigTable`) and adjacency is a memoised
  signature-level replay of the seven cases.  This partition is coarser
  than the fast engine's ``id(type)`` signatures — types sharing a mask
  share a class — but exact: the decision is a pure function of the
  signature.
* ``generic`` — anything else (the trivial analyses, third-party
  subclasses without ``type_mask``) degrades to one class per distinct
  path with representative ``may_alias`` queries.

Matrices carry no AST/IR/type references — only names, ints and dicts —
so they pickle cheaply and cross process boundaries (the corpus
pipeline ships them between shard workers and the parent).  Transient
caches (numpy arrays, path-row expansions, the process-local uid→index
map) are dropped on pickling and rebuilt lazily.
"""

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.alias_base import AliasAnalysis, TypeOracle
from repro.analysis.fieldtypedecl import FieldTypeDeclAnalysis
from repro.analysis.typedecl import TypeDeclAnalysis
from repro.ir.access_path import AccessPath, Deref, Qualify, Subscript, strip_index
from repro.lang.types import ObjectType
from repro.obs import core as obs
from repro.obs import metrics
from repro.qa import guards
from repro.util.bits import iter_bits, popcount

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: Whether the numpy kernels are available in this process.
HAVE_NUMPY = _np is not None

#: Valid values for the ``backend`` argument of ``count_pairs``.
BACKENDS = ("python", "numpy")

#: Environment override for :func:`default_backend`.
BACKEND_ENV = "REPRO_BULK_BACKEND"

#: Below this many classes the big-int kernel beats numpy: each numpy
#: count costs a handful of array-dispatch round trips, a fixed price
#: that only pays for itself once the O(k^2) work is large enough.
NUMPY_MIN_CLASSES = 96


def default_backend(n_classes: Optional[int] = None) -> str:
    """Kernel backend used when callers do not choose one.

    ``REPRO_BULK_BACKEND`` forces a backend (and surfaces an error if it
    names an unavailable one).  Otherwise numpy wins when importable —
    except for matrices below :data:`NUMPY_MIN_CLASSES` classes (when
    the caller passes the size), where per-call dispatch overhead makes
    the stdlib big-int kernels faster.
    """
    forced = os.environ.get(BACKEND_ENV)
    if forced:
        if forced not in BACKENDS:
            raise ValueError(
                "{}={!r}: expected one of {}".format(BACKEND_ENV, forced, BACKENDS)
            )
        return forced
    if not HAVE_NUMPY:
        return "python"
    if n_classes is not None and n_classes < NUMPY_MIN_CLASSES:
        return "python"
    return "numpy"


@dataclass(frozen=True)
class BulkCounts:
    """Table 5 counts produced by one matrix sweep."""

    references: int
    local_pairs: int
    global_pairs: int

    def counts(self) -> Tuple[int, int, int]:
        return (self.references, self.local_pairs, self.global_pairs)


def _oracle_has_mask(oracle) -> bool:
    """True when the oracle implements ``type_mask`` (not the base stub)."""
    return (
        isinstance(oracle, TypeOracle)
        and type(oracle).type_mask is not TypeOracle.type_mask
    )


class _FieldSigTable:
    """Interned Table 2 decision signatures with mask leaves.

    Mirrors the fast engine's query-equivalence signatures but replaces
    every ``id(type)`` leaf with the oracle's ``type_mask``, which is the
    only fact the leaf cases consult.  Signature tuples nest by interned
    index, so equality of indices is equality of whole decision trees:

    * ``('r', tmask)`` — roots, case 7;
    * ``('d', tmask)`` — dereferences, cases 3/4/7;
    * ``('q', field, taken, tmask, base_is_obj, base_tmask, base_idx)``
      — qualifies, cases 2/3/5;
    * ``('s', taken, tmask, base_idx)`` — subscripts, cases 4/5/6.

    :meth:`decide` replays Table 2 on two signatures; memoised on the
    unordered index pair.  ``decide(i, i)`` is ``True`` by the same
    induction the fast engine uses (equal signatures always alias; the
    base case is the never-zero mask's self-intersection).
    """

    def __init__(self, analysis: FieldTypeDeclAnalysis):
        self.oracle = analysis.oracle
        self.address_taken = analysis.address_taken
        self.sigs: List[tuple] = []
        self.tmasks: List[int] = []
        self._index: Dict[tuple, int] = {}
        self._by_uid: Dict[int, int] = {}
        self._memo: Dict[Tuple[int, int], bool] = {}

    def index_of(self, ap: AccessPath) -> int:
        idx = self._by_uid.get(ap.uid)
        if idx is not None:
            return idx
        tmask = self.oracle.type_mask(ap.type)
        if isinstance(ap, Qualify):
            taken = self.address_taken.qualify_taken(ap.field, ap.base.type, ap.type)
            sig = (
                "q",
                ap.field,
                taken,
                tmask,
                isinstance(ap.base.type, ObjectType),
                self.oracle.type_mask(ap.base.type),
                self.index_of(ap.base),
            )
        elif isinstance(ap, Subscript):
            taken = self.address_taken.subscript_taken(ap.base.type, ap.type)
            sig = ("s", taken, tmask, self.index_of(ap.base))
        elif isinstance(ap, Deref):
            sig = ("d", tmask)
        else:  # VarRoot / FreshRoot
            sig = ("r", tmask)
        idx = self._index.get(sig)
        if idx is None:
            idx = self._index[sig] = len(self.sigs)
            self.sigs.append(sig)
            self.tmasks.append(tmask)
        self._by_uid[ap.uid] = idx
        return idx

    def decide(self, ia: int, ib: int) -> bool:
        if ia == ib:
            return True  # equal signatures always alias
        key = (ia, ib) if ia < ib else (ib, ia)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        sa, sb = self.sigs[ia], self.sigs[ib]
        if sb[0] < sa[0]:  # canonical kind order: 'd' < 'q' < 'r' < 's'
            sa, sb = sb, sa
        ka, kb = sa[0], sb[0]
        if ka == "q" and kb == "q":
            if sa[1] != sb[1]:
                result = False  # case 2, differing fields
            elif sa[4] or sb[4]:
                # case 2 with implicit deref: oracle on the base types
                result = (sa[5] & sb[5]) != 0
            else:
                result = self.decide(sa[6], sb[6])  # case 2, embedded
        elif ka == "q" and kb == "s":
            result = False  # case 5
        elif ka == "s" and kb == "s":
            result = self.decide(sa[3], sb[3])  # case 6
        elif ka == "d" and kb == "q":
            result = sb[2] and (sa[1] & sb[3]) != 0  # case 3
        elif ka == "d" and kb == "s":
            result = sb[1] and (sa[1] & sb[2]) != 0  # case 4
        else:  # case 7: d-d and everything against a root
            result = (self.tmasks[ia] & self.tmasks[ib]) != 0
        self._memo[key] = result
        return result


class BulkAliasMatrix:
    """Class-adjacency bitset matrix for one (program, analysis) pair.

    Built once from the reference map via :meth:`from_references` (or the
    :func:`build_matrix` convenience); answers point queries through
    :meth:`may_alias_index` / :meth:`path_row` and whole Table 5 counts
    through :meth:`count_pairs` without touching the analysis again.
    """

    #: Partition schemes, most structured first (see module docstring).
    SCHEMES = ("typedecl", "field", "generic")

    #: Attributes dropped by ``__getstate__`` and rebuilt lazily.
    _TRANSIENT = ("_row_cache", "_arrays", "_index_by_uid")

    def __init__(
        self,
        analysis_name: str,
        scheme: str,
        proc_names: List[str],
        path_strs: List[str],
        path_class: List[int],
        path_counts: List[int],
        path_proc_masks: List[int],
        class_rows: List[int],
        class_members: List[int],
        class_totals: List[int],
        class_sumsq: List[int],
        class_same: List[int],
        class_proc_counts: List[Dict[int, int]],
        index_by_uid: Optional[Dict[int, int]] = None,
    ):
        self.analysis_name = analysis_name
        self.scheme = scheme
        self.proc_names = proc_names
        self.path_strs = path_strs
        self.path_class = path_class
        self.path_counts = path_counts
        self.path_proc_masks = path_proc_masks
        self.class_rows = class_rows
        self.class_members = class_members
        self.class_totals = class_totals
        self.class_sumsq = class_sumsq
        self.class_same = class_same
        self.class_proc_counts = class_proc_counts
        self._row_cache: Dict[int, int] = {}
        self._arrays = None
        self._index_by_uid: Dict[int, int] = index_by_uid or {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_references(
        cls,
        references: Dict[str, List[AccessPath]],
        analysis: AliasAnalysis,
    ) -> "BulkAliasMatrix":
        """Build the matrix for ``analysis`` over the canonical reference
        map produced by
        :func:`~repro.analysis.alias_pairs.collect_heap_references`."""
        with obs.span("bulk.build", analysis=analysis.name):
            matrix = cls._build(references, analysis)
        registry = metrics.registry()
        name = analysis.name
        registry.new_counter("aliaspairs.bulk.paths", analysis=name).inc(
            matrix.n_paths)
        registry.new_counter("aliaspairs.bulk.classes", analysis=name).inc(
            matrix.n_classes)
        registry.new_counter("aliaspairs.bulk.adjacent_pairs", analysis=name).inc(
            matrix.adjacent_pairs())
        return matrix

    @classmethod
    def _build(
        cls,
        references: Dict[str, List[AccessPath]],
        analysis: AliasAnalysis,
    ) -> "BulkAliasMatrix":
        proc_names = list(references)
        paths: List[AccessPath] = []
        index_by_path: Dict[AccessPath, int] = {}
        proc_masks: List[int] = []
        for proc_index, aps in enumerate(references.values()):
            for ap in aps:
                i = index_by_path.get(ap)
                if i is None:
                    i = index_by_path[ap] = len(paths)
                    paths.append(ap)
                    proc_masks.append(0)
                proc_masks[i] |= 1 << proc_index
        path_counts = [popcount(m) for m in proc_masks]

        scheme, path_class, k, adjacent, self_adjacent = cls._partition(
            paths, analysis)

        # Adjacency rows, diagonal included.  O(k²) decisions, but k is
        # the number of query-equivalence classes, not references — and
        # each decision is a memoised mask test, not an analysis query.
        rows = [0] * k
        for i in range(k):
            if (i & 127) == 0:
                guards.check_active()
            if self_adjacent(i):
                rows[i] |= 1 << i
            bit_i = 1 << i
            for j in range(i + 1, k):
                if adjacent(i, j):
                    rows[i] |= 1 << j
                    rows[j] |= bit_i

        members = [0] * k
        totals = [0] * k
        sumsq = [0] * k
        same = [0] * k
        proc_counts: List[Dict[int, int]] = [{} for _ in range(k)]
        for i, c in enumerate(path_class):
            n = path_counts[i]
            members[c] |= 1 << i
            totals[c] += n
            sumsq[c] += n * n
            same[c] += n * (n - 1) // 2
            pc = proc_counts[c]
            for p in iter_bits(proc_masks[i]):
                pc[p] = pc.get(p, 0) + 1

        return cls(
            analysis_name=analysis.name,
            scheme=scheme,
            proc_names=proc_names,
            path_strs=[str(ap) for ap in paths],
            path_class=path_class,
            path_counts=path_counts,
            path_proc_masks=proc_masks,
            class_rows=rows,
            class_members=members,
            class_totals=totals,
            class_sumsq=sumsq,
            class_same=same,
            class_proc_counts=proc_counts,
            index_by_uid={ap.uid: i for ap, i in index_by_path.items()},
        )

    @classmethod
    def _partition(
        cls, paths: List[AccessPath], analysis: AliasAnalysis
    ) -> Tuple[str, List[int], int, Callable[[int, int], bool],
               Callable[[int], bool]]:
        """Choose a scheme and return
        ``(scheme, path_class, n_classes, adjacent, self_adjacent)``."""
        oracle = getattr(analysis, "oracle", None)
        if isinstance(analysis, FieldTypeDeclAnalysis) and _oracle_has_mask(oracle):
            table = _FieldSigTable(analysis)
            class_sig: List[int] = []
            class_by_sig: Dict[int, int] = {}
            path_class = []
            for ap in paths:
                si = table.index_of(ap)
                c = class_by_sig.get(si)
                if c is None:
                    c = class_by_sig[si] = len(class_sig)
                    class_sig.append(si)
                path_class.append(c)
            return (
                "field",
                path_class,
                len(class_sig),
                lambda i, j: table.decide(class_sig[i], class_sig[j]),
                lambda i: True,  # decide(s, s) is reflexively True
            )
        if isinstance(analysis, TypeDeclAnalysis) and _oracle_has_mask(oracle):
            class_masks: List[int] = []
            class_by_mask: Dict[int, int] = {}
            path_class = []
            for ap in paths:
                m = oracle.type_mask(ap.type)
                c = class_by_mask.get(m)
                if c is None:
                    c = class_by_mask[m] = len(class_masks)
                    class_masks.append(m)
                path_class.append(c)
            return (
                "typedecl",
                path_class,
                len(class_masks),
                lambda i, j: (class_masks[i] & class_masks[j]) != 0,
                lambda i: True,  # masks contain the type's own bit
            )
        # Generic: one singleton class per distinct path, representative
        # queries for adjacency (including the diagonal).
        may_alias = analysis.may_alias_canonical
        return (
            "generic",
            list(range(len(paths))),
            len(paths),
            lambda i, j: may_alias(paths[i], paths[j]),
            lambda i: may_alias(paths[i], paths[i]),
        )

    # -- introspection --------------------------------------------------

    @property
    def n_paths(self) -> int:
        return len(self.path_strs)

    @property
    def n_classes(self) -> int:
        return len(self.class_rows)

    @property
    def n_procs(self) -> int:
        return len(self.proc_names)

    def adjacent_pairs(self) -> int:
        """Number of set bits on or above the diagonal (unordered
        adjacencies, self-adjacency included)."""
        return sum(popcount(row >> i) for i, row in enumerate(self.class_rows))

    def __repr__(self) -> str:
        return "<BulkAliasMatrix {} scheme={} paths={} classes={}>".format(
            self.analysis_name, self.scheme, self.n_paths, self.n_classes)

    # -- point queries --------------------------------------------------

    def may_alias_index(self, i: int, j: int) -> bool:
        """May paths ``i`` and ``j`` (matrix path indices) alias?"""
        return bool(
            (self.class_rows[self.path_class[i]] >> self.path_class[j]) & 1)

    def index_of(self, ap: AccessPath) -> int:
        """Matrix index of an access path seen at build time.

        Uids are process-local, so this map is transient: a matrix that
        crossed a pickle boundary answers index- and row-based queries
        only.
        """
        idx = self._index_by_uid.get(strip_index(ap).uid)
        if idx is None:
            if not self._index_by_uid:
                raise LookupError(
                    "path-index map is process-local and was dropped on "
                    "pickling; query by index instead")
            raise KeyError("{} is not a reference path of this matrix".format(ap))
        return idx

    def may_alias_path(self, p: AccessPath, q: AccessPath) -> bool:
        return self.may_alias_index(self.index_of(p), self.index_of(q))

    def path_row(self, i: int) -> int:
        """Packed bitvector over path indices: bit ``j`` set iff path
        ``i`` may alias path ``j``.  Cached per class (all paths of a
        class share one row)."""
        ci = self.path_class[i]
        row = self._row_cache.get(ci)
        if row is None:
            row = 0
            for cj in iter_bits(self.class_rows[ci]):
                row |= self.class_members[cj]
            self._row_cache[ci] = row
        return row

    # -- bulk counting --------------------------------------------------

    def count_pairs(self, backend: Optional[str] = None) -> BulkCounts:
        """Table 5 counts by pure kernels over the prebuilt matrix.

        Within-class terms are gated on the diagonal bit; cross-class
        terms on the off-diagonal bits.  Both kernels are exact integer
        arithmetic and agree bit-for-bit with the reference engine.
        """
        if backend is None:
            backend = default_backend(self.n_classes)
        if backend not in BACKENDS:
            raise ValueError(
                "unknown backend {!r}; expected one of {}".format(backend, BACKENDS))
        with obs.span("bulk.count", analysis=self.analysis_name, backend=backend):
            if backend == "numpy":
                if not HAVE_NUMPY:
                    raise RuntimeError(
                        "numpy backend requested but numpy is unavailable")
                return self._count_numpy()
            return self._count_python()

    def _count_python(self) -> BulkCounts:
        rows = self.class_rows
        totals = self.class_totals
        proc_counts = self.class_proc_counts
        references = sum(totals)
        local = 0
        global_ = 0
        for c in range(len(rows)):
            row = rows[c]
            if (row >> c) & 1:
                t = totals[c]
                global_ += self.class_same[c] + (t * t - self.class_sumsq[c]) // 2
                for n in proc_counts[c].values():
                    local += n * (n - 1) // 2
            for off in iter_bits(row >> (c + 1)):
                j = c + 1 + off
                global_ += totals[c] * totals[j]
                ca, cb = proc_counts[c], proc_counts[j]
                if len(cb) < len(ca):
                    ca, cb = cb, ca
                local += sum(n * cb.get(p, 0) for p, n in ca.items())
        return BulkCounts(references, local, global_)

    def _count_numpy(self) -> BulkCounts:
        if self.n_classes == 0:
            return BulkCounts(0, 0, 0)
        adj, occupancy, totals, same, sumsq = self._numpy_arrays()
        upper = _np.triu(adj, 1).astype(_np.int64)
        cross_global = int(totals @ upper @ totals)
        cross_local = int(((occupancy @ occupancy.T) * upper).sum())
        diag = _np.diagonal(adj)
        within_global = int((same + (totals * totals - sumsq) // 2)[diag].sum())
        within_local = int(
            ((occupancy * (occupancy - 1)) // 2).sum(axis=1)[diag].sum())
        return BulkCounts(
            int(totals.sum()),
            cross_local + within_local,
            cross_global + within_global,
        )

    def _numpy_arrays(self):
        arrays = self._arrays
        if arrays is None:
            k = self.n_classes
            adj = _np.zeros((k, k), dtype=bool)
            for i, row in enumerate(self.class_rows):
                for j in iter_bits(row):
                    adj[i, j] = True
            occupancy = _np.zeros((k, max(self.n_procs, 1)), dtype=_np.int64)
            for c, pc in enumerate(self.class_proc_counts):
                for p, n in pc.items():
                    occupancy[c, p] = n
            arrays = self._arrays = (
                adj,
                occupancy,
                _np.asarray(self.class_totals, dtype=_np.int64),
                _np.asarray(self.class_same, dtype=_np.int64),
                _np.asarray(self.class_sumsq, dtype=_np.int64),
            )
        return arrays

    # -- pickling -------------------------------------------------------

    def __getstate__(self):
        state = self.__dict__.copy()
        for name in self._TRANSIENT:
            state.pop(name, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._row_cache = {}
        self._arrays = None
        self._index_by_uid = {}


def build_matrix(program, analysis: AliasAnalysis) -> BulkAliasMatrix:
    """Matrix for a :class:`~repro.ir.cfg.ProgramIR` in one call."""
    # Imported lazily: alias_pairs imports this module for its bulk
    # engine, so a module-level import would be circular.
    from repro.analysis.alias_pairs import collect_heap_references

    return BulkAliasMatrix.from_references(
        collect_heap_references(program), analysis)
