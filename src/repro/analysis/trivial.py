"""Trivial alias analyses: the two ends of the precision spectrum.

* :class:`AlwaysAliasAnalysis` — every pair of distinct paths may alias.
  This is the "no alias analysis" the paper's baseline GCC back end
  effectively has: it only removes redundant loads "without any
  assignments to memory between them".
* :class:`NeverAliasAnalysis` — no pair aliases.  **Unsound**; it exists
  for testing and for bounding experiments (what would RLE do with a
  perfect oracle that never kills on stores?).
"""

from repro.analysis.alias_base import AliasAnalysis
from repro.ir.access_path import AccessPath


class AlwaysAliasAnalysis(AliasAnalysis):
    """Maximally conservative: everything may alias everything."""

    name = "AlwaysAlias"

    def _may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        return True


class NeverAliasAnalysis(AliasAnalysis):
    """Maximally optimistic (unsound; test/limit use only)."""

    name = "NeverAlias"

    def _may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        return p == q
