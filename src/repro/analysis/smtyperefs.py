"""SMTypeRefs — selective type merging (Section 2.4, Figure 2).

TypeDecl assumes programs use types "in their full generality": an AP of
type T may reference any Subtypes(T).  SMTypeRefs only lets T reference a
subtype S when some *implicit or explicit pointer assignment* between the
two types exists.  The algorithm, verbatim from Figure 2:

    Step 1: put each pointer type in its own set.
    Step 2: for every pointer assignment a := b with Type(a) ≠ Type(b),
            merge the sets containing the two types.
    Step 3: TypeRefsTable(t) = group(t) ∩ Subtypes(t).

Step 3 prunes by the subtype relation, which creates the *asymmetry* the
paper highlights (Table 3): after ``t := s1; t := s2`` an AP of type T
may reference T, S1 or S2, but an AP of type S1 may only reference S1.
Footnote 4 notes that plain Steensgaard merging over user types would not
discover this asymmetry.

Implicit assignments collected (Section 2.4 says "explicit and implicit"):
direct ``:=``, variable initialisers, value-parameter binding, method
receiver and argument binding (over every implementation the static
receiver type allows), RETURN values, NEW field initialisers, and NARROW
coercions.

The **open-world** mode (Section 4) additionally merges every pair of
subtype-related types that unavailable code could reconstruct — i.e.
every pair where *neither* type is BRANDED — because unseen code may
perform such assignments.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.address_taken import AddressTakenInfo
from repro.analysis.alias_base import TypeOracle
from repro.analysis.fieldtypedecl import FieldTypeDeclAnalysis
from repro.analysis.typehierarchy import SubtypeOracle
from repro.ir.access_path import AccessPath
from repro.lang import ast_nodes as ast
from repro.lang.astwalk import all_exprs, walk_stmts
from repro.lang.errors import SourceLocation
from repro.lang.symtab import Symbol
from repro.lang.typecheck import CheckedModule, CheckedProc
from repro.lang.types import (
    NilType,
    ObjectType,
    ProcType,
    Type,
    is_pointer_type,
    is_subtype,
)
from repro.obs import metrics
from repro.util.bits import popcount
from repro.util.unionfind import UnionFind


@dataclass
class PointerAssignment:
    """One (implicit or explicit) pointer assignment ``dst := src``."""

    dst_type: Type
    src_type: Type
    kind: str  # 'assign' | 'init' | 'param' | 'receiver' | 'return' | 'new-field' | 'narrow'
    loc: SourceLocation

    def is_merge(self) -> bool:
        """Step 2 merges only when the two declared types differ."""
        return (
            self.dst_type is not self.src_type
            and not isinstance(self.src_type, NilType)
            and not isinstance(self.dst_type, NilType)
            and is_pointer_type(self.dst_type)
            and is_pointer_type(self.src_type)
        )


def collect_pointer_assignments(checked: CheckedModule) -> List[PointerAssignment]:
    """Every pointer assignment in the program, explicit and implicit."""
    out: List[PointerAssignment] = []

    def add(dst: Optional[Type], src: Optional[Type], kind: str, loc: SourceLocation) -> None:
        if dst is None or src is None:
            return
        if is_pointer_type(dst) and is_pointer_type(src):
            out.append(PointerAssignment(dst, src, kind, loc))

    # Global initialisers.
    for decl in checked.module.var_decls:
        if decl.init is not None:
            var_type = checked.globals and next(
                (g.type for g in checked.globals if g.name == decl.names[0]), None
            )
            add(var_type, decl.init.type, "init", decl.loc)

    for proc in checked.user_procs():
        _collect_proc(checked, proc, add)
    return out


def _collect_proc(checked: CheckedModule, proc: CheckedProc, add) -> None:
    # Local initialisers.
    if proc.decl is not None:
        by_name = {s.name: s for s in proc.locals}
        for vdecl in proc.decl.local_vars:
            if vdecl.init is not None:
                for name in vdecl.names:
                    add(by_name[name].type, vdecl.init.type, "init", vdecl.loc)

    for stmt in walk_stmts(proc.body):
        if isinstance(stmt, ast.AssignStmt):
            add(stmt.target.type, stmt.value.type, "assign", stmt.loc)
        elif isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
            add(proc.result, stmt.value.type, "return", stmt.loc)

    for _, expr in all_exprs(proc.body):
        if isinstance(expr, ast.CallExpr) and expr.call_kind == "proc":
            proc_sym: Symbol = getattr(expr.callee, "symbol")
            proc_type = proc_sym.type
            assert isinstance(proc_type, ProcType)
            for arg, param in zip(expr.args, proc_type.params):
                if param.mode != "var":
                    add(param.type, arg.type, "param", expr.loc)
        elif isinstance(expr, ast.CallExpr) and expr.call_kind == "method":
            method = getattr(expr, "method")
            for arg, param in zip(expr.args, method.params):
                if param.mode != "var":
                    add(param.type, arg.type, "param", expr.loc)
            receiver = expr.callee.obj  # type: ignore[union-attr]
            static_type = getattr(expr, "receiver_type")
            for recv_type in _receiver_formal_types(checked, static_type, method.name):
                add(recv_type, receiver.type, "receiver", expr.loc)
        elif isinstance(expr, ast.NewExpr):
            new_type = getattr(expr, "allocated_type")
            if isinstance(new_type, ObjectType):
                for fname, init in expr.field_inits:
                    add(new_type.field_type(fname), init.type, "new-field", expr.loc)
        elif isinstance(expr, ast.NarrowExpr):
            add(expr.target_type, expr.operand.type, "narrow", expr.loc)


def _receiver_formal_types(
    checked: CheckedModule, static_type: ObjectType, method_name: str
) -> List[Type]:
    """Receiver formal types that gain a *new* reference at this call.

    Only formals at or above the static receiver type count: binding the
    receiver to an inherited implementation's supertype formal is an
    upcast (real type flow), whereas dispatching to a subtype override
    binds a value that was already a member of that subtype — no new
    flow, so recording it would only defeat the selective merging.
    """
    result: List[Type] = []
    seen: Set[str] = set()
    for obj in checked.object_types():
        if not is_subtype(obj, static_type):
            continue
        impl = obj.method_impl(method_name)
        if impl is None or impl in seen:
            continue
        seen.add(impl)
        proc = checked.procs.get(impl)
        if proc is not None and proc.params:
            recv_type = proc.params[0].type
            if recv_type is not None and is_subtype(static_type, recv_type):
                result.append(recv_type)
    return result


class SMTypeRefsOracle(TypeOracle):
    """Figure 2's TypeRefsTable, used as the leaf of SMFieldTypeRefs.

    ``types_compatible(p, q)`` is
    ``TypeRefsTable(Type(p)) ∩ TypeRefsTable(Type(q)) ≠ ∅``;
    non-pointer types degrade to Subtypes-set intersection, which for
    them is type equality.
    """

    name = "SMTypeRefs"

    def __init__(
        self,
        checked: CheckedModule,
        subtypes: SubtypeOracle,
        assignments: Optional[List[PointerAssignment]] = None,
        open_world: bool = False,
    ):
        self.checked = checked
        self.subtypes = subtypes
        self.open_world = open_world
        self.assignments = (
            assignments if assignments is not None else collect_pointer_assignments(checked)
        )
        self.merges = [a for a in self.assignments if a.is_merge()]
        self._table: Dict[int, FrozenSet[int]] = {}
        self._mask_table: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        pointer_types = self.checked.types.pointer_types()
        # Step 1: one group per pointer type.
        group: UnionFind = UnionFind(id(t) for t in pointer_types)
        # Step 2: merge on every pointer assignment with differing types.
        for merge in self.merges:
            group.union(id(merge.dst_type), id(merge.src_type))
        # Open world: unavailable code may assign between any two
        # subtype-related types it can reconstruct (i.e. non-branded).
        if self.open_world:
            for obj in self.checked.object_types():
                if obj.brand is not None:
                    continue
                for ancestor in obj.ancestors():
                    if ancestor is obj or ancestor.brand is not None:
                        continue
                    group.union(id(obj), id(ancestor))
        # Step 3: TypeRefsTable(t) = group(t) ∩ Subtypes(t), as bitmasks
        # over the subtype oracle's dense type numbering.
        group_masks: Dict[int, int] = {}
        for t in pointer_types:
            root = group.find(id(t))
            group_masks[root] = group_masks.get(root, 0) | (
                1 << self.subtypes.type_bit(t)
            )
        pruned_refs = 0
        for t in pointer_types:
            group_mask = group_masks[group.find(id(t))]
            mask = group_mask & self.subtypes.subtype_mask(t)
            pruned_refs += popcount(group_mask) - popcount(mask)
            self._mask_table[id(t)] = mask
            self._table[id(t)] = frozenset(
                id(u) for u in self.subtypes.types_of_mask(mask)
            )
        self._record_build_metrics(group, pruned_refs, len(pointer_types))

    def _record_build_metrics(self, group: UnionFind, pruned_refs: int,
                              n_pointer_types: int) -> None:
        """One set of child metrics per oracle build (DESIGN.md §6e).

        ``pruned_refs`` is the total number of (type, referenced-type)
        entries Step 3's ``∩ Subtypes(t)`` removed from the raw merge
        groups — the table's asymmetry, made countable.
        """
        registry = metrics.registry()
        world = "open" if self.open_world else "closed"
        registry.new_counter(
            "smtyperefs.unionfind.finds", world=world).inc(group.finds)
        registry.new_counter(
            "smtyperefs.unionfind.merges", world=world).inc(group.merges)
        registry.new_counter(
            "smtyperefs.typerefs.pruned_refs", world=world).inc(pruned_refs)
        registry.new_counter(
            "smtyperefs.assignments.merging", world=world).inc(len(self.merges))
        registry.gauge("smtyperefs.pointer_types", world=world).set(
            n_pointer_types)
        registry.gauge("smtyperefs.groups", world=world).set(group.n_classes)

    # ------------------------------------------------------------------

    def type_refs_mask(self, t: Type) -> int:
        """TypeRefsTable(t) as a bitmask (the query representation)."""
        mask = self._mask_table.get(id(t))
        if mask is not None:
            return mask
        return self.subtypes.subtype_mask(t)

    def type_refs(self, t: Type) -> FrozenSet[int]:
        """TypeRefsTable(t) as a set of type identities."""
        cached = self._table.get(id(t))
        if cached is not None:
            return cached
        return self.subtypes.subtype_set(t)

    def type_refs_types(self, t: Type) -> List[Type]:
        """TypeRefsTable(t) as type objects (for reports and tests)."""
        ids = self.type_refs(t)
        return [u for u in self.checked.types.all_types if id(u) in ids]

    def types_compatible(self, p: AccessPath, q: AccessPath) -> bool:
        tp, tq = p.type, q.type
        if tp is tq:
            return True
        return (self.type_refs_mask(tp) & self.type_refs_mask(tq)) != 0

    def type_mask(self, t: Type) -> int:
        return self.type_refs_mask(t)


def SMFieldTypeRefsAnalysis(
    checked: CheckedModule,
    subtypes: SubtypeOracle,
    address_taken: AddressTakenInfo,
    assignments: Optional[List[PointerAssignment]] = None,
    open_world: bool = False,
) -> FieldTypeDeclAnalysis:
    """SMFieldTypeRefs = FieldTypeDecl with the SMTypeRefs leaf oracle."""
    oracle = SMTypeRefsOracle(checked, subtypes, assignments, open_world=open_world)
    return FieldTypeDeclAnalysis(oracle, address_taken, name="SMFieldTypeRefs")
