"""FieldTypeDecl — TBAA with field and access semantics (Table 2).

The seven cases of the paper, verbatim:

====  =========  =========  =====================================================
Case  AP1        AP2        FieldTypeDecl(AP1, AP2)
====  =========  =========  =====================================================
1     p          p          true
2     p.f        q.g        (f = g) ∧ FieldTypeDecl(p, q)
3     p.f        q^         AddressTaken(p.f) ∧ TypeDecl(p.f, q^)
4     p^         q[i]       AddressTaken(q[i]) ∧ TypeDecl(p^, q[i])
5     p.f        q[i]       false
6     p[i]       q[j]       FieldTypeDecl(p, q)   (subscripts ignored)
7     p          q          TypeDecl(p, q)
====  =========  =========  =====================================================

The class is parameterised by the leaf :class:`TypeOracle`: with
:class:`~repro.analysis.typedecl.TypeDeclOracle` it is the paper's
FieldTypeDecl; with :class:`~repro.analysis.smtyperefs.SMTypeRefsOracle`
it is SMFieldTypeRefs ("we obtain the final version of our TBAA algorithm
SMFieldTypeRefs by using SMTypeRefs for TypeDecl in the FieldTypeDecl
algorithm").
"""

from repro.analysis.address_taken import AddressTakenInfo
from repro.analysis.alias_base import AliasAnalysis, TypeOracle
from repro.ir.access_path import AccessPath, Deref, Qualify, Subscript
from repro.lang.types import ObjectType


class FieldTypeDeclAnalysis(AliasAnalysis):
    """Table 2 over a pluggable type oracle."""

    def __init__(self, oracle: TypeOracle, address_taken: AddressTakenInfo,
                 name: str = "FieldTypeDecl"):
        super().__init__(name)
        self.oracle = oracle
        self.address_taken = address_taken

    def _may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        # Case 1: identical APs always alias each other.
        if p == q:
            return True

        p_is_qualify = isinstance(p, Qualify)
        q_is_qualify = isinstance(q, Qualify)
        p_is_deref = isinstance(p, Deref)
        q_is_deref = isinstance(q, Deref)
        p_is_subscript = isinstance(p, Subscript)
        q_is_subscript = isinstance(q, Subscript)

        # Case 2: two qualified expressions alias iff they access the same
        # field of potentially the same object.  Object field selection
        # (`o.f` with o of OBJECT type) carries an *implicit dereference*:
        # the paper's form is (o^).f, so with equal fields the recursion
        # reaches AE(o1^, o2^) — case 7, the type oracle on the pointer
        # values.  Recursing on the bases as locations instead would ask
        # whether the pointer *cells* coincide and wrongly separate
        # differently-named fields that point at the same object.
        # Embedded record/array fields have no such deref and recurse
        # structurally.  Bases of canonical paths are canonical, so the
        # recursion skips re-canonicalisation.
        if p_is_qualify and q_is_qualify:
            if p.field != q.field:
                return False
            if isinstance(p.base.type, ObjectType) or isinstance(
                q.base.type, ObjectType
            ):
                return self.oracle.types_compatible(p.base, q.base)
            return self.may_alias_canonical(p.base, q.base)

        # Case 3: qualify vs dereference — only if the program takes the
        # address of such a field and the types are compatible.
        if p_is_qualify and q_is_deref:
            return self._qualify_vs_deref(p, q)
        if q_is_qualify and p_is_deref:
            return self._qualify_vs_deref(q, p)

        # Case 4: dereference vs subscript — only if the program takes the
        # address of an element of such an array and types are compatible.
        if p_is_deref and q_is_subscript:
            return self._deref_vs_subscript(p, q)
        if q_is_deref and p_is_subscript:
            return self._deref_vs_subscript(q, p)

        # Case 5: a subscripted expression cannot alias a qualified one.
        if (p_is_qualify and q_is_subscript) or (q_is_qualify and p_is_subscript):
            return False

        # Case 6: two subscripted expressions alias iff they may subscript
        # the same array; the actual subscripts are ignored.
        if p_is_subscript and q_is_subscript:
            return self.may_alias_canonical(p.base, q.base)

        # Case 7: everything else (incl. two dereferences) falls back to
        # the type oracle.
        return self.oracle.types_compatible(p, q)

    # ------------------------------------------------------------------

    # ------------------------------------------------------------------

    def explain(self, p: AccessPath, q: AccessPath) -> str:
        """Human-readable trace of which Table 2 case decides (p, q).

        For library users debugging an unexpected may-alias answer; the
        recursion of cases 2 and 6 is shown indented.
        """
        lines: list = []
        result = self._explain(p, q, lines, depth=0)
        verdict = "MAY alias" if result else "do NOT alias"
        return "\n".join(lines + ["=> {} and {} {}".format(p, q, verdict)])

    def _explain(self, p: AccessPath, q: AccessPath, lines, depth: int) -> bool:
        from repro.ir.access_path import strip_index

        p, q = strip_index(p), strip_index(q)
        pad = "  " * depth

        def note(case: str, text: str) -> None:
            lines.append("{}[case {}] {}".format(pad, case, text))

        if p == q:
            note("1", "identical paths {}".format(p))
            return True
        p_q, q_q = isinstance(p, Qualify), isinstance(q, Qualify)
        p_d, q_d = isinstance(p, Deref), isinstance(q, Deref)
        p_s, q_s = isinstance(p, Subscript), isinstance(q, Subscript)
        if p_q and q_q:
            if p.field != q.field:
                note("2", "fields differ: {} vs {}".format(p.field, q.field))
                return False
            if isinstance(p.base.type, ObjectType) or isinstance(
                q.base.type, ObjectType
            ):
                compatible = self.oracle.types_compatible(p.base, q.base)
                note("2", "same field '{}' via implicit deref; {}({}, {}) = {}".format(
                    p.field, self.oracle.name, p.base.type.name,
                    q.base.type.name, compatible))
                return compatible
            note("2", "same field '{}'; recurse on bases".format(p.field))
            return self._explain(p.base, q.base, lines, depth + 1)
        if (p_q and q_d) or (q_q and p_d):
            qual, deref = (p, q) if p_q else (q, p)
            taken = self.address_taken.qualify_taken(
                qual.field, qual.base.type, qual.type
            )
            compatible = self.oracle.types_compatible(qual, deref)
            note("3", "AddressTaken({})={}, {}-compatible={}".format(
                qual, taken, self.oracle.name, compatible))
            return taken and compatible
        if (p_d and q_s) or (q_d and p_s):
            deref, sub = (p, q) if p_d else (q, p)
            taken = self.address_taken.subscript_taken(sub.base.type, sub.type)
            compatible = self.oracle.types_compatible(deref, sub)
            note("4", "AddressTaken({})={}, {}-compatible={}".format(
                sub, taken, self.oracle.name, compatible))
            return taken and compatible
        if (p_q and q_s) or (q_q and p_s):
            note("5", "qualify vs subscript never alias")
            return False
        if p_s and q_s:
            note("6", "both subscripts; recurse on arrays (indices ignored)")
            return self._explain(p.base, q.base, lines, depth + 1)
        compatible = self.oracle.types_compatible(p, q)
        note("7", "{}({}, {}) = {}".format(self.oracle.name, p.type.name,
                                           q.type.name, compatible))
        return compatible

    def _qualify_vs_deref(self, qual: Qualify, deref: Deref) -> bool:
        taken = self.address_taken.qualify_taken(
            qual.field, qual.base.type, qual.type
        )
        return taken and self.oracle.types_compatible(qual, deref)

    def _deref_vs_subscript(self, deref: Deref, sub: Subscript) -> bool:
        taken = self.address_taken.subscript_taken(sub.base.type, sub.type)
        return taken and self.oracle.types_compatible(deref, sub)
