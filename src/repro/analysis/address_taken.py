"""The ``AddressTaken`` predicate (Sections 2.3 and 4).

Modula-3 programs can take the address of a memory location in exactly
two ways — pass-by-reference (``VAR``) parameters and the ``WITH``
statement — and FieldTypeDecl's cases 3 and 4 only let a dereference
alias a qualified or subscripted expression when the program somewhere
takes such an address:

* ``AddressTaken(p.f)`` — "true if the program takes the address of field
  f of an object in the set TypeDecl(p)";
* ``AddressTaken(q[i])`` — "true if the program takes the address of some
  element of an array of q's type".

The **open-world** revision (Section 4) additionally declares
``AddressTaken(p)`` true when a pass-by-reference formal of p's exact
type exists anywhere, because unavailable code may pass addresses into
available code (Modula-3 requires VAR formals and actuals to have
*identical* types, so type equality — not compatibility — is checked).
"""

from typing import List, Set, Tuple

from repro.analysis.typehierarchy import SubtypeOracle
from repro.lang import ast_nodes as ast
from repro.lang.astwalk import all_exprs, walk_stmts
from repro.lang.symtab import Symbol
from repro.lang.typecheck import CheckedModule
from repro.lang.types import ArrayType, ProcType, Type


class AddressTakenInfo:
    """Queryable record of every address-taking construct in the program."""

    def __init__(self, subtypes: SubtypeOracle, open_world: bool = False):
        self._subtypes = subtypes
        self.open_world = open_world
        # (field name, static type of the qualified base)
        self._fields: List[Tuple[str, Type]] = []
        # static ArrayType whose element's address was taken
        self._array_types: List[ArrayType] = []
        # variables whose address was taken (for RLE's kill reasoning)
        self.taken_vars: Set[Symbol] = set()
        # types of all pass-by-reference formals (open-world clause 2)
        self._var_formal_types: Set[int] = set()

    # -- construction ----------------------------------------------------

    def record_designator(self, expr: ast.Expr) -> None:
        """Record that the program takes the address of *expr*."""
        if isinstance(expr, ast.FieldRef):
            base_type = expr.obj.type
            assert base_type is not None
            self._fields.append((expr.field_name, base_type))
        elif isinstance(expr, ast.IndexExpr):
            arr_type = expr.array.type
            assert isinstance(arr_type, ArrayType)
            self._array_types.append(arr_type)
        elif isinstance(expr, ast.NameRef):
            self.taken_vars.add(getattr(expr, "symbol"))
        # &p^ introduces no new address: the address already existed as
        # the reference p.

    def record_var_formal(self, formal_type: Type) -> None:
        self._var_formal_types.add(id(formal_type))

    # -- queries -----------------------------------------------------------

    def qualify_taken(self, field: str, base_type: Type, ap_type: Type) -> bool:
        """AddressTaken(p.f) for a qualify with base type *base_type*."""
        if self.open_world and id(ap_type) in self._var_formal_types:
            return True
        for taken_field, taken_base in self._fields:
            if taken_field == field and self._subtypes.compatible(base_type, taken_base):
                return True
        return False

    def subscript_taken(self, array_type: Type, ap_type: Type) -> bool:
        """AddressTaken(q[i]) for a subscript of an array of *array_type*."""
        if self.open_world and id(ap_type) in self._var_formal_types:
            return True
        return any(t is array_type for t in self._array_types)

    def var_taken(self, symbol: Symbol) -> bool:
        if self.open_world and symbol.type is not None and id(symbol.type) in self._var_formal_types:
            return True
        return symbol in self.taken_vars


def collect_address_taken(
    checked: CheckedModule,
    subtypes: SubtypeOracle,
    open_world: bool = False,
) -> AddressTakenInfo:
    """Scan the program for VAR arguments and location-binding WITHs."""
    info = AddressTakenInfo(subtypes, open_world=open_world)

    for proc in checked.user_procs():
        # WITH bindings that alias a location.
        for stmt in walk_stmts(proc.body):
            if isinstance(stmt, ast.WithStmt):
                for binding in stmt.bindings:
                    if binding.binds_location:
                        info.record_designator(binding.expr)
        # VAR arguments at call sites.
        for _, expr in all_exprs(proc.body):
            if isinstance(expr, ast.CallExpr) and expr.call_kind in ("proc", "method"):
                params = _call_params(expr)
                for arg, param in zip(expr.args, params):
                    if param.mode == "var":
                        info.record_designator(arg)
        # Formal VAR parameter types (open-world clause).
        for param in proc.params:
            if param.by_reference and param.type is not None:
                info.record_var_formal(param.type)

    return info


def _call_params(call: ast.CallExpr):
    if call.call_kind == "method":
        return getattr(call, "method").params
    proc_sym: Symbol = getattr(call.callee, "symbol")
    proc_type = proc_sym.type
    assert isinstance(proc_type, ProcType)
    return proc_type.params
