"""TypeDecl — TBAA using type declarations only (Section 2.2).

    Given two APs p and q, TypeDecl(p, q) determines they may be aliases
    if and only if Subtypes(Type(p)) ∩ Subtypes(Type(q)) ≠ ∅.

This is the weakest of the three analyses: it merges every access of
compatible type, ignoring fields, the qualify/subscript distinction and
the program's actual assignments.  The paper's Table 5 shows it to be
"very imprecise"; reproducing that gap is the point of keeping it.
"""

from repro.analysis.alias_base import AliasAnalysis, TypeOracle
from repro.analysis.typehierarchy import SubtypeOracle
from repro.ir.access_path import AccessPath


class TypeDeclOracle(TypeOracle):
    """The declared-type compatibility test, used standalone by TypeDecl
    and as the leaf oracle inside FieldTypeDecl."""

    name = "TypeDecl"

    def __init__(self, subtypes: SubtypeOracle):
        self.subtypes = subtypes

    def types_compatible(self, p: AccessPath, q: AccessPath) -> bool:
        return self.subtypes.compatible(p.type, q.type)

    def type_mask(self, t) -> int:
        return self.subtypes.subtype_mask(t)


class TypeDeclAnalysis(AliasAnalysis):
    """May-alias = declared-type compatibility, nothing else."""

    name = "TypeDecl"

    def __init__(self, subtypes: SubtypeOracle):
        super().__init__()
        self.oracle = TypeDeclOracle(subtypes)

    def _may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        return self.oracle.types_compatible(p, q)
