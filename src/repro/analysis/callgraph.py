"""Call graph over the lowered program.

Direct calls have one target; method invocations may dispatch to any
implementation reachable from the *static* receiver type's subtree
(``Subtypes(static type)`` — the same type information TBAA uses).  The
mod-ref analysis iterates summaries over this graph to a fixpoint.
"""

from typing import Dict, List, Set

from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR
from repro.lang.types import ObjectType, is_subtype


class CallGraph:
    """callers/callees maps plus method-dispatch target resolution."""

    def __init__(self, program: ProgramIR):
        self.program = program
        self.callees: Dict[str, Set[str]] = {name: set() for name in program.proc_order}
        self.callers: Dict[str, Set[str]] = {name: set() for name in program.proc_order}
        self._method_targets_cache: Dict[tuple, List[str]] = {}
        self._build()

    def _build(self) -> None:
        for proc in self.program.user_procs():
            for instr in proc.all_instrs():
                if isinstance(instr, ins.Call):
                    self._add_edge(proc.name, instr.proc_name)
                elif isinstance(instr, ins.CallMethod):
                    for target in self.method_targets(
                        instr.static_receiver_type, instr.method_name
                    ):
                        self._add_edge(proc.name, target)

    def _add_edge(self, caller: str, callee: str) -> None:
        if callee in self.callees:
            self.callees[caller].add(callee)
            self.callers[callee].add(caller)

    def method_targets(self, static_type: ObjectType, method_name: str) -> List[str]:
        """All implementations a ``static_type.method()`` call may reach."""
        key = (id(static_type), method_name)
        cached = self._method_targets_cache.get(key)
        if cached is not None:
            return cached
        targets: List[str] = []
        seen: Set[str] = set()
        for obj in self.program.checked.object_types():
            if not is_subtype(obj, static_type):
                continue
            impl = obj.method_impl(method_name)
            if impl is not None and impl not in seen and impl in self.program.procs:
                seen.add(impl)
                targets.append(impl)
        self._method_targets_cache[key] = targets
        return targets

    def call_targets(self, instr: ins.Instr) -> List[str]:
        """Possible callees of one call instruction."""
        if isinstance(instr, ins.Call):
            return [instr.proc_name]
        if isinstance(instr, ins.CallMethod):
            return self.method_targets(instr.static_receiver_type, instr.method_name)
        return []
