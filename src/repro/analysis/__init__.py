"""The paper's contribution: three type-based alias analyses + clients.

* :mod:`repro.analysis.typehierarchy` — ``Subtypes(T)`` sets (Section 2.1);
* :mod:`repro.analysis.typedecl` — **TypeDecl** (Section 2.2): may-alias
  iff the subtype sets of the declared types intersect;
* :mod:`repro.analysis.address_taken` — the ``AddressTaken`` predicate
  over VAR parameters and WITH statements, with the open-world revision
  of Section 4;
* :mod:`repro.analysis.fieldtypedecl` — **FieldTypeDecl** (Section 2.3,
  Table 2): the seven structural cases over access paths;
* :mod:`repro.analysis.smtyperefs` — **SMTypeRefs** (Section 2.4,
  Figure 2): selective type merging over all implicit/explicit pointer
  assignments, producing the asymmetric ``TypeRefsTable``;
  **SMFieldTypeRefs** = FieldTypeDecl with SMTypeRefs substituted for
  TypeDecl;
* :mod:`repro.analysis.callgraph`, :mod:`repro.analysis.modref` — the
  interprocedural mod-ref summaries RLE consults at call sites;
* :mod:`repro.analysis.alias_pairs` — the static alias-pair metric of
  Table 5;
* :mod:`repro.analysis.bulk` — the bitset-matrix bulk engine behind
  ``--engine bulk``: picklable class-adjacency matrices with
  AND/popcount (or numpy) counting kernels;
* :mod:`repro.analysis.openworld` — factory for the incomplete-program
  variants of all three analyses (Section 4, Figure 12).
"""

from repro.analysis.typehierarchy import SubtypeOracle
from repro.analysis.alias_base import AliasAnalysis, TypeOracle
from repro.analysis.typedecl import TypeDeclAnalysis, TypeDeclOracle
from repro.analysis.address_taken import AddressTakenInfo, collect_address_taken
from repro.analysis.fieldtypedecl import FieldTypeDeclAnalysis
from repro.analysis.smtyperefs import (
    SMTypeRefsOracle,
    SMFieldTypeRefsAnalysis,
    collect_pointer_assignments,
    PointerAssignment,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.modref import ModRefAnalysis, ModRefSummary
from repro.analysis.alias_pairs import AliasPairCounter, AliasPairReport, collect_heap_references
from repro.analysis.bulk import BulkAliasMatrix, BulkCounts, build_matrix, default_backend
from repro.analysis.openworld import make_analysis, ANALYSIS_NAMES, EXTRA_ANALYSIS_NAMES
from repro.analysis.steensgaard import SteensgaardTypesOracle, SteensgaardFieldTypeRefsAnalysis
from repro.analysis.trivial import AlwaysAliasAnalysis, NeverAliasAnalysis

__all__ = [
    "SubtypeOracle",
    "AliasAnalysis",
    "TypeOracle",
    "TypeDeclAnalysis",
    "TypeDeclOracle",
    "AddressTakenInfo",
    "collect_address_taken",
    "FieldTypeDeclAnalysis",
    "SMTypeRefsOracle",
    "SMFieldTypeRefsAnalysis",
    "collect_pointer_assignments",
    "PointerAssignment",
    "CallGraph",
    "ModRefAnalysis",
    "ModRefSummary",
    "AliasPairCounter",
    "AliasPairReport",
    "collect_heap_references",
    "BulkAliasMatrix",
    "BulkCounts",
    "build_matrix",
    "default_backend",
    "make_analysis",
    "ANALYSIS_NAMES",
    "EXTRA_ANALYSIS_NAMES",
    "SteensgaardTypesOracle",
    "SteensgaardFieldTypeRefsAnalysis",
    "AlwaysAliasAnalysis",
    "NeverAliasAnalysis",
]
