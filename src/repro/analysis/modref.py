"""Interprocedural mod-ref analysis.

Section 3.4.1: "To enable RLE across calls, RLE is preceded by a mod-ref
analysis which summarizes the access paths that are referenced and
modified by each call."

A :class:`ModRefSummary` holds, transitively over the call graph:

* ``heap_writes`` / ``heap_reads`` — canonical access paths of heap
  stores/loads the procedure may perform (incl. stores through handles,
  which appear as ``Deref(param)`` paths — the alias analyses relate
  them to qualified/subscripted paths via AddressTaken, Table 2 cases
  3–4);
* ``global_writes`` / ``global_reads`` — module-level variables touched;
* ``param_writes`` — indices of VAR parameters written through.

At a call site RLE resolves ``param_writes`` against the lent locations
(recorded on the call instruction by the lowering) to decide which caller
variables and heap paths may change.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.ir import instructions as ins
from repro.ir.access_path import AccessPath, Deref, VarRoot, strip_index
from repro.ir.cfg import ProcIR, ProgramIR
from repro.lang.symtab import Symbol


class ModRefSummary:
    """What one procedure may read and write, transitively."""

    def __init__(self, name: str):
        self.name = name
        self.heap_writes: Set[AccessPath] = set()
        self.heap_reads: Set[AccessPath] = set()
        self.global_writes: Set[Symbol] = set()
        self.global_reads: Set[Symbol] = set()
        self.param_writes: Set[int] = set()

    def size_key(self) -> Tuple[int, int, int, int, int]:
        return (
            len(self.heap_writes),
            len(self.heap_reads),
            len(self.global_writes),
            len(self.global_reads),
            len(self.param_writes),
        )

    def __repr__(self) -> str:
        return "<ModRefSummary {} writes={} globals={} params={}>".format(
            self.name, len(self.heap_writes), len(self.global_writes),
            sorted(self.param_writes),
        )


class ModRefAnalysis:
    """Computes summaries for every procedure by fixpoint iteration."""

    def __init__(self, program: ProgramIR, callgraph: Optional[CallGraph] = None):
        self.program = program
        self.callgraph = callgraph or CallGraph(program)
        self.summaries: Dict[str, ModRefSummary] = {}
        self._compute()

    def summary(self, proc_name: str) -> ModRefSummary:
        return self.summaries[proc_name]

    # ------------------------------------------------------------------

    def _compute(self) -> None:
        for proc in self.program.user_procs():
            self.summaries[proc.name] = self._direct_summary(proc)
        changed = True
        while changed:
            changed = False
            for proc in self.program.user_procs():
                if self._absorb_callees(proc):
                    changed = True

    def _direct_summary(self, proc: ProcIR) -> ModRefSummary:
        summary = ModRefSummary(proc.name)
        param_index = {
            symbol: i for i, symbol in enumerate(proc.checked.params)
        }
        for instr in proc.all_instrs():
            if instr.is_heap_store:
                assert instr.ap is not None
                summary.heap_writes.add(strip_index(instr.ap))
                self._note_indirect(instr, proc, summary, param_index, write=True)
            elif instr.is_heap_load:
                assert instr.ap is not None
                summary.heap_reads.add(strip_index(instr.ap))
                self._note_indirect(instr, proc, summary, param_index, write=False)
            elif isinstance(instr, ins.StoreVar) and instr.symbol.is_global:
                summary.global_writes.add(instr.symbol)
            elif isinstance(instr, ins.LoadVar) and instr.symbol.is_global:
                summary.global_reads.add(instr.symbol)
        return summary

    def _note_indirect(
        self,
        instr: ins.Instr,
        proc: ProcIR,
        summary: ModRefSummary,
        param_index: Dict[Symbol, int],
        write: bool,
    ) -> None:
        """Resolve Load/StoreInd through handles to params/globals."""
        if not isinstance(instr, (ins.LoadInd, ins.StoreInd)):
            return
        ap = instr.ap
        root = ap.root() if ap is not None else None
        if not isinstance(root, VarRoot):
            return
        symbol = root.symbol
        if symbol.by_reference and symbol in param_index:
            if write:
                summary.param_writes.add(param_index[symbol])
            return
        if symbol.kind == "with":
            target = proc.handle_targets.get(symbol)
            self._absorb_lent_location(summary, proc, target, param_index, write)

    def _absorb_lent_location(
        self,
        summary: ModRefSummary,
        proc: ProcIR,
        target: Optional[tuple],
        param_index: Dict[Symbol, int],
        write: bool,
    ) -> None:
        if target is None:
            return
        kind, payload = target
        if kind == "var":
            if payload.is_global:
                (summary.global_writes if write else summary.global_reads).add(payload)
            # Writes to own locals are invisible to callers.
        elif kind == "handle":
            if payload.by_reference and payload in param_index and write:
                summary.param_writes.add(param_index[payload])
            elif payload.kind == "with":
                self._absorb_lent_location(
                    summary, proc, proc.handle_targets.get(payload), param_index, write
                )
        elif kind == "heap":
            (summary.heap_writes if write else summary.heap_reads).add(payload)

    # ------------------------------------------------------------------

    def _absorb_callees(self, proc: ProcIR) -> bool:
        summary = self.summaries[proc.name]
        before = summary.size_key()
        param_index = {s: i for i, s in enumerate(proc.checked.params)}
        for instr in proc.all_instrs():
            if not instr.is_call:
                continue
            var_args: Dict[int, tuple] = getattr(instr, "var_args", {})
            offset = 1 if isinstance(instr, ins.CallMethod) else 0
            for callee_name in self.callgraph.call_targets(instr):
                callee = self.summaries.get(callee_name)
                if callee is None:
                    continue
                summary.heap_writes |= callee.heap_writes
                summary.heap_reads |= callee.heap_reads
                summary.global_writes |= callee.global_writes
                summary.global_reads |= callee.global_reads
                for written_param in callee.param_writes:
                    # Method receivers shift explicit args by one.
                    arg_position = written_param - offset
                    target = var_args.get(arg_position)
                    self._absorb_lent_location(
                        summary, proc, target, param_index, write=True
                    )
        return summary.size_key() != before

    # ------------------------------------------------------------------
    # Call-site kill queries (used by RLE)

    def call_may_write_global(self, instr: ins.Instr, symbol: Symbol) -> bool:
        for callee in self.callgraph.call_targets(instr):
            if symbol in self.summaries[callee].global_writes:
                return True
        return False

    def call_heap_writes(self, instr: ins.Instr) -> Set[AccessPath]:
        """Union of heap write paths over all possible callees, plus the
        heap locations lent as VAR arguments at this site."""
        writes: Set[AccessPath] = set()
        for callee in self.callgraph.call_targets(instr):
            writes |= self.summaries[callee].heap_writes
        for target in getattr(instr, "var_args", {}).values():
            if target[0] == "heap":
                writes.add(target[1])
        return writes

    def call_written_var_roots(self, instr: ins.Instr, proc: ProcIR) -> Set[Symbol]:
        """Caller variables whose value may change across this call:
        globals the callees write, plus variables lent by VAR."""
        roots: Set[Symbol] = set()
        for callee in self.callgraph.call_targets(instr):
            roots |= self.summaries[callee].global_writes
        for target in getattr(instr, "var_args", {}).values():
            roots |= _lent_var_roots(target, proc)
        return roots


def _lent_var_roots(target: tuple, proc: ProcIR) -> Set[Symbol]:
    kind, payload = target
    if kind == "var":
        return {payload}
    if kind == "handle":
        roots = {payload}
        deeper = proc.handle_targets.get(payload)
        if deeper is not None:
            roots |= _lent_var_roots(deeper, proc)
        return roots
    return set()
