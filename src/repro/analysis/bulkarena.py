"""Read-only mmap arenas of bulk alias matrices.

The corpus pipeline used to move :class:`~repro.analysis.bulk.
BulkAliasMatrix` objects between processes by pickling, which gives
every worker its own private copy of every row — for a 10⁵-program
corpus that multiplies the matrix footprint by the worker count.  This
module packs many matrices into **one arena file** that workers map
read-only:

* :func:`write_arena` serialises a matrix list as an 8-byte length
  prefix, a JSON header (everything small: names, class tallies,
  per-procedure occupancy) and a binary payload holding the big-int
  sequences (``class_rows``, ``class_members``, ``path_proc_masks``)
  as little-endian bytes;
* :func:`open_arena` maps the file with :mod:`mmap` and materialises
  matrices **lazily**: the heavy sequences come back as
  :class:`_MmapIntSeq` views that decode one integer per access
  straight out of the mapping.  ``fork``-based pools inherit the
  mapping, so every worker reads the *same* physical pages — the
  per-worker cost drops from a full copy to page-cache references.

The substitution is sound because the counting kernels only ever index
and iterate those sequences (:meth:`BulkAliasMatrix._count_python` and
``_numpy_arrays`` both walk ``class_rows`` by position).  Pickling an
arena-backed matrix degrades gracefully — :class:`_MmapIntSeq` reduces
to a plain list — but the point of the arena is not to pickle at all.
"""

import json
import mmap
import struct
from itertools import accumulate
from pathlib import Path
from typing import Dict, List, Sequence

from repro.analysis.bulk import BulkAliasMatrix

#: Bumped whenever the arena layout changes.
ARENA_VERSION = 1

#: Arena files start with this magic, then the header length (u64 LE).
MAGIC = b"RPRARENA"

_PREFIX = struct.Struct("<8sQ")


def _int_to_bytes(value: int) -> bytes:
    return value.to_bytes(max((value.bit_length() + 7) // 8, 1), "little")


class _MmapIntSeq(Sequence):
    """Lazy ``Sequence[int]`` over length-delimited ints in an mmap."""

    __slots__ = ("_mm", "_offsets")

    def __init__(self, mm, base: int, lengths: List[int]):
        self._mm = mm
        self._offsets = [base] + [base + c for c in accumulate(lengths)]

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int) -> int:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        lo, hi = self._offsets[index], self._offsets[index + 1]
        return int.from_bytes(self._mm[lo:hi], "little")

    def __iter__(self):
        offsets = self._offsets
        mm = self._mm
        for i in range(len(self)):
            yield int.from_bytes(mm[offsets[i]:offsets[i + 1]], "little")

    def __reduce__(self):
        # Crossing a pickle boundary forfeits the sharing; materialise.
        return (list, (list(self),))


class _PayloadWriter:
    """Accumulates int sequences, tracking per-sequence byte lengths."""

    def __init__(self) -> None:
        self.chunks: List[bytes] = []
        self.position = 0

    def put_seq(self, values: Sequence[int]) -> Dict[str, object]:
        base = self.position
        lengths = []
        for value in values:
            blob = _int_to_bytes(value)
            self.chunks.append(blob)
            lengths.append(len(blob))
            self.position += len(blob)
        return {"base": base, "lengths": lengths}


def write_arena(path: Path, matrices: List[BulkAliasMatrix]) -> None:
    """Pack *matrices* into one read-only arena file at *path*."""
    payload = _PayloadWriter()
    entries = []
    for matrix in matrices:
        entries.append({
            "analysis_name": matrix.analysis_name,
            "scheme": matrix.scheme,
            "proc_names": matrix.proc_names,
            "path_strs": matrix.path_strs,
            "path_class": list(matrix.path_class),
            "path_counts": list(matrix.path_counts),
            "class_totals": list(matrix.class_totals),
            "class_sumsq": list(matrix.class_sumsq),
            "class_same": list(matrix.class_same),
            "class_proc_counts": [
                {str(p): n for p, n in pc.items()}
                for pc in matrix.class_proc_counts
            ],
            "class_rows": payload.put_seq(matrix.class_rows),
            "class_members": payload.put_seq(matrix.class_members),
            "path_proc_masks": payload.put_seq(matrix.path_proc_masks),
        })
    header = json.dumps(
        {"version": ARENA_VERSION, "matrices": entries},
        sort_keys=True).encode()
    with open(path, "wb") as f:
        f.write(_PREFIX.pack(MAGIC, len(header)))
        f.write(header)
        for chunk in payload.chunks:
            f.write(chunk)


class MatrixArena:
    """One opened arena: lazy, shared, read-only matrix views."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._file = open(self.path, "rb")
        self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        magic, header_len = _PREFIX.unpack(self._mm[:_PREFIX.size])
        if magic != MAGIC:
            raise ValueError("{}: not a matrix arena".format(self.path))
        header = json.loads(
            self._mm[_PREFIX.size:_PREFIX.size + header_len].decode())
        if header.get("version") != ARENA_VERSION:
            raise ValueError("{}: unknown arena version {!r}".format(
                self.path, header.get("version")))
        self._entries = header["matrices"]
        self._payload_base = _PREFIX.size + header_len

    def __len__(self) -> int:
        return len(self._entries)

    def _seq(self, ref: Dict[str, object]) -> _MmapIntSeq:
        return _MmapIntSeq(self._mm, self._payload_base + ref["base"],
                           ref["lengths"])

    def matrix(self, index: int) -> BulkAliasMatrix:
        """Matrix *index* with its heavy sequences backed by the mmap."""
        entry = self._entries[index]
        return BulkAliasMatrix(
            analysis_name=entry["analysis_name"],
            scheme=entry["scheme"],
            proc_names=list(entry["proc_names"]),
            path_strs=list(entry["path_strs"]),
            path_class=list(entry["path_class"]),
            path_counts=list(entry["path_counts"]),
            path_proc_masks=self._seq(entry["path_proc_masks"]),
            class_rows=self._seq(entry["class_rows"]),
            class_members=self._seq(entry["class_members"]),
            class_totals=list(entry["class_totals"]),
            class_sumsq=list(entry["class_sumsq"]),
            class_same=list(entry["class_same"]),
            class_proc_counts=[
                {int(p): n for p, n in pc.items()}
                for pc in entry["class_proc_counts"]
            ],
        )

    def matrices(self) -> List[BulkAliasMatrix]:
        return [self.matrix(i) for i in range(len(self))]

    def close(self) -> None:
        self._mm.close()
        self._file.close()

    def __enter__(self) -> "MatrixArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def open_arena(path: Path) -> MatrixArena:
    return MatrixArena(path)
