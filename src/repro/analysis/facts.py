"""Fact (de)serialization hooks for the serving fact cache.

Every analysis in this package derives its answers from a small set of
*facts* about one checked module — ``Subtypes(T)`` bitmasks, the
``TypeRefsTable``, the ``AddressTaken`` record, Steensgaard's merge
classes, and (since PR 5) the per-analysis :class:`~repro.analysis.bulk.
BulkAliasMatrix`.  The serve layer (:mod:`repro.serve`) wants to persist
those facts on disk keyed by content hash so an unchanged module never
rebuilds them; this module is the bridge:

* :func:`export_subtype_masks` / :func:`export_typerefs_masks` /
  :func:`export_address_taken` / :func:`export_steensgaard_classes`
  flatten the live oracle objects into plain JSON-able structures.
  Types are identified by ``(bit, str(type))`` where ``bit`` is the
  subtype oracle's dense numbering — unique per type even when two
  anonymous types render identically.
* :class:`AnalysisWorldFacts` bundles the flattened facts of one
  (module, world) pair; :func:`collect_world_facts` builds it from an
  :class:`~repro.analysis.openworld.AnalysisContext` and its analyses.
* :class:`ConfigFacts` carries the cached answer material of one
  (analysis, world) configuration: the picklable bulk matrix plus its
  Table 5 counts.
* :class:`FactBundle` is the whole per-module cache partition: module
  and per-procedure content hashes, both worlds' flattened facts, and
  every configuration's :class:`ConfigFacts`.  It round-trips through
  ``pickle`` (the matrix already defines its transient state) and pins
  :data:`FACTS_SCHEMA_VERSION` so stale partitions read as misses.

Procedure hashes are taken **at lower time** over each procedure's
formatted IR (:func:`proc_ir_hashes`): two sources that lower to the
same IR hash identically, and an edit to one procedure body changes
exactly that procedure's hash — which is what lets the serve layer
report invalidation at procedure granularity.
"""

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.address_taken import AddressTakenInfo
from repro.analysis.bulk import BulkAliasMatrix
from repro.analysis.steensgaard import SteensgaardTypesOracle
from repro.analysis.smtyperefs import SMTypeRefsOracle
from repro.analysis.typehierarchy import SubtypeOracle
from repro.ir.cfg import ProgramIR
from repro.ir.printer import format_proc

#: Bumped whenever any exported fact layout (or the matrix pickle
#: contract) changes; the fact cache treats other versions as misses.
FACTS_SCHEMA_VERSION = 1


def source_hash(source: str) -> str:
    """Content hash of one module's source text (the partition key)."""
    return hashlib.sha256(source.encode()).hexdigest()


def proc_ir_hashes(program: ProgramIR) -> Dict[str, str]:
    """``procedure name -> sha256(formatted IR)``, taken at lower time.

    The formatted IR is a pure function of the lowered procedure, so the
    hash is stable across processes (no ids or addresses leak into it).
    """
    return {
        proc.name: hashlib.sha256(format_proc(proc).encode()).hexdigest()
        for proc in program.user_procs()
    }


def diff_proc_hashes(old: Dict[str, str], new: Dict[str, str]
                     ) -> Tuple[List[str], List[str]]:
    """``(changed, unchanged)`` procedure names between two hash maps.

    Added and removed procedures count as changed; a procedure is
    unchanged only when present on both sides with the same hash.
    """
    changed: List[str] = []
    unchanged: List[str] = []
    for name in sorted(set(old) | set(new)):
        if old.get(name) == new.get(name) and name in old:
            unchanged.append(name)
        else:
            changed.append(name)
    return changed, unchanged


# ----------------------------------------------------------------------
# Flattened fact exports (plain data, deterministic order)


def export_subtype_masks(subtypes: SubtypeOracle) -> List[dict]:
    """``Subtypes(T)`` bitmasks for every object type, JSON-able."""
    return [
        {
            "bit": subtypes.type_bit(obj),
            "type": str(obj),
            "mask": subtypes.subtype_mask(obj),
        }
        for obj in subtypes.checked.object_types()
    ]


def export_typerefs_masks(oracle: SMTypeRefsOracle) -> List[dict]:
    """The asymmetric ``TypeRefsTable`` as per-pointer-type bitmasks."""
    return [
        {
            "bit": oracle.subtypes.type_bit(t),
            "type": str(t),
            "mask": oracle.type_refs_mask(t),
        }
        for t in oracle.checked.types.pointer_types()
    ]


def export_steensgaard_classes(oracle: SteensgaardTypesOracle) -> List[List[dict]]:
    """Steensgaard merge classes as lists of ``(bit, type)`` members.

    Classes (and members within each class) sort by dense type bit, so
    the export is deterministic for a given module.
    """
    from repro.util.unionfind import UnionFind

    # The build's union-find is private to the oracle; replay Steps 1-2
    # from the same assignment list (both are deterministic).
    pointer_types = oracle.checked.types.pointer_types()
    group: UnionFind = UnionFind(id(t) for t in pointer_types)
    for assignment in oracle.assignments:
        if assignment.is_merge():
            group.union(id(assignment.dst_type), id(assignment.src_type))
    by_root: Dict[int, List[dict]] = {}
    for t in pointer_types:
        by_root.setdefault(group.find(id(t)), []).append(
            {"bit": oracle.subtypes.type_bit(t), "type": str(t)})
    classes = [sorted(members, key=lambda m: m["bit"])
               for members in by_root.values()]
    return sorted(classes, key=lambda c: c[0]["bit"])


def export_address_taken(info: AddressTakenInfo) -> dict:
    """The ``AddressTaken`` record flattened to counts and name lists."""
    fields = sorted({(f, str(t)) for f, t in info._fields})
    return {
        "open_world": info.open_world,
        "taken_fields": [list(pair) for pair in fields],
        "taken_array_types": sorted({str(t) for t in info._array_types}),
        "taken_vars": sorted(s.name for s in info.taken_vars),
        "var_formal_types": len(info._var_formal_types),
    }


@dataclass
class AnalysisWorldFacts:
    """Flattened facts of one (module, open_world) pair."""

    open_world: bool
    subtype_masks: List[dict]
    typerefs_masks: List[dict]
    steensgaard_classes: List[List[dict]]
    address_taken: dict

    def summary(self) -> dict:
        """Small JSON-able digest (what the ``facts`` serve op returns)."""
        return {
            "open_world": self.open_world,
            "object_types": len(self.subtype_masks),
            "pointer_types": len(self.typerefs_masks),
            "steensgaard_classes": len(self.steensgaard_classes),
            "address_taken_fields": len(self.address_taken["taken_fields"]),
            "address_taken_vars": len(self.address_taken["taken_vars"]),
        }


def collect_world_facts(context) -> AnalysisWorldFacts:
    """Flatten one :class:`~repro.analysis.openworld.AnalysisContext`.

    Builds the SMTypeRefs and Steensgaard oracles from the context's
    shared assignment list (cheap relative to compile) so the exported
    facts describe exactly what the served analyses will answer from.
    """
    typerefs = SMTypeRefsOracle(
        context.checked, context.subtypes, context.assignments,
        open_world=context.open_world)
    steensgaard = SteensgaardTypesOracle(
        context.checked, context.subtypes, context.assignments)
    return AnalysisWorldFacts(
        open_world=context.open_world,
        subtype_masks=export_subtype_masks(context.subtypes),
        typerefs_masks=export_typerefs_masks(typerefs),
        steensgaard_classes=export_steensgaard_classes(steensgaard),
        address_taken=export_address_taken(context.address_taken),
    )


# ----------------------------------------------------------------------
# Per-configuration and per-module bundles


@dataclass
class ConfigFacts:
    """Cached answer material of one (analysis, open_world) config."""

    analysis: str
    open_world: bool
    matrix: BulkAliasMatrix
    references: int
    local_pairs: int
    global_pairs: int

    def counts(self) -> Tuple[int, int, int]:
        return (self.references, self.local_pairs, self.global_pairs)


#: Key of one configuration inside a bundle.
ConfigKey = Tuple[str, bool]


@dataclass
class FactBundle:
    """One fact-cache partition: everything derived from one module.

    ``configs`` and ``worlds`` fill lazily as configurations are first
    served; a bundle restored from disk answers repeat queries without
    any compilation at all.
    """

    schema: int
    repro_version: str
    module_name: str
    module_hash: str
    proc_hashes: Dict[str, str]
    configs: Dict[ConfigKey, ConfigFacts] = field(default_factory=dict)
    worlds: Dict[bool, AnalysisWorldFacts] = field(default_factory=dict)

    def config(self, analysis: str, open_world: bool) -> Optional[ConfigFacts]:
        return self.configs.get((analysis, open_world))

    def add_config(self, facts: ConfigFacts) -> None:
        self.configs[(facts.analysis, facts.open_world)] = facts

    def n_configs(self) -> int:
        return len(self.configs)


def new_bundle(module_name: str, module_hash: str,
               proc_hashes: Dict[str, str]) -> FactBundle:
    from repro import __version__

    return FactBundle(
        schema=FACTS_SCHEMA_VERSION,
        repro_version=__version__,
        module_name=module_name,
        module_hash=module_hash,
        proc_hashes=dict(proc_hashes),
    )


def bundle_is_current(bundle: object) -> bool:
    """True when *bundle* is a :class:`FactBundle` this build can serve."""
    from repro import __version__

    return (
        isinstance(bundle, FactBundle)
        and bundle.schema == FACTS_SCHEMA_VERSION
        and bundle.repro_version == __version__
    )
