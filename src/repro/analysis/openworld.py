"""Analysis factory, incl. the open-world variants of Section 4.

The paper's Section 4 adapts TBAA to incomplete programs (separate
compilation, libraries): unavailable code is assumed type-safe but
otherwise arbitrary, so

* ``AddressTaken`` is additionally true for any AP whose type equals the
  type of *some* pass-by-reference formal (unavailable callers may pass
  addresses in);
* SMTypeRefs conservatively merges every pair of subtype-related types
  that unavailable code could reconstruct — every pair with no BRANDED
  member (brands observe name equivalence and cannot be reconstructed).

:func:`make_analysis` builds any of the three analyses in either world,
sharing the subtype oracle and the collected program facts.
"""

from typing import Optional

from repro.analysis.address_taken import AddressTakenInfo, collect_address_taken
from repro.analysis.alias_base import AliasAnalysis
from repro.analysis.fieldtypedecl import FieldTypeDeclAnalysis
from repro.analysis.smtyperefs import SMFieldTypeRefsAnalysis, collect_pointer_assignments
from repro.analysis.typedecl import TypeDeclAnalysis, TypeDeclOracle
from repro.analysis.typehierarchy import SubtypeOracle
from repro.lang.typecheck import CheckedModule
from repro.obs import core as obs

#: The three analyses of the paper, weakest first.
ANALYSIS_NAMES = ("TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs")

#: Related-work baseline (footnote 4): Steensgaard merging over user
#: types, without the TypeRefsTable's subtype pruning.
EXTRA_ANALYSIS_NAMES = ("SteensgaardFieldTypeRefs",)


class AnalysisContext:
    """Shared per-program facts, reusable across the three analyses."""

    def __init__(self, checked: CheckedModule, open_world: bool = False):
        self.checked = checked
        self.open_world = open_world
        with obs.span("analysis.facts", module=checked.name,
                      open_world=open_world):
            self.subtypes = SubtypeOracle(checked)
            self.address_taken: AddressTakenInfo = collect_address_taken(
                checked, self.subtypes, open_world=open_world
            )
            self.assignments = collect_pointer_assignments(checked)

    def build(self, name: str) -> AliasAnalysis:
        with obs.span("analysis.build", analysis=name,
                      open_world=self.open_world):
            return self._build(name)

    def _build(self, name: str) -> AliasAnalysis:
        if name == "TypeDecl":
            return TypeDeclAnalysis(self.subtypes)
        if name == "FieldTypeDecl":
            return FieldTypeDeclAnalysis(
                TypeDeclOracle(self.subtypes), self.address_taken
            )
        if name == "SMFieldTypeRefs":
            return SMFieldTypeRefsAnalysis(
                self.checked,
                self.subtypes,
                self.address_taken,
                self.assignments,
                open_world=self.open_world,
            )
        if name == "SteensgaardFieldTypeRefs":
            from repro.analysis.steensgaard import SteensgaardFieldTypeRefsAnalysis

            return SteensgaardFieldTypeRefsAnalysis(
                self.checked, self.subtypes, self.address_taken, self.assignments
            )
        raise ValueError(
            "unknown analysis {!r}; expected one of {}".format(
                name, ANALYSIS_NAMES + EXTRA_ANALYSIS_NAMES
            )
        )


def make_analysis(
    checked: CheckedModule,
    name: str,
    open_world: bool = False,
    context: Optional[AnalysisContext] = None,
) -> AliasAnalysis:
    """Build the analysis *name* ('TypeDecl' | 'FieldTypeDecl' |
    'SMFieldTypeRefs') for *checked*, closed or open world."""
    context = context or AnalysisContext(checked, open_world=open_world)
    return context.build(name)
