"""Static alias pairs — the traditional metric (Table 5 of the paper).

For each benchmark the paper reports:

* **References** — heap memory references in the source;
* **L Alias** — *local* pairs: references within the same procedure that
  may alias each other (self-pairs excluded);
* **G Alias** — *global* pairs: references "not necessarily within the
  same procedure" that may alias.

We enumerate references from the IR (each distinct lexical access path
per procedure), excluding compiler-introduced dope-vector accesses (not
source-level) and variable accesses through handles (a VAR parameter read
is a variable access in the source, not a heap reference — its ``p^``
form only matters for alias queries).
"""

from typing import Dict, List, Tuple

from repro.analysis.alias_base import AliasAnalysis
from repro.ir.access_path import AccessPath, Deref, VarRoot, strip_index
from repro.ir.cfg import ProgramIR


def collect_heap_references(program: ProgramIR) -> Dict[str, List[AccessPath]]:
    """Distinct source-level heap reference APs, per procedure."""
    refs: Dict[str, List[AccessPath]] = {}
    for proc in program.user_procs():
        seen = {}
        for instr in proc.all_instrs():
            if not (instr.is_heap_load or instr.is_heap_store):
                continue
            if instr.is_dope:
                continue  # implicit, not in the source
            ap = instr.ap
            assert ap is not None
            if _is_variable_access(ap):
                continue
            canonical = strip_index(ap)
            seen.setdefault(canonical, None)
        refs[proc.name] = list(seen)
    return refs


def _is_variable_access(ap: AccessPath) -> bool:
    """True for ``h^`` where h is a VAR param or WITH handle: the source
    wrote a plain variable name, not a heap reference."""
    if isinstance(ap, Deref) and isinstance(ap.base, VarRoot):
        return ap.base.is_handle
    return False


class AliasPairReport:
    """Counts for one (program, analysis) combination."""

    def __init__(self, analysis_name: str):
        self.analysis_name = analysis_name
        self.references = 0
        self.local_pairs = 0
        self.global_pairs = 0

    @property
    def local_per_reference(self) -> float:
        """Average number of intraprocedural references each reference may
        alias (the paper quotes 'on average 3.4 references')."""
        if self.references == 0:
            return 0.0
        return 2.0 * self.local_pairs / self.references

    @property
    def global_per_reference(self) -> float:
        if self.references == 0:
            return 0.0
        return 2.0 * self.global_pairs / self.references

    def __repr__(self) -> str:
        return "<AliasPairReport {}: refs={} L={} G={}>".format(
            self.analysis_name, self.references, self.local_pairs, self.global_pairs
        )


class AliasPairCounter:
    """Computes Table 5's numbers for one program and one analysis."""

    def __init__(self, program: ProgramIR, analysis: AliasAnalysis):
        self.program = program
        self.analysis = analysis
        self.references = collect_heap_references(program)

    def count(self) -> AliasPairReport:
        report = AliasPairReport(self.analysis.name)
        flat: List[Tuple[str, AccessPath]] = []
        for proc_name, aps in self.references.items():
            flat.extend((proc_name, ap) for ap in aps)
        report.references = len(flat)

        may_alias = self.analysis.may_alias
        for i in range(len(flat)):
            proc_i, ap_i = flat[i]
            for j in range(i + 1, len(flat)):
                proc_j, ap_j = flat[j]
                if may_alias(ap_i, ap_j):
                    report.global_pairs += 1
                    if proc_i == proc_j:
                        report.local_pairs += 1
        return report
