"""Static alias pairs — the traditional metric (Table 5 of the paper).

For each benchmark the paper reports:

* **References** — heap memory references in the source;
* **L Alias** — *local* pairs: references within the same procedure that
  may alias each other (self-pairs excluded);
* **G Alias** — *global* pairs: references "not necessarily within the
  same procedure" that may alias.

We enumerate references from the IR (each distinct lexical access path
per procedure), excluding compiler-introduced dope-vector accesses (not
source-level) and variable accesses through handles (a VAR parameter read
is a variable access in the source, not a heap reference — its ``p^``
form only matters for alias queries).

Two counting engines produce these numbers:

* ``reference`` — the obvious O(e²) loop: one ``may_alias`` query per
  unordered pair of references.  Kept as the oracle.
* ``fast`` — a partition-based counter in the spirit of unification-based
  analyses: references are deduplicated into distinct canonical paths
  (each with a procedure bitmask) and partitioned into *query-equivalence
  classes* — paths whose recursive signatures (constructor kinds, field
  names, AddressTaken bits, leaf types) make every Table 2 query answer
  identically.  Same-class pairs always alias and are counted
  combinatorially with no query at all; each cross-class pair costs one
  representative query (zero cases are skipped outright).
* ``bulk`` — the bitset-matrix engine (:mod:`repro.analysis.bulk`):
  the same partition idea lowered to packed bitvector kernels.  A
  class-adjacency matrix is materialised once; the count itself is pure
  AND/popcount (or numpy) arithmetic, and the matrix is picklable for
  reuse across processes.

``engine='differential'`` runs all engines and asserts they agree — the
regression harness for the optimised paths.
"""

from typing import Dict, List, Optional, Tuple

from repro.analysis.alias_base import AliasAnalysis
from repro.analysis.bulk import BulkAliasMatrix
from repro.analysis.fieldtypedecl import FieldTypeDeclAnalysis
from repro.analysis.typedecl import TypeDeclAnalysis
from repro.ir.access_path import AccessPath, Deref, Qualify, Subscript, VarRoot, strip_index
from repro.ir.cfg import ProgramIR
from repro.obs import core as obs
from repro.obs import metrics
from repro.qa import guards
from repro.util.bits import iter_bits, popcount

#: Valid values for the ``engine`` argument of :class:`AliasPairCounter`.
ENGINES = ("reference", "fast", "bulk", "differential")

#: Engine used when callers do not choose one.  The fast engine is the
#: default; the differential test suite pins it to the reference loop.
DEFAULT_ENGINE = "fast"


def collect_heap_references(program: ProgramIR) -> Dict[str, List[AccessPath]]:
    """Distinct source-level heap reference APs (canonical), per procedure."""
    refs: Dict[str, List[AccessPath]] = {}
    for proc in program.user_procs():
        seen = {}
        for instr in proc.all_instrs():
            if not (instr.is_heap_load or instr.is_heap_store):
                continue
            if instr.is_dope:
                continue  # implicit, not in the source
            ap = instr.ap
            assert ap is not None
            if _is_variable_access(ap):
                continue
            canonical = strip_index(ap)
            seen.setdefault(canonical, None)
        refs[proc.name] = list(seen)
    return refs


def _is_variable_access(ap: AccessPath) -> bool:
    """True for ``h^`` where h is a VAR param or WITH handle: the source
    wrote a plain variable name, not a heap reference."""
    if isinstance(ap, Deref) and isinstance(ap.base, VarRoot):
        return ap.base.is_handle
    return False


class AliasPairReport:
    """Counts for one (program, analysis) combination."""

    def __init__(self, analysis_name: str):
        self.analysis_name = analysis_name
        self.references = 0
        self.local_pairs = 0
        self.global_pairs = 0

    @property
    def local_per_reference(self) -> float:
        """Average number of intraprocedural references each reference may
        alias (the paper quotes 'on average 3.4 references')."""
        if self.references == 0:
            return 0.0
        return 2.0 * self.local_pairs / self.references

    @property
    def global_per_reference(self) -> float:
        if self.references == 0:
            return 0.0
        return 2.0 * self.global_pairs / self.references

    def counts(self) -> Tuple[int, int, int]:
        return (self.references, self.local_pairs, self.global_pairs)

    def __repr__(self) -> str:
        return "<AliasPairReport {}: refs={} L={} G={}>".format(
            self.analysis_name, self.references, self.local_pairs, self.global_pairs
        )


# ----------------------------------------------------------------------
# Fast-engine plumbing


class _RefGroup:
    """One distinct canonical reference AP with its procedure occupancy.

    Per-procedure references are deduplicated, so the multiplicity of the
    path is exactly the popcount of ``proc_mask`` and every same-path
    pair spans two different procedures.
    """

    __slots__ = ("ap", "proc_mask", "count")

    def __init__(self, ap: AccessPath):
        self.ap = ap
        self.proc_mask = 0
        self.count = 0


def _proc_counts(groups: List[_RefGroup]) -> Dict[int, int]:
    """procedure index -> number of groups occupying that procedure."""
    counts: Dict[int, int] = {}
    for g in groups:
        for p in iter_bits(g.proc_mask):
            counts[p] = counts.get(p, 0) + 1
    return counts


class _PairAccumulator:
    """Sums local/global pair contributions over groups and buckets."""

    def __init__(self) -> None:
        self.local = 0
        self.global_ = 0

    def add_pair(self, a: _RefGroup, b: _RefGroup) -> None:
        """All cross-procedure-or-not pairs between two distinct paths."""
        self.global_ += a.count * b.count
        self.local += popcount(a.proc_mask & b.proc_mask)

    def add_bucket_within(self, groups: List[_RefGroup]) -> None:
        """All pairs of *distinct* paths inside one all-alias bucket."""
        total = sum(g.count for g in groups)
        squares = sum(g.count * g.count for g in groups)
        self.global_ += (total * total - squares) // 2
        for c in _proc_counts(groups).values():
            self.local += c * (c - 1) // 2

    def add_bucket_cross(self, a: List[_RefGroup], b: List[_RefGroup]) -> None:
        """All pairs between two buckets whose cross product aliases."""
        self.global_ += sum(g.count for g in a) * sum(g.count for g in b)
        ca, cb = _proc_counts(a), _proc_counts(b)
        if len(cb) < len(ca):
            ca, cb = cb, ca
        self.local += sum(n * cb.get(p, 0) for p, n in ca.items())


class AliasPairCounter:
    """Computes Table 5's numbers for one program and one analysis.

    ``engine`` selects the counting path (see module docstring); both
    engines are exact and produce identical reports.
    """

    def __init__(
        self,
        program: ProgramIR,
        analysis: AliasAnalysis,
        engine: str = DEFAULT_ENGINE,
    ):
        if engine not in ENGINES:
            raise ValueError(
                "unknown engine {!r}; expected one of {}".format(engine, ENGINES)
            )
        self.program = program
        self.analysis = analysis
        self.engine = engine
        self.references = collect_heap_references(program)

    def count(self) -> AliasPairReport:
        with obs.span("aliaspairs.count", analysis=self.analysis.name,
                      engine=self.engine):
            return self._count()

    def _count(self) -> AliasPairReport:
        if self.engine == "reference":
            return self._count_reference()
        if self.engine == "fast":
            return self._count_fast()
        if self.engine == "bulk":
            return self._count_bulk()
        reference = self._count_reference()
        fast = self._count_fast()
        bulk = self._count_bulk()
        if reference.counts() != fast.counts() or reference.counts() != bulk.counts():
            raise AssertionError(
                "alias-pair engines disagree for {}: reference={} fast={} "
                "bulk={}".format(self.analysis.name, reference, fast, bulk)
            )
        return fast

    # ------------------------------------------------------------------
    # Bulk engine: build the bitset matrix, count with pure kernels.

    def _count_bulk(self) -> AliasPairReport:
        matrix = BulkAliasMatrix.from_references(self.references, self.analysis)
        counts = matrix.count_pairs()
        report = AliasPairReport(self.analysis.name)
        report.references = counts.references
        report.local_pairs = counts.local_pairs
        report.global_pairs = counts.global_pairs
        return report

    # ------------------------------------------------------------------
    # Reference engine: one query per unordered reference pair.

    def _count_reference(self) -> AliasPairReport:
        report = AliasPairReport(self.analysis.name)
        flat: List[Tuple[str, AccessPath]] = []
        for proc_name, aps in self.references.items():
            flat.extend((proc_name, ap) for ap in aps)
        report.references = len(flat)

        may_alias = self.analysis.may_alias_canonical
        for i in range(len(flat)):
            if (i & 127) == 0:
                guards.check_active()  # O(e²) loop: poll per outer row
            proc_i, ap_i = flat[i]
            for j in range(i + 1, len(flat)):
                proc_j, ap_j = flat[j]
                if may_alias(ap_i, ap_j):
                    report.global_pairs += 1
                    if proc_i == proc_j:
                        report.local_pairs += 1
        return report

    # ------------------------------------------------------------------
    # Fast engine: dedupe + bucket, query only the residue.

    def _count_fast(self) -> AliasPairReport:
        report = AliasPairReport(self.analysis.name)
        groups: Dict[AccessPath, _RefGroup] = {}
        for proc_index, aps in enumerate(self.references.values()):
            for ap in aps:
                g = groups.get(ap)
                if g is None:
                    g = groups[ap] = _RefGroup(ap)
                g.proc_mask |= 1 << proc_index
        distinct = list(groups.values())
        for g in distinct:
            g.count = popcount(g.proc_mask)
        report.references = sum(g.count for g in distinct)

        acc = _PairAccumulator()
        may_alias = self.analysis.may_alias_canonical

        # Same-path pairs: per-procedure dedup means each such pair spans
        # two procedures (never local).  Table 2's case 1 (and TypeDecl's
        # ``Subtypes(T) ∩ Subtypes(T) ≠ ∅``) makes these reflexively true
        # for the structured analyses; other analyses get one query per
        # distinct path.
        analysis = self.analysis
        structured = isinstance(analysis, (FieldTypeDeclAnalysis, TypeDeclAnalysis))
        for g in distinct:
            if g.count > 1 and (structured or may_alias(g.ap, g.ap)):
                acc.global_ += g.count * (g.count - 1) // 2

        if isinstance(analysis, FieldTypeDeclAnalysis):
            n_classes = self._pairs_fieldtypedecl(distinct, analysis, acc)
        elif isinstance(analysis, TypeDeclAnalysis):
            n_classes = self._pairs_by_type(distinct, acc)
        else:
            n_classes = len(distinct)
            self._pairs_generic(distinct, acc)

        self._record_fast_metrics(report.references, len(distinct), n_classes)
        report.local_pairs = acc.local
        report.global_pairs = acc.global_
        return report

    def _record_fast_metrics(self, references: int, distinct: int,
                             n_classes: int) -> None:
        """Partition statistics of one fast-engine count (one child per
        count, so the series sums across programs and analyses)."""
        registry = metrics.registry()
        name = self.analysis.name
        registry.new_counter("aliaspairs.fast.references", analysis=name).inc(
            references)
        registry.new_counter("aliaspairs.fast.distinct_paths",
                             analysis=name).inc(distinct)
        registry.new_counter("aliaspairs.fast.classes", analysis=name).inc(
            n_classes)

    def _pairs_generic(self, distinct: List[_RefGroup], acc: _PairAccumulator) -> None:
        """No structural knowledge: pairwise over distinct paths only."""
        may_alias = self.analysis.may_alias_canonical
        for i, a in enumerate(distinct):
            if (i & 127) == 0:
                guards.check_active()
            for b in distinct[i + 1:]:
                if may_alias(a.ap, b.ap):
                    acc.add_pair(a, b)

    def _pairs_by_type(self, distinct: List[_RefGroup], acc: _PairAccumulator) -> int:
        """TypeDecl ignores structure: the answer is a function of the two
        declared types, so one query per *type pair* decides whole buckets."""
        may_alias = self.analysis.may_alias_canonical
        buckets = _bucket_by(distinct, lambda g: id(g.ap.type))
        reps = list(buckets.values())
        for i, a in enumerate(reps):
            acc.add_bucket_within(a)  # Subtypes(T) ∩ Subtypes(T) ≠ ∅ always
            for b in reps[i + 1:]:
                if may_alias(a[0].ap, b[0].ap):
                    acc.add_bucket_cross(a, b)
        return len(reps)

    def _pairs_fieldtypedecl(
        self,
        distinct: List[_RefGroup],
        analysis: FieldTypeDeclAnalysis,
        acc: _PairAccumulator,
    ) -> int:
        """Partition the references into Table 2 *query-equivalence
        classes* and count class pairs combinatorially.

        The signature of a canonical path captures exactly the facts the
        seven cases dispatch on — constructor kind, field name, the
        AddressTaken bit, the leaf type identity, and (recursively) the
        base's signature.  Two same-signature paths therefore answer
        every query identically, and a short induction over Table 2 shows
        they always alias *each other* (the base case is the oracle's
        reflexivity, ``Subtypes(T) ∩ Subtypes(T) ≠ ∅``).  So one
        representative query decides each class pair wholesale, and
        same-class pairs need no query at all; the zero cases (2 with
        differing fields, 5) are skipped without even the representative
        query."""
        may_alias = analysis.may_alias_canonical
        address_taken = analysis.address_taken
        sigs: Dict[int, tuple] = {}

        def sig(ap: AccessPath) -> tuple:
            s = sigs.get(ap.uid)
            if s is None:
                if isinstance(ap, Qualify):
                    taken = address_taken.qualify_taken(
                        ap.field, ap.base.type, ap.type
                    )
                    s = ("q", ap.field, taken, id(ap.type), sig(ap.base))
                elif isinstance(ap, Subscript):
                    taken = address_taken.subscript_taken(ap.base.type, ap.type)
                    s = ("s", taken, id(ap.type), sig(ap.base))
                elif isinstance(ap, Deref):
                    s = ("d", id(ap.type))
                else:  # VarRoot / FreshRoot: case 7, a pure type function
                    s = ("r", id(ap.type))
                sigs[ap.uid] = s
            return s

        classes = _bucket_by(distinct, lambda g: sig(g.ap))
        keyed = list(classes.items())
        for i, (sig_a, a) in enumerate(keyed):
            acc.add_bucket_within(a)  # same signature: always aliases
            for sig_b, b in keyed[i + 1:]:
                if sig_a[0] == "q":
                    if sig_b[0] == "s":
                        continue  # case 5: qualify vs subscript
                    if sig_b[0] == "q" and sig_a[1] != sig_b[1]:
                        continue  # case 2: different fields
                elif sig_a[0] == "s" and sig_b[0] == "q":
                    continue  # case 5, other order
                if may_alias(a[0].ap, b[0].ap):
                    acc.add_bucket_cross(a, b)
        return len(keyed)


def _bucket_by(groups: List[_RefGroup], key) -> Dict[object, List[_RefGroup]]:
    out: Dict[object, List[_RefGroup]] = {}
    for g in groups:
        out.setdefault(key(g), []).append(g)
    return out
