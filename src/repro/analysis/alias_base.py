"""Common interface of the three alias analyses.

The paper's three analyses share one query shape: *may these two access
paths refer to the same location?*  They differ in the **type oracle**
used at the leaves:

* TypeDecl uses declared-type compatibility (subtype-set intersection);
* SMTypeRefs uses the pruned ``TypeRefsTable`` of selective merging;
* FieldTypeDecl / SMFieldTypeRefs wrap either oracle in the structural
  case analysis of Table 2.

All analyses are *flow-insensitive* and query-cached (the static metric
asks O(e²) pair queries; caching makes that tractable, as the paper notes
in Section 2.5).  Access paths are interned with dense integer uids
(:mod:`repro.ir.access_path`), so the cache keys on an unordered
``(uid, uid)`` pair — no tree hashing on the query path — and
:meth:`AliasAnalysis.may_alias_canonical` lets bulk clients that already
hold canonical paths skip re-canonicalisation entirely.

Query and cache statistics are :mod:`repro.obs` counters: each instance
owns child counters of the ``alias.cache.hits`` / ``alias.cache.misses``
series (labelled by analysis name), registered in the process registry.
``cache_stats()``/``cache_clear()`` are thin shims over those counters,
so the per-instance view and the global metrics export read the same
numbers.  The hot path mutates ``Counter.value`` directly — alias
queries are single-threaded by construction and a per-query lock would
cost more than the query.
"""

from typing import Dict, Tuple

from repro.ir.access_path import AccessPath, strip_index
from repro.obs import metrics
from repro.qa import guards


class TypeOracle:
    """Decides type-level compatibility of two APs (the TypeDecl role)."""

    name = "<oracle>"

    def types_compatible(self, p: AccessPath, q: AccessPath) -> bool:
        raise NotImplementedError

    def type_mask(self, t) -> int:
        """The packed bitvector whose intersection decides compatibility.

        Every concrete oracle's ``types_compatible`` reduces to
        ``type_mask(t1) & type_mask(t2) != 0`` (masks always contain the
        type's own bit, so the ``t1 is t2`` shortcut agrees).  The bulk
        kernels (:mod:`repro.analysis.bulk`) bake these masks into their
        query-equivalence signatures so all-pairs sweeps never call back
        into per-pair Python code.
        """
        raise NotImplementedError


class AliasAnalysis:
    """May-alias over access paths, with memoisation.

    Subclasses implement :meth:`_may_alias`; callers use
    :meth:`may_alias`, which canonicalises subscript indices (alias
    analyses ignore them — Table 2 case 6) and caches symmetric pairs.
    """

    name = "<analysis>"

    def __init__(self, name: str = None) -> None:
        if name is not None:
            self.name = name
        self._cache: Dict[Tuple[int, int], bool] = {}
        registry = metrics.registry()
        self._hits = registry.new_counter("alias.cache.hits", analysis=self.name)
        self._misses = registry.new_counter("alias.cache.misses", analysis=self.name)

    def may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        return self.may_alias_canonical(strip_index(p), strip_index(q))

    def may_alias_canonical(self, cp: AccessPath, cq: AccessPath) -> bool:
        """:meth:`may_alias` for paths already canonicalised by
        :func:`~repro.ir.access_path.strip_index`.

        The pair loops of the static metric canonicalise once while
        collecting references; this entry point lets them skip the
        (memoised, but not free) strip on each of the O(e²) queries.
        """
        key = (cp.uid, cq.uid) if cp.uid <= cq.uid else (cq.uid, cp.uid)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits.value += 1
            return cached
        misses = self._misses.value + 1
        self._misses.value = misses
        # Guard hook on the miss (slow) path only: cache hits stay a
        # dict probe, and a guarded run that hangs inside the analyses
        # is necessarily generating fresh queries.
        if (misses & 4095) == 0:
            guards.check_active()
        result = self._may_alias(cp, cq)
        self._cache[key] = result
        return result

    def _may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        raise NotImplementedError

    # -- cache introspection -------------------------------------------
    #
    # Thin shims over the obs counters (kept for API compatibility with
    # PR 1 callers; the counters are the source of truth).

    def cache_clear(self) -> None:
        """Drop all memoised answers and reset the hit/miss counters."""
        self._cache.clear()
        self._hits.reset()
        self._misses.reset()

    def cache_stats(self) -> Dict[str, int]:
        """``{'hits', 'misses', 'size'}`` of the query cache."""
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "size": len(self._cache),
        }

    def __repr__(self) -> str:
        return "<{}>".format(self.name)
