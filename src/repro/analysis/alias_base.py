"""Common interface of the three alias analyses.

The paper's three analyses share one query shape: *may these two access
paths refer to the same location?*  They differ in the **type oracle**
used at the leaves:

* TypeDecl uses declared-type compatibility (subtype-set intersection);
* SMTypeRefs uses the pruned ``TypeRefsTable`` of selective merging;
* FieldTypeDecl / SMFieldTypeRefs wrap either oracle in the structural
  case analysis of Table 2.

All analyses are *flow-insensitive* and query-cached (the static metric
asks O(e²) pair queries; caching makes that tractable, as the paper notes
in Section 2.5).
"""

from typing import Dict, Tuple

from repro.ir.access_path import AccessPath, strip_index


class TypeOracle:
    """Decides type-level compatibility of two APs (the TypeDecl role)."""

    name = "<oracle>"

    def types_compatible(self, p: AccessPath, q: AccessPath) -> bool:
        raise NotImplementedError


class AliasAnalysis:
    """May-alias over access paths, with memoisation.

    Subclasses implement :meth:`_may_alias`; callers use
    :meth:`may_alias`, which canonicalises subscript indices (alias
    analyses ignore them — Table 2 case 6) and caches symmetric pairs.
    """

    name = "<analysis>"

    def __init__(self) -> None:
        self._cache: Dict[Tuple[AccessPath, AccessPath], bool] = {}

    def may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        cp, cq = strip_index(p), strip_index(q)
        key = (cp, cq)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._may_alias(cp, cq)
        self._cache[key] = result
        self._cache[(cq, cp)] = result
        return result

    def _may_alias(self, p: AccessPath, q: AccessPath) -> bool:
        raise NotImplementedError

    def cache_clear(self) -> None:
        self._cache.clear()

    def __repr__(self) -> str:
        return "<{}>".format(self.name)
