"""``Subtypes(T)`` — the subtype sets all three analyses are built on.

Section 2.1 of the paper:

    ``Subtypes (T)``: the set of subtypes of type T, which includes T.

For object types the set comes from the declared inheritance hierarchy;
for every other type it is the singleton {T} (structural types have no
proper subtypes in MiniM3; NIL is handled by the analyses directly since
no access path is declared with type NULL).
"""

from typing import Dict, FrozenSet

from repro.lang.typecheck import CheckedModule
from repro.lang.types import ObjectType, Type, is_subtype


class SubtypeOracle:
    """Precomputed subtype sets and the type-compatibility test.

    ``compatible(t1, t2)`` is the core of TypeDecl:
    ``Subtypes(Type(p)) ∩ Subtypes(Type(q)) ≠ ∅``.
    """

    def __init__(self, checked: CheckedModule):
        self.checked = checked
        self._subtype_ids: Dict[int, FrozenSet[int]] = {}
        objects = checked.object_types()
        for obj in objects:
            subs = frozenset(id(o) for o in objects if is_subtype(o, obj))
            self._subtype_ids[id(obj)] = subs

    def subtype_set(self, t: Type) -> FrozenSet[int]:
        """``Subtypes(t)`` as a set of type identities."""
        cached = self._subtype_ids.get(id(t))
        if cached is not None:
            return cached
        singleton = frozenset((id(t),))
        self._subtype_ids[id(t)] = singleton
        return singleton

    def subtypes(self, t: Type) -> list:
        """``Subtypes(t)`` as type objects (for reports and tests)."""
        if isinstance(t, ObjectType):
            return [o for o in self.checked.object_types() if is_subtype(o, t)]
        return [t]

    def compatible(self, t1: Type, t2: Type) -> bool:
        """True iff the subtype sets of *t1* and *t2* intersect."""
        if t1 is t2:
            return True
        return not self.subtype_set(t1).isdisjoint(self.subtype_set(t2))
