"""``Subtypes(T)`` — the subtype sets all three analyses are built on.

Section 2.1 of the paper:

    ``Subtypes (T)``: the set of subtypes of type T, which includes T.

For object types the set comes from the declared inheritance hierarchy;
for every other type it is the singleton {T} (structural types have no
proper subtypes in MiniM3; NIL is handled by the analyses directly since
no access path is declared with type NULL).

Each type is assigned a dense bit position and ``Subtypes(T)`` is kept as
a Python ``int`` bitmask, so the hot compatibility test
``Subtypes(T1) ∩ Subtypes(T2) ≠ ∅`` is a single ``&``.  The
``frozenset``-of-identities view remains available through
:meth:`SubtypeOracle.subtype_set` for reports and tests.
"""

import os
from typing import Dict, FrozenSet, List

from repro.lang.typecheck import CheckedModule
from repro.lang.types import ObjectType, Type, is_subtype
from repro.util.bits import popcount

#: QA fault injection (see DESIGN.md §6d): when this environment variable
#: is non-empty, every multi-bit ``Subtypes`` mask silently drops its
#: highest bit, making the analyses *unsound* (they miss aliases through
#: the dropped subtype).  The fuzzing oracles must catch this; nothing
#: else may ever set it.
FAULT_ENV = "REPRO_QA_BREAK_SUBTYPES"


class SubtypeOracle:
    """Precomputed subtype sets and the type-compatibility test.

    ``compatible(t1, t2)`` is the core of TypeDecl:
    ``Subtypes(Type(p)) ∩ Subtypes(Type(q)) ≠ ∅``, evaluated as a
    bitmask intersection.
    """

    def __init__(self, checked: CheckedModule):
        self.checked = checked
        self._bits: Dict[int, int] = {}      # id(type) -> bit position
        self._bit_types: List[Type] = []     # bit position -> type
        self._masks: Dict[int, int] = {}     # id(type) -> Subtypes bitmask
        self._subtype_ids: Dict[int, FrozenSet[int]] = {}
        objects = checked.object_types()
        for obj in objects:
            self.type_bit(obj)
        inject_fault = bool(os.environ.get(FAULT_ENV))
        for obj in objects:
            mask = 0
            for o in objects:
                if is_subtype(o, obj):
                    mask |= 1 << self._bits[id(o)]
            if inject_fault and popcount(mask) > 1:
                mask &= ~(1 << (mask.bit_length() - 1))
            self._masks[id(obj)] = mask

    # -- dense type numbering ------------------------------------------

    def type_bit(self, t: Type) -> int:
        """The dense bit position assigned to *t* (assigned on demand)."""
        bit = self._bits.get(id(t))
        if bit is None:
            bit = len(self._bit_types)
            self._bits[id(t)] = bit
            self._bit_types.append(t)
        return bit

    def types_of_mask(self, mask: int) -> List[Type]:
        """The types whose bits are set in *mask* (for reports/tests)."""
        out: List[Type] = []
        bit = 0
        while mask:
            if mask & 1:
                out.append(self._bit_types[bit])
            mask >>= 1
            bit += 1
        return out

    # -- Subtypes(T) ----------------------------------------------------

    def subtype_mask(self, t: Type) -> int:
        """``Subtypes(t)`` as a bitmask over the dense type numbering."""
        mask = self._masks.get(id(t))
        if mask is not None:
            return mask
        mask = 1 << self.type_bit(t)
        self._masks[id(t)] = mask
        return mask

    def subtype_set(self, t: Type) -> FrozenSet[int]:
        """``Subtypes(t)`` as a set of type identities."""
        cached = self._subtype_ids.get(id(t))
        if cached is not None:
            return cached
        ids = frozenset(id(u) for u in self.types_of_mask(self.subtype_mask(t)))
        self._subtype_ids[id(t)] = ids
        return ids

    def subtypes(self, t: Type) -> list:
        """``Subtypes(t)`` as type objects (for reports and tests)."""
        if isinstance(t, ObjectType):
            return [o for o in self.checked.object_types() if is_subtype(o, t)]
        return [t]

    def compatible(self, t1: Type, t2: Type) -> bool:
        """True iff the subtype sets of *t1* and *t2* intersect."""
        if t1 is t2:
            return True
        return (self.subtype_mask(t1) & self.subtype_mask(t2)) != 0
