"""Disjoint-set (union-find) structure.

SMTypeRefs (Section 2.4 of the paper) merges declared pointer types into
equivalence classes: one class per type initially, one union per pointer
assignment whose sides have different declared types.  The natural backing
structure is a union-find with path compression and union by size, which
gives the paper's "O(n) bit-vector steps" flavour of near-linear behaviour.

The structure is generic over hashable elements and supports late element
registration (``find`` on an unseen element creates a singleton class),
which keeps call sites simple.
"""

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class UnionFind:
    """Union-find over arbitrary hashable elements.

    >>> uf = UnionFind(["T", "S1", "S2"])
    >>> uf.union("T", "S1")
    True
    >>> uf.connected("T", "S1")
    True
    >>> uf.connected("T", "S2")
    False
    >>> sorted(uf.members("S1"))
    ['S1', 'T']
    """

    def __init__(self, elements: Iterable[Hashable] = ()):
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._n_classes = 0
        # Operation counts, read by the observability layer after a
        # build (plain ints: incrementing them must stay negligible).
        self.finds = 0
        self.merges = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register *element* as its own singleton class (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._n_classes += 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of registered elements (not classes)."""
        return len(self._parent)

    @property
    def n_classes(self) -> int:
        """Number of distinct equivalence classes."""
        return self._n_classes

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of *element*'s class.

        Unseen elements are registered as singletons on the fly.
        """
        self.add(element)
        self.finds += 1
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the path at the root.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the classes of *a* and *b*.

        Returns True if a merge happened, False if they were already in the
        same class.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._n_classes -= 1
        self.merges += 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff *a* and *b* are currently in the same class."""
        return self.find(a) == self.find(b)

    def members(self, element: Hashable) -> Set[Hashable]:
        """Return the set of all elements in *element*'s class.

        O(n) over registered elements; used only when materialising the
        TypeRefsTable, never in the merge loop.
        """
        root = self.find(element)
        return {e for e in self._parent if self.find(e) == root}

    def classes(self) -> List[Set[Hashable]]:
        """Return all equivalence classes as a list of sets."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)
