"""Plain-text table rendering for the benchmark harness.

Every table and figure of the paper is regenerated as an aligned text table
printed by the corresponding file under ``benchmarks/``.  This module keeps
the formatting in one place so all reproduced tables share a look.
"""

from typing import List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    align_left: Sequence[int] = (0,),
) -> str:
    """Render *rows* under *headers* as an aligned text table.

    Columns listed in *align_left* (by index) are left-aligned; all other
    columns are right-aligned, which suits numeric data.

    >>> print(render_table(["name", "n"], [["a", 1], ["bb", 22]]))
    name   n
    ----  --
    a      1
    bb    22
    """
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i in align_left:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(fmt(["-" * w for w in widths]))
    for row in str_rows:
        lines.append(fmt(row))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "{:.2f}".format(value)
    return str(value)


def format_ratio(value: float, digits: int = 1) -> str:
    """Format a ratio as a percentage string, e.g. ``0.042 -> '4.2%'``."""
    return "{:.{d}f}%".format(value * 100.0, d=digits)
