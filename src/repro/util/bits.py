"""Bit-manipulation primitives shared by the bitmask-based layers.

Python big integers are the repository's packed bitvector type: subtype
sets (:mod:`repro.analysis.typehierarchy`), ``TypeRefsTable`` rows,
procedure-occupancy masks in the Table 5 counters, and the bulk alias
kernels (:mod:`repro.analysis.bulk`) all store one bit per dense index
and decide queries with ``&``.  The two operations every one of those
call sites needs are

* :func:`popcount` — number of set bits.  ``int.bit_count()`` arrived in
  Python 3.10; on 3.9 we fall back to ``bin(x).count("1")``, which is
  the fastest pure-Python formulation (C-loop over the digits, no
  per-bit Python iteration).
* :func:`iter_bits` — ascending indices of the set bits, isolating one
  lowest bit per step (``mask & -mask``), so sparse masks cost only as
  many iterations as they have bits.

Both are resolved **once at import time** — the hot loops bind a single
callable, never an ``hasattr`` check per call.
"""

from typing import Iterator, List

__all__ = ["popcount", "iter_bits", "bits_of", "mask_of", "HAVE_BIT_COUNT"]

#: True when the running interpreter provides ``int.bit_count`` (3.10+).
HAVE_BIT_COUNT = hasattr(int, "bit_count")


def _popcount_native(mask: int) -> int:
    return mask.bit_count()


def _popcount_compat(mask: int) -> int:
    if mask < 0:
        raise ValueError("popcount of a negative mask: {!r}".format(mask))
    return bin(mask).count("1")


if HAVE_BIT_COUNT:
    popcount = _popcount_native
else:  # pragma: no cover - exercised only on Python 3.9
    popcount = _popcount_compat

popcount.__doc__ = """Number of set bits in a non-negative mask.

    ``int.bit_count()`` where available (Python >= 3.10), else the
    ``bin()``-based fallback.  Negative masks are a caller bug: the
    packed bitvectors in this repository are always non-negative.
    """


def iter_bits(mask: int) -> Iterator[int]:
    """Ascending indices of the set bits of a non-negative *mask*.

    Isolates the lowest set bit each step, so the cost is proportional
    to the popcount, not to the bit length.
    """
    if mask < 0:
        raise ValueError("iter_bits of a negative mask: {!r}".format(mask))
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bits_of(mask: int) -> List[int]:
    """:func:`iter_bits` collected into a list (for tests and reports)."""
    return list(iter_bits(mask))


def mask_of(bits) -> int:
    """The packed mask with exactly the given bit indices set."""
    mask = 0
    for bit in bits:
        if bit < 0:
            raise ValueError("negative bit index: {!r}".format(bit))
        mask |= 1 << bit
    return mask
