"""Shared utilities for the TBAA reproduction.

This package holds small, dependency-free data structures and helpers used
across the front end, the analyses, and the runtime:

* :class:`~repro.util.unionfind.UnionFind` — the disjoint-set structure that
  backs SMTypeRefs' selective type merging (Figure 2 of the paper).
* :class:`~repro.util.ordered_set.OrderedSet` — insertion-ordered set used
  wherever deterministic iteration order matters for reproducible output.
* :mod:`~repro.util.tables` — plain-text table rendering for the benchmark
  harness (the paper's tables are regenerated as aligned text tables).
"""

from repro.util.unionfind import UnionFind
from repro.util.ordered_set import OrderedSet
from repro.util.tables import render_table, format_ratio

__all__ = ["UnionFind", "OrderedSet", "render_table", "format_ratio"]
