"""Shared utilities for the TBAA reproduction.

This package holds small, dependency-free data structures and helpers used
across the front end, the analyses, and the runtime:

* :class:`~repro.util.unionfind.UnionFind` — the disjoint-set structure that
  backs SMTypeRefs' selective type merging (Figure 2 of the paper).
* :class:`~repro.util.ordered_set.OrderedSet` — insertion-ordered set used
  wherever deterministic iteration order matters for reproducible output.
* :mod:`~repro.util.tables` — plain-text table rendering for the benchmark
  harness (the paper's tables are regenerated as aligned text tables).
* :mod:`~repro.util.bits` — popcount / bit-iteration primitives over the
  big-int packed bitvectors used by the subtype masks, the TypeRefsTable
  and the bulk alias kernels (``int.bit_count`` on 3.10+, with a 3.9
  fallback).
"""

from repro.util.unionfind import UnionFind
from repro.util.ordered_set import OrderedSet
from repro.util.tables import render_table, format_ratio
from repro.util.bits import popcount, iter_bits

__all__ = ["UnionFind", "OrderedSet", "render_table", "format_ratio",
           "popcount", "iter_bits"]
