"""Insertion-ordered set.

Analysis results in this project (alias-pair listings, type groups, mod-ref
summaries) are rendered into tables that must be stable across runs, so we
use an insertion-ordered set wherever iteration order leaks into output.
Backed by a dict, which preserves insertion order in CPython >= 3.7.
"""

from typing import Dict, Generic, Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet(Generic[T]):
    """A set that iterates in insertion order.

    >>> s = OrderedSet([3, 1, 2, 1])
    >>> list(s)
    [3, 1, 2]
    >>> s.add(1); s.add(9); list(s)
    [3, 1, 2, 9]
    """

    def __init__(self, items: Iterable[T] = ()):
        self._items: Dict[T, None] = dict.fromkeys(items)

    def add(self, item: T) -> None:
        self._items[item] = None

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable
        raise TypeError("OrderedSet is unhashable")

    def __repr__(self) -> str:
        return "OrderedSet({!r})".format(list(self._items))

    def __or__(self, other: "OrderedSet[T]") -> "OrderedSet[T]":
        result: OrderedSet[T] = OrderedSet(self)
        result.update(other)
        return result

    def __and__(self, other: "OrderedSet[T]") -> "OrderedSet[T]":
        return OrderedSet(item for item in self if item in other)

    def intersection(self, other: Iterable[T]) -> "OrderedSet[T]":
        other_set = set(other)
        return OrderedSet(item for item in self if item in other_set)
