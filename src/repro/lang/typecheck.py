"""Type checker / semantic analyser for MiniM3.

Responsibilities:

* resolve all named types (supporting recursion through REF and OBJECT);
* build symbol tables and annotate every ``NameRef`` with its symbol;
* annotate every expression with its static type — the ``Type(p)`` that
  all three TBAA algorithms consume (Section 2.1 of the paper);
* classify calls (procedure / method / builtin) and validate signatures;
* enforce Modula-3-style type safety: reference assignments only between
  subtype-related types, VAR parameters require identical types, downcasts
  are explicit (``NARROW``) or implicitly runtime-checked on object
  assignment.

The result is a :class:`CheckedModule`, the input to IR lowering and to
the alias analyses.
"""

from typing import Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang import types as ty
from repro.lang.errors import SourceLocation, TypeCheckError
from repro.lang.symtab import Scope, Symbol

# ----------------------------------------------------------------------
# Builtin procedures.  Each entry: (param types or checker tag, result).
# 'stmt' builtins may only appear as statements; expression builtins may
# appear anywhere.  Polymorphic builtins are special-cased in _check_call.

_BUILTIN_RESULTS = {
    "NUMBER": ty.INTEGER,
    "ORD": ty.INTEGER,
    "VAL": ty.CHAR,
    "ABS": ty.INTEGER,
    "MIN": ty.INTEGER,
    "MAX": ty.INTEGER,
    "TextLen": ty.INTEGER,
    "TextChar": ty.CHAR,
    "IntToText": ty.TEXT,
    "CharToText": ty.TEXT,
    "PutText": None,
    "PutInt": None,
    "PutChar": None,
    "INC": None,
    "DEC": None,
    "ASSERT": None,
}

BUILTIN_NAMES = frozenset(_BUILTIN_RESULTS)


class CheckedProc:
    """A type-checked procedure: symbols plus the annotated body."""

    def __init__(
        self,
        name: str,
        decl: Optional[ast.ProcDecl],
        params: List[Symbol],
        result: Optional[ty.Type],
        body: List[ast.Stmt],
        loc: SourceLocation,
    ):
        self.name = name
        self.decl = decl
        self.params = params
        self.result = result
        self.body = body
        self.loc = loc
        self.locals: List[Symbol] = []  # declared locals (not WITH/FOR)
        self.all_symbols: List[Symbol] = list(params)  # params+locals+with+for

    def __repr__(self) -> str:
        return "<CheckedProc {}>".format(self.name)


MAIN_PROC = "<main>"


class CheckedModule:
    """The fully-checked program: types, symbols, annotated ASTs."""

    def __init__(self, module: ast.Module):
        self.module = module
        self.name = module.name
        self.types = ty.TypeTable()
        self.named_types: Dict[str, ty.Type] = {}
        self.globals: List[Symbol] = []
        self.procs: Dict[str, CheckedProc] = {}
        self.proc_order: List[str] = []
        # Method-implementation procedures (devirtualisation targets):
        # proc name -> list of (ObjectType, method name) slots it implements.
        self.method_impls: Dict[str, List[Tuple[ty.ObjectType, str]]] = {}

    @property
    def main(self) -> CheckedProc:
        return self.procs[MAIN_PROC]

    def user_procs(self) -> List[CheckedProc]:
        """All procedures incl. the module body, in declaration order."""
        return [self.procs[n] for n in self.proc_order]

    def object_types(self) -> List[ty.ObjectType]:
        return self.types.object_types()


class _Recursion(Exception):
    """Internal: raised when named-type resolution hits a cycle."""


class TypeChecker:
    """Checks one module.  Use :func:`check_module` for the simple path."""

    def __init__(self, module: ast.Module):
        self.module = module
        self.checked = CheckedModule(module)
        self.global_scope = Scope()
        self._loop_depth = 0
        self._current_proc: Optional[CheckedProc] = None
        self._current_scope: Scope = self.global_scope
        self._type_decls: Dict[str, ast.TypeExpr] = {}
        self._resolving: List[str] = []

    # ==================================================================
    # Entry point

    def run(self) -> CheckedModule:
        self._resolve_named_types()
        self._declare_consts()
        self._declare_globals()
        self._declare_procs()
        self._check_method_bindings()
        for decl in self.module.proc_decls:
            self._check_proc(decl)
        self._check_main()
        return self.checked

    # ==================================================================
    # Phase 1: named types

    def _resolve_named_types(self) -> None:
        for decl in self.module.type_decls:
            if decl.name in self._type_decls or decl.name in _PRIMITIVES:
                raise TypeCheckError(
                    "duplicate type name '{}'".format(decl.name), decl.loc
                )
            self._type_decls[decl.name] = decl.type_expr
        for name in self._type_decls:
            self._named(name, SourceLocation("<type>", 0, 0))

    def _named(self, name: str, loc: SourceLocation) -> ty.Type:
        """Resolve the named type *name*, handling recursion via shells."""
        prim = _PRIMITIVES.get(name)
        if prim is not None:
            return prim
        resolved = self.checked.named_types.get(name)
        if resolved is not None:
            return resolved
        expr = self._type_decls.get(name)
        if expr is None:
            raise TypeCheckError("unknown type '{}'".format(name), loc)
        if name in self._resolving:
            raise _Recursion()
        self._resolving.append(name)
        try:
            if isinstance(expr, ast.ObjectTypeExpr):
                # Object declarations may be self-referential (fields of
                # the type being declared), so always register the shell
                # under its name before resolving the fields.
                result = self._resolve_recursive(name, expr)
            else:
                try:
                    result = self._resolve_expr(expr, type_name=name)
                except _Recursion:
                    result = self._resolve_recursive(name, expr)
        finally:
            self._resolving.pop()
        self.checked.named_types[name] = result
        return result

    def _resolve_expr(
        self, expr: ast.TypeExpr, type_name: Optional[str] = None
    ) -> ty.Type:
        """Resolve a (non-recursive) type expression.

        Anonymous REF/ARRAY/RECORD types are interned structurally;
        OBJECT types are generative.  ``type_name`` names the declaration
        being resolved, used only to name fresh object types.
        """
        if isinstance(expr, ast.NamedTypeExpr):
            return self._named(expr.name, expr.loc)
        if isinstance(expr, ast.RefTypeExpr):
            return self.checked.types.ref(self._resolve_expr(expr.target), expr.brand)
        if isinstance(expr, ast.ArrayTypeExpr):
            element = self._resolve_expr(expr.element)
            self._require_storable(element, expr.loc, "array element")
            return self.checked.types.array(element, expr.length)
        if isinstance(expr, ast.RecordTypeExpr):
            fields = [(f, self._resolve_expr(t)) for f, t in expr.fields]
            for fname, ftype in fields:
                self._require_storable(ftype, expr.loc, "record field '{}'".format(fname))
            return self.checked.types.record(fields)
        if isinstance(expr, ast.ObjectTypeExpr):
            return self._build_object(expr, type_name or "<anon object>")
        raise TypeCheckError("unsupported type expression", expr.loc)

    def _build_object(self, expr: ast.ObjectTypeExpr, name: str) -> ty.ObjectType:
        supertype = ty.ROOT
        if expr.supertype is not None:
            resolved = self._resolve_expr(expr.supertype)
            if not isinstance(resolved, ty.ObjectType):
                raise TypeCheckError(
                    "object supertype must be an object type", expr.loc
                )
            supertype = resolved
        obj = ty.ObjectType(name, supertype, [], brand=expr.brand)
        self.checked.types.register_object(obj)
        self._fill_object(obj, expr)
        return obj

    def _fill_object(self, obj: ty.ObjectType, expr: ast.ObjectTypeExpr) -> None:
        obj.own_fields = [(f, self._resolve_expr(t)) for f, t in expr.fields]
        for fname, ftype in obj.own_fields:
            self._require_storable(ftype, expr.loc, "object field '{}'".format(fname))
        obj.own_methods = [
            ty.Method(
                m.name,
                [ty.Param(p.name, p.mode, self._resolve_expr(p.type_expr)) for p in m.params],
                self._resolve_expr(m.result) if m.result else None,
                m.default_impl,
            )
            for m in expr.methods
        ]
        obj.overrides = list(expr.overrides)
        inherited = {fname for fname, _ in (obj.supertype.all_fields() if obj.supertype else [])}
        for fname, _ in obj.own_fields:
            if fname in inherited:
                raise TypeCheckError(
                    "field '{}' shadows an inherited field".format(fname), expr.loc
                )

    def _resolve_recursive(self, name: str, expr: ast.TypeExpr) -> ty.Type:
        """Shell-and-patch resolution for recursive named types.

        The shell is registered under *name* first so inner references to
        *name* resolve to it, then its contents are patched in place.
        Recursive named types are generative (never interned) — a benign
        deviation from Modula-3's structural equivalence, documented in
        DESIGN.md.
        """
        if isinstance(expr, ast.RefTypeExpr):
            shell = ty.RefType(ty.INTEGER, expr.brand)  # dummy target
            self.checked.types.all_types.append(shell)
            self.checked.named_types[name] = shell
            shell.target = self._resolve_expr(expr.target)
            prefix = 'BRANDED "{}" '.format(shell.brand) if shell.brand else ""
            shell.name = "{}REF {}".format(prefix, shell.target.name)
            return shell
        if isinstance(expr, ast.ArrayTypeExpr):
            shell_arr = ty.ArrayType(ty.INTEGER, expr.length)
            self.checked.types.all_types.append(shell_arr)
            self.checked.named_types[name] = shell_arr
            shell_arr.element = self._resolve_expr(expr.element)
            return shell_arr
        if isinstance(expr, ast.RecordTypeExpr):
            shell_rec = ty.RecordType([])
            self.checked.types.all_types.append(shell_rec)
            self.checked.named_types[name] = shell_rec
            fields = [(f, self._resolve_expr(t)) for f, t in expr.fields]
            for fname, ftype in fields:
                self._require_storable(ftype, expr.loc, "record field '{}'".format(fname))
            shell_rec.fields = fields
            shell_rec._index = {f: (i, t) for i, (f, t) in enumerate(fields)}
            return shell_rec
        if isinstance(expr, ast.ObjectTypeExpr):
            supertype = ty.ROOT
            if expr.supertype is not None:
                resolved = self._resolve_expr(expr.supertype)
                if not isinstance(resolved, ty.ObjectType):
                    raise TypeCheckError(
                        "object supertype must be an object type", expr.loc
                    )
                supertype = resolved
            shell_obj = ty.ObjectType(name, supertype, [], brand=expr.brand)
            self.checked.types.register_object(shell_obj)
            self.checked.named_types[name] = shell_obj
            self._fill_object(shell_obj, expr)
            return shell_obj
        raise TypeCheckError(
            "illegal recursive type '{}' (recursion must go through REF or OBJECT)".format(name),
            expr.loc,
        )

    # ==================================================================
    # Phase 2/3: global declarations

    def _declare_consts(self) -> None:
        for decl in self.module.const_decls:
            value, ctype = self._const_eval(decl.value)
            symbol = Symbol(decl.name, "const", ctype, decl.loc, is_global=True)
            symbol.const_value = value
            self.global_scope.define(symbol)

    def _declare_globals(self) -> None:
        for decl in self.module.var_decls:
            var_type = self._resolve_expr(decl.type_expr)
            self._require_storable(var_type, decl.loc, "variable")
            for name in decl.names:
                symbol = Symbol(name, "var", var_type, decl.loc, is_global=True)
                self.global_scope.define(symbol)
                self.checked.globals.append(symbol)

    def _declare_procs(self) -> None:
        for decl in self.module.proc_decls:
            params = [
                ty.Param(p.name, p.mode, self._resolve_expr(p.type_expr))
                for p in decl.params
            ]
            for param in params:
                self._require_storable(param.type, decl.loc, "parameter '{}'".format(param.name))
            result = self._resolve_expr(decl.result) if decl.result else None
            if result is not None:
                self._require_storable(result, decl.loc, "result")
            symbol = Symbol(decl.name, "proc", ty.ProcType(params, result), decl.loc, is_global=True)
            self.global_scope.define(symbol)

    def _check_method_bindings(self) -> None:
        """Validate METHODS defaults and OVERRIDES; index impls."""
        for obj in self.checked.object_types():
            bindings = [
                (m.name, m.default_impl) for m in obj.own_methods if m.default_impl
            ] + list(obj.overrides)
            for mname, pname in bindings:
                method = obj.find_method(mname)
                if method is None:
                    raise TypeCheckError(
                        "type {} overrides unknown method '{}'".format(obj.name, mname),
                        self.module.loc,
                    )
                proc_sym = self.global_scope.lookup(pname)
                if proc_sym is None or proc_sym.kind != "proc":
                    raise TypeCheckError(
                        "method {}.{} bound to unknown procedure '{}'".format(
                            obj.name, mname, pname
                        ),
                        self.module.loc,
                    )
                proc_type = proc_sym.type
                assert isinstance(proc_type, ty.ProcType)
                if len(proc_type.params) != len(method.params) + 1:
                    raise TypeCheckError(
                        "procedure {} has {} params but method {}.{} needs {} (+receiver)".format(
                            pname, len(proc_type.params), obj.name, mname, len(method.params)
                        ),
                        self.module.loc,
                    )
                receiver = proc_type.params[0]
                if not isinstance(receiver.type, ty.ObjectType):
                    raise TypeCheckError(
                        "receiver of {} must be an object type".format(pname),
                        self.module.loc,
                    )
                self.checked.method_impls.setdefault(pname, []).append((obj, mname))

    # ==================================================================
    # Phase 4: procedure bodies

    def _check_proc(self, decl: ast.ProcDecl) -> None:
        proc_sym = self.global_scope.lookup(decl.name)
        assert proc_sym is not None and isinstance(proc_sym.type, ty.ProcType)
        proc_type = proc_sym.type
        scope = Scope(self.global_scope)
        param_syms: List[Symbol] = []
        for param in proc_type.params:
            symbol = Symbol(
                param.name, "param", param.type, decl.loc,
                mode=param.mode, proc_name=decl.name,
            )
            scope.define(symbol)
            param_syms.append(symbol)
        checked = CheckedProc(
            decl.name, decl, param_syms, proc_type.result, decl.body, decl.loc
        )
        self._check_proc_body(checked, decl.local_vars, decl.local_consts, scope)

    def _check_main(self) -> None:
        checked = CheckedProc(
            MAIN_PROC, None, [], None, self.module.body, self.module.loc
        )
        # Global initialisers run in the module body's context; check them
        # here so lowering can emit them as the main preamble.
        self._current_proc = checked
        self._current_scope = self.global_scope
        for decl in self.module.var_decls:
            if decl.init is not None:
                init_type = self._check_expr(decl.init)
                var_type = self._resolve_expr(decl.type_expr)
                self._require_assignable(init_type, var_type, decl.loc)
        self._check_proc_body(checked, [], [], Scope(self.global_scope))

    def _check_proc_body(
        self,
        checked: CheckedProc,
        local_vars: List[ast.VarDecl],
        local_consts: List[ast.ConstDecl],
        scope: Scope,
    ) -> None:
        self.checked.procs[checked.name] = checked
        self.checked.proc_order.append(checked.name)
        self._current_proc = checked
        self._current_scope = scope
        for cdecl in local_consts:
            value, ctype = self._const_eval(cdecl.value)
            symbol = Symbol(cdecl.name, "const", ctype, cdecl.loc, proc_name=checked.name)
            symbol.const_value = value
            scope.define(symbol)
        for vdecl in local_vars:
            var_type = self._resolve_expr(vdecl.type_expr)
            self._require_storable(var_type, vdecl.loc, "variable")
            init_type = self._check_expr(vdecl.init) if vdecl.init else None
            for name in vdecl.names:
                symbol = Symbol(name, "var", var_type, vdecl.loc, proc_name=checked.name)
                scope.define(symbol)
                checked.locals.append(symbol)
                checked.all_symbols.append(symbol)
            if init_type is not None:
                self._require_assignable(init_type, var_type, vdecl.loc)
        self._check_stmts(checked.body)
        self._current_proc = None
        self._current_scope = self.global_scope

    # ------------------------------------------------------------------
    # Statements

    def _check_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.CallStmt):
            result = self._check_call(stmt.call, as_statement=True)
            if result is not None:
                raise TypeCheckError(
                    "call result must be used or EVALed", stmt.loc
                )
        elif isinstance(stmt, ast.EvalStmt):
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            for cond, body in stmt.arms:
                self._require_type(self._check_expr(cond), ty.BOOLEAN, cond.loc)
                self._check_stmts(body)
            self._check_stmts(stmt.else_body)
        elif isinstance(stmt, ast.WhileStmt):
            self._require_type(self._check_expr(stmt.cond), ty.BOOLEAN, stmt.cond.loc)
            self._in_loop(stmt.body)
        elif isinstance(stmt, ast.RepeatStmt):
            self._in_loop(stmt.body)
            self._require_type(self._check_expr(stmt.until), ty.BOOLEAN, stmt.until.loc)
        elif isinstance(stmt, ast.LoopStmt):
            self._in_loop(stmt.body)
        elif isinstance(stmt, ast.ExitStmt):
            if self._loop_depth == 0:
                raise TypeCheckError("EXIT outside of a loop", stmt.loc)
        elif isinstance(stmt, ast.ForStmt):
            self._check_for(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            self._check_return(stmt)
        elif isinstance(stmt, ast.WithStmt):
            self._check_with(stmt)
        elif isinstance(stmt, ast.CaseStmt):
            self._check_case(stmt)
        else:
            raise TypeCheckError("unsupported statement", stmt.loc)

    def _in_loop(self, body: List[ast.Stmt]) -> None:
        self._loop_depth += 1
        try:
            self._check_stmts(body)
        finally:
            self._loop_depth -= 1

    def _check_assign(self, stmt: ast.AssignStmt) -> None:
        target_type = self._check_designator(stmt.target, for_write=True)
        value_type = self._check_expr(stmt.value)
        self._require_assignable(value_type, target_type, stmt.loc)

    def _check_for(self, stmt: ast.ForStmt) -> None:
        self._require_type(self._check_expr(stmt.lo), ty.INTEGER, stmt.lo.loc)
        self._require_type(self._check_expr(stmt.hi), ty.INTEGER, stmt.hi.loc)
        if stmt.by is not None:
            # BY must be a non-zero constant so the loop direction is
            # statically known (FOR lowers to a WHILE with a fixed test).
            value, by_type = self._const_eval(stmt.by)
            self._require_type(by_type, ty.INTEGER, stmt.by.loc)
            if value == 0:
                raise TypeCheckError("FOR step must be non-zero", stmt.by.loc)
            setattr(stmt, "by_value", value)
        assert self._current_proc is not None
        symbol = Symbol(
            stmt.var, "for", ty.INTEGER, stmt.loc, proc_name=self._current_proc.name
        )
        self._current_proc.all_symbols.append(symbol)
        outer = self._current_scope
        self._current_scope = Scope(outer)
        self._current_scope.define(symbol)
        setattr(stmt, "symbol", symbol)
        try:
            self._in_loop(stmt.body)
        finally:
            self._current_scope = outer

    def _check_return(self, stmt: ast.ReturnStmt) -> None:
        assert self._current_proc is not None
        expected = self._current_proc.result
        if stmt.value is None:
            if expected is not None:
                raise TypeCheckError("RETURN must carry a value here", stmt.loc)
            return
        if expected is None:
            raise TypeCheckError("RETURN with a value in a proper procedure", stmt.loc)
        self._require_assignable(self._check_expr(stmt.value), expected, stmt.loc)

    def _check_with(self, stmt: ast.WithStmt) -> None:
        assert self._current_proc is not None
        outer = self._current_scope
        self._current_scope = Scope(outer)
        try:
            for binding in stmt.bindings:
                bound_type = self._check_expr(binding.expr)
                symbol = Symbol(
                    binding.name, "with", bound_type, binding.loc,
                    proc_name=self._current_proc.name,
                )
                binding.binds_location = ast.is_designator(binding.expr)
                symbol.binds_location = binding.binds_location
                self._current_scope.define(symbol)
                self._current_proc.all_symbols.append(symbol)
                setattr(binding, "symbol", symbol)
            self._check_stmts(stmt.body)
        finally:
            self._current_scope = outer

    def _check_case(self, stmt: ast.CaseStmt) -> None:
        sel_type = self._check_expr(stmt.selector)
        if sel_type not in (ty.INTEGER, ty.CHAR):
            raise TypeCheckError("CASE selector must be INTEGER or CHAR", stmt.loc)
        for arm in stmt.arms:
            for label in arm.labels:
                value, ltype = self._const_eval(label)
                if ltype is not sel_type:
                    raise TypeCheckError("case label type mismatch", label.loc)
                label.type = ltype
                setattr(label, "const_value", value)
            self._check_stmts(arm.body)
        self._check_stmts(stmt.else_body)

    # ------------------------------------------------------------------
    # Expressions

    def _check_expr(self, expr: ast.Expr) -> ty.Type:
        result = self._check_expr_inner(expr)
        expr.type = result
        return result

    def _check_expr_inner(self, expr: ast.Expr) -> ty.Type:
        if isinstance(expr, ast.IntLit):
            return ty.INTEGER
        if isinstance(expr, ast.BoolLit):
            return ty.BOOLEAN
        if isinstance(expr, ast.CharLit):
            return ty.CHAR
        if isinstance(expr, ast.TextLit):
            return ty.TEXT
        if isinstance(expr, ast.NilLit):
            return ty.NIL
        if isinstance(expr, ast.NameRef):
            return self._check_name(expr)
        if isinstance(expr, (ast.FieldRef, ast.DerefExpr, ast.IndexExpr)):
            return self._check_designator(expr, for_write=False)
        if isinstance(expr, ast.CallExpr):
            result = self._check_call(expr, as_statement=False)
            if result is None:
                raise TypeCheckError("procedure has no result", expr.loc)
            return result
        if isinstance(expr, ast.NewExpr):
            return self._check_new(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._check_binary(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self._check_unary(expr)
        if isinstance(expr, ast.IsTypeExpr):
            self._check_type_test(expr)
            return ty.BOOLEAN
        if isinstance(expr, ast.NarrowExpr):
            return self._check_type_test(expr)
        raise TypeCheckError("unsupported expression", expr.loc)

    def _check_name(self, expr: ast.NameRef) -> ty.Type:
        symbol = self._current_scope.lookup(expr.name)
        if symbol is None:
            raise TypeCheckError("undeclared name '{}'".format(expr.name), expr.loc)
        if symbol.kind == "proc":
            raise TypeCheckError(
                "procedure '{}' used as a value".format(expr.name), expr.loc
            )
        expr.symbol_kind = symbol.kind
        setattr(expr, "symbol", symbol)
        assert symbol.type is not None
        return symbol.type

    def _check_designator(self, expr: ast.Expr, for_write: bool) -> ty.Type:
        """Check a designator; enforces writability when *for_write*."""
        if isinstance(expr, ast.NameRef):
            result = self._check_name(expr)
            expr.type = result
            symbol = getattr(expr, "symbol")
            if for_write:
                if symbol.kind == "const":
                    raise TypeCheckError("cannot assign to a constant", expr.loc)
                if symbol.kind == "for":
                    raise TypeCheckError("cannot assign to a FOR index", expr.loc)
                if symbol.kind == "param" and symbol.mode == "readonly":
                    raise TypeCheckError("cannot assign to a READONLY parameter", expr.loc)
                if symbol.kind == "with" and not symbol.binds_location:
                    raise TypeCheckError(
                        "WITH binding '{}' is not a location".format(symbol.name),
                        expr.loc,
                    )
            return result
        if isinstance(expr, ast.FieldRef):
            obj_type = self._check_expr(expr.obj)
            field_type = self._field_type(obj_type, expr.field_name, expr.loc)
            expr.type = field_type
            return field_type
        if isinstance(expr, ast.DerefExpr):
            ptr_type = self._check_expr(expr.pointer)
            if not isinstance(ptr_type, ty.RefType):
                raise TypeCheckError("^ applies only to REF values", expr.loc)
            expr.type = ptr_type.target
            return ptr_type.target
        if isinstance(expr, ast.IndexExpr):
            arr_type = self._check_expr(expr.array)
            if not isinstance(arr_type, ty.ArrayType):
                raise TypeCheckError("subscript applies only to arrays", expr.loc)
            self._require_type(self._check_expr(expr.index), ty.INTEGER, expr.index.loc)
            expr.type = arr_type.element
            return arr_type.element
        raise TypeCheckError("expression is not a designator", expr.loc)

    def _field_type(self, obj_type: ty.Type, fname: str, loc: SourceLocation) -> ty.Type:
        if isinstance(obj_type, ty.ObjectType):
            field_type = obj_type.field_type(fname)
            if field_type is None:
                if obj_type.find_method(fname) is not None:
                    raise TypeCheckError(
                        "method '{}' used without a call".format(fname), loc
                    )
                raise TypeCheckError(
                    "type {} has no field '{}'".format(obj_type.name, fname), loc
                )
            return field_type
        if isinstance(obj_type, ty.RecordType):
            field_type = obj_type.field_type(fname)
            if field_type is None:
                raise TypeCheckError("record has no field '{}'".format(fname), loc)
            return field_type
        raise TypeCheckError(
            "'.{}' applies only to objects and records (got {})".format(
                fname, obj_type.name
            ),
            loc,
        )

    # ------------------------------------------------------------------
    # Calls

    def _check_call(self, call: ast.CallExpr, as_statement: bool) -> Optional[ty.Type]:
        callee = call.callee
        # Method call: designator `.m(...)` where m names a method.
        if isinstance(callee, ast.FieldRef):
            obj_type = self._check_expr(callee.obj)
            if isinstance(obj_type, ty.ObjectType):
                method = obj_type.find_method(callee.field_name)
                if method is not None:
                    return self._check_method_call(call, callee, obj_type, method)
            field_type = self._field_type(obj_type, callee.field_name, callee.loc)
            raise TypeCheckError(
                "field '{}' of type {} is not callable".format(
                    callee.field_name, field_type.name
                ),
                call.loc,
            )
        if not isinstance(callee, ast.NameRef):
            raise TypeCheckError("callee is not callable", call.loc)
        symbol = self._current_scope.lookup(callee.name)
        if symbol is None:
            if callee.name in BUILTIN_NAMES:
                return self._check_builtin(call, callee.name, as_statement)
            raise TypeCheckError("undeclared procedure '{}'".format(callee.name), call.loc)
        if symbol.kind != "proc":
            raise TypeCheckError("'{}' is not a procedure".format(callee.name), call.loc)
        setattr(callee, "symbol", symbol)
        proc_type = symbol.type
        assert isinstance(proc_type, ty.ProcType)
        self._check_args(call, proc_type.params)
        call.call_kind = "proc"
        setattr(call, "proc_name", callee.name)
        return proc_type.result

    def _check_method_call(
        self,
        call: ast.CallExpr,
        callee: ast.FieldRef,
        receiver_type: ty.ObjectType,
        method: ty.Method,
    ) -> Optional[ty.Type]:
        self._check_args(call, method.params)
        call.call_kind = "method"
        setattr(call, "method", method)
        setattr(call, "receiver_type", receiver_type)
        declaring = receiver_type
        while declaring.supertype is not None and declaring.supertype.find_method(method.name):
            declaring = declaring.supertype
        setattr(call, "declaring_type", declaring)
        return method.result

    def _check_args(self, call: ast.CallExpr, params: List[ty.Param]) -> None:
        if len(call.args) != len(params):
            raise TypeCheckError(
                "call passes {} arguments but {} are required".format(
                    len(call.args), len(params)
                ),
                call.loc,
            )
        for arg, param in zip(call.args, params):
            arg_type = self._check_expr(arg)
            if param.mode == "var":
                if not ast.is_designator(arg):
                    raise TypeCheckError(
                        "argument for VAR parameter '{}' must be a designator".format(
                            param.name
                        ),
                        arg.loc,
                    )
                if arg_type is not param.type:
                    raise TypeCheckError(
                        "VAR parameter '{}' requires exactly {} (got {})".format(
                            param.name, param.type.name, arg_type.name
                        ),
                        arg.loc,
                    )
            else:
                self._require_assignable(arg_type, param.type, arg.loc)

    def _check_builtin(
        self, call: ast.CallExpr, name: str, as_statement: bool
    ) -> Optional[ty.Type]:
        call.call_kind = "builtin"
        call.builtin_name = name
        args = call.args
        result = _BUILTIN_RESULTS[name]
        if result is None and not as_statement:
            raise TypeCheckError("{} may only be used as a statement".format(name), call.loc)

        def need(n: int) -> None:
            if len(args) != n:
                raise TypeCheckError(
                    "{} takes {} argument(s)".format(name, n), call.loc
                )

        if name == "NUMBER":
            need(1)
            arr_type = self._check_expr(args[0])
            if not isinstance(arr_type, ty.ArrayType):
                raise TypeCheckError("NUMBER requires an array", call.loc)
        elif name == "ORD":
            need(1)
            operand = self._check_expr(args[0])
            if operand not in (ty.CHAR, ty.BOOLEAN, ty.INTEGER):
                raise TypeCheckError("ORD requires CHAR/BOOLEAN/INTEGER", call.loc)
        elif name == "VAL":
            need(2)
            self._require_type(self._check_expr(args[0]), ty.INTEGER, args[0].loc)
            target = args[1]
            if not (isinstance(target, ast.NameRef) and target.name == "CHAR"):
                raise TypeCheckError("VAL supports only VAL(i, CHAR)", call.loc)
            target.type = ty.CHAR
            target.symbol_kind = "const"
        elif name == "ABS":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.INTEGER, args[0].loc)
        elif name in ("MIN", "MAX"):
            need(2)
            self._require_type(self._check_expr(args[0]), ty.INTEGER, args[0].loc)
            self._require_type(self._check_expr(args[1]), ty.INTEGER, args[1].loc)
        elif name == "TextLen":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.TEXT, args[0].loc)
        elif name == "TextChar":
            need(2)
            self._require_type(self._check_expr(args[0]), ty.TEXT, args[0].loc)
            self._require_type(self._check_expr(args[1]), ty.INTEGER, args[1].loc)
        elif name == "IntToText":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.INTEGER, args[0].loc)
        elif name == "CharToText":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.CHAR, args[0].loc)
        elif name == "PutText":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.TEXT, args[0].loc)
        elif name == "PutInt":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.INTEGER, args[0].loc)
        elif name == "PutChar":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.CHAR, args[0].loc)
        elif name in ("INC", "DEC"):
            if len(args) not in (1, 2):
                raise TypeCheckError("{} takes 1 or 2 arguments".format(name), call.loc)
            target_type = self._check_designator(args[0], for_write=True)
            self._require_type(target_type, ty.INTEGER, args[0].loc)
            if len(args) == 2:
                self._require_type(self._check_expr(args[1]), ty.INTEGER, args[1].loc)
        elif name == "ASSERT":
            need(1)
            self._require_type(self._check_expr(args[0]), ty.BOOLEAN, args[0].loc)
        else:  # pragma: no cover - table and dispatch kept in sync
            raise TypeCheckError("unknown builtin {}".format(name), call.loc)
        return result

    # ------------------------------------------------------------------
    # NEW, type tests, operators

    def _check_new(self, expr: ast.NewExpr) -> ty.Type:
        new_type = self._resolve_expr(expr.type_expr)
        setattr(expr, "allocated_type", new_type)
        if isinstance(new_type, ty.ObjectType):
            if expr.size is not None:
                raise TypeCheckError("object NEW takes no size", expr.loc)
            for fname, init in expr.field_inits:
                field_type = new_type.field_type(fname)
                if field_type is None:
                    raise TypeCheckError(
                        "type {} has no field '{}'".format(new_type.name, fname),
                        expr.loc,
                    )
                self._require_assignable(self._check_expr(init), field_type, init.loc)
            return new_type
        if isinstance(new_type, ty.RefType):
            referent = new_type.target
            if isinstance(referent, ty.ArrayType) and referent.is_open:
                if expr.size is None:
                    raise TypeCheckError("open array NEW requires a size", expr.loc)
                self._require_type(self._check_expr(expr.size), ty.INTEGER, expr.size.loc)
                if expr.field_inits:
                    raise TypeCheckError("array NEW takes no field initialisers", expr.loc)
                return new_type
            if expr.size is not None:
                raise TypeCheckError("only open-array NEW takes a size", expr.loc)
            if isinstance(referent, ty.RecordType):
                for fname, init in expr.field_inits:
                    field_type = referent.field_type(fname)
                    if field_type is None:
                        raise TypeCheckError(
                            "record has no field '{}'".format(fname), expr.loc
                        )
                    self._require_assignable(self._check_expr(init), field_type, init.loc)
            elif expr.field_inits:
                raise TypeCheckError("field initialisers need a record referent", expr.loc)
            return new_type
        raise TypeCheckError("NEW requires a reference or object type", expr.loc)

    def _check_type_test(self, expr) -> ty.Type:
        operand_type = self._check_expr(expr.operand)
        target = self._resolve_expr(expr.type_expr)
        expr.target_type = target
        if not isinstance(target, ty.ObjectType):
            raise TypeCheckError("type tests apply only to object types", expr.loc)
        if not isinstance(operand_type, (ty.ObjectType, ty.NilType)):
            raise TypeCheckError("type tests apply only to object values", expr.loc)
        if isinstance(operand_type, ty.ObjectType):
            if not (ty.is_subtype(target, operand_type) or ty.is_subtype(operand_type, target)):
                raise TypeCheckError(
                    "types {} and {} are unrelated".format(operand_type.name, target.name),
                    expr.loc,
                )
        return target

    def _check_binary(self, expr: ast.BinaryExpr) -> ty.Type:
        op = expr.op
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        if op in ("+", "-", "*", "DIV", "MOD"):
            self._require_type(left, ty.INTEGER, expr.left.loc)
            self._require_type(right, ty.INTEGER, expr.right.loc)
            return ty.INTEGER
        if op == "/":
            raise TypeCheckError("use DIV for integer division", expr.loc)
        if op == "&":
            self._require_type(left, ty.TEXT, expr.left.loc)
            self._require_type(right, ty.TEXT, expr.right.loc)
            return ty.TEXT
        if op in ("AND", "OR"):
            self._require_type(left, ty.BOOLEAN, expr.left.loc)
            self._require_type(right, ty.BOOLEAN, expr.right.loc)
            return ty.BOOLEAN
        if op in ("=", "#"):
            if not (
                left is right
                or ty.is_reference_compatible(left, right)
                or ty.is_reference_compatible(right, left)
            ):
                raise TypeCheckError(
                    "cannot compare {} with {}".format(left.name, right.name), expr.loc
                )
            return ty.BOOLEAN
        if op in ("<", "<=", ">", ">="):
            if left is not right or left not in (ty.INTEGER, ty.CHAR, ty.TEXT):
                raise TypeCheckError(
                    "ordering compares INTEGERs, CHARs or TEXTs of equal type",
                    expr.loc,
                )
            return ty.BOOLEAN
        raise TypeCheckError("unknown operator {}".format(op), expr.loc)

    def _check_unary(self, expr: ast.UnaryExpr) -> ty.Type:
        operand = self._check_expr(expr.operand)
        if expr.op == "-":
            self._require_type(operand, ty.INTEGER, expr.loc)
            return ty.INTEGER
        if expr.op == "NOT":
            self._require_type(operand, ty.BOOLEAN, expr.loc)
            return ty.BOOLEAN
        raise TypeCheckError("unknown unary operator {}".format(expr.op), expr.loc)

    # ------------------------------------------------------------------
    # Constants

    def _const_eval(self, expr: ast.Expr) -> Tuple[object, ty.Type]:
        if isinstance(expr, ast.IntLit):
            expr.type = ty.INTEGER
            return expr.value, ty.INTEGER
        if isinstance(expr, ast.BoolLit):
            expr.type = ty.BOOLEAN
            return expr.value, ty.BOOLEAN
        if isinstance(expr, ast.CharLit):
            expr.type = ty.CHAR
            return expr.value, ty.CHAR
        if isinstance(expr, ast.TextLit):
            expr.type = ty.TEXT
            return expr.value, ty.TEXT
        if isinstance(expr, ast.NameRef):
            symbol = self._current_scope.lookup(expr.name)
            if symbol is None or symbol.kind != "const":
                raise TypeCheckError(
                    "'{}' is not a constant".format(expr.name), expr.loc
                )
            setattr(expr, "symbol", symbol)
            expr.symbol_kind = "const"
            assert symbol.type is not None
            expr.type = symbol.type
            return symbol.const_value, symbol.type
        if isinstance(expr, ast.UnaryExpr) and expr.op == "-":
            value, vtype = self._const_eval(expr.operand)
            if vtype is not ty.INTEGER:
                raise TypeCheckError("constant negation needs an INTEGER", expr.loc)
            expr.type = ty.INTEGER
            return -value, ty.INTEGER  # type: ignore[operator]
        if isinstance(expr, ast.BinaryExpr) and expr.op in ("+", "-", "*", "DIV", "MOD"):
            lv, lt = self._const_eval(expr.left)
            rv, rt = self._const_eval(expr.right)
            if lt is not ty.INTEGER or rt is not ty.INTEGER:
                raise TypeCheckError("constant arithmetic needs INTEGERs", expr.loc)
            expr.type = ty.INTEGER
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "DIV": lambda a, b: a // b,
                "MOD": lambda a, b: a % b,
            }
            return ops[expr.op](lv, rv), ty.INTEGER  # type: ignore[arg-type]
        if isinstance(expr, ast.CallExpr) and isinstance(expr.callee, ast.NameRef) \
                and expr.callee.name == "ORD" and len(expr.args) == 1:
            value, vtype = self._const_eval(expr.args[0])
            if vtype is not ty.CHAR:
                raise TypeCheckError("constant ORD needs a CHAR", expr.loc)
            expr.type = ty.INTEGER
            expr.call_kind = "builtin"
            expr.builtin_name = "ORD"
            return ord(value), ty.INTEGER  # type: ignore[arg-type]
        raise TypeCheckError("expression is not constant", expr.loc)

    # ------------------------------------------------------------------
    # Shared checks

    def _require_type(self, actual: ty.Type, expected: ty.Type, loc: SourceLocation) -> None:
        if actual is not expected:
            raise TypeCheckError(
                "expected {} but found {}".format(expected.name, actual.name), loc
            )

    def _require_storable(self, t: ty.Type, loc: SourceLocation, what: str) -> None:
        """Aggregates (RECORD/ARRAY) live only behind REF in MiniM3.

        This realises the paper's simplifying assumption that "aggregate
        accesses ... have been broken down into accesses of each
        component": there are no aggregate copies to break down.
        """
        if isinstance(t, (ty.RecordType, ty.ArrayType, ty.ProcType)):
            raise TypeCheckError(
                "{} may not have aggregate type {} (wrap it in REF)".format(
                    what, t.name
                ),
                loc,
            )

    def _require_assignable(self, src: ty.Type, dst: ty.Type, loc: SourceLocation) -> None:
        if src is dst:
            return
        if ty.is_reference_compatible(src, dst):
            return
        raise TypeCheckError(
            "{} is not assignable to {}".format(src.name, dst.name), loc
        )


_PRIMITIVES: Dict[str, ty.Type] = {
    "INTEGER": ty.INTEGER,
    "BOOLEAN": ty.BOOLEAN,
    "CHAR": ty.CHAR,
    "TEXT": ty.TEXT,
    "ROOT": ty.ROOT,
}


def check_module(module: ast.Module) -> CheckedModule:
    """Type-check *module* and return the annotated result.

    ASTs that pass the parser's nesting cap can still be deep enough
    (hundreds of levels) to exhaust Python's default interpreter stack in
    the recursive checker, so the limit is raised for the duration, like
    :func:`~repro.lang.parser.parse_module` does while building the AST.
    """
    import sys

    from repro.lang.parser import MAX_NESTING_DEPTH
    from repro.obs import core as obs

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 30 * MAX_NESTING_DEPTH))
    try:
        with obs.span("lang.typecheck", module=module.name):
            return TypeChecker(module).run()
    finally:
        sys.setrecursionlimit(old_limit)
