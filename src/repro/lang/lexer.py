"""Hand-written lexer for MiniM3.

Follows Modula-3 lexical conventions for the subset we support:

* identifiers are case-sensitive; keywords are upper-case;
* ``(* ... *)`` comments nest (as in Modula-3);
* text literals use double quotes with ``\\n``, ``\\t``, ``\\\\``, ``\\"``
  escapes; char literals use single quotes;
* integers are decimal (hex/based literals are not needed by the suite).
"""

from typing import Iterator, List

from repro.lang.errors import LexError, SourceLocation
from repro.lang.tokens import KEYWORDS, Token, TokenKind

_SIMPLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    "^": TokenKind.CARET,
    "#": TokenKind.NE,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "&": TokenKind.AMP,
    "|": TokenKind.BAR,
}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\", '"': '"', "'": "'", "0": "\0"}


class Lexer:
    """Converts MiniM3 source text into a token stream."""

    def __init__(self, source: str, unit: str = "<input>"):
        self._src = source
        self._unit = unit
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, ending with a single EOF token."""
        while True:
            self._skip_trivia()
            loc = self._here()
            ch = self._peek()
            if ch == "":
                yield Token(TokenKind.EOF, "", loc)
                return
            if ch.isalpha() or ch == "_":
                yield self._ident(loc)
            elif ch.isdigit():
                yield self._number(loc)
            elif ch == '"':
                yield self._text(loc)
            elif ch == "'":
                yield self._char(loc)
            else:
                yield self._operator(loc)

    # ------------------------------------------------------------------
    # Character-level helpers

    def _here(self) -> SourceLocation:
        return SourceLocation(self._unit, self._line, self._col)

    def _peek(self, ahead: int = 0) -> str:
        i = self._pos + ahead
        return self._src[i] if i < len(self._src) else ""

    def _advance(self) -> str:
        ch = self._src[self._pos]
        self._pos += 1
        if ch == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return ch

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if ch != "" and ch in " \t\r\n":
                self._advance()
            elif ch == "(" and self._peek(1) == "*":
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        loc = self._here()
        self._advance()
        self._advance()
        depth = 1
        while depth > 0:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated comment", loc)
            if ch == "(" and self._peek(1) == "*":
                self._advance()
                self._advance()
                depth += 1
            elif ch == "*" and self._peek(1) == ")":
                self._advance()
                self._advance()
                depth -= 1
            else:
                self._advance()

    # ------------------------------------------------------------------
    # Token scanners

    def _ident(self, loc: SourceLocation) -> Token:
        chars: List[str] = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._advance())
        name = "".join(chars)
        kind = KEYWORDS.get(name)
        if kind is not None:
            return Token(kind, name, loc)
        return Token(TokenKind.IDENT, name, loc)

    def _number(self, loc: SourceLocation) -> Token:
        chars: List[str] = []
        while self._peek().isdigit():
            chars.append(self._advance())
        if self._peek().isalpha():
            raise LexError("malformed number", self._here())
        return Token(TokenKind.INT, int("".join(chars)), loc)

    def _escape(self, loc: SourceLocation) -> str:
        self._advance()  # backslash
        key = self._peek()
        if key not in _ESCAPES:
            raise LexError("bad escape '\\{}'".format(key), loc)
        self._advance()
        return _ESCAPES[key]

    def _text(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if ch == "" or ch == "\n":
                raise LexError("unterminated text literal", loc)
            if ch == '"':
                self._advance()
                return Token(TokenKind.TEXT, "".join(chars), loc)
            if ch == "\\":
                chars.append(self._escape(loc))
            else:
                chars.append(self._advance())

    def _char(self, loc: SourceLocation) -> Token:
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "" or ch == "\n":
            raise LexError("unterminated char literal", loc)
        if ch == "\\":
            value = self._escape(loc)
        else:
            value = self._advance()
        if self._peek() != "'":
            raise LexError("char literal must contain one character", loc)
        self._advance()
        return Token(TokenKind.CHAR, value, loc)

    def _operator(self, loc: SourceLocation) -> Token:
        ch = self._peek()
        two = ch + self._peek(1)
        if two == ":=":
            self._advance()
            self._advance()
            return Token(TokenKind.ASSIGN, two, loc)
        if two == "..":
            self._advance()
            self._advance()
            return Token(TokenKind.DOTDOT, two, loc)
        if two == "<=":
            self._advance()
            self._advance()
            return Token(TokenKind.LE, two, loc)
        if two == ">=":
            self._advance()
            self._advance()
            return Token(TokenKind.GE, two, loc)
        if two == "=>":
            self._advance()
            self._advance()
            return Token(TokenKind.ARROW, two, loc)
        if ch == ".":
            self._advance()
            return Token(TokenKind.DOT, ch, loc)
        if ch == ":":
            self._advance()
            return Token(TokenKind.COLON, ch, loc)
        if ch == "=":
            self._advance()
            return Token(TokenKind.EQ, ch, loc)
        if ch == "<":
            self._advance()
            return Token(TokenKind.LT, ch, loc)
        if ch == ">":
            self._advance()
            return Token(TokenKind.GT, ch, loc)
        if ch in _SIMPLE:
            self._advance()
            return Token(_SIMPLE[ch], ch, loc)
        raise LexError("unexpected character {!r}".format(ch), loc)


def tokenize(source: str, unit: str = "<input>") -> List[Token]:
    """Lex *source* completely and return the token list (incl. EOF)."""
    return list(Lexer(source, unit).tokens())
