"""Abstract syntax tree for MiniM3.

The parser builds these nodes; the type checker annotates expressions with
``.type`` (a :class:`repro.lang.types.Type`) and resolves names.  Nodes are
plain dataclasses — the compiler passes are written as external visitors,
keeping the tree itself free of behaviour.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.lang.errors import SourceLocation
from repro.lang.types import Type


# ----------------------------------------------------------------------
# Base classes


@dataclass
class Node:
    loc: SourceLocation


@dataclass
class Expr(Node):
    """Base of all expressions.  ``type`` is filled in by the checker."""

    type: Optional[Type] = field(default=None, init=False, repr=False)


@dataclass
class Stmt(Node):
    pass


# ----------------------------------------------------------------------
# Type expressions (syntactic; resolved to repro.lang.types by the checker)


@dataclass
class TypeExpr(Node):
    pass


@dataclass
class NamedTypeExpr(TypeExpr):
    name: str


@dataclass
class RefTypeExpr(TypeExpr):
    target: TypeExpr
    brand: Optional[str] = None


@dataclass
class ArrayTypeExpr(TypeExpr):
    element: TypeExpr
    length: Optional[int] = None  # None = open array


@dataclass
class RecordTypeExpr(TypeExpr):
    fields: List[Tuple[str, TypeExpr]] = field(default_factory=list)


@dataclass
class MethodDeclExpr(Node):
    name: str
    params: List["ParamDecl"]
    result: Optional[TypeExpr]
    default_impl: Optional[str]


@dataclass
class ObjectTypeExpr(TypeExpr):
    supertype: Optional[TypeExpr]  # None means ROOT
    fields: List[Tuple[str, TypeExpr]] = field(default_factory=list)
    methods: List[MethodDeclExpr] = field(default_factory=list)
    overrides: List[Tuple[str, str]] = field(default_factory=list)
    brand: Optional[str] = None


# ----------------------------------------------------------------------
# Expressions


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class CharLit(Expr):
    value: str


@dataclass
class TextLit(Expr):
    value: str


@dataclass
class NilLit(Expr):
    pass


@dataclass
class NameRef(Expr):
    """A reference to a variable, constant, parameter or procedure name."""

    name: str
    # Filled by the checker: 'var', 'const', 'proc', 'with'
    symbol_kind: Optional[str] = field(default=None, init=False, repr=False)


@dataclass
class FieldRef(Expr):
    """Qualification ``p.f`` (Table 1 of the paper: Qualify)."""

    obj: Expr
    field_name: str


@dataclass
class DerefExpr(Expr):
    """Dereference ``p^`` (Table 1: Dereference)."""

    pointer: Expr


@dataclass
class IndexExpr(Expr):
    """Subscript ``p[i]`` (Table 1: Subscript)."""

    array: Expr
    index: Expr


@dataclass
class CallExpr(Expr):
    """``f(args)`` — procedure call, method call (``p.m(args)``) or a
    builtin; the checker sets ``call_kind`` to one of 'proc', 'method',
    'builtin'."""

    callee: Expr
    args: List[Expr]
    call_kind: Optional[str] = field(default=None, init=False, repr=False)
    builtin_name: Optional[str] = field(default=None, init=False, repr=False)


@dataclass
class NewExpr(Expr):
    """``NEW(T)``, ``NEW(T, n)`` for open arrays, or ``NEW(T, f := e, ...)``
    with object field initialisers."""

    type_expr: TypeExpr
    size: Optional[Expr] = None
    field_inits: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class BinaryExpr(Expr):
    op: str  # one of + - * DIV MOD & = # < <= > >= AND OR
    left: Expr
    right: Expr


@dataclass
class UnaryExpr(Expr):
    op: str  # one of - NOT
    operand: Expr


@dataclass
class IsTypeExpr(Expr):
    """``ISTYPE(e, T)`` — runtime type test."""

    operand: Expr
    type_expr: TypeExpr
    target_type: Optional[Type] = field(default=None, init=False, repr=False)


@dataclass
class NarrowExpr(Expr):
    """``NARROW(e, T)`` — checked downcast."""

    operand: Expr
    type_expr: TypeExpr
    target_type: Optional[Type] = field(default=None, init=False, repr=False)


# ----------------------------------------------------------------------
# Statements


@dataclass
class AssignStmt(Stmt):
    target: Expr  # a designator: NameRef / FieldRef / DerefExpr / IndexExpr
    value: Expr


@dataclass
class CallStmt(Stmt):
    call: CallExpr


@dataclass
class EvalStmt(Stmt):
    """``EVAL e`` — evaluate for effect, discard the value."""

    expr: Expr


@dataclass
class IfStmt(Stmt):
    # arms: list of (condition, body); final else body may be empty
    arms: List[Tuple[Expr, List[Stmt]]]
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: List[Stmt] = field(default_factory=list)


@dataclass
class RepeatStmt(Stmt):
    body: List[Stmt]
    until: Expr = None  # type: ignore[assignment]


@dataclass
class LoopStmt(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ExitStmt(Stmt):
    pass


@dataclass
class ForStmt(Stmt):
    var: str
    lo: Expr
    hi: Expr
    by: Optional[Expr]
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class WithBinding(Node):
    """One ``name = expr`` binding of a WITH statement.

    When the bound expression is a designator, the binding aliases the
    *location* (Modula-3 semantics) — this is the second address-taking
    construct tracked by AddressTaken.  ``binds_location`` is set by the
    checker.
    """

    name: str
    expr: Expr
    binds_location: bool = field(default=False, init=False)


@dataclass
class WithStmt(Stmt):
    bindings: List[WithBinding]
    body: List[Stmt] = field(default_factory=list)


@dataclass
class CaseArm(Node):
    labels: List[Expr]  # integer/char constant expressions
    body: List[Stmt]


@dataclass
class CaseStmt(Stmt):
    selector: Expr
    arms: List[CaseArm]
    else_body: List[Stmt] = field(default_factory=list)


# ----------------------------------------------------------------------
# Declarations


@dataclass
class ParamDecl(Node):
    name: str
    mode: str  # 'value' | 'var' | 'readonly'
    type_expr: TypeExpr


@dataclass
class VarDecl(Node):
    names: List[str]
    type_expr: TypeExpr
    init: Optional[Expr] = None


@dataclass
class ConstDecl(Node):
    name: str
    value: Expr


@dataclass
class TypeDecl(Node):
    name: str
    type_expr: TypeExpr


@dataclass
class ProcDecl(Node):
    name: str
    params: List[ParamDecl]
    result: Optional[TypeExpr]
    local_vars: List[VarDecl] = field(default_factory=list)
    local_consts: List[ConstDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Module(Node):
    name: str
    type_decls: List[TypeDecl] = field(default_factory=list)
    const_decls: List[ConstDecl] = field(default_factory=list)
    var_decls: List[VarDecl] = field(default_factory=list)
    proc_decls: List[ProcDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)


def is_designator(expr: Expr) -> bool:
    """True if *expr* denotes a location (can be assigned / passed VAR)."""
    return isinstance(expr, (NameRef, FieldRef, DerefExpr, IndexExpr))
