"""Symbols and lexical scopes for the MiniM3 checker.

Each named entity (global/local variable, parameter, constant, procedure,
WITH/FOR binding) gets exactly one :class:`Symbol`, and every ``NameRef``
in the typed AST is annotated with the symbol it denotes.  Later passes
(AddressTaken, SMTypeRefs, lowering) key off these symbol objects, so
symbol identity must be stable — symbols are compared by identity.
"""

from typing import Dict, List, Optional

from repro.lang.errors import SourceLocation, TypeCheckError
from repro.lang.types import Type


class Symbol:
    """One named program entity.

    ``kind`` is one of:

    * ``'var'`` — global or local variable;
    * ``'param'`` — formal parameter (``mode`` distinguishes VAR/READONLY);
    * ``'const'`` — named constant (``const_value`` holds the literal);
    * ``'proc'`` — procedure;
    * ``'with'`` — a WITH binding (``binds_location`` set if it aliases a
      designator — the address-taking case);
    * ``'for'`` — a FOR loop index.
    """

    _next_id = 0

    def __init__(
        self,
        name: str,
        kind: str,
        type: Optional[Type],
        loc: SourceLocation,
        mode: str = "value",
        is_global: bool = False,
        proc_name: Optional[str] = None,
    ):
        assert kind in ("var", "param", "const", "proc", "with", "for")
        self.name = name
        self.kind = kind
        self.type = type
        self.loc = loc
        self.mode = mode  # parameter passing mode, for kind == 'param'
        self.is_global = is_global
        self.proc_name = proc_name  # owning procedure, None for globals
        self.const_value: Optional[object] = None
        self.binds_location = False  # WITH bindings that alias a designator
        self.uid = Symbol._next_id
        Symbol._next_id += 1

    @property
    def by_reference(self) -> bool:
        return self.kind == "param" and self.mode == "var"

    def __repr__(self) -> str:
        where = "global" if self.is_global else (self.proc_name or "?")
        return "<Symbol {} {} in {}>".format(self.kind, self.name, where)


class Scope:
    """A single lexical scope; scopes form a parent chain."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._symbols: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        if symbol.name in self._symbols:
            raise TypeCheckError(
                "duplicate declaration of '{}'".format(symbol.name), symbol.loc
            )
        self._symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            symbol = scope._symbols.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_local(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def symbols(self) -> List[Symbol]:
        return list(self._symbols.values())
