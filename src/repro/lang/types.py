"""The MiniM3 type system.

TBAA is driven entirely by the declared-type structure of the program, so
this module is the heart of the substrate.  It models:

* primitive types (``INTEGER``, ``BOOLEAN``, ``CHAR``, ``TEXT``) — TEXT is
  an immutable reference type whose payload is opaque to the program;
* ``REF T`` with optional brands, observing *structural* equivalence as in
  Modula-3 (two textually separate ``REF INTEGER`` declarations denote the
  same type; brands make otherwise-equal types distinct);
* ``RECORD`` and ``ARRAY`` types (open arrays have ``length is None`` and
  are accessed through a dope vector at run time);
* ``OBJECT`` types with single inheritance rooted at ``ROOT``.  Object
  declarations are *generative* (each declaration is a new type), which
  coincides with Modula-3's structural rules for the programs we accept and
  gives the subtype hierarchy that ``Subtypes(T)`` (Section 2.1) consumes.

Reference-like types (objects, REFs, TEXT, NIL) are what the paper calls
"pointer types"; :func:`is_pointer_type` is the predicate Step 1 of
SMTypeRefs (Figure 2) iterates over.
"""

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class Type:
    """Base class of all MiniM3 types.

    Types are compared by identity; the :class:`TypeTable` interns
    structural types so identity coincides with structural equivalence.
    """

    name: str = "<type>"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return "<{} {}>".format(type(self).__name__, self.name)


class PrimitiveType(Type):
    """INTEGER, BOOLEAN, CHAR — value types, never aliased."""

    def __init__(self, name: str):
        self.name = name


class NilType(Type):
    """The type of the literal ``NIL``; subtype of every reference type."""

    name = "NULL"


class TextType(Type):
    """``TEXT``: immutable character strings (a reference type)."""

    name = "TEXT"


class RefType(Type):
    """``REF T`` (traced reference to *T*), optionally ``BRANDED``.

    Brands matter in Section 4 of the paper: unavailable code cannot
    reconstruct a branded type, so open-world TBAA may keep branded types
    out of the conservative merge.
    """

    def __init__(self, target: Type, brand: Optional[str] = None):
        self.target = target
        self.brand = brand
        prefix = 'BRANDED "{}" '.format(brand) if brand else ""
        self.name = "{}REF {}".format(prefix, target.name)


class RecordType(Type):
    """``RECORD f: T; ... END`` — a value type with named fields."""

    def __init__(self, fields: Sequence[Tuple[str, Type]]):
        self.fields: List[Tuple[str, Type]] = list(fields)
        self._index = {fname: (i, ftype) for i, (fname, ftype) in enumerate(self.fields)}
        self.name = "RECORD {} END".format(
            "; ".join("{}: {}".format(f, t.name) for f, t in self.fields)
        )

    def field_type(self, fname: str) -> Optional[Type]:
        entry = self._index.get(fname)
        return entry[1] if entry else None

    def field_index(self, fname: str) -> Optional[int]:
        entry = self._index.get(fname)
        return entry[0] if entry else None


class ArrayType(Type):
    """``ARRAY [0..n-1] OF T`` (fixed) or ``ARRAY OF T`` (open).

    Open arrays (``length is None``) exist only behind a REF and are
    represented at run time by a dope vector (data pointer + element
    count); indexing one performs an *implicit* heap load of the dope
    vector — the paper's "Encapsulation" category in Figure 10.
    """

    def __init__(self, element: Type, length: Optional[int] = None):
        self.element = element
        self.length = length
        if length is None:
            self.name = "ARRAY OF {}".format(element.name)
        else:
            self.name = "ARRAY [0..{}] OF {}".format(length - 1, element.name)

    @property
    def is_open(self) -> bool:
        return self.length is None


class Method:
    """A method slot of an object type: name, signature, default impl."""

    def __init__(
        self,
        name: str,
        params: Sequence["Param"],
        result: Optional[Type],
        default_impl: Optional[str],
    ):
        self.name = name
        self.params = list(params)
        self.result = result
        self.default_impl = default_impl  # procedure name or None

    def __repr__(self) -> str:
        return "<Method {}>".format(self.name)


class ObjectType(Type):
    """An ``OBJECT`` type: supertype, own fields, own/overridden methods."""

    def __init__(
        self,
        name: str,
        supertype: Optional["ObjectType"],
        fields: Sequence[Tuple[str, Type]],
        methods: Sequence[Method] = (),
        overrides: Sequence[Tuple[str, str]] = (),
        brand: Optional[str] = None,
    ):
        self.name = name
        self.supertype = supertype
        self.own_fields: List[Tuple[str, Type]] = list(fields)
        self.own_methods: List[Method] = list(methods)
        self.overrides: List[Tuple[str, str]] = list(overrides)
        self.brand = brand

    # -- fields ---------------------------------------------------------

    def all_fields(self) -> List[Tuple[str, Type]]:
        """Fields in layout order: inherited first, then own."""
        inherited = self.supertype.all_fields() if self.supertype else []
        return inherited + self.own_fields

    def field_type(self, fname: str) -> Optional[Type]:
        for name, ftype in self.own_fields:
            if name == fname:
                return ftype
        if self.supertype:
            return self.supertype.field_type(fname)
        return None

    def field_index(self, fname: str) -> Optional[int]:
        for i, (name, _) in enumerate(self.all_fields()):
            if name == fname:
                return i
        return None

    def field_owner(self, fname: str) -> Optional["ObjectType"]:
        """The most-derived ancestor (or self) declaring field *fname*."""
        for name, _ in self.own_fields:
            if name == fname:
                return self
        if self.supertype:
            return self.supertype.field_owner(fname)
        return None

    # -- methods --------------------------------------------------------

    def method_slots(self) -> List[Method]:
        """Method slots in dispatch order: inherited first, then own."""
        inherited = self.supertype.method_slots() if self.supertype else []
        return inherited + self.own_methods

    def find_method(self, mname: str) -> Optional[Method]:
        for method in self.own_methods:
            if method.name == mname:
                return method
        if self.supertype:
            return self.supertype.find_method(mname)
        return None

    def method_impl(self, mname: str) -> Optional[str]:
        """Resolve the implementing procedure for *mname* at this type."""
        for name, proc in self.overrides:
            if name == mname:
                return proc
        for method in self.own_methods:
            if method.name == mname:
                return method.default_impl
        if self.supertype:
            return self.supertype.method_impl(mname)
        return None

    # -- subtyping ------------------------------------------------------

    def ancestors(self) -> List["ObjectType"]:
        """self, super, super-super, ... up to ROOT."""
        chain: List[ObjectType] = []
        node: Optional[ObjectType] = self
        while node is not None:
            chain.append(node)
            node = node.supertype
        return chain


class Param:
    """A formal parameter: mode is 'value', 'var' or 'readonly'.

    ``var`` parameters are pass-by-reference — one of the two
    address-taking constructs TBAA's ``AddressTaken`` predicate tracks.
    """

    def __init__(self, name: str, mode: str, type: Type):
        assert mode in ("value", "var", "readonly")
        self.name = name
        self.mode = mode
        self.type = type

    @property
    def by_reference(self) -> bool:
        return self.mode == "var"

    def __repr__(self) -> str:
        prefix = {"value": "", "var": "VAR ", "readonly": "READONLY "}[self.mode]
        return "{}{}: {}".format(prefix, self.name, self.type.name)


class ProcType(Type):
    """The type of a procedure (used for signatures, not first-class)."""

    def __init__(self, params: Sequence[Param], result: Optional[Type]):
        self.params = list(params)
        self.result = result
        sig = "; ".join(repr(p) for p in self.params)
        res = ": {}".format(result.name) if result else ""
        self.name = "PROCEDURE ({}){}".format(sig, res)


# ----------------------------------------------------------------------
# Singletons for primitives

INTEGER = PrimitiveType("INTEGER")
BOOLEAN = PrimitiveType("BOOLEAN")
CHAR = PrimitiveType("CHAR")
TEXT = TextType()
NIL = NilType()
ROOT = ObjectType("ROOT", None, [])


def is_pointer_type(t: Type) -> bool:
    """True for types whose values are references into the heap.

    These are the "pointer types" Step 1 of SMTypeRefs ranges over.
    """
    return isinstance(t, (RefType, ObjectType, TextType, NilType))


def is_reference_compatible(src: Type, dst: Type) -> bool:
    """Modula-3 assignability between reference types.

    ``src`` is assignable to ``dst`` iff they are the same type, ``src``
    is NIL, or they are object types related by subtyping in *either*
    direction (downward assignments carry an implicit runtime check,
    which the interpreter performs — type safety is preserved, which is
    the property TBAA's soundness rests on).
    """
    if src is dst:
        return True
    if isinstance(src, NilType) and is_pointer_type(dst):
        return True
    if isinstance(src, ObjectType) and isinstance(dst, ObjectType):
        return is_subtype(src, dst) or is_subtype(dst, src)
    return False


def is_subtype(sub: Type, sup: Type) -> bool:
    """``sub <: sup`` — reflexive; NIL below all references; objects by
    their inheritance chain (every object type is below ROOT)."""
    if sub is sup:
        return True
    if isinstance(sub, NilType) and is_pointer_type(sup):
        return True
    if isinstance(sub, ObjectType) and isinstance(sup, ObjectType):
        return sup in sub.ancestors()
    return False


class TypeTable:
    """Interning table establishing structural equivalence.

    REF, ARRAY and RECORD types are structural in Modula-3: the table
    canonicalises them by a structural key so that identity comparison is
    sound.  Object types are generative and never interned.
    """

    def __init__(self) -> None:
        self._interned: Dict[tuple, Type] = {}
        # All named/generated types in declaration order; the analyses
        # iterate this to enumerate the program's pointer types.
        self.all_types: List[Type] = [INTEGER, BOOLEAN, CHAR, TEXT, ROOT]

    def _intern(self, key: tuple, make: "type(lambda: None)") -> Type:
        existing = self._interned.get(key)
        if existing is not None:
            return existing
        fresh = make()
        self._interned[key] = fresh
        self.all_types.append(fresh)
        return fresh

    def ref(self, target: Type, brand: Optional[str] = None) -> RefType:
        key = ("ref", id(target), brand)
        return self._intern(key, lambda: RefType(target, brand))  # type: ignore[return-value]

    def array(self, element: Type, length: Optional[int] = None) -> ArrayType:
        key = ("array", id(element), length)
        return self._intern(key, lambda: ArrayType(element, length))  # type: ignore[return-value]

    def record(self, fields: Sequence[Tuple[str, Type]]) -> RecordType:
        key = ("record",) + tuple((f, id(t)) for f, t in fields)
        return self._intern(key, lambda: RecordType(fields))  # type: ignore[return-value]

    def register_object(self, obj: ObjectType) -> ObjectType:
        self.all_types.append(obj)
        return obj

    def pointer_types(self) -> List[Type]:
        """All reference-like types declared in the program."""
        return [t for t in self.all_types if is_pointer_type(t)]

    def object_types(self) -> List[ObjectType]:
        return [t for t in self.all_types if isinstance(t, ObjectType)]


def subtypes_of(t: Type, table: TypeTable) -> List[Type]:
    """``Subtypes(T)`` from Section 2.1: the set of subtypes of T, incl. T.

    For object types this is the set of declared object types at or below
    T in the hierarchy; for other reference types it is {T} (plus nothing
    else — NIL has no declared variables in practice but is handled by the
    analyses' NIL special-casing).
    """
    if isinstance(t, ObjectType):
        return [o for o in table.object_types() if is_subtype(o, t)]
    return [t]
