"""Token kinds and keyword table for the MiniM3 lexer."""

import enum
from dataclasses import dataclass
from typing import Union

from repro.lang.errors import SourceLocation


class TokenKind(enum.Enum):
    """All lexical token categories of MiniM3."""

    # Literals / identifiers
    IDENT = "identifier"
    INT = "integer literal"
    CHAR = "char literal"
    TEXT = "text literal"

    # Punctuation and operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOT = "."
    DOTDOT = ".."
    CARET = "^"
    ASSIGN = ":="
    EQ = "="
    NE = "#"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    AMP = "&"
    BAR = "|"
    ARROW = "=>"

    # Keywords
    KW_MODULE = "MODULE"
    KW_TYPE = "TYPE"
    KW_CONST = "CONST"
    KW_VAR = "VAR"
    KW_PROCEDURE = "PROCEDURE"
    KW_BEGIN = "BEGIN"
    KW_END = "END"
    KW_IF = "IF"
    KW_THEN = "THEN"
    KW_ELSIF = "ELSIF"
    KW_ELSE = "ELSE"
    KW_WHILE = "WHILE"
    KW_DO = "DO"
    KW_FOR = "FOR"
    KW_TO = "TO"
    KW_BY = "BY"
    KW_REPEAT = "REPEAT"
    KW_UNTIL = "UNTIL"
    KW_LOOP = "LOOP"
    KW_EXIT = "EXIT"
    KW_RETURN = "RETURN"
    KW_WITH = "WITH"
    KW_CASE = "CASE"
    KW_OF = "OF"
    KW_RECORD = "RECORD"
    KW_OBJECT = "OBJECT"
    KW_METHODS = "METHODS"
    KW_OVERRIDES = "OVERRIDES"
    KW_REF = "REF"
    KW_ARRAY = "ARRAY"
    KW_BRANDED = "BRANDED"
    KW_READONLY = "READONLY"
    KW_NEW = "NEW"
    KW_NIL = "NIL"
    KW_TRUE = "TRUE"
    KW_FALSE = "FALSE"
    KW_NOT = "NOT"
    KW_AND = "AND"
    KW_OR = "OR"
    KW_DIV = "DIV"
    KW_MOD = "MOD"
    KW_EVAL = "EVAL"
    KW_ROOT = "ROOT"

    EOF = "end of input"


KEYWORDS = {
    kind.value: kind
    for kind in TokenKind
    if kind.name.startswith("KW_")
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` carries the decoded payload: ``int`` for INT, ``str`` for
    IDENT/TEXT, a one-character ``str`` for CHAR, and the spelling for
    everything else.
    """

    kind: TokenKind
    value: Union[str, int]
    loc: SourceLocation

    def __str__(self) -> str:
        if self.kind in (TokenKind.IDENT, TokenKind.INT):
            return "{}".format(self.value)
        if self.kind is TokenKind.TEXT:
            return '"{}"'.format(self.value)
        return self.kind.value
