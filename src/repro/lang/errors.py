"""Source locations and compile-time error types for MiniM3."""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position in a named source unit.

    Lines and columns are 1-based; ``column`` points at the first character
    of the offending token.
    """

    unit: str
    line: int
    column: int

    def __str__(self) -> str:
        return "{}:{}:{}".format(self.unit, self.line, self.column)


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


class CompileError(Exception):
    """Base class for all MiniM3 front-end errors."""

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.loc = loc or UNKNOWN_LOCATION
        self.message = message
        super().__init__("{}: {}".format(self.loc, message))


class LexError(CompileError):
    """Raised by the lexer on malformed input (bad char, unterminated text)."""


class ParseError(CompileError):
    """Raised by the parser on a syntax error."""


class TypeCheckError(CompileError):
    """Raised by the type checker on a semantic error.

    MiniM3 is a *type-safe* language: the soundness of TBAA (Section 2 of
    the paper) rests on the checker rejecting any program that could make a
    reference hold a value outside ``Subtypes`` of its declared type.
    """
