"""Source locations and compile-time error types for MiniM3."""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A (line, column) position in a named source unit.

    Lines and columns are 1-based; ``column`` points at the first character
    of the offending token.
    """

    unit: str
    line: int
    column: int

    def __str__(self) -> str:
        return "{}:{}:{}".format(self.unit, self.line, self.column)


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


class CompileError(Exception):
    """Base class for all MiniM3 front-end errors."""

    def __init__(self, message: str, loc: Optional[SourceLocation] = None):
        self.loc = loc or UNKNOWN_LOCATION
        self.message = message
        super().__init__("{}: {}".format(self.loc, message))

    def render(self, source_text: str) -> str:
        """Multi-line rendering: the message, the offending source line,
        and a caret under the reported column.

        Falls back to the plain one-line message when the location does
        not point into *source_text* (unknown location, stale line
        numbers after editing, column past the end of the line).
        """
        header = str(self)
        if self.loc is UNKNOWN_LOCATION or self.loc.line < 1:
            return header
        lines = source_text.splitlines()
        if self.loc.line > len(lines):
            return header
        line = lines[self.loc.line - 1]
        column = self.loc.column
        if column < 1 or column > len(line) + 1:
            return header
        # Tabs in the prefix must stay tabs so the caret lines up.
        pad = "".join(ch if ch == "\t" else " " for ch in line[: column - 1])
        return "{}\n  {}\n  {}^".format(header, line, pad)


class ResourceLimitError(Exception):
    """A guarded operation exceeded a resource budget.

    Raised instead of hanging (wall-clock deadlines), instead of running
    forever (interpreter step budgets) and instead of ``RecursionError``
    (parser nesting caps).  ``kind`` names the exhausted resource:
    ``'wall-clock'``, ``'steps'`` or ``'recursion'``.

    Deliberately *not* a :class:`CompileError`: resource exhaustion is a
    property of the run, not of the program text, and batch drivers
    (``repro fuzz``, ``repro tables``) classify the two differently.
    """

    def __init__(self, message: str, kind: str = "limit"):
        self.kind = kind
        super().__init__(message)


class LexError(CompileError):
    """Raised by the lexer on malformed input (bad char, unterminated text)."""


class ParseError(CompileError):
    """Raised by the parser on a syntax error."""


class TypeCheckError(CompileError):
    """Raised by the type checker on a semantic error.

    MiniM3 is a *type-safe* language: the soundness of TBAA (Section 2 of
    the paper) rests on the checker rejecting any program that could make a
    reference hold a value outside ``Subtypes`` of its declared type.
    """
