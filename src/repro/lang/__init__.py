"""MiniM3: a type-safe Modula-3 subset, built from scratch.

The paper analyses Modula-3 programs.  No Modula-3 front end is available
here, so this package implements one for **MiniM3**, a subset chosen to
contain exactly the features TBAA cares about:

* ``OBJECT`` types with single inheritance, fields, methods and
  ``OVERRIDES`` (the subtype hierarchy that drives ``Subtypes(T)``);
* ``REF`` types, ``BRANDED`` refs and objects (Section 4 of the paper uses
  brands to limit open-world merging);
* ``RECORD`` types, fixed arrays and **open arrays** — open-array accesses
  go through a dope vector, which is the paper's dominant "Encapsulation"
  source of residual redundant loads (Figure 10);
* the three access-path constructors of Table 1: qualification ``p.f``,
  dereference ``p^`` and subscript ``p[i]``;
* the two address-taking constructs of Modula-3: ``VAR`` (pass-by-reference)
  parameters and the ``WITH`` statement.

Pipeline: :func:`parse_module` produces an AST, :func:`check_module`
resolves names/types and returns a :class:`~repro.lang.typecheck.CheckedModule`
that the IR lowering (:mod:`repro.ir.lowering`) consumes.
"""

from repro.lang.errors import (
    CompileError,
    LexError,
    ParseError,
    ResourceLimitError,
    SourceLocation,
    TypeCheckError,
)
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_module
from repro.lang.typecheck import TypeChecker, check_module, CheckedModule
from repro.lang import ast_nodes as ast
from repro.lang import types as m3types

__all__ = [
    "CompileError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "ResourceLimitError",
    "SourceLocation",
    "Lexer",
    "tokenize",
    "Parser",
    "parse_module",
    "TypeChecker",
    "check_module",
    "CheckedModule",
    "ast",
    "m3types",
]
