"""Generic traversal helpers over the checked AST.

The alias analyses are *source-level* (they consume declared types,
assignments and address-taking constructs), so they walk the typed AST
rather than the IR.  This module centralises the traversal so each
analysis only writes its pattern match.
"""

from typing import Iterator, List, Tuple

from repro.lang import ast_nodes as ast


def walk_stmts(stmts: List[ast.Stmt]) -> Iterator[ast.Stmt]:
    """Yield every statement in *stmts*, recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, ast.IfStmt):
            for _, body in stmt.arms:
                yield from walk_stmts(body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, ast.WhileStmt):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, (ast.RepeatStmt, ast.LoopStmt, ast.ForStmt, ast.WithStmt)):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, ast.CaseStmt):
            for arm in stmt.arms:
                yield from walk_stmts(arm.body)
            yield from walk_stmts(stmt.else_body)


def stmt_exprs(stmt: ast.Stmt) -> Iterator[ast.Expr]:
    """Yield the expressions *directly* contained in one statement."""
    if isinstance(stmt, ast.AssignStmt):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ast.CallStmt):
        yield stmt.call
    elif isinstance(stmt, ast.EvalStmt):
        yield stmt.expr
    elif isinstance(stmt, ast.IfStmt):
        for cond, _ in stmt.arms:
            yield cond
    elif isinstance(stmt, ast.WhileStmt):
        yield stmt.cond
    elif isinstance(stmt, ast.RepeatStmt):
        yield stmt.until
    elif isinstance(stmt, ast.ForStmt):
        yield stmt.lo
        yield stmt.hi
        if stmt.by is not None:
            yield stmt.by
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, ast.WithStmt):
        for binding in stmt.bindings:
            yield binding.expr
    elif isinstance(stmt, ast.CaseStmt):
        yield stmt.selector
        for arm in stmt.arms:
            for label in arm.labels:
                yield label


def walk_exprs(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Yield *expr* and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, ast.FieldRef):
        yield from walk_exprs(expr.obj)
    elif isinstance(expr, ast.DerefExpr):
        yield from walk_exprs(expr.pointer)
    elif isinstance(expr, ast.IndexExpr):
        yield from walk_exprs(expr.array)
        yield from walk_exprs(expr.index)
    elif isinstance(expr, ast.CallExpr):
        # Method callees contribute their receiver; plain NameRef callees
        # are not value expressions.
        if isinstance(expr.callee, ast.FieldRef):
            yield from walk_exprs(expr.callee.obj)
        for arg in expr.args:
            yield from walk_exprs(arg)
    elif isinstance(expr, ast.NewExpr):
        if expr.size is not None:
            yield from walk_exprs(expr.size)
        for _, init in expr.field_inits:
            yield from walk_exprs(init)
    elif isinstance(expr, ast.BinaryExpr):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, ast.UnaryExpr):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, (ast.IsTypeExpr, ast.NarrowExpr)):
        yield from walk_exprs(expr.operand)


def all_exprs(stmts: List[ast.Stmt]) -> Iterator[Tuple[ast.Stmt, ast.Expr]]:
    """Yield (enclosing statement, expression) for every expression."""
    for stmt in walk_stmts(stmts):
        for top in stmt_exprs(stmt):
            for expr in walk_exprs(top):
                yield stmt, expr
