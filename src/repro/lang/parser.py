"""Recursive-descent parser for MiniM3.

Produces the AST of :mod:`repro.lang.ast_nodes`.  Operator precedence
follows Modula-3 (OR < AND < NOT < relations < additive < multiplicative <
unary < postfix).  ``ISTYPE`` and ``NARROW`` are recognised syntactically
(their second argument is a type name, not an expression).
"""

import sys
from typing import List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError, ResourceLimitError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind as TK

#: Nesting budget shared by expressions, type expressions and statements.
#: Each syntactic nesting level consumes a handful of ticks (an
#: expression passes through `_expr`, `_not_expr` and `_unary_expr` on
#: its way down), so this bounds real nesting at several hundred levels —
#: far beyond any legitimate program, and reached long before the Python
#: stack would overflow (see :func:`parse_module`).
MAX_NESTING_DEPTH = 1000

# Tokens that terminate a statement list.
_BLOCK_ENDERS = (TK.KW_END, TK.KW_ELSE, TK.KW_ELSIF, TK.KW_UNTIL, TK.BAR, TK.EOF)

_REL_OPS = {TK.EQ: "=", TK.NE: "#", TK.LT: "<", TK.LE: "<=", TK.GT: ">", TK.GE: ">="}
_ADD_OPS = {TK.PLUS: "+", TK.MINUS: "-", TK.AMP: "&"}
_MUL_OPS = {TK.STAR: "*", TK.SLASH: "/", TK.KW_DIV: "DIV", TK.KW_MOD: "MOD"}


class Parser:
    """One-token-lookahead parser over a token list."""

    def __init__(self, tokens: List[Token], max_depth: int = MAX_NESTING_DEPTH):
        self._tokens = tokens
        self._pos = 0
        self._depth = 0
        self._max_depth = max_depth

    def _enter(self, what: str) -> None:
        self._depth += 1
        if self._depth > self._max_depth:
            raise ResourceLimitError(
                "{}: {} nesting exceeds the parser depth cap ({})".format(
                    self._peek().loc, what, self._max_depth
                ),
                kind="recursion",
            )

    def _leave(self) -> None:
        self._depth -= 1

    # ------------------------------------------------------------------
    # Token plumbing

    def _peek(self, ahead: int = 0) -> Token:
        i = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[i]

    def _at(self, *kinds: TK) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TK.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: TK) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise ParseError(
                "expected {} but found {}".format(kind.value, tok), tok.loc
            )
        return self._advance()

    def _accept(self, kind: TK) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    def _ident(self) -> str:
        return str(self._expect(TK.IDENT).value)

    # ------------------------------------------------------------------
    # Module and declarations

    def parse_module(self) -> ast.Module:
        loc = self._expect(TK.KW_MODULE).loc
        name = self._ident()
        self._expect(TK.SEMI)
        module = ast.Module(loc, name)
        while not self._at(TK.KW_BEGIN, TK.KW_END, TK.EOF):
            self._parse_decl_section(module)
        if self._accept(TK.KW_BEGIN):
            module.body = self._stmt_list()
        self._expect(TK.KW_END)
        end_name = self._ident()
        if end_name != name:
            raise ParseError(
                "module is named {} but END says {}".format(name, end_name),
                self._peek().loc,
            )
        self._expect(TK.DOT)
        return module

    def _parse_decl_section(self, module: ast.Module) -> None:
        tok = self._peek()
        if tok.kind is TK.KW_TYPE:
            self._advance()
            while self._at(TK.IDENT):
                module.type_decls.append(self._type_decl())
        elif tok.kind is TK.KW_CONST:
            self._advance()
            while self._at(TK.IDENT):
                module.const_decls.append(self._const_decl())
        elif tok.kind is TK.KW_VAR:
            self._advance()
            while self._at(TK.IDENT):
                module.var_decls.append(self._var_decl())
        elif tok.kind is TK.KW_PROCEDURE:
            module.proc_decls.append(self._proc_decl())
        else:
            raise ParseError("expected a declaration, found {}".format(tok), tok.loc)

    def _type_decl(self) -> ast.TypeDecl:
        loc = self._peek().loc
        name = self._ident()
        self._expect(TK.EQ)
        texpr = self._type_expr()
        self._expect(TK.SEMI)
        return ast.TypeDecl(loc, name, texpr)

    def _const_decl(self) -> ast.ConstDecl:
        loc = self._peek().loc
        name = self._ident()
        self._expect(TK.EQ)
        value = self._expr()
        self._expect(TK.SEMI)
        return ast.ConstDecl(loc, name, value)

    def _var_decl(self) -> ast.VarDecl:
        loc = self._peek().loc
        names = [self._ident()]
        while self._accept(TK.COMMA):
            names.append(self._ident())
        self._expect(TK.COLON)
        texpr = self._type_expr()
        init = self._expr() if self._accept(TK.ASSIGN) else None
        self._expect(TK.SEMI)
        return ast.VarDecl(loc, names, texpr, init)

    def _proc_decl(self) -> ast.ProcDecl:
        loc = self._expect(TK.KW_PROCEDURE).loc
        name = self._ident()
        params, result = self._signature()
        self._expect(TK.EQ)
        proc = ast.ProcDecl(loc, name, params, result)
        while self._at(TK.KW_VAR, TK.KW_CONST):
            if self._accept(TK.KW_VAR):
                while self._at(TK.IDENT):
                    proc.local_vars.append(self._var_decl())
            else:
                self._advance()
                while self._at(TK.IDENT):
                    proc.local_consts.append(self._const_decl())
        self._expect(TK.KW_BEGIN)
        proc.body = self._stmt_list()
        self._expect(TK.KW_END)
        end_name = self._ident()
        if end_name != name:
            raise ParseError(
                "procedure is named {} but END says {}".format(name, end_name),
                self._peek().loc,
            )
        self._expect(TK.SEMI)
        return proc

    def _signature(self) -> Tuple[List[ast.ParamDecl], Optional[ast.TypeExpr]]:
        self._expect(TK.LPAREN)
        params: List[ast.ParamDecl] = []
        while not self._at(TK.RPAREN):
            params.extend(self._param_group())
            if not self._accept(TK.SEMI):
                break
        self._expect(TK.RPAREN)
        result = self._type_expr() if self._accept(TK.COLON) else None
        return params, result

    def _param_group(self) -> List[ast.ParamDecl]:
        loc = self._peek().loc
        mode = "value"
        if self._accept(TK.KW_VAR):
            mode = "var"
        elif self._accept(TK.KW_READONLY):
            mode = "readonly"
        names = [self._ident()]
        while self._accept(TK.COMMA):
            names.append(self._ident())
        self._expect(TK.COLON)
        texpr = self._type_expr()
        return [ast.ParamDecl(loc, n, mode, texpr) for n in names]

    # ------------------------------------------------------------------
    # Type expressions

    def _type_expr(self) -> ast.TypeExpr:
        self._enter("type expression")
        try:
            return self._type_expr_inner()
        finally:
            self._leave()

    def _type_expr_inner(self) -> ast.TypeExpr:
        tok = self._peek()
        if tok.kind is TK.KW_BRANDED:
            self._advance()
            brand_tok = self._expect(TK.TEXT)
            inner = self._type_expr()
            if isinstance(inner, ast.RefTypeExpr):
                inner.brand = str(brand_tok.value)
                return inner
            if isinstance(inner, ast.ObjectTypeExpr):
                inner.brand = str(brand_tok.value)
                return inner
            raise ParseError("BRANDED applies only to REF and OBJECT types", tok.loc)
        if tok.kind is TK.KW_REF:
            self._advance()
            return ast.RefTypeExpr(tok.loc, self._type_expr())
        if tok.kind is TK.KW_ARRAY:
            return self._array_type()
        if tok.kind is TK.KW_RECORD:
            return self._record_type()
        if tok.kind is TK.KW_ROOT:
            # Plain `ROOT` is the top object type; `ROOT OBJECT ... END`
            # (or with a brand) declares a new immediate subtype of ROOT.
            if self._peek(1).kind in (TK.KW_OBJECT, TK.KW_BRANDED):
                return self._object_type(None)
            self._advance()
            return ast.NamedTypeExpr(tok.loc, "ROOT")
        if tok.kind is TK.KW_OBJECT:
            return self._object_type(None)
        if tok.kind is TK.IDENT:
            name = self._ident()
            named = ast.NamedTypeExpr(tok.loc, name)
            # `Super OBJECT ... END` / `Super BRANDED "x" OBJECT ... END`
            if self._at(TK.KW_OBJECT) or (
                self._at(TK.KW_BRANDED) and self._peek(2).kind is TK.KW_OBJECT
            ):
                return self._object_type(named)
            return named
        raise ParseError("expected a type, found {}".format(tok), tok.loc)

    def _array_type(self) -> ast.ArrayTypeExpr:
        loc = self._expect(TK.KW_ARRAY).loc
        length: Optional[int] = None
        if self._accept(TK.LBRACKET):
            lo = self._expect(TK.INT)
            self._expect(TK.DOTDOT)
            hi = self._expect(TK.INT)
            self._expect(TK.RBRACKET)
            if int(lo.value) != 0:
                raise ParseError("MiniM3 arrays are zero-based", lo.loc)
            length = int(hi.value) + 1
        self._expect(TK.KW_OF)
        return ast.ArrayTypeExpr(loc, self._type_expr(), length)

    def _field_list(self) -> List[Tuple[str, ast.TypeExpr]]:
        fields: List[Tuple[str, ast.TypeExpr]] = []
        while self._at(TK.IDENT):
            names = [self._ident()]
            while self._accept(TK.COMMA):
                names.append(self._ident())
            self._expect(TK.COLON)
            texpr = self._type_expr()
            fields.extend((n, texpr) for n in names)
            if not self._accept(TK.SEMI):
                break
        return fields

    def _record_type(self) -> ast.RecordTypeExpr:
        loc = self._expect(TK.KW_RECORD).loc
        fields = self._field_list()
        self._expect(TK.KW_END)
        return ast.RecordTypeExpr(loc, fields)

    def _object_type(self, supertype: Optional[ast.TypeExpr]) -> ast.ObjectTypeExpr:
        loc = self._peek().loc
        if self._accept(TK.KW_ROOT):
            supertype = None
        brand: Optional[str] = None
        if self._accept(TK.KW_BRANDED):
            brand = str(self._expect(TK.TEXT).value)
        self._expect(TK.KW_OBJECT)
        fields = self._field_list()
        methods: List[ast.MethodDeclExpr] = []
        overrides: List[Tuple[str, str]] = []
        if self._accept(TK.KW_METHODS):
            methods = self._method_list()
        if self._accept(TK.KW_OVERRIDES):
            overrides = self._override_list()
        self._expect(TK.KW_END)
        return ast.ObjectTypeExpr(loc, supertype, fields, methods, overrides, brand)

    def _method_list(self) -> List[ast.MethodDeclExpr]:
        methods: List[ast.MethodDeclExpr] = []
        while self._at(TK.IDENT):
            loc = self._peek().loc
            name = self._ident()
            params, result = self._signature()
            impl = None
            if self._accept(TK.ASSIGN):
                impl = self._ident()
            methods.append(ast.MethodDeclExpr(loc, name, params, result, impl))
            if not self._accept(TK.SEMI):
                break
        return methods

    def _override_list(self) -> List[Tuple[str, str]]:
        overrides: List[Tuple[str, str]] = []
        while self._at(TK.IDENT):
            name = self._ident()
            self._expect(TK.ASSIGN)
            overrides.append((name, self._ident()))
            if not self._accept(TK.SEMI):
                break
        return overrides

    # ------------------------------------------------------------------
    # Statements

    def _stmt_list(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        while not self._at(*_BLOCK_ENDERS):
            stmts.append(self._stmt())
            if not self._accept(TK.SEMI) and not self._at(*_BLOCK_ENDERS):
                raise ParseError(
                    "expected ';' after statement, found {}".format(self._peek()),
                    self._peek().loc,
                )
        return stmts

    def _stmt(self) -> ast.Stmt:
        self._enter("statement")
        try:
            return self._stmt_inner()
        finally:
            self._leave()

    def _stmt_inner(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TK.KW_IF:
            return self._if_stmt()
        if tok.kind is TK.KW_WHILE:
            return self._while_stmt()
        if tok.kind is TK.KW_REPEAT:
            return self._repeat_stmt()
        if tok.kind is TK.KW_LOOP:
            return self._loop_stmt()
        if tok.kind is TK.KW_FOR:
            return self._for_stmt()
        if tok.kind is TK.KW_EXIT:
            self._advance()
            return ast.ExitStmt(tok.loc)
        if tok.kind is TK.KW_RETURN:
            self._advance()
            value = None if self._at(TK.SEMI, *_BLOCK_ENDERS) else self._expr()
            return ast.ReturnStmt(tok.loc, value)
        if tok.kind is TK.KW_WITH:
            return self._with_stmt()
        if tok.kind is TK.KW_CASE:
            return self._case_stmt()
        if tok.kind is TK.KW_EVAL:
            self._advance()
            return ast.EvalStmt(tok.loc, self._expr())
        # Assignment or call: both start with a designator expression.
        target = self._expr()
        if self._accept(TK.ASSIGN):
            value = self._expr()
            if not ast.is_designator(target):
                raise ParseError("left side of := is not a designator", tok.loc)
            return ast.AssignStmt(tok.loc, target, value)
        if isinstance(target, ast.CallExpr):
            return ast.CallStmt(tok.loc, target)
        raise ParseError("expression is not a statement", tok.loc)

    def _if_stmt(self) -> ast.IfStmt:
        loc = self._expect(TK.KW_IF).loc
        arms: List[Tuple[ast.Expr, List[ast.Stmt]]] = []
        cond = self._expr()
        self._expect(TK.KW_THEN)
        arms.append((cond, self._stmt_list()))
        while self._accept(TK.KW_ELSIF):
            cond = self._expr()
            self._expect(TK.KW_THEN)
            arms.append((cond, self._stmt_list()))
        else_body: List[ast.Stmt] = []
        if self._accept(TK.KW_ELSE):
            else_body = self._stmt_list()
        self._expect(TK.KW_END)
        return ast.IfStmt(loc, arms, else_body)

    def _while_stmt(self) -> ast.WhileStmt:
        loc = self._expect(TK.KW_WHILE).loc
        cond = self._expr()
        self._expect(TK.KW_DO)
        body = self._stmt_list()
        self._expect(TK.KW_END)
        return ast.WhileStmt(loc, cond, body)

    def _repeat_stmt(self) -> ast.RepeatStmt:
        loc = self._expect(TK.KW_REPEAT).loc
        body = self._stmt_list()
        self._expect(TK.KW_UNTIL)
        until = self._expr()
        return ast.RepeatStmt(loc, body, until)

    def _loop_stmt(self) -> ast.LoopStmt:
        loc = self._expect(TK.KW_LOOP).loc
        body = self._stmt_list()
        self._expect(TK.KW_END)
        return ast.LoopStmt(loc, body)

    def _for_stmt(self) -> ast.ForStmt:
        loc = self._expect(TK.KW_FOR).loc
        var = self._ident()
        self._expect(TK.ASSIGN)
        lo = self._expr()
        self._expect(TK.KW_TO)
        hi = self._expr()
        by = self._expr() if self._accept(TK.KW_BY) else None
        self._expect(TK.KW_DO)
        body = self._stmt_list()
        self._expect(TK.KW_END)
        return ast.ForStmt(loc, var, lo, hi, by, body)

    def _with_stmt(self) -> ast.WithStmt:
        loc = self._expect(TK.KW_WITH).loc
        bindings = [self._with_binding()]
        while self._accept(TK.COMMA):
            bindings.append(self._with_binding())
        self._expect(TK.KW_DO)
        body = self._stmt_list()
        self._expect(TK.KW_END)
        return ast.WithStmt(loc, bindings, body)

    def _with_binding(self) -> ast.WithBinding:
        loc = self._peek().loc
        name = self._ident()
        self._expect(TK.EQ)
        return ast.WithBinding(loc, name, self._expr())

    def _case_stmt(self) -> ast.CaseStmt:
        loc = self._expect(TK.KW_CASE).loc
        selector = self._expr()
        self._expect(TK.KW_OF)
        arms: List[ast.CaseArm] = []
        self._accept(TK.BAR)  # optional leading bar
        while not self._at(TK.KW_ELSE, TK.KW_END):
            arm_loc = self._peek().loc
            labels = [self._expr()]
            while self._accept(TK.COMMA):
                labels.append(self._expr())
            self._expect(TK.ARROW)
            body = self._stmt_list()
            arms.append(ast.CaseArm(arm_loc, labels, body))
            if not self._accept(TK.BAR):
                break
        else_body: List[ast.Stmt] = []
        if self._accept(TK.KW_ELSE):
            else_body = self._stmt_list()
        self._expect(TK.KW_END)
        return ast.CaseStmt(loc, selector, arms, else_body)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)

    def _expr(self) -> ast.Expr:
        self._enter("expression")
        try:
            return self._or_expr()
        finally:
            self._leave()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._at(TK.KW_OR):
            loc = self._advance().loc
            left = ast.BinaryExpr(loc, "OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._at(TK.KW_AND):
            loc = self._advance().loc
            left = ast.BinaryExpr(loc, "AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        # `NOT NOT NOT ...` recurses without passing through `_expr`,
        # so it burns nesting budget on its own.
        if self._at(TK.KW_NOT):
            self._enter("expression")
            try:
                loc = self._advance().loc
                return ast.UnaryExpr(loc, "NOT", self._not_expr())
            finally:
                self._leave()
        return self._rel_expr()

    def _rel_expr(self) -> ast.Expr:
        left = self._add_expr()
        if self._peek().kind in _REL_OPS:
            tok = self._advance()
            right = self._add_expr()
            return ast.BinaryExpr(tok.loc, _REL_OPS[tok.kind], left, right)
        return left

    def _add_expr(self) -> ast.Expr:
        left = self._mul_expr()
        while self._peek().kind in _ADD_OPS:
            tok = self._advance()
            left = ast.BinaryExpr(tok.loc, _ADD_OPS[tok.kind], left, self._mul_expr())
        return left

    def _mul_expr(self) -> ast.Expr:
        left = self._unary_expr()
        while self._peek().kind in _MUL_OPS:
            tok = self._advance()
            left = ast.BinaryExpr(tok.loc, _MUL_OPS[tok.kind], left, self._unary_expr())
        return left

    def _unary_expr(self) -> ast.Expr:
        if self._at(TK.MINUS):  # `- - - x` also bypasses `_expr`
            self._enter("expression")
            try:
                loc = self._advance().loc
                return ast.UnaryExpr(loc, "-", self._unary_expr())
            finally:
                self._leave()
        return self._postfix_expr()

    def _postfix_expr(self) -> ast.Expr:
        expr = self._primary_expr()
        while True:
            tok = self._peek()
            if tok.kind is TK.DOT:
                self._advance()
                expr = ast.FieldRef(tok.loc, expr, self._ident())
            elif tok.kind is TK.CARET:
                self._advance()
                expr = ast.DerefExpr(tok.loc, expr)
            elif tok.kind is TK.LBRACKET:
                self._advance()
                index = self._expr()
                self._expect(TK.RBRACKET)
                expr = ast.IndexExpr(tok.loc, expr, index)
            elif tok.kind is TK.LPAREN:
                expr = self._finish_call(expr, tok)
            else:
                return expr

    def _finish_call(self, callee: ast.Expr, tok: Token) -> ast.Expr:
        if isinstance(callee, ast.NameRef) and callee.name in ("ISTYPE", "NARROW"):
            return self._type_test(callee.name, tok)
        self._expect(TK.LPAREN)
        args: List[ast.Expr] = []
        while not self._at(TK.RPAREN):
            args.append(self._expr())
            if not self._accept(TK.COMMA):
                break
        self._expect(TK.RPAREN)
        return ast.CallExpr(tok.loc, callee, args)

    def _type_test(self, which: str, tok: Token) -> ast.Expr:
        self._expect(TK.LPAREN)
        operand = self._expr()
        self._expect(TK.COMMA)
        texpr = self._type_expr()
        self._expect(TK.RPAREN)
        if which == "ISTYPE":
            return ast.IsTypeExpr(tok.loc, operand, texpr)
        return ast.NarrowExpr(tok.loc, operand, texpr)

    def _primary_expr(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TK.INT:
            self._advance()
            return ast.IntLit(tok.loc, int(tok.value))
        if tok.kind is TK.CHAR:
            self._advance()
            return ast.CharLit(tok.loc, str(tok.value))
        if tok.kind is TK.TEXT:
            self._advance()
            return ast.TextLit(tok.loc, str(tok.value))
        if tok.kind is TK.KW_TRUE:
            self._advance()
            return ast.BoolLit(tok.loc, True)
        if tok.kind is TK.KW_FALSE:
            self._advance()
            return ast.BoolLit(tok.loc, False)
        if tok.kind is TK.KW_NIL:
            self._advance()
            return ast.NilLit(tok.loc)
        if tok.kind is TK.KW_NEW:
            return self._new_expr()
        if tok.kind is TK.LPAREN:
            self._advance()
            expr = self._expr()
            self._expect(TK.RPAREN)
            return expr
        if tok.kind is TK.IDENT:
            self._advance()
            return ast.NameRef(tok.loc, str(tok.value))
        raise ParseError("expected an expression, found {}".format(tok), tok.loc)

    def _new_expr(self) -> ast.NewExpr:
        loc = self._expect(TK.KW_NEW).loc
        self._expect(TK.LPAREN)
        texpr = self._type_expr()
        size: Optional[ast.Expr] = None
        field_inits: List[Tuple[str, ast.Expr]] = []
        while self._accept(TK.COMMA):
            # `f := e` is a field initialiser; anything else is the
            # open-array size argument.
            if self._at(TK.IDENT) and self._peek(1).kind is TK.ASSIGN:
                fname = self._ident()
                self._expect(TK.ASSIGN)
                field_inits.append((fname, self._expr()))
            else:
                size = self._expr()
        self._expect(TK.RPAREN)
        return ast.NewExpr(loc, texpr, size, field_inits)


def parse_module(source: str, unit: str = "<input>") -> ast.Module:
    """Parse a complete MiniM3 module from *source*.

    Pathological nesting (thousands of parens, REFs or records) raises
    :class:`~repro.lang.errors.ResourceLimitError` via the parser's depth
    cap; the interpreter stack limit is raised for the duration so the
    cap always fires before Python's own ``RecursionError`` would.
    """
    from repro.obs import core as obs

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 30 * MAX_NESTING_DEPTH))
    try:
        with obs.span("lang.parse", unit=unit, bytes=len(source)):
            return Parser(tokenize(source, unit)).parse_module()
    finally:
        sys.setrecursionlimit(old_limit)
