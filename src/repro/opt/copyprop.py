"""Copy propagation — the paper's missing pass, implemented.

Figure 10's "Breakup" category exists because "our optimizer does not do
copy propagation": after ``o := t``, loads of ``o.n`` and ``t.n`` are
different lexical access paths to the same location, so RLE cannot unify
them.  Inlining makes this worse (every inlined call binds parameters by
copy).

This pass propagates *reference copies between register-class variables*:
while ``dst = src`` holds, the access paths of memory instructions rooted
at ``dst`` (and subscript indices using ``dst``) are re-rooted at the
canonical source.  No executed code changes — the values are identical —
but RLE's lexical world becomes connected, so the Breakup loads unify.

Safety:

* facts are flow-sensitive (per-instruction within blocks, intersection
  meet across blocks);
* only variables whose address is never taken in the procedure
  participate (no VAR lending, no WITH binding), so only explicit
  ``StoreVar`` can invalidate a fact;
* globals never participate (any call could rewrite them).
"""

from typing import Dict, List, Optional, Set

from repro.ir import instructions as ins
from repro.ir.access_path import (
    AccessPath,
    Deref,
    FreshRoot,
    Qualify,
    Subscript,
    VarIndex,
    VarRoot,
)
from repro.ir.cfg import BasicBlock, ProcIR, ProgramIR
from repro.lang.symtab import Symbol


class CopyPropagationStats:
    def __init__(self) -> None:
        self.facts_created = 0
        self.paths_rewritten = 0

    def __repr__(self) -> str:
        return "<CopyPropagationStats facts={} rewrites={}>".format(
            self.facts_created, self.paths_rewritten
        )


Facts = Dict[Symbol, Symbol]  # dst -> canonical source


class CopyPropagation:
    """Re-roots access paths through register copies, per procedure."""

    def __init__(self, program: ProgramIR):
        self.program = program
        self.stats = CopyPropagationStats()

    def run(self) -> CopyPropagationStats:
        for proc in self.program.user_procs():
            _ProcCopyProp(self, proc).run()
        return self.stats


class _ProcCopyProp:
    def __init__(self, owner: CopyPropagation, proc: ProcIR):
        self.owner = owner
        self.proc = proc
        self.stats = owner.stats
        self.eligible = self._eligible_symbols()
        self.volatile = self._volatile_symbols()

    # ------------------------------------------------------------------

    def _eligible_symbols(self) -> Set[Symbol]:
        """Variables that may participate in copy facts.

        Handles (VAR params, location-binding WITHs) never participate.
        Everything else may, but facts involving a *volatile* symbol —
        a global, or a local whose address is taken in this procedure —
        are killed at every call and indirect store (anything that could
        write the symbol behind our back); see :meth:`_transfer`.
        """
        eligible: Set[Symbol] = set()
        candidates = (
            self.proc.checked.all_symbols
            + self.proc.shadow_symbols
            + self.owner.program.checked.globals
        )
        for symbol in candidates:
            if symbol.by_reference or (symbol.kind == "with" and symbol.binds_location):
                continue
            if symbol.kind in ("var", "param", "for", "with"):
                eligible.add(symbol)
        return eligible

    def _volatile_symbols(self) -> Set[Symbol]:
        """Symbols writable other than by a visible StoreVar."""
        volatile: Set[Symbol] = set(self.owner.program.checked.globals)
        for instr in self.proc.all_instrs():
            if isinstance(instr, ins.AddrVar):
                volatile.add(instr.symbol)
        for symbol, target in self.proc.handle_targets.items():
            volatile.add(symbol)
            if target[0] in ("var", "handle"):
                volatile.add(target[1])
        return volatile

    # ------------------------------------------------------------------

    def run(self) -> None:
        blocks = self.proc.blocks()
        preds = self.proc.predecessors()
        facts_in: Dict[BasicBlock, Optional[Facts]] = {b: None for b in blocks}
        facts_in[self.proc.entry] = {}

        changed = True
        while changed:
            changed = False
            outs: Dict[BasicBlock, Optional[Facts]] = {}
            for block in blocks:
                if block is not self.proc.entry and preds[block]:
                    merged: Optional[Facts] = None
                    for p in preds[block]:
                        p_out = self._block_out(facts_in.get(p), p)
                        if p_out is None:
                            continue
                        if merged is None:
                            merged = dict(p_out)
                        else:
                            merged = {
                                k: v
                                for k, v in merged.items()
                                if p_out.get(k) is v
                            }
                    if merged is not None and merged != facts_in[block]:
                        facts_in[block] = merged
                        changed = True
                outs[block] = self._block_out(facts_in[block], block)

        for block in blocks:
            self._rewrite_block(block, facts_in[block])

    def _block_out(self, facts: Optional[Facts], block: BasicBlock) -> Optional[Facts]:
        if facts is None:
            return None
        facts = dict(facts)
        temp_defs: Dict[int, ins.Instr] = {}
        for instr in block.all_instrs():
            self._transfer(instr, facts, temp_defs)
        return facts

    def _transfer(
        self, instr: ins.Instr, facts: Facts, temp_defs: Dict[int, ins.Instr]
    ) -> None:
        if instr.is_call or isinstance(instr, ins.StoreInd):
            # Anything volatile may have been rewritten behind our back.
            for key in [
                k for k, v in facts.items()
                if k in self.volatile or v in self.volatile
            ]:
                facts.pop(key)
            if instr.dest is not None:
                temp_defs[instr.dest.index] = instr
            return
        if isinstance(instr, ins.StoreVar):
            dst = instr.symbol
            # Any write to dst kills facts through dst (either side).
            facts.pop(dst, None)
            for key in [k for k, v in facts.items() if v is dst]:
                facts.pop(key)
            definition = temp_defs.get(instr.src.index)
            if (
                dst in self.eligible
                and isinstance(definition, ins.LoadVar)
                and definition.symbol in self.eligible
            ):
                src = facts.get(definition.symbol, definition.symbol)
                if src is not dst:
                    facts[dst] = src
                    self.stats.facts_created += 1
            return
        if instr.dest is not None:
            temp_defs[instr.dest.index] = instr

    # ------------------------------------------------------------------

    def _rewrite_block(self, block: BasicBlock, facts: Optional[Facts]) -> None:
        if facts is None:
            return
        facts = dict(facts)
        temp_defs: Dict[int, ins.Instr] = {}
        for instr in block.all_instrs():
            ap = instr.ap
            if ap is not None:
                new_ap = self._substitute(ap, facts)
                if new_ap is not ap:
                    instr._ap = new_ap  # type: ignore[attr-defined]
                    self.stats.paths_rewritten += 1
            self._transfer(instr, facts, temp_defs)

    def _substitute(self, ap: AccessPath, facts: Facts) -> AccessPath:
        if isinstance(ap, VarRoot):
            replacement = facts.get(ap.symbol)
            if replacement is not None:
                return VarRoot(replacement)
            return ap
        if isinstance(ap, FreshRoot):
            return ap
        if isinstance(ap, Qualify):
            base = self._substitute(ap.base, facts)
            if base is ap.base:
                return ap
            return Qualify(base, ap.field, ap.type, ap.owner)
        if isinstance(ap, Deref):
            base = self._substitute(ap.base, facts)
            if base is ap.base:
                return ap
            return Deref(base, ap.type)
        if isinstance(ap, Subscript):
            base = self._substitute(ap.base, facts)
            index = ap.index
            if isinstance(index, VarIndex):
                replacement = facts.get(index.symbol)
                if replacement is not None:
                    index = VarIndex(replacement)
            if base is ap.base and index is ap.index:
                return ap
            return Subscript(base, index, ap.type)
        return ap
