"""Procedure inlining (the "+Inlining" of Figure 11).

Inlines *direct* calls (run :class:`~repro.opt.methodres.MethodResolution`
first so devirtualized method calls qualify) when the callee is small and
non-recursive.  Inlining by itself removes only call overhead; its real
value in the paper is exposing redundant loads across what used to be a
procedure boundary — RLE never eliminates loads across calls, so the
pipeline runs inlining *before* RLE.

Mechanics: the callee's blocks are cloned (fresh instructions, fresh
temps), parameters become explicit ``StoreVar`` bindings (VAR parameters
just receive the handle), RETURNs become jumps to a continuation block,
and the callee's local symbols are registered with the caller so frames
initialise them.
"""

from typing import Dict, List, Optional, Set

from repro.analysis.callgraph import CallGraph
from repro.ir import instructions as ins
from repro.ir.cfg import BasicBlock, ProcIR, ProgramIR
from repro.lang.symtab import Symbol
from repro.lang.typecheck import MAIN_PROC


class InlineStats:
    def __init__(self) -> None:
        self.inlined_calls = 0
        self.candidate_calls = 0

    def __repr__(self) -> str:
        return "<InlineStats {}/{} inlined>".format(
            self.inlined_calls, self.candidate_calls
        )


class Inliner:
    """One inlining pass over the whole program."""

    #: Callees with more instructions than this are never inlined.
    DEFAULT_MAX_CALLEE_SIZE = 60

    def __init__(
        self,
        program: ProgramIR,
        max_callee_size: int = DEFAULT_MAX_CALLEE_SIZE,
    ):
        self.program = program
        self.max_callee_size = max_callee_size
        self.stats = InlineStats()
        self._recursive = self._find_recursive()

    def run(self) -> InlineStats:
        for proc in self.program.user_procs():
            self._inline_in_proc(proc)
        return self.stats

    # ------------------------------------------------------------------

    def _find_recursive(self) -> Set[str]:
        """Procedures that can (transitively) call themselves."""
        graph = CallGraph(self.program)
        recursive: Set[str] = set()
        for name in self.program.proc_order:
            seen: Set[str] = set()
            stack = list(graph.callees[name])
            while stack:
                callee = stack.pop()
                if callee == name:
                    recursive.add(name)
                    break
                if callee in seen:
                    continue
                seen.add(callee)
                stack.extend(graph.callees.get(callee, ()))
        return recursive

    def _proc_size(self, proc: ProcIR) -> int:
        return sum(1 for _ in proc.all_instrs())

    def _inlinable(self, callee_name: str) -> bool:
        if callee_name == MAIN_PROC or callee_name in self._recursive:
            return False
        callee = self.program.procs.get(callee_name)
        if callee is None:
            return False
        return self._proc_size(callee) <= self.max_callee_size

    # ------------------------------------------------------------------

    def _inline_in_proc(self, proc: ProcIR) -> None:
        # Snapshot the block list; inlining appends new blocks.
        for block in list(proc.blocks()):
            self._inline_in_block(proc, block)

    def _inline_in_block(self, proc: ProcIR, block: BasicBlock) -> None:
        i = 0
        while i < len(block.instrs):
            instr = block.instrs[i]
            if isinstance(instr, ins.Call):
                self.stats.candidate_calls += 1
                if self._inlinable(instr.proc_name) and proc.name != instr.proc_name:
                    continuation = self._inline_site(proc, block, i, instr)
                    self.stats.inlined_calls += 1
                    # Continue scanning in the continuation block.
                    block = continuation
                    i = 0
                    continue
            i += 1

    def _inline_site(
        self,
        caller: ProcIR,
        block: BasicBlock,
        call_index: int,
        call: ins.Call,
    ) -> BasicBlock:
        callee = self.program.procs[call.proc_name]

        # Split the caller block around the call.
        continuation = BasicBlock("{}.inl_cont".format(caller.name))
        continuation.instrs = block.instrs[call_index + 1 :]
        continuation.terminator = block.terminator
        block.instrs = block.instrs[:call_index]
        block.terminator = None

        # Bind parameters: value params receive the value, VAR params the
        # handle — a plain StoreVar either way.
        for symbol, arg in zip(callee.checked.params, call.args):
            bind = ins.StoreVar(symbol, arg, call.loc)
            bind.counted = False  # register-to-register argument move
            block.append(bind)

        ret_shadow: Optional[Symbol] = None
        if call.dest is not None:
            ret_shadow = Symbol(
                "<inl_ret.{}>".format(call.uid),
                "var",
                callee.checked.result,
                call.loc,
                proc_name=caller.name,
            )
            caller.shadow_symbols.append(ret_shadow)

        body_entry = self._clone_body(caller, callee, continuation, ret_shadow)
        block.terminate(ins.Jump(body_entry, call.loc))

        if call.dest is not None:
            assert ret_shadow is not None
            fetch = ins.LoadVar(call.dest, ret_shadow, call.loc)
            fetch.counted = False  # result is already in a register
            continuation.instrs.insert(0, fetch)

        # The caller's frames must initialise the callee's symbols.
        known = set(caller.checked.all_symbols)
        for symbol in callee.checked.all_symbols:
            if symbol not in known:
                caller.checked.all_symbols.append(symbol)
        caller.handle_targets.update(callee.handle_targets)
        return continuation

    # ------------------------------------------------------------------

    def _clone_body(
        self,
        caller: ProcIR,
        callee: ProcIR,
        continuation: BasicBlock,
        ret_shadow: Optional[Symbol],
    ) -> BasicBlock:
        """Clone the callee CFG into the caller; returns the cloned entry."""
        temp_map: Dict[int, ins.Temp] = {}

        def remap(temp: ins.Temp) -> ins.Temp:
            new = temp_map.get(temp.index)
            if new is None:
                new = caller.new_temp()
                temp_map[temp.index] = new
            return new

        block_map: Dict[int, BasicBlock] = {}
        callee_blocks = callee.blocks()
        for old in callee_blocks:
            block_map[id(old)] = BasicBlock("{}.inl_{}".format(caller.name, old.name))

        for old in callee_blocks:
            new_block = block_map[id(old)]
            for instr in old.instrs:
                new_block.instrs.append(_clone_instr(instr, remap))
            terminator = old.terminator
            assert terminator is not None
            if isinstance(terminator, ins.Return):
                if terminator.value is not None and ret_shadow is not None:
                    put = ins.StoreVar(ret_shadow, remap(terminator.value), terminator.loc)
                    put.counted = False  # result register move
                    new_block.instrs.append(put)
                new_block.terminate(ins.Jump(continuation, terminator.loc))
            elif isinstance(terminator, ins.Jump):
                new_block.terminate(
                    ins.Jump(block_map[id(terminator.target)], terminator.loc)
                )
            elif isinstance(terminator, ins.Branch):
                new_block.terminate(
                    ins.Branch(
                        remap(terminator.cond),
                        block_map[id(terminator.if_true)],
                        block_map[id(terminator.if_false)],
                        terminator.loc,
                    )
                )
        return block_map[id(callee.entry)]


def _clone_instr(instr: ins.Instr, remap) -> ins.Instr:
    """Structural clone with remapped temps and a fresh uid."""
    cls = type(instr)
    if cls is ins.ConstInstr:
        return ins.ConstInstr(remap(instr.dest), instr.value, instr.loc)
    if cls is ins.Move:
        return ins.Move(remap(instr.dest), remap(instr.src), instr.loc)
    if cls is ins.LoadVar:
        return ins.LoadVar(remap(instr.dest), instr.symbol, instr.loc)
    if cls is ins.StoreVar:
        return ins.StoreVar(instr.symbol, remap(instr.src), instr.loc)
    if cls is ins.BinOp:
        return ins.BinOp(remap(instr.dest), instr.op, remap(instr.left), remap(instr.right), instr.loc)
    if cls is ins.UnOp:
        return ins.UnOp(remap(instr.dest), instr.op, remap(instr.operand), instr.loc)
    if cls is ins.LoadField:
        return ins.LoadField(remap(instr.dest), remap(instr.base), instr.field, instr.ap, instr.loc)
    if cls is ins.StoreField:
        return ins.StoreField(remap(instr.base), instr.field, remap(instr.src), instr.ap, instr.loc)
    if cls is ins.LoadElem:
        return ins.LoadElem(remap(instr.dest), remap(instr.base), remap(instr.index), instr.ap, instr.loc)
    if cls is ins.StoreElem:
        return ins.StoreElem(remap(instr.base), remap(instr.index), remap(instr.src), instr.ap, instr.loc)
    if cls is ins.LoadDopeData:
        return ins.LoadDopeData(remap(instr.dest), remap(instr.base), instr.ap, instr.loc)
    if cls is ins.LoadDopeCount:
        return ins.LoadDopeCount(remap(instr.dest), remap(instr.base), instr.ap, instr.loc)
    if cls is ins.LoadInd:
        return ins.LoadInd(remap(instr.dest), remap(instr.handle), instr.ap, instr.loc)
    if cls is ins.StoreInd:
        return ins.StoreInd(remap(instr.handle), remap(instr.src), instr.ap, instr.loc)
    if cls is ins.AddrVar:
        return ins.AddrVar(remap(instr.dest), instr.symbol, instr.loc)
    if cls is ins.AddrField:
        return ins.AddrField(remap(instr.dest), remap(instr.base), instr.field, instr.ap, instr.loc)
    if cls is ins.AddrElem:
        return ins.AddrElem(remap(instr.dest), remap(instr.base), remap(instr.index), instr.ap, instr.loc)
    if cls is ins.NewObject:
        return ins.NewObject(remap(instr.dest), instr.object_type, instr.loc)
    if cls is ins.NewRecord:
        return ins.NewRecord(remap(instr.dest), instr.ref_type, instr.loc)
    if cls is ins.NewFixedArray:
        return ins.NewFixedArray(remap(instr.dest), instr.ref_type, instr.loc)
    if cls is ins.NewOpenArray:
        return ins.NewOpenArray(remap(instr.dest), instr.ref_type, remap(instr.size), instr.loc)
    if cls is ins.Call:
        clone = ins.Call(
            remap(instr.dest) if instr.dest is not None else None,
            instr.proc_name,
            [remap(a) for a in instr.args],
            instr.loc,
        )
        setattr(clone, "var_args", getattr(instr, "var_args", {}))
        return clone
    if cls is ins.CallMethod:
        clone = ins.CallMethod(
            remap(instr.dest) if instr.dest is not None else None,
            remap(instr.receiver),
            instr.method_name,
            [remap(a) for a in instr.args],
            instr.static_receiver_type,
            instr.loc,
        )
        setattr(clone, "var_args", getattr(instr, "var_args", {}))
        return clone
    if cls is ins.Builtin:
        return ins.Builtin(
            remap(instr.dest) if instr.dest is not None else None,
            instr.name,
            [remap(a) for a in instr.args],
            instr.loc,
        )
    if cls is ins.TypeTest:
        return ins.TypeTest(remap(instr.dest), remap(instr.src), instr.target_type, instr.loc)
    if cls is ins.NarrowChk:
        return ins.NarrowChk(remap(instr.dest), remap(instr.src), instr.target_type, instr.loc)
    raise TypeError("cannot clone {!r}".format(instr))
