"""Method invocation resolution ("Minv" of the paper's Figure 11).

Section 3.7 measures the cumulative effect of "method invocation
resolution [14] plus inlining" with RLE.  The resolver devirtualizes a
method call when the set of implementations reachable from the receiver's
*possible types* contains exactly one procedure:

* the baseline type information is the subtype tree of the static
  receiver type (class hierarchy analysis);
* when given an :class:`~repro.analysis.smtyperefs.SMTypeRefsOracle`, the
  receiver's possible types are pruned to ``TypeRefsTable(static type)``
  — this is how "method resolution uses TBAA (and other analyses) to help
  resolve method invocations on object fields and array elements".
"""

from typing import List, Optional, Set

from repro.analysis.smtyperefs import SMTypeRefsOracle
from repro.ir import instructions as ins
from repro.ir.cfg import ProgramIR
from repro.lang.types import ObjectType, is_subtype


class MethodResolutionStats:
    def __init__(self) -> None:
        self.method_calls = 0
        self.resolved = 0

    @property
    def resolved_fraction(self) -> float:
        return self.resolved / self.method_calls if self.method_calls else 0.0

    def __repr__(self) -> str:
        return "<MethodResolutionStats {}/{} resolved>".format(
            self.resolved, self.method_calls
        )


class MethodResolution:
    """Replaces single-target CallMethod instructions with direct Calls."""

    def __init__(
        self,
        program: ProgramIR,
        type_refs: Optional[SMTypeRefsOracle] = None,
    ):
        self.program = program
        self.type_refs = type_refs
        self.stats = MethodResolutionStats()

    def run(self) -> MethodResolutionStats:
        for proc in self.program.user_procs():
            for block in proc.blocks():
                block.instrs = [self._resolve(i) for i in block.instrs]
        return self.stats

    # ------------------------------------------------------------------

    def _resolve(self, instr: ins.Instr) -> ins.Instr:
        if not isinstance(instr, ins.CallMethod):
            return instr
        self.stats.method_calls += 1
        impls = self._possible_impls(instr.static_receiver_type, instr.method_name)
        if len(impls) != 1:
            return instr
        target = next(iter(impls))
        if target not in self.program.procs:
            return instr
        self.stats.resolved += 1
        direct = ins.Call(
            instr.dest, target, [instr.receiver] + list(instr.args), instr.loc
        )
        setattr(direct, "var_args", getattr(instr, "var_args", {}))
        return direct

    def _possible_impls(self, static_type: ObjectType, method: str) -> Set[str]:
        impls: Set[str] = set()
        for obj in self._possible_receiver_types(static_type):
            impl = obj.method_impl(method)
            if impl is not None:
                impls.add(impl)
            else:
                # An unimplemented slot can trap at run time; treat it as
                # an unknown target so we stay conservative.
                impls.add("<unimplemented>")
        return impls

    def _possible_receiver_types(self, static_type: ObjectType) -> List[ObjectType]:
        candidates = [
            obj
            for obj in self.program.checked.object_types()
            if is_subtype(obj, static_type)
        ]
        if self.type_refs is None:
            return candidates
        allowed = self.type_refs.type_refs(static_type)
        pruned = [obj for obj in candidates if id(obj) in allowed]
        # NIL receivers trap before dispatch, so an empty set means the
        # call is unreachable; keep the unpruned set to stay safe.
        return pruned or candidates
