"""Optimization pipeline driver.

The evaluation runs each benchmark under several configurations:

* **base** — straight lowering, GCC-style baseline (the paper's original
  programs already had standard optimizations on; our baseline likewise
  keeps scalars in registers and does nothing about heap loads);
* **RLE(analysis)** — redundant load elimination under one of the three
  TBAA levels (Figure 8);
* **Minv+Inlining** — devirtualization + inlining (Figure 11);
* **RLE+Minv+Inlining** — both (Figure 11);
* open-world variants of any of the above (Figure 12).

Because the optimizers mutate the IR, every configuration lowers a fresh
ProgramIR from the (immutable) checked module.
"""

from typing import Dict, Optional

from repro.analysis.modref import ModRefAnalysis
from repro.analysis.openworld import AnalysisContext
from repro.analysis.smtyperefs import SMTypeRefsOracle
from repro.analysis.trivial import AlwaysAliasAnalysis
from repro.ir.cfg import ProgramIR
from repro.ir.lowering import lower_module
from repro.lang.typecheck import CheckedModule
from repro.obs import core as obs
from repro.opt.copyprop import CopyPropagation, CopyPropagationStats
from repro.opt.inline import Inliner, InlineStats
from repro.opt.methodres import MethodResolution, MethodResolutionStats
from repro.opt.rle import RedundantLoadElimination, RLEStatistics


class PipelineResult:
    """A lowered, optionally optimized program plus pass statistics."""

    def __init__(self, program: ProgramIR, label: str):
        self.program = program
        self.label = label
        self.rle: Optional[RLEStatistics] = None
        self.methodres: Optional[MethodResolutionStats] = None
        self.inline: Optional[InlineStats] = None
        self.copyprop: Optional[CopyPropagationStats] = None

    @property
    def load_status(self) -> Dict[int, str]:
        """Per-load static status for the limit study (empty for base)."""
        return self.rle.load_status if self.rle else {}

    def __repr__(self) -> str:
        return "<PipelineResult {}>".format(self.label)


class OptimizationPipeline:
    """Builds optimized programs from one checked module."""

    def __init__(self, checked: CheckedModule):
        self.checked = checked
        self._contexts: Dict[bool, AnalysisContext] = {}

    def context(self, open_world: bool = False) -> AnalysisContext:
        ctx = self._contexts.get(open_world)
        if ctx is None:
            ctx = AnalysisContext(self.checked, open_world=open_world)
            self._contexts[open_world] = ctx
        return ctx

    # ------------------------------------------------------------------

    def base(self) -> PipelineResult:
        """The paper's baseline: lowering + the GCC back end's local CSE.

        The paper normalises Figures 8/11/12 against programs compiled
        "with all of GCC's optimizations", and notes "GCC eliminates
        redundant loads without any assignments to memory between them".
        We reproduce that back end as block-local RLE with no alias
        analysis (everything aliases, calls kill all) over *all* loads,
        dope vectors included (the back end sees machine code).
        """
        with obs.span("pipeline.base", module=self.checked.name):
            program = lower_module(self.checked)
            result = PipelineResult(program, "base")
            _backend_local_cse(program)
            return result

    def build(
        self,
        analysis: Optional[str] = "SMFieldTypeRefs",
        rle: bool = True,
        minv_inline: bool = False,
        open_world: bool = False,
        hoist: bool = True,
        see_dope_loads: bool = False,
        copyprop: bool = False,
        pre: bool = False,
        max_callee_size: int = Inliner.DEFAULT_MAX_CALLEE_SIZE,
    ) -> PipelineResult:
        """Lower and optimize under one configuration.

        ``copyprop`` and ``pre`` are the extensions beyond the paper
        (copy propagation for the Breakup category; speculative PRE of
        loads for the Conditional category).
        """
        label_parts = []
        pipeline_span = obs.span("pipeline.build", module=self.checked.name,
                                 analysis=analysis if rle else None,
                                 open_world=open_world)
        with pipeline_span:
            program = lower_module(self.checked)
            ctx = self.context(open_world)

            result = PipelineResult(program, "base")
            if minv_inline:
                with obs.span("opt.methodres"):
                    type_refs = SMTypeRefsOracle(
                        self.checked, ctx.subtypes, ctx.assignments,
                        open_world=open_world
                    )
                    resolver = MethodResolution(program, type_refs)
                    result.methodres = resolver.run()
                with obs.span("opt.inline"):
                    inliner = Inliner(program, max_callee_size=max_callee_size)
                    result.inline = inliner.run()
                label_parts.append("minv+inline")

            if copyprop:
                with obs.span("opt.copyprop"):
                    result.copyprop = CopyPropagation(program).run()
                label_parts.append("copyprop")

            if rle:
                assert analysis is not None
                alias = ctx.build(analysis)
                with obs.span("opt.rle", analysis=analysis):
                    modref = ModRefAnalysis(program)
                    rle_pass = RedundantLoadElimination(
                        program,
                        alias,
                        modref,
                        hoist=hoist,
                        see_dope_loads=see_dope_loads,
                        pre=pre,
                    )
                    result.rle = rle_pass.run()
                label_parts.append("rle[{}]".format(analysis))
                if pre:
                    label_parts.append("pre")

            # The back end runs last in every configuration (as GCC did
            # for the paper): it mops up block-local redundancy RLE also
            # covers, so it only matters when RLE is off or weaker.
            with obs.span("opt.backend_cse"):
                _backend_local_cse(program)

        if open_world:
            label_parts.append("open-world")
        result.label = "+".join(label_parts) if label_parts else "base"
        return result


def _backend_local_cse(program: ProgramIR) -> None:
    """Block-local, no-alias-analysis load CSE (the GCC back end)."""
    RedundantLoadElimination(
        program,
        AlwaysAliasAnalysis(),
        modref=None,
        hoist=False,
        see_dope_loads=True,
        local_only=True,
        calls_kill_all=True,
        record_status=False,
    ).run()
