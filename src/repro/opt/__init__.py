"""Optimizations that consume TBAA.

* :mod:`repro.opt.rle` — **redundant load elimination** (Section 3.4.1):
  available-load CSE plus loop-invariant load motion, with alias-based
  and mod-ref-based kills.  The optimization the paper evaluates TBAA
  through.
* :mod:`repro.opt.methodres` — method invocation resolution
  (devirtualization of method calls whose receiver's subtype tree has a
  single implementation), the "Minv" of Figure 11;
* :mod:`repro.opt.inline` — procedure inlining of small/direct calls,
  the "+Inlining" of Figure 11;
* :mod:`repro.opt.pipeline` — composition driver used by the benchmark
  harness (base / RLE / Minv+Inline / all, per alias analysis level).
"""

from repro.opt.rle import RedundantLoadElimination, RLEStatistics
from repro.opt.copyprop import CopyPropagation, CopyPropagationStats
from repro.opt.methodres import MethodResolution, MethodResolutionStats
from repro.opt.inline import Inliner, InlineStats
from repro.opt.pipeline import OptimizationPipeline, PipelineResult

__all__ = [
    "RedundantLoadElimination",
    "RLEStatistics",
    "CopyPropagation",
    "CopyPropagationStats",
    "MethodResolution",
    "MethodResolutionStats",
    "Inliner",
    "InlineStats",
    "OptimizationPipeline",
    "PipelineResult",
]
