"""Redundant Load Elimination (RLE) — Section 3.4.1 of the paper.

    "RLE combines variants of loop invariant code motion (similar to
     register promotion) and common subexpression elimination of memory
     references. ... A memory expression at statement s is redundant if
     it is available on every path to s."

Two phases per procedure:

1. **Loop-invariant load motion** (Figure 6): a heap load whose access
   path is invariant in a natural loop (no may-aliased store, no killing
   call, no root-variable redefinition inside the loop) and which is
   executed on every iteration (its block dominates every back-edge
   source) is re-materialised in a preheader.

2. **Available-load CSE** (Figure 7): forward all-paths dataflow over the
   procedure's access paths.  Loads and stores *generate* availability;
   kills come from (a) assignments to any root/index variable of a path,
   (b) heap stores that may alias the path — decided by the configured
   TBAA analysis, (c) calls whose mod-ref summary may write the path.
   A load whose path is available is replaced by a register move from a
   shadow cache variable written at every generating site.

The pass records a *status* per heap-load instruction (eliminated /
partial / killed_store / killed_call / fresh / dope) which the limit
study (Figure 10) joins with the dynamic trace to classify residual
redundancy.  Dope-vector loads are invisible to RLE — the paper's
optimizer worked on the AST where those loads do not exist, which is
exactly why "Encapsulation" dominates its residue.
"""

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.alias_base import AliasAnalysis
from repro.analysis.modref import ModRefAnalysis
from repro.ir import instructions as ins
from repro.ir.access_path import (
    AccessPath,
    ConstIndex,
    Deref,
    FreshRoot,
    Qualify,
    Subscript,
    UnknownIndex,
    VarIndex,
    VarRoot,
)
from repro.ir.cfg import BasicBlock, ProcIR, ProgramIR
from repro.ir.dominators import DominatorTree
from repro.ir.loops import NaturalLoop, find_natural_loops
from repro.lang import types as ty
from repro.lang.symtab import Symbol
from repro.runtime.limit import (
    STATUS_DOPE,
    STATUS_ELIMINATED,
    STATUS_FRESH,
    STATUS_KILLED_CALL,
    STATUS_KILLED_STORE,
    STATUS_PARTIAL,
)


class RLEStatistics:
    """Aggregate results of one RLE run over a program."""

    def __init__(self) -> None:
        self.eliminated_loads = 0  # Table 6's "redundant loads removed"
        self.hoisted_paths = 0
        self.pre_inserted = 0  # speculative loads added by the PRE option
        self.load_status: Dict[int, str] = {}  # heap-load uid -> status
        self.per_proc_eliminated: Dict[str, int] = {}

    def __repr__(self) -> str:
        return "<RLEStatistics eliminated={} hoisted={}>".format(
            self.eliminated_loads, self.hoisted_paths
        )


class RedundantLoadElimination:
    """Runs RLE over every procedure of a program, in place."""

    def __init__(
        self,
        program: ProgramIR,
        analysis: AliasAnalysis,
        modref: Optional[ModRefAnalysis] = None,
        hoist: bool = True,
        see_dope_loads: bool = False,
        local_only: bool = False,
        calls_kill_all: bool = False,
        record_status: bool = True,
        pre: bool = False,
    ):
        self.program = program
        self.analysis = analysis
        self.hoist = hoist
        # Extension/ablation: let RLE see and eliminate dope-vector loads
        # (the paper's compiler could not — its IR hid them).
        self.see_dope_loads = see_dope_loads
        # GCC-backend mode (the paper's baseline): availability is
        # block-local only, and every call conservatively kills all.
        self.local_only = local_only
        self.calls_kill_all = calls_kill_all
        self.record_status = record_status
        # Extension (the paper's stated future work): partial redundancy
        # elimination of loads — make partially-available paths fully
        # available by inserting speculative loads on the lacking edges.
        self.pre = pre
        if calls_kill_all:
            self.modref = modref  # never consulted
        else:
            self.modref = modref or ModRefAnalysis(program)
        self.stats = RLEStatistics()

    def run(self) -> RLEStatistics:
        for proc in self.program.user_procs():
            _ProcRLE(self, proc).run()
        return self.stats

    # -- helpers shared by per-proc passes --------------------------------

    def visible_load(self, instr: ins.Instr) -> bool:
        if not instr.is_heap_load:
            return False
        if instr.is_dope and not self.see_dope_loads:
            return False
        return True


class _ProcRLE:
    """RLE for a single procedure."""

    def __init__(self, owner: RedundantLoadElimination, proc: ProcIR):
        self.owner = owner
        self.proc = proc
        self.analysis = owner.analysis
        self.modref = owner.modref
        self.stats = owner.stats
        # AP universe: index and shadow symbol per lexical path.
        self.ap_index: Dict[AccessPath, int] = {}
        self.ap_list: List[AccessPath] = []
        self.shadows: Dict[AccessPath, Symbol] = {}
        self.kill_reason: Dict[AccessPath, str] = {}

    # ------------------------------------------------------------------

    def run(self) -> None:
        if self.owner.hoist and self.owner.modref is not None:
            self._hoist_loops()
        self._build_universe()
        if self.ap_list:
            self._cse()
        else:
            self._tag_only()

    def _tag_only(self) -> None:
        if not self.owner.record_status:
            return
        for instr in self.proc.all_instrs():
            if instr.is_heap_load:
                self.stats.load_status[instr.uid] = (
                    STATUS_DOPE if instr.is_dope else STATUS_FRESH
                )

    # ------------------------------------------------------------------
    # Universe and transfer functions

    def _build_universe(self) -> None:
        for block in self.proc.blocks():
            for instr in block.all_instrs():
                if self.owner.visible_load(instr) or instr.is_heap_store:
                    ap = instr.ap
                    assert ap is not None
                    if ap not in self.ap_index:
                        self.ap_index[ap] = len(self.ap_list)
                        self.ap_list.append(ap)

    def _shadow(self, ap: AccessPath) -> Symbol:
        shadow = self.shadows.get(ap)
        if shadow is None:
            shadow = Symbol(
                "<rle.{}>".format(len(self.shadows)),
                "var",
                ap.type,
                self.proc.checked.loc,
                proc_name=self.proc.name,
            )
            self.proc.shadow_symbols.append(shadow)
            self.shadows[ap] = shadow
        return shadow

    def _kill_mask_for_store(self, store_ap: AccessPath) -> int:
        """Availability killed by a heap store with path *store_ap*."""
        mask = 0
        for i, ap in enumerate(self.ap_list):
            if ap == store_ap:
                continue  # the exact path is regenerated, not killed
            if self.analysis.may_alias(ap, store_ap):
                mask |= 1 << i
        return mask

    def _kill_mask_for_roots(self, roots: Set[Symbol]) -> int:
        """Availability killed by redefinition of any symbol in *roots*."""
        if not roots:
            return 0
        mask = 0
        for i, ap in enumerate(self.ap_list):
            if ap.root_symbols() & roots:
                mask |= 1 << i
        return mask

    def _kill_mask_for_call(self, instr: ins.Instr) -> int:
        if self.owner.calls_kill_all:
            return (1 << len(self.ap_list)) - 1
        assert self.modref is not None
        mask = 0
        written_roots = self.modref.call_written_var_roots(instr, self.proc)
        mask |= self._kill_mask_for_roots(written_roots)
        heap_writes = self.modref.call_heap_writes(instr)
        for i, ap in enumerate(self.ap_list):
            if mask & (1 << i):
                continue
            for written in heap_writes:
                if self.analysis.may_alias(ap, written):
                    mask |= 1 << i
                    break
        return mask

    def _storeind_extra_roots(self, instr: ins.StoreInd) -> Set[Symbol]:
        """Variables a StoreInd may redefine (handle targets)."""
        ap = instr.ap
        root = ap.root() if ap is not None else None
        roots: Set[Symbol] = set()
        if isinstance(root, VarRoot):
            symbol = root.symbol
            if symbol.kind == "with":
                target = self.proc.handle_targets.get(symbol)
                while target is not None:
                    kind, payload = target
                    if kind == "var":
                        roots.add(payload)
                        target = None
                    elif kind == "handle":
                        roots.add(payload)
                        target = self.proc.handle_targets.get(payload)
                    else:
                        target = None
            elif symbol.by_reference:
                # An incoming handle may point at a global of the exact
                # same type (VAR formals require identical types).
                for g in self.program_globals():
                    if g.type is symbol.type:
                        roots.add(g)
        return roots

    def program_globals(self) -> List[Symbol]:
        return self.owner.program.checked.globals

    def _transfer(self, instr: ins.Instr, avail: int, collect: Optional[Dict] = None) -> int:
        """Forward transfer of availability across one instruction."""
        index = self.ap_index
        if self.owner.visible_load(instr):
            ap = instr.ap
            assert ap is not None
            return avail | (1 << index[ap])
        if instr.is_heap_store:
            ap = instr.ap
            assert ap is not None
            kill = self._kill_mask_for_store(ap)
            if isinstance(instr, ins.StoreInd):
                kill |= self._kill_mask_for_roots(self._storeind_extra_roots(instr))
            if collect is not None:
                collect["store"] = collect.get("store", 0) | kill
            gen = 1 << index[ap] if ap in index else 0
            return (avail & ~kill) | gen
        if isinstance(instr, ins.StoreVar):
            kill = self._kill_mask_for_roots({instr.symbol})
            if collect is not None:
                collect["storevar"] = collect.get("storevar", 0) | kill
            return avail & ~kill
        if instr.is_call:
            kill = self._kill_mask_for_call(instr)
            if collect is not None:
                collect["call"] = collect.get("call", 0) | kill
            return avail & ~kill
        return avail

    # ------------------------------------------------------------------
    # Phase 2: available-load CSE

    def _cse(self) -> None:
        blocks = self.proc.blocks()
        preds = self.proc.predecessors()
        full = (1 << len(self.ap_list)) - 1

        if self.owner.local_only:
            # GCC-backend mode: nothing is available at block entry.
            for block in blocks:
                self._rewrite_block(block, 0, 0)
            return

        must_in, may_in, must_out = self._solve(blocks, preds, full)

        if self.owner.pre:
            inserted = self._pre_insert(blocks, preds, must_in, may_in, must_out)
            if inserted:
                blocks = self.proc.blocks()
                preds = self.proc.predecessors()
                must_in, may_in, must_out = self._solve(blocks, preds, full)

        for block in blocks:
            self._rewrite_block(block, must_in[block], may_in[block])

    def _solve(self, blocks, preds, full):
        """Forward availability fixpoint: (must_in, may_in, must_out)."""
        must_in: Dict[BasicBlock, int] = {b: full for b in blocks}
        may_in: Dict[BasicBlock, int] = {b: 0 for b in blocks}
        must_in[self.proc.entry] = 0

        must_out: Dict[BasicBlock, int] = {}
        may_out: Dict[BasicBlock, int] = {}
        for block in blocks:
            must_out[block] = self._block_out(block, must_in[block])
            may_out[block] = self._block_out(block, may_in[block])

        changed = True
        while changed:
            changed = False
            for block in blocks:
                if block is not self.proc.entry and preds[block]:
                    new_must = full
                    new_may = 0
                    for p in preds[block]:
                        new_must &= must_out[p]
                        new_may |= may_out[p]
                    if new_must != must_in[block] or new_may != may_in[block]:
                        must_in[block] = new_must
                        may_in[block] = new_may
                        must_out[block] = self._block_out(block, new_must)
                        may_out[block] = self._block_out(block, new_may)
                        changed = True
        return must_in, may_in, must_out

    # ------------------------------------------------------------------
    # Simplified speculative PRE (extension — the paper's future work)

    def _pre_insert(self, blocks, preds, must_in, may_in, must_out) -> bool:
        """Make partially-available loaded paths fully available.

        For every block that visibly loads a path that is available on
        some but not all incoming edges, insert a *speculative* load of
        the path on each lacking edge (splitting critical edges).  The
        subsequent availability pass then eliminates the original load —
        the 'Conditional' category of Figure 10.
        """
        inserted = False
        domtree = DominatorTree(self.proc)
        # Collect insertions first: (pred, block, [aps]) — edge splitting
        # during iteration would invalidate preds.
        plan = []
        for block in blocks:
            if block is self.proc.entry or not preds[block]:
                continue
            partial = may_in[block] & ~must_in[block]
            if not partial:
                continue
            wanted = self._anticipated_partial_loads(block, partial)
            if not wanted:
                continue
            # Never insert on a back edge: the inserted load would execute
            # on every iteration, trading one partial redundancy for a
            # new full one (the classic eager-PRE pessimization).  And if
            # a path's availability gap includes a back edge, inserting on
            # the other edges cannot complete it — skip the path entirely.
            back_edge_preds = [
                p for p in preds[block] if domtree.dominates(block, p)
            ]
            insertable_preds = [
                p for p in preds[block] if not domtree.dominates(block, p)
            ]
            completable = [
                ap
                for ap in wanted
                if all(
                    must_out[p] & (1 << self.ap_index[ap])
                    for p in back_edge_preds
                )
            ]
            for pred in insertable_preds:
                lacking = [
                    ap
                    for ap in completable
                    if not must_out[pred] & (1 << self.ap_index[ap])
                ]
                if lacking:
                    plan.append((pred, block, lacking))

        for pred, block, aps in plan:
            target = self._insertion_block(pred, block)
            for ap in aps:
                self._materialize_load(target, ap)
                self.stats.pre_inserted += 1
            inserted = True
        return inserted

    def _anticipated_partial_loads(self, block: BasicBlock, partial: int):
        """Partially-available paths loaded at *block* entry-anticipated.

        A path qualifies only if the block loads it before anything can
        kill it: then moving the load onto the lacking incoming edges
        never adds a load to any execution (every path through the block
        performed it anyway) and removes it from the available paths —
        true downward-safe PRE, no speculation cost.
        """
        wanted = []
        touched = 0
        for instr in block.instrs:
            if self.owner.visible_load(instr):
                ap = instr.ap
                assert ap is not None
                bit = 1 << self.ap_index[ap]
                if (
                    partial & bit
                    and not touched & bit
                    and ap not in wanted
                    and not _contains_unknown_index(ap)
                    and not _contains_fresh_root(ap)
                    # Re-materialising an open-array subscript emits a
                    # fresh dope-vector load per edge execution; unless
                    # RLE can eliminate dope loads, that trade loses.
                    and (self.owner.see_dope_loads or not _requires_dope(ap))
                ):
                    wanted.append(ap)
                touched |= bit
                continue
            # Anything else may kill availability: approximate by the
            # transfer function's effect (bits leaving must-availability).
            before = (1 << len(self.ap_list)) - 1
            after = self._transfer(instr, before)
            touched |= before & ~after
            if instr.dest is not None or instr.is_heap_store or instr.is_call:
                pass
        return wanted

    def _insertion_block(self, pred: BasicBlock, block: BasicBlock) -> BasicBlock:
        """A block on the pred->block edge safe for insertions."""
        if len(pred.successors()) <= 1:
            return pred
        # Split the critical edge.
        edge = BasicBlock("{}.pre_edge".format(block.name))
        edge.terminate(ins.Jump(block))
        _redirect(pred, block, edge)
        return edge

    def _block_out(self, block: BasicBlock, avail_in: int) -> int:
        avail = avail_in
        for instr in block.all_instrs():
            avail = self._transfer(instr, avail)
        return avail

    def _rewrite_block(self, block: BasicBlock, must: int, may: int) -> None:
        index = self.ap_index
        new_instrs: List[ins.Instr] = []
        eliminated_here = 0
        for instr in block.instrs:
            if self.owner.visible_load(instr):
                ap = instr.ap
                assert ap is not None
                bit = 1 << index[ap]
                shadow = self._shadow(ap)
                if must & bit:
                    # Redundant: replace with a register move (free — the
                    # value is already in the shadow register).
                    assert instr.dest is not None
                    replacement = ins.LoadVar(instr.dest, shadow, instr.loc)
                    replacement.counted = False
                    new_instrs.append(replacement)
                    if self.owner.record_status:
                        self.stats.load_status[instr.uid] = STATUS_ELIMINATED
                    eliminated_here += 1
                else:
                    new_instrs.append(instr)
                    assert instr.dest is not None
                    cache = ins.StoreVar(shadow, instr.dest, instr.loc)
                    cache.counted = False
                    new_instrs.append(cache)
                    if self.owner.record_status:
                        if may & bit:
                            self.stats.load_status[instr.uid] = STATUS_PARTIAL
                        else:
                            self.stats.load_status[instr.uid] = self.kill_reason.get(
                                ap, STATUS_FRESH
                            )
                must = self._transfer(instr, must)
                may = self._transfer(instr, may)
                continue

            if instr.is_heap_load and instr.is_dope:
                if self.owner.record_status:
                    self.stats.load_status[instr.uid] = STATUS_DOPE
                new_instrs.append(instr)
                continue

            new_instrs.append(instr)
            if instr.is_heap_store:
                ap = instr.ap
                assert ap is not None
                if ap in index:
                    # Store-to-load forwarding: refresh the cache.
                    src = instr.src  # type: ignore[attr-defined]
                    cache = ins.StoreVar(self._shadow(ap), src, instr.loc)
                    cache.counted = False
                    new_instrs.append(cache)
            collect: Dict[str, int] = {}
            must = self._transfer(instr, must, collect)
            may = self._transfer(instr, may)
            self._note_kills(collect)

        block.instrs = new_instrs
        if block.terminator is not None:
            collect = {}
            must = self._transfer(block.terminator, must, collect)
            self._note_kills(collect)
        self.stats.eliminated_loads += eliminated_here
        self.stats.per_proc_eliminated[self.proc.name] = (
            self.stats.per_proc_eliminated.get(self.proc.name, 0) + eliminated_here
        )

    def _note_kills(self, collect: Dict[str, int]) -> None:
        """Remember, per AP, the most recent reason it lost availability."""
        for reason_key, status in (
            ("store", STATUS_KILLED_STORE),
            ("storevar", STATUS_FRESH),
            ("call", STATUS_KILLED_CALL),
        ):
            mask = collect.get(reason_key, 0)
            if not mask:
                continue
            for i, ap in enumerate(self.ap_list):
                if mask & (1 << i):
                    self.kill_reason[ap] = status

    # ------------------------------------------------------------------
    # Phase 1: loop-invariant load motion

    def _hoist_loops(self) -> None:
        headers = [loop.header for loop in self._current_loops()]
        for header in headers:
            loop = self._loop_with_header(header)
            if loop is not None:
                self._hoist_one_loop(loop)

    def _current_loops(self) -> List[NaturalLoop]:
        domtree = DominatorTree(self.proc)
        return find_natural_loops(self.proc, domtree)

    def _loop_with_header(self, header: BasicBlock) -> Optional[NaturalLoop]:
        for loop in self._current_loops():
            if loop.header is header:
                return loop
        return None

    def _hoist_one_loop(self, loop: NaturalLoop) -> None:
        killed_roots, store_aps, has_unknown_call_kill, call_instrs = self._loop_kills(loop)

        # Blocks loading each path inside the loop.
        loading_blocks: Dict[AccessPath, Set[BasicBlock]] = {}
        for block in loop.body:
            for instr in block.instrs:
                if self.owner.visible_load(instr):
                    ap = instr.ap
                    assert ap is not None
                    loading_blocks.setdefault(ap, set()).add(block)

        candidates: List[AccessPath] = []
        for ap, blocks_loading in loading_blocks.items():
            # The paper: hoist "if the reference is loop invariant and is
            # executed on every iteration of the loop".  Executed on every
            # iteration = every header-to-latch path passes a loading
            # block (Figure 6 loads a.b^ on *both* branches of an IF).
            if not self._on_every_iteration(loop, blocks_loading):
                continue
            if self._hoistable(ap, killed_roots, store_aps, call_instrs):
                candidates.append(ap)

        if not candidates:
            return
        preheader = self._ensure_preheader(loop)
        for ap in candidates:
            self._materialize_load(preheader, ap)
            self.stats.hoisted_paths += 1

    def _on_every_iteration(
        self, loop: NaturalLoop, loading: Set[BasicBlock]
    ) -> bool:
        """True iff every header→latch path inside the loop passes through
        a block in *loading* (forward all-paths dataflow over the body)."""
        preds = self.proc.predecessors()
        passed: Dict[BasicBlock, bool] = {b: True for b in loop.body}
        passed[loop.header] = loop.header in loading
        changed = True
        while changed:
            changed = False
            for block in loop.body:
                if block is loop.header:
                    continue
                inside_preds = [p for p in preds[block] if p in loop.body]
                if not inside_preds:
                    new_value = block in loading
                else:
                    new_value = all(passed[p] for p in inside_preds) or (
                        block in loading
                    )
                if new_value != passed[block]:
                    passed[block] = new_value
                    changed = True
        return all(passed[latch] for latch in loop.latches)

    def _loop_kills(
        self, loop: NaturalLoop
    ) -> Tuple[Set[Symbol], List[AccessPath], bool, List[ins.Instr]]:
        killed_roots: Set[Symbol] = set()
        store_aps: List[AccessPath] = []
        call_instrs: List[ins.Instr] = []
        for block in loop.body:
            for instr in block.all_instrs():
                if isinstance(instr, ins.StoreVar):
                    killed_roots.add(instr.symbol)
                elif instr.is_heap_store:
                    assert instr.ap is not None
                    store_aps.append(instr.ap)
                    if isinstance(instr, ins.StoreInd):
                        killed_roots |= self._storeind_extra_roots(instr)
                elif instr.is_call:
                    call_instrs.append(instr)
                    killed_roots |= self.modref.call_written_var_roots(
                        instr, self.proc
                    )
        return killed_roots, store_aps, False, call_instrs

    def _hoistable(
        self,
        ap: AccessPath,
        killed_roots: Set[Symbol],
        store_aps: List[AccessPath],
        call_instrs: List[ins.Instr],
    ) -> bool:
        if _contains_unknown_index(ap) or _contains_fresh_root(ap):
            return False
        # Every prefix of the path must be loop-invariant: check the full
        # path and each intermediate reference against roots and stores.
        for prefix in _prefixes(ap):
            if prefix.root_symbols() & killed_roots:
                return False
            if not prefix.is_memory_reference():
                continue
            for store_ap in store_aps:
                if self.analysis.may_alias(prefix, store_ap):
                    return False
            for call in call_instrs:
                for written in self.modref.call_heap_writes(call):
                    if self.analysis.may_alias(prefix, written):
                        return False
        return True

    def _ensure_preheader(self, loop: NaturalLoop) -> BasicBlock:
        header = loop.header
        preds = self.proc.predecessors()[header]
        outside_preds = [p for p in preds if p not in loop.body]
        if (
            len(outside_preds) == 1
            and outside_preds[0].terminator is not None
            and isinstance(outside_preds[0].terminator, ins.Jump)
        ):
            return outside_preds[0]
        preheader = BasicBlock("{}.preheader".format(header.name))
        preheader.terminate(ins.Jump(header))
        for pred in outside_preds:
            _redirect(pred, header, preheader)
        if header is self.proc.entry:
            self.proc.entry = preheader
        return preheader

    def _materialize_load(self, block: BasicBlock, ap: AccessPath) -> None:
        """Emit instructions computing *ap*'s value into its shadow cache.

        Appends before the block's terminator (the block is a preheader,
        so it ends in an unconditional jump)."""
        insert_at = len(block.instrs)

        def emit(instr: ins.Instr) -> ins.Instr:
            nonlocal insert_at
            block.instrs.insert(insert_at, instr)
            insert_at += 1
            return instr

        value = self._emit_ap_value(emit, ap)
        # The CSE phase will see this load (it generates availability) and
        # will add the shadow store itself; adding it here too would be
        # redundant but harmless — rely on CSE for uniformity.

    def _emit_ap_value(self, emit_raw, ap: AccessPath) -> ins.Temp:
        proc = self.proc

        def emit(instr: ins.Instr) -> ins.Instr:
            # Hoisted loads are *speculative*: like an Alpha non-faulting
            # load, a NIL base or bad index yields a junk default instead
            # of a trap.  This is safe because the cached value is only
            # consumed where the original (faulting) load would have
            # executed, i.e. where the access is valid and unchanged.
            instr.speculative = True
            return emit_raw(instr)

        if isinstance(ap, VarRoot):
            dest = proc.new_temp()
            emit(ins.LoadVar(dest, ap.symbol))
            return dest
        if isinstance(ap, Deref):
            base_val = self._emit_ap_value(emit, ap.base)
            dest = proc.new_temp()
            emit(ins.LoadInd(dest, base_val, ap))
            return dest
        if isinstance(ap, Qualify):
            base = ap.base
            if isinstance(base, Deref) and isinstance(
                base.type, (ty.RecordType, ty.ArrayType)
            ):
                ptr_val = self._emit_ap_value(emit, base.base)
                dest = proc.new_temp()
                if ap.field == "$data":
                    emit(ins.LoadDopeData(dest, ptr_val, ap))
                elif ap.field == "$count":
                    emit(ins.LoadDopeCount(dest, ptr_val, ap))
                else:
                    emit(ins.LoadField(dest, ptr_val, ap.field, ap))
                return dest
            base_val = self._emit_ap_value(emit, base)
            dest = proc.new_temp()
            emit(ins.LoadField(dest, base_val, ap.field, ap))
            return dest
        if isinstance(ap, Subscript):
            base = ap.base
            assert isinstance(base, Deref) and isinstance(base.type, ty.ArrayType)
            ptr_val = self._emit_ap_value(emit, base.base)
            if base.type.is_open:
                data = proc.new_temp()
                emit(ins.LoadDopeData(data, ptr_val, Qualify(base, "$data", base.type, None)))
                array_val = data
            else:
                array_val = ptr_val
            index_val = proc.new_temp()
            if isinstance(ap.index, ConstIndex):
                emit(ins.ConstInstr(index_val, ap.index.value))
            elif isinstance(ap.index, VarIndex):
                emit(ins.LoadVar(index_val, ap.index.symbol))
            else:  # pragma: no cover - UnknownIndex filtered earlier
                raise AssertionError("unhoistable index survived filtering")
            dest = proc.new_temp()
            emit(ins.LoadElem(dest, array_val, index_val, ap))
            return dest
        raise AssertionError("unexpected AP {!r}".format(ap))

    @property
    def owner_program(self) -> ProgramIR:
        return self.owner.program


def _prefixes(ap: AccessPath) -> List[AccessPath]:
    chain: List[AccessPath] = []
    node: Optional[AccessPath] = ap
    while node is not None:
        chain.append(node)
        node = node.base
    chain.reverse()
    return chain


def _contains_unknown_index(ap: AccessPath) -> bool:
    node: Optional[AccessPath] = ap
    while node is not None:
        if isinstance(node, Subscript) and isinstance(node.index, UnknownIndex):
            return True
        node = node.base
    return False


def _contains_fresh_root(ap: AccessPath) -> bool:
    return isinstance(ap.root(), FreshRoot)


def _requires_dope(ap: AccessPath) -> bool:
    """True if materialising *ap* emits an implicit dope-vector load."""
    node: Optional[AccessPath] = ap
    while node is not None:
        if isinstance(node, Subscript):
            base = node.base
            if isinstance(base, Deref) and isinstance(base.type, ty.ArrayType) \
                    and base.type.is_open:
                return True
        if isinstance(node, Qualify) and node.field in ("$data", "$count"):
            return True
        node = node.base
    return False


def _redirect(block: BasicBlock, old: BasicBlock, new: BasicBlock) -> None:
    terminator = block.terminator
    if isinstance(terminator, ins.Jump):
        if terminator.target is old:
            terminator.target = new
    elif isinstance(terminator, ins.Branch):
        if terminator.if_true is old:
            terminator.if_true = new
        if terminator.if_false is old:
            terminator.if_false = new
