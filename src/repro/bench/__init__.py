"""The benchmark suite and the paper's table/figure generators.

* :mod:`repro.bench.registry` — the ten MiniM3 programs mirroring the
  paper's Table 4 suite (format, dformat, write-pickle, k-tree, slisp,
  pp, dom, postcard, m2tom3, m3cg) with their metadata;
* :mod:`repro.bench.suite` — compilation/execution driver with caching;
* :mod:`repro.bench.tables` — one function per table and figure of the
  paper's evaluation (Tables 4–6, Figures 8–12), each returning rows and
  a rendered text table.
"""

from repro.bench.registry import (
    BenchmarkInfo,
    BENCHMARKS,
    DYNAMIC_BENCHMARKS,
    benchmark_names,
    dynamic_benchmark_names,
    load_source,
)
from repro.bench.suite import BenchmarkSuite
from repro.bench import tables

__all__ = [
    "BenchmarkInfo",
    "BENCHMARKS",
    "DYNAMIC_BENCHMARKS",
    "benchmark_names",
    "dynamic_benchmark_names",
    "load_source",
    "BenchmarkSuite",
    "tables",
]
