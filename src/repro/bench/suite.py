"""Suite driver: compile once, optimize/run per configuration, cache.

The figures re-run the same programs under several configurations (base,
three TBAA levels, open world, Minv+Inlining combos); the suite memoises
compiled programs and execution results so each (benchmark, config) pair
is computed once per process.

A suite is either the registered paper benchmarks (the default) or an
arbitrary directory of ``.m3`` files (:meth:`BenchmarkSuite.from_directory`);
the table/figure generators only go through the suite's accessors
(:meth:`names`, :meth:`dynamic_names`, :meth:`load_source`,
:meth:`description`), so they work over both.
"""

import os
from typing import Dict, List, Optional, Tuple

from repro import Program, compile_program
from repro.bench import registry
from repro.obs import core as obs
from repro.opt.pipeline import PipelineResult
from repro.runtime import ExecutionStats, Interpreter, LimitStudy, MachineModel, RedundancyReport


class RunConfig:
    """One named optimization configuration."""

    def __init__(
        self,
        analysis: Optional[str] = None,  # None = no RLE
        minv_inline: bool = False,
        open_world: bool = False,
        hoist: bool = True,
        see_dope_loads: bool = False,
        copyprop: bool = False,
        pre: bool = False,
    ):
        self.analysis = analysis
        self.minv_inline = minv_inline
        self.open_world = open_world
        self.hoist = hoist
        self.see_dope_loads = see_dope_loads
        self.copyprop = copyprop
        self.pre = pre

    def key(self) -> Tuple:
        return (
            self.analysis,
            self.minv_inline,
            self.open_world,
            self.hoist,
            self.see_dope_loads,
            self.copyprop,
            self.pre,
        )

    @property
    def is_base(self) -> bool:
        return (
            self.analysis is None
            and not self.minv_inline
            and not self.copyprop
        )

    def __repr__(self) -> str:
        return "<RunConfig {}>".format(self.key())


BASE = RunConfig()


class BenchmarkSuite:
    """Caching driver over the registered benchmarks, or over an
    explicit ``name -> source path`` mapping (directory suites)."""

    def __init__(self, sources: Optional[Dict[str, str]] = None) -> None:
        self._sources = dict(sources) if sources is not None else None
        self._programs: Dict[str, Program] = {}
        self._pipelines: Dict[Tuple[str, Tuple], PipelineResult] = {}
        self._runs: Dict[Tuple[str, Tuple], ExecutionStats] = {}
        self._limits: Dict[Tuple[str, Tuple], RedundancyReport] = {}

    @classmethod
    def from_directory(cls, directory: str) -> "BenchmarkSuite":
        """A suite over every ``*.m3`` file in *directory* (sorted, named
        by file stem).  Raises ``FileNotFoundError`` if there are none."""
        entries = sorted(
            f for f in os.listdir(directory) if f.endswith(".m3")
        )
        if not entries:
            raise FileNotFoundError(
                "no .m3 programs found in {!r}".format(directory)
            )
        return cls(
            sources={
                os.path.splitext(f)[0]: os.path.join(directory, f)
                for f in entries
            }
        )

    # -- program-set accessors (the generators' only view) -------------

    def names(self) -> List[str]:
        """Every program name in this suite, in stable order."""
        if self._sources is not None:
            return list(self._sources)
        return registry.benchmark_names()

    def dynamic_names(self) -> List[str]:
        """Names whose programs are executed for the dynamic figures
        (directory suites treat every program as dynamic)."""
        if self._sources is not None:
            return list(self._sources)
        return registry.dynamic_benchmark_names()

    def is_dynamic(self, name: str) -> bool:
        return self._sources is not None or registry.info(name).dynamic

    def load_source(self, name: str) -> str:
        if self._sources is not None:
            with open(self._sources[name]) as f:
                return f.read()
        return registry.load_source(name)

    def source_path(self, name: str) -> str:
        if self._sources is not None:
            return self._sources[name]
        return registry.source_path(name)

    def description(self, name: str) -> str:
        if self._sources is not None:
            return ""
        return registry.info(name).description

    def drop(self, name: str) -> None:
        """Remove one program from a directory suite (e.g. after its
        compile failed) so the generators skip it."""
        if self._sources is None:
            raise ValueError("cannot drop programs from the registry suite")
        self._sources.pop(name, None)
        self._programs.pop(name, None)

    # ------------------------------------------------------------------

    def program(self, name: str) -> Program:
        prog = self._programs.get(name)
        if prog is None:
            with obs.span("bench.compile", program=name):
                prog = compile_program(self.load_source(name), name)
            self._programs[name] = prog
        return prog

    def build(self, name: str, config: RunConfig = BASE) -> PipelineResult:
        key = (name, config.key())
        result = self._pipelines.get(key)
        if result is None:
            program = self.program(name)
            with obs.span("bench.build", program=name,
                          config=repr(config.key())):
                if config.is_base:
                    result = program.base()
                else:
                    result = program.pipeline.build(
                        analysis=config.analysis,
                        rle=config.analysis is not None,
                        minv_inline=config.minv_inline,
                        open_world=config.open_world,
                        hoist=config.hoist,
                        see_dope_loads=config.see_dope_loads,
                        copyprop=config.copyprop,
                        pre=config.pre,
                    )
            self._pipelines[key] = result
        return result

    def run(self, name: str, config: RunConfig = BASE) -> ExecutionStats:
        """Execute under the machine model; cached per configuration."""
        key = (name, config.key())
        stats = self._runs.get(key)
        if stats is None:
            result = self.build(name, config)
            with obs.span("bench.run", program=name,
                          config=repr(config.key())):
                interp = Interpreter(result.program, machine=MachineModel())
                stats = interp.run()
            self._runs[key] = stats
        return stats

    def limit_study(self, name: str, config: RunConfig = BASE) -> RedundancyReport:
        """Dynamic redundancy measurement (no machine model: traces only)."""
        key = (name, config.key())
        report = self._limits.get(key)
        if report is None:
            result = self.build(name, config)
            with obs.span("bench.limit_study", program=name):
                study = LimitStudy(result.program, result.load_status)
                report = study.run()
            self._limits[key] = report
        return report

    # ------------------------------------------------------------------

    def relative_time(self, name: str, config: RunConfig) -> float:
        """Simulated time of *config* relative to base (1.0 = no change)."""
        base_cycles = self.run(name, BASE).cycles
        opt_cycles = self.run(name, config).cycles
        return opt_cycles / base_cycles if base_cycles else 1.0
