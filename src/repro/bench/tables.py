"""Generators for every table and figure in the paper's evaluation.

Each function takes a (shared) :class:`~repro.bench.suite.BenchmarkSuite`
and returns a :class:`TableResult` whose ``rows`` are plain data and
whose ``text`` is an aligned text rendering.  The benchmark files under
``benchmarks/`` print these and assert the paper's qualitative shapes.

Generators reach programs only through the suite's accessors, never the
registry, so every table also works over a directory suite
(:meth:`~repro.bench.suite.BenchmarkSuite.from_directory` — the
``repro tables --programs DIR`` path).
"""

from typing import Dict, List, Optional, Sequence

from repro.analysis import ANALYSIS_NAMES, AliasPairCounter
from repro.analysis.alias_pairs import DEFAULT_ENGINE
from repro.bench.suite import BASE, BenchmarkSuite, RunConfig
from repro.runtime.limit import Category
from repro.util.tables import render_table


class TableResult:
    """A regenerated table/figure: data rows plus a text rendering."""

    def __init__(self, title: str, headers: Sequence[str], rows: List[List[object]]):
        self.title = title
        self.headers = list(headers)
        self.rows = rows

    @property
    def text(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)

    def column(self, header: str) -> List[object]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row(self, name: str) -> List[object]:
        for row in self.rows:
            if row[0] == name:
                return row
        raise KeyError(name)

    def __repr__(self) -> str:
        return "<TableResult {!r} ({} rows)>".format(self.title, len(self.rows))


def _pct(x: float) -> str:
    return "{:.0f}".format(100.0 * x)


def count_source_lines(source: str) -> int:
    """Non-comment, non-blank source lines (Table 4's "Lines")."""
    out_lines = 0
    depth = 0
    for line in source.splitlines():
        stripped = []
        i = 0
        while i < len(line):
            two = line[i : i + 2]
            if two == "(*":
                depth += 1
                i += 2
            elif two == "*)" and depth > 0:
                depth -= 1
                i += 2
            elif depth == 0:
                stripped.append(line[i])
                i += 1
            else:
                i += 1
        if "".join(stripped).strip():
            out_lines += 1
    return out_lines


# ----------------------------------------------------------------------
# Table 4: benchmark descriptions


def table4(suite: BenchmarkSuite, names: Optional[List[str]] = None) -> TableResult:
    """Lines, instructions executed, % heap loads, % other loads."""
    rows: List[List[object]] = []
    for name in names or suite.names():
        source = suite.load_source(name)
        lines = count_source_lines(source)
        if suite.is_dynamic(name):
            stats = suite.run(name, BASE)
            rows.append(
                [
                    name,
                    lines,
                    stats.instructions,
                    _pct(stats.heap_load_fraction),
                    _pct(stats.other_load_fraction),
                    suite.description(name),
                ]
            )
        else:
            rows.append([name, lines, "-", "-", "-", suite.description(name)])
    return TableResult(
        "Table 4: Description of Benchmark Programs",
        ["Name", "Lines", "Instructions", "% Heap loads", "% Other loads", "Description"],
        rows,
    )


# ----------------------------------------------------------------------
# Table 5: alias pairs


def table5(
    suite: BenchmarkSuite,
    names: Optional[List[str]] = None,
    engine: str = DEFAULT_ENGINE,
) -> TableResult:
    """References and local/global alias pairs for the three analyses."""
    rows: List[List[object]] = []
    for name in names or suite.names():
        program = suite.program(name)
        base = suite.build(name, BASE)
        row: List[object] = [name]
        references = None
        for analysis_name in ANALYSIS_NAMES:
            analysis = program.analysis(analysis_name)
            report = AliasPairCounter(base.program, analysis, engine=engine).count()
            references = report.references
            row.extend([report.local_pairs, report.global_pairs])
        row.insert(1, references)
        rows.append(row)
    return TableResult(
        "Table 5: Alias Pairs",
        [
            "Program",
            "References",
            "TD L Alias",
            "TD G Alias",
            "FTD L Alias",
            "FTD G Alias",
            "SMFTR L Alias",
            "SMFTR G Alias",
        ],
        rows,
    )


def table5_summary(
    suite: BenchmarkSuite,
    names: Optional[List[str]] = None,
    engine: str = DEFAULT_ENGINE,
) -> TableResult:
    """The paper's Section 3.3 averages: how many other references each
    heap reference may alias, intra- and inter-procedurally.

    (The paper: 4.7 / 3.4 / 3.4 local and 54.1 / 12.7 / 12.7 global for
    TypeDecl / FieldTypeDecl / SMFieldTypeRefs.)
    """
    totals = {name: [0, 0, 0] for name in ("refs", "local", "global")}
    locals_by = {a: 0 for a in ANALYSIS_NAMES}
    globals_by = {a: 0 for a in ANALYSIS_NAMES}
    references = 0
    for name in names or suite.names():
        program = suite.program(name)
        base = suite.build(name, BASE)
        counted_refs = None
        for analysis_name in ANALYSIS_NAMES:
            report = AliasPairCounter(
                base.program, program.analysis(analysis_name), engine=engine
            ).count()
            locals_by[analysis_name] += report.local_pairs
            globals_by[analysis_name] += report.global_pairs
            counted_refs = report.references
        references += counted_refs or 0
    rows = []
    for analysis_name in ANALYSIS_NAMES:
        rows.append(
            [
                analysis_name,
                round(2.0 * locals_by[analysis_name] / references, 2),
                round(2.0 * globals_by[analysis_name] / references, 2),
            ]
        )
    return TableResult(
        "Average may-alias partners per heap reference (Section 3.3 style)",
        ["Analysis", "Local per ref", "Global per ref"],
        rows,
    )


# ----------------------------------------------------------------------
# Table 6: redundant loads removed statically


def table6(suite: BenchmarkSuite, names: Optional[List[str]] = None) -> TableResult:
    rows: List[List[object]] = []
    for name in names or suite.dynamic_names():
        row: List[object] = [name]
        for analysis_name in ANALYSIS_NAMES:
            result = suite.build(name, RunConfig(analysis=analysis_name))
            assert result.rle is not None
            row.append(result.rle.eliminated_loads)
        rows.append(row)
    return TableResult(
        "Table 6: Number of Redundant Loads Removed Statically",
        ["Program", "TypeDecl", "FieldTypeDecl", "SMFieldTypeRefs"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 8: simulated execution time impact of RLE


def figure8(suite: BenchmarkSuite, names: Optional[List[str]] = None) -> TableResult:
    """Percent of original running time under RLE per TBAA level."""
    rows: List[List[object]] = []
    for name in names or suite.dynamic_names():
        row: List[object] = [name, 100]
        for analysis_name in ANALYSIS_NAMES:
            rel = suite.relative_time(name, RunConfig(analysis=analysis_name))
            row.append(round(100.0 * rel, 1))
        rows.append(row)
    return TableResult(
        "Figure 8: Impact of RLE (percent of original running time)",
        ["Program", "Base", "Types only", "Types and fields", "Types, fields, and merges"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 9: dynamic redundancy before/after RLE


def figure9(suite: BenchmarkSuite, names: Optional[List[str]] = None) -> TableResult:
    rows: List[List[object]] = []
    for name in names or suite.dynamic_names():
        before = suite.limit_study(name, BASE)
        after = suite.limit_study(name, RunConfig(analysis="SMFieldTypeRefs"))
        rows.append(
            [
                name,
                round(before.redundant_fraction, 3),
                round(after.redundant_fraction, 3),
            ]
        )
    return TableResult(
        "Figure 9: Comparing TBAA to an Upper Bound "
        "(fraction of heap references that are redundant)",
        ["Program", "Redundant originally", "Redundant after optimizations"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 10: where the residue comes from


def figure10(
    suite: BenchmarkSuite,
    names: Optional[List[str]] = None,
    see_dope_loads: bool = False,
) -> TableResult:
    """Five-way classification of post-RLE redundant loads.

    ``see_dope_loads=True`` runs the ablation where RLE can eliminate
    dope-vector loads (beyond the paper, which could not)."""
    rows: List[List[object]] = []
    config = RunConfig(analysis="SMFieldTypeRefs", see_dope_loads=see_dope_loads)
    for name in names or suite.dynamic_names():
        report = suite.limit_study(name, config)
        rows.append(
            [name]
            + [round(report.category_fraction(c), 4) for c in Category]
            + [round(report.redundant_fraction, 4)]
        )
    return TableResult(
        "Figure 10: Source of Redundant Loads after Optimizations "
        "(fraction of heap references)",
        ["Program"] + [c.value for c in Category] + ["Total"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 11: cumulative impact of RLE, Minv+Inlining


def figure11(suite: BenchmarkSuite, names: Optional[List[str]] = None) -> TableResult:
    rows: List[List[object]] = []
    rle = RunConfig(analysis="SMFieldTypeRefs")
    minv = RunConfig(minv_inline=True)
    both = RunConfig(analysis="SMFieldTypeRefs", minv_inline=True)
    for name in names or suite.dynamic_names():
        rows.append(
            [
                name,
                100,
                round(100.0 * suite.relative_time(name, rle), 1),
                round(100.0 * suite.relative_time(name, minv), 1),
                round(100.0 * suite.relative_time(name, both), 1),
            ]
        )
    return TableResult(
        "Figure 11: Cumulative Impact of Optimizations "
        "(percent of original running time)",
        ["Program", "Base", "RLE", "Minv+Inlining", "RLE+Minv+Inlining"],
        rows,
    )


# ----------------------------------------------------------------------
# Figure 12: open vs closed world


def figure12(suite: BenchmarkSuite, names: Optional[List[str]] = None) -> TableResult:
    rows: List[List[object]] = []
    closed = RunConfig(analysis="SMFieldTypeRefs")
    opened = RunConfig(analysis="SMFieldTypeRefs", open_world=True)
    for name in names or suite.dynamic_names():
        rows.append(
            [
                name,
                round(100.0 * suite.relative_time(name, closed), 1),
                round(100.0 * suite.relative_time(name, opened), 1),
            ]
        )
    return TableResult(
        "Figure 12: Open and Closed World Assumptions "
        "(percent of original running time)",
        ["Program", "RLE", "RLE Open"],
        rows,
    )


# ----------------------------------------------------------------------
# Extension: static alias pairs, open vs closed (Section 4's remark)


def open_world_pairs(
    suite: BenchmarkSuite,
    names: Optional[List[str]] = None,
    engine: str = DEFAULT_ENGINE,
) -> TableResult:
    """Global alias pairs, closed vs open world, SMFieldTypeRefs."""
    rows: List[List[object]] = []
    for name in names or suite.names():
        program = suite.program(name)
        base = suite.build(name, BASE)
        closed = AliasPairCounter(
            base.program, program.analysis("SMFieldTypeRefs"), engine=engine
        ).count()
        opened = AliasPairCounter(
            base.program,
            program.analysis("SMFieldTypeRefs", open_world=True),
            engine=engine,
        ).count()
        rows.append([name, closed.global_pairs, opened.global_pairs])
    return TableResult(
        "Open-world effect on global alias pairs (SMFieldTypeRefs)",
        ["Program", "Closed G Alias", "Open G Alias"],
        rows,
    )
