"""Machine-readable performance numbers for the alias-query engine.

``make bench-quick`` runs :func:`run_quick_bench` and writes
``BENCH_alias.json`` at the repository root; the test suite runs the same
code with tiny repetition counts to keep the JSON schema honest.  The
report captures the three costs the paper's Section 2.5 discusses plus
the engineering numbers this reproduction adds on top:

* ``construction_ms`` — building each analysis from the checked module
  (the "single linear pass" claim);
* ``query_throughput`` — raw ``may_alias`` queries over all reference
  pairs of one benchmark, in thousands of queries per second, with the
  memo-cache statistics;
* ``table5`` — full-suite Table 5 wall time under the per-pair
  ``reference`` engine, the partition-based ``fast`` engine and the
  bitset-matrix ``bulk`` kernels (build time and pure re-count time
  reported separately, plus the active backend), with the resulting
  speedups;
* ``serve`` — the warm-daemon vs cold single-shot row pair
  (``serve.warm`` / ``serve.cold``, :mod:`repro.serve.bench`): what the
  analysis-as-a-service layer saves on repeated queries.

``BENCH_alias.json`` is overwritten in place; ``--history FILE.jsonl``
additionally *appends* a :mod:`repro.obs.history` ledger record (git
sha, host fingerprint, the report's numbers as phase series, counters)
so successive runs stay comparable — ``repro bench compare``/``gate``
consume that ledger.
"""

import json
import time
from typing import Dict, List, Optional

from repro.analysis import ANALYSIS_NAMES, AliasPairCounter, collect_heap_references
from repro.analysis.bulk import BACKENDS, BulkAliasMatrix, default_backend
from repro.analysis.openworld import AnalysisContext
from repro.bench import registry
from repro.bench.suite import BASE, BenchmarkSuite
from repro.obs import core as obs
from repro.obs import history

#: Bumped whenever the JSON layout changes.
#: v2: ``table5`` gained the bulk-kernel rows (``bulk_build_ms``,
#: ``bulk_ms``, ``bulk_backend``, ``speedup_bulk``).
#: v3: new top-level ``serve`` section with the warm-daemon vs cold
#: single-shot row pair (``serve.warm`` / ``serve.cold``).
SCHEMA_VERSION = 3

#: Keys every report must carry (the smoke test checks these).
REPORT_KEYS = ("schema", "query_benchmark", "construction_ms",
               "query_throughput", "table5", "serve")


def _best(fn, rounds: int) -> float:
    """Best-of-*rounds* wall time of ``fn()`` in seconds (at least one)."""
    best = float("inf")
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_construction(suite: BenchmarkSuite, name: str,
                         rounds: int = 3) -> Dict[str, float]:
    """Per-analysis build time (ms) from an already-checked module."""
    program = suite.program(name)
    out: Dict[str, float] = {}
    with obs.span("quick.construction", program=name):
        for analysis_name in ANALYSIS_NAMES:
            def build() -> None:
                AnalysisContext(program.checked).build(analysis_name)
            out[analysis_name] = round(_best(build, rounds) * 1000, 3)
    return out


def measure_query_throughput(suite: BenchmarkSuite, name: str,
                             rounds: int = 3) -> Dict[str, dict]:
    """All-pairs ``may_alias`` throughput per analysis, with cache stats.

    Each round starts from a cold cache; cache statistics are taken from
    the last round, so they describe exactly one all-pairs sweep.
    """
    program = suite.program(name)
    base = suite.build(name, BASE)
    refs = [ap for aps in collect_heap_references(base.program).values()
            for ap in aps]
    queries = len(refs) * (len(refs) - 1) // 2
    ctx = AnalysisContext(program.checked)
    out: Dict[str, dict] = {}
    with obs.span("quick.query", program=name):
        for analysis_name in ANALYSIS_NAMES:
            analysis = ctx.build(analysis_name)

            def sweep() -> None:
                analysis.cache_clear()
                may_alias = analysis.may_alias
                for i in range(len(refs)):
                    for j in range(i + 1, len(refs)):
                        may_alias(refs[i], refs[j])

            elapsed = _best(sweep, rounds)
            out[analysis_name] = {
                "queries": queries,
                "ms": round(elapsed * 1000, 3),
                "kqps": round(queries / max(elapsed, 1e-9) / 1000, 1),
                "cache": analysis.cache_stats(),
            }
    return out


def measure_table5_engines(suite: BenchmarkSuite,
                           names: Optional[List[str]] = None,
                           rounds: int = 3) -> Dict[str, object]:
    """Full-suite Table 5 counting time under both engines.

    Analyses and reference lists are built once; each timed round clears
    the per-analysis query caches so both engines start cold.
    """
    names = names or registry.benchmark_names()
    counters = []
    for name in names:
        program = suite.program(name)
        base = suite.build(name, BASE)
        for analysis_name in ANALYSIS_NAMES:
            analysis = program.analysis(analysis_name)
            counters.append((
                analysis,
                AliasPairCounter(base.program, analysis, engine="reference"),
                AliasPairCounter(base.program, analysis, engine="fast"),
            ))

    def run(index: int) -> None:
        for entry in counters:
            entry[0].cache_clear()
            entry[index].count()

    matrices: List[BulkAliasMatrix] = []

    def build_bulk() -> None:
        matrices.clear()
        for analysis, reference_counter, _ in counters:
            analysis.cache_clear()
            matrices.append(BulkAliasMatrix.from_references(
                reference_counter.references, analysis))

    def run_bulk() -> None:
        for matrix in matrices:
            matrix.count_pairs()

    with obs.span("quick.table5"):
        reference = _best(lambda: run(1), rounds)
        fast = _best(lambda: run(2), rounds)
        bulk_build = _best(build_bulk, rounds)
        bulk = _best(run_bulk, rounds)
    return {
        "programs": list(names),
        "analyses": list(ANALYSIS_NAMES),
        "reference_ms": round(reference * 1000, 3),
        "fast_ms": round(fast * 1000, 3),
        "bulk_build_ms": round(bulk_build * 1000, 3),
        "bulk_ms": round(bulk * 1000, 3),
        "bulk_backend": default_backend(),
        "speedup": round(reference / max(fast, 1e-9), 2),
        "speedup_bulk": round(fast / max(bulk, 1e-9), 2),
    }


def measure_serve(names: Optional[List[str]] = None,
                  rounds: int = 3) -> Dict[str, object]:
    """The ``serve.warm`` / ``serve.cold`` row pair (schema v3).

    Delegates to :func:`repro.serve.bench.run_serve_bench` — the same
    measurement ``repro bench serve`` runs and ``repro bench gate
    --serve`` enforces — and keeps only the ledger-worthy numbers.
    """
    from repro.serve.bench import run_serve_bench

    result = run_serve_bench(names=names, repeats=rounds)
    return {
        "benchmarks": result["benchmarks"],
        "queries": result["queries"],
        "cold_ms": result["cold_ms"],
        "warm_ms": result["warm_ms"],
        "speedup": result["speedup"],
    }


def run_quick_bench(query_benchmark: str = "m3cg",
                    table5_names: Optional[List[str]] = None,
                    rounds: int = 3) -> Dict[str, object]:
    """Collect every number ``BENCH_alias.json`` records."""
    suite = BenchmarkSuite()
    return {
        "schema": SCHEMA_VERSION,
        "query_benchmark": query_benchmark,
        "construction_ms": measure_construction(suite, query_benchmark, rounds),
        "query_throughput": measure_query_throughput(suite, query_benchmark, rounds),
        "table5": measure_table5_engines(suite, table5_names, rounds),
        "serve": measure_serve([query_benchmark], rounds),
    }


def normalize_report(obj):
    """Round every float to 3 decimals, recursively.

    ``BENCH_alias.json`` is committed, so repeated ``make bench-quick``
    runs should produce the smallest possible diffs: keys are emitted
    sorted and every float is pinned to a fixed rounding, leaving wall
    time itself as the only source of churn.
    """
    if isinstance(obj, float):
        return round(obj, 3)
    if isinstance(obj, dict):
        return {key: normalize_report(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [normalize_report(value) for value in obj]
    return obj


def report_phases(report: Dict[str, object]) -> Dict[str, Dict[str, float]]:
    """The report's own numbers as history phase series (in seconds).

    These ride along with the span-derived phases in the ledger record,
    so ``repro bench compare`` can track the engine numbers the quick
    bench exists to measure — construction, query sweep and the Table 5
    engines — not just the suite driver's wall clock.
    """
    benchmark = str(report["query_benchmark"])
    phases: Dict[str, Dict[str, float]] = {benchmark: {}, history.SUITE_BUCKET: {}}
    for analysis_name, ms in report["construction_ms"].items():
        phases[benchmark]["quick.construction." + analysis_name] = \
            round(ms / 1000.0, 6)
    for analysis_name, entry in report["query_throughput"].items():
        phases[benchmark]["quick.query." + analysis_name] = \
            round(entry["ms"] / 1000.0, 6)
    table5 = report["table5"]
    phases[history.SUITE_BUCKET]["quick.table5.reference"] = \
        round(table5["reference_ms"] / 1000.0, 6)
    phases[history.SUITE_BUCKET]["quick.table5.fast"] = \
        round(table5["fast_ms"] / 1000.0, 6)
    phases[history.SUITE_BUCKET]["quick.table5.bulk_build"] = \
        round(table5["bulk_build_ms"] / 1000.0, 6)
    phases[history.SUITE_BUCKET]["quick.table5.bulk"] = \
        round(table5["bulk_ms"] / 1000.0, 6)
    serve = report["serve"]
    phases[history.SUITE_BUCKET]["serve.cold"] = \
        round(serve["cold_ms"] / 1000.0, 6)
    phases[history.SUITE_BUCKET]["serve.warm"] = \
        round(serve["warm_ms"] / 1000.0, 6)
    return phases


def validate_report(report: Dict[str, object]) -> None:
    """Raise ``AssertionError`` unless *report* matches the schema."""
    for key in REPORT_KEYS:
        assert key in report, "missing key {!r}".format(key)
    assert report["schema"] == SCHEMA_VERSION
    construction = report["construction_ms"]
    throughput = report["query_throughput"]
    for analysis_name in ANALYSIS_NAMES:
        assert construction[analysis_name] >= 0
        entry = throughput[analysis_name]
        assert entry["queries"] > 0 and entry["kqps"] > 0
        cache = entry["cache"]
        assert set(cache) == {"hits", "misses", "size"}
        assert cache["misses"] == cache["size"] > 0
    table5 = report["table5"]
    assert table5["reference_ms"] > 0 and table5["fast_ms"] > 0
    assert table5["bulk_build_ms"] > 0 and table5["bulk_ms"] > 0
    assert table5["bulk_backend"] in BACKENDS
    assert table5["speedup"] > 0 and table5["speedup_bulk"] > 0
    serve = report["serve"]
    assert serve["queries"] > 0 and serve["benchmarks"]
    assert serve["cold_ms"] > 0 and serve["warm_ms"] > 0
    assert serve["speedup"] > 0


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="write machine-readable alias-engine benchmark numbers")
    parser.add_argument("-o", "--output", default="BENCH_alias.json")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--prom", metavar="FILE", default=None,
                        help="also dump the observability metric registry "
                        "in Prometheus text format (e.g. BENCH_obs.prom)")
    parser.add_argument("--history", metavar="FILE.jsonl", default=None,
                        help="append a schema-versioned run record (git "
                        "sha, host, per-phase seconds, counters) to this "
                        "benchmark ledger (e.g. BENCH_history.jsonl)")
    args = parser.parse_args(argv)
    if args.prom is not None or args.history is not None:
        from repro.obs import metrics
        metrics.registry().reset()
    if args.history is not None:
        obs.reset()
        obs.enable()
    try:
        report = run_quick_bench(rounds=args.rounds)
    finally:
        obs.disable()
    validate_report(report)
    report = normalize_report(report)
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    table5 = report["table5"]
    print("wrote {}: table5 reference {}ms fast {}ms ({}x)".format(
        args.output, table5["reference_ms"], table5["fast_ms"],
        table5["speedup"]))
    if args.prom is not None:
        from repro.obs.promtext import write_prom
        from repro.qa import chaos

        # Chaos/robustness series appear at zero even in fault-free
        # runs, so the .prom surface is stable across chaos on/off.
        chaos.register_metrics()
        lines = write_prom(args.prom)
        print("wrote {}: {} lines".format(args.prom, lines))
    if args.history is not None:
        record = history.collect_record(
            "bench-quick", extra_phases=report_phases(report))
        history.append_record(args.history, record)
        print("appended {} record to {} (sha {})".format(
            record["label"], args.history,
            (record["git_sha"] or "unknown")[:12]))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
