(* m3cg — a small code generator, after the paper's m3cg ("M3 v3.5.1
   code generator + extensions").  Builds expression trees, emits stack
   machine code into an integer buffer with a virtual register pool,
   peephole-optimizes the buffer, then executes it on a tiny VM and
   checks the result against direct tree evaluation.

   Heap behaviour exercised: a code buffer behind a REF (emit loop
   invariants), register-pool bookkeeping via a REF RECORD, a VM whose
   hot loop indexes two open arrays, and subtype dispatch in emission. *)

MODULE M3CG;

CONST
  Exprs    = 40;
  CodeMax  = 6000;

  OpPush  = 1;   (* push immediate *)
  OpLoad  = 2;   (* push variable slot *)
  OpAdd   = 3;
  OpSub   = 4;
  OpMul   = 5;
  OpNeg   = 6;
  OpHalt  = 7;

TYPE
  Ints = REF ARRAY OF INTEGER;

  Expr = OBJECT
  METHODS
    emit () := ExprEmit;
    eval (): INTEGER := ExprEval;
  END;

  ConstExpr = Expr OBJECT
    value: INTEGER;
  OVERRIDES
    emit := ConstEmit;
    eval := ConstEval;
  END;

  SlotExpr = Expr OBJECT
    slot: INTEGER;
  OVERRIDES
    emit := SlotEmit;
    eval := SlotEval;
  END;

  BinExpr = Expr OBJECT
    op: INTEGER;           (* OpAdd / OpSub / OpMul *)
    left, right: Expr;
  OVERRIDES
    emit := BinEmit;
    eval := BinEval;
  END;

  NegExpr = Expr OBJECT
    operand: Expr;
  OVERRIDES
    emit := NegEmit;
    eval := NegEval;
  END;

  (* The emitter state lives behind a REF RECORD. *)
  Emitter = REF RECORD
    code: Ints;
    pc: INTEGER;
    maxDepth: INTEGER;
    depth: INTEGER;
  END;

VAR
  seed: INTEGER;
  em: Emitter;
  slots: Ints;

PROCEDURE Rand (range: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN (seed DIV 65536) MOD range;
END Rand;

(* ---------- emission ---------- *)

PROCEDURE Emit1 (op: INTEGER) =
BEGIN
  ASSERT (em^.pc < NUMBER (em^.code^));
  em^.code^[em^.pc] := op;
  em^.pc := em^.pc + 1;
END Emit1;

PROCEDURE Emit2 (op, arg: INTEGER) =
BEGIN
  Emit1 (op);
  Emit1 (arg);
END Emit2;

PROCEDURE PushDepth () =
BEGIN
  em^.depth := em^.depth + 1;
  IF em^.depth > em^.maxDepth THEN
    em^.maxDepth := em^.depth;
  END;
END PushDepth;

PROCEDURE PopDepth () =
BEGIN
  em^.depth := em^.depth - 1;
END PopDepth;

PROCEDURE ExprEmit (self: Expr) =
BEGIN
  Emit2 (OpPush, 0);
  PushDepth ();
END ExprEmit;

PROCEDURE ExprEval (self: Expr): INTEGER =
BEGIN
  RETURN 0;
END ExprEval;

PROCEDURE ConstEmit (self: ConstExpr) =
BEGIN
  Emit2 (OpPush, self.value);
  PushDepth ();
END ConstEmit;

PROCEDURE ConstEval (self: ConstExpr): INTEGER =
BEGIN
  RETURN self.value;
END ConstEval;

PROCEDURE SlotEmit (self: SlotExpr) =
BEGIN
  Emit2 (OpLoad, self.slot);
  PushDepth ();
END SlotEmit;

PROCEDURE SlotEval (self: SlotExpr): INTEGER =
BEGIN
  RETURN slots^[self.slot];
END SlotEval;

PROCEDURE BinEmit (self: BinExpr) =
BEGIN
  self.left.emit ();
  self.right.emit ();
  Emit1 (self.op);
  PopDepth ();
END BinEmit;

PROCEDURE BinEval (self: BinExpr): INTEGER =
VAR l, r: INTEGER;
BEGIN
  l := self.left.eval ();
  r := self.right.eval ();
  CASE self.op OF
  | 3 => RETURN (l + r) MOD 1000003;
  | 4 => RETURN (l - r) MOD 1000003;
  ELSE
    RETURN (l * r) MOD 1000003;
  END;
END BinEval;

PROCEDURE NegEmit (self: NegExpr) =
BEGIN
  self.operand.emit ();
  Emit1 (OpNeg);
END NegEmit;

PROCEDURE NegEval (self: NegExpr): INTEGER =
BEGIN
  RETURN (0 - self.operand.eval ()) MOD 1000003;
END NegEval;

(* ---------- peephole: PUSH 0 / ADD  and  NEG NEG  removal ---------- *)

PROCEDURE Peephole (): INTEGER =
VAR
  read, write, removed: INTEGER;
  op: INTEGER;
BEGIN
  read := 0;
  write := 0;
  removed := 0;
  WHILE read < em^.pc DO
    op := em^.code^[read];
    IF op = OpNeg AND read + 1 < em^.pc AND em^.code^[read + 1] = OpNeg THEN
      read := read + 2;
      removed := removed + 2;
    ELSIF op = OpPush AND read + 2 < em^.pc
          AND em^.code^[read + 1] = 0
          AND em^.code^[read + 2] = OpAdd THEN
      read := read + 3;
      removed := removed + 3;
    ELSE
      em^.code^[write] := op;
      INC (write);
      INC (read);
      IF op = OpPush OR op = OpLoad THEN
        em^.code^[write] := em^.code^[read - 1 + 1];
        INC (write);
        INC (read);
      END;
    END;
  END;
  em^.pc := write;
  RETURN removed;
END Peephole;

(* ---------- the VM ---------- *)

PROCEDURE Execute (): INTEGER =
VAR
  stack: Ints;
  sp, ip, op, a, b: INTEGER;
BEGIN
  stack := NEW (Ints, em^.maxDepth + 4);
  sp := 0;
  ip := 0;
  LOOP
    op := em^.code^[ip];
    INC (ip);
    CASE op OF
    | 1 =>
        stack^[sp] := em^.code^[ip];
        INC (ip);
        INC (sp);
    | 2 =>
        stack^[sp] := slots^[em^.code^[ip]];
        INC (ip);
        INC (sp);
    | 3 =>
        b := stack^[sp - 1];
        a := stack^[sp - 2];
        DEC (sp);
        stack^[sp - 1] := (a + b) MOD 1000003;
    | 4 =>
        b := stack^[sp - 1];
        a := stack^[sp - 2];
        DEC (sp);
        stack^[sp - 1] := (a - b) MOD 1000003;
    | 5 =>
        b := stack^[sp - 1];
        a := stack^[sp - 2];
        DEC (sp);
        stack^[sp - 1] := (a * b) MOD 1000003;
    | 6 =>
        stack^[sp - 1] := (0 - stack^[sp - 1]) MOD 1000003;
    | 7 => EXIT;
    ELSE
      EXIT;
    END;
  END;
  RETURN stack^[sp - 1];
END Execute;

(* ---------- workload ---------- *)

PROCEDURE RandomExpr (depth: INTEGER): Expr =
VAR pick: INTEGER;
BEGIN
  IF depth <= 0 OR Rand (4) = 0 THEN
    IF Rand (2) = 0 THEN
      RETURN NEW (ConstExpr, value := Rand (500));
    END;
    RETURN NEW (SlotExpr, slot := Rand (8));
  END;
  pick := Rand (7);
  IF pick < 3 THEN
    RETURN NEW (BinExpr, op := OpAdd,
                left := RandomExpr (depth - 1), right := RandomExpr (depth - 1));
  ELSIF pick < 5 THEN
    RETURN NEW (BinExpr, op := OpMul,
                left := RandomExpr (depth - 1), right := RandomExpr (depth - 2));
  ELSIF pick = 5 THEN
    RETURN NEW (BinExpr, op := OpSub,
                left := RandomExpr (depth - 2), right := RandomExpr (depth - 1));
  END;
  RETURN NEW (NegExpr, operand := RandomExpr (depth - 1));
END RandomExpr;

VAR
  i, want, got, matches, codeTotal, removedTotal: INTEGER;
  e: Expr;

BEGIN
  seed := 35001;
  slots := NEW (Ints, 8);
  FOR i := 0 TO 7 DO
    slots^[i] := 7 * i + 3;
  END;

  matches := 0;
  codeTotal := 0;
  removedTotal := 0;
  FOR i := 1 TO Exprs DO
    e := RandomExpr (6);
    em := NEW (Emitter);
    em^.code := NEW (Ints, CodeMax);
    em^.pc := 0;
    em^.depth := 0;
    em^.maxDepth := 0;
    e.emit ();
    Emit1 (OpHalt);
    removedTotal := removedTotal + Peephole ();
    codeTotal := codeTotal + em^.pc;

    want := e.eval ();
    got := Execute ();
    IF want = got THEN
      INC (matches);
    END;
  END;

  PutText ("exprs=" & IntToText (Exprs));
  PutText (" code=" & IntToText (codeTotal));
  PutText (" removed=" & IntToText (removedTotal));
  PutText (" ok=" & IntToText (matches));
  ASSERT (matches = Exprs);
END M3CG.
