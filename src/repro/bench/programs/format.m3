(* format — a text formatter, after Liskov & Guttag's `format`.
   Mirrors the paper's smallest benchmark: it builds a document of words
   and greedily fills fixed-width output lines.

   Heap behaviour exercised: open CHAR arrays (dope vectors), a linked
   list of word objects, loop-invariant field loads (the formatter state),
   WITH bindings, and a VAR out-parameter. *)

MODULE Format;

CONST
  DocChars  = 1600;   (* size of the synthetic input document *)
  LineWidth = 60;

TYPE
  Chars = REF ARRAY OF CHAR;

  Word = OBJECT
    text: Chars;
    len: INTEGER;
    next: Word;
  END;

  Document = OBJECT
    buf: Chars;
    len: INTEGER;
    words: Word;
    wordCount: INTEGER;
  END;

  Formatter = OBJECT
    width: INTEGER;
    out: Chars;
    outLen: INTEGER;
    col: INTEGER;
    lines: INTEGER;
  END;

VAR
  seed: INTEGER;
  doc: Document;
  fmt: Formatter;

PROCEDURE Rand (range: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN (seed DIV 65536) MOD range;
END Rand;

(* Fill the document buffer with pseudo-random words split by spaces. *)
PROCEDURE Synthesize (d: Document) =
VAR i, wordLen: INTEGER;
BEGIN
  d.buf := NEW (Chars, DocChars);
  i := 0;
  WHILE i < NUMBER (d.buf^) DO
    wordLen := 1 + Rand (9);
    WHILE wordLen > 0 AND i < NUMBER (d.buf^) DO
      d.buf^[i] := VAL (ORD ('a') + Rand (26), CHAR);
      INC (i);
      DEC (wordLen);
    END;
    IF i < NUMBER (d.buf^) THEN
      d.buf^[i] := ' ';
      INC (i);
    END;
  END;
  d.len := NUMBER (d.buf^);
END Synthesize;

(* Split the buffer into a linked list of Word objects. *)
PROCEDURE SplitWords (d: Document) =
VAR
  i, start, n: INTEGER;
  w, tail: Word;
BEGIN
  i := 0;
  tail := NIL;
  WHILE i < d.len DO
    WHILE i < d.len AND d.buf^[i] = ' ' DO
      INC (i);
    END;
    start := i;
    WHILE i < d.len AND d.buf^[i] # ' ' DO
      INC (i);
    END;
    IF i > start THEN
      w := NEW (Word, len := i - start, next := NIL);
      w.text := NEW (Chars, w.len);
      n := 0;
      WHILE n < w.len DO
        w.text^[n] := d.buf^[start + n];
        INC (n);
      END;
      IF tail = NIL THEN
        d.words := w;
      ELSE
        tail.next := w;
      END;
      tail := w;
      d.wordCount := d.wordCount + 1;
    END;
  END;
END SplitWords;

PROCEDURE EmitChar (f: Formatter; c: CHAR) =
BEGIN
  IF f.outLen < NUMBER (f.out^) THEN
    f.out^[f.outLen] := c;
    f.outLen := f.outLen + 1;
  END;
END EmitChar;

PROCEDURE EmitWord (f: Formatter; w: Word) =
VAR i: INTEGER;
BEGIN
  i := 0;
  (* w.len and w.text are loop invariant: RLE food. *)
  WHILE i < w.len DO
    EmitChar (f, w.text^[i]);
    INC (i);
  END;
END EmitWord;

PROCEDURE NewLine (f: Formatter) =
BEGIN
  EmitChar (f, '\n');
  f.col := 0;
  f.lines := f.lines + 1;
END NewLine;

(* Greedy line filling. *)
PROCEDURE Fill (f: Formatter; d: Document) =
VAR w: Word;
BEGIN
  w := d.words;
  WHILE w # NIL DO
    IF f.col > 0 AND f.col + 1 + w.len > f.width THEN
      NewLine (f);
    END;
    IF f.col > 0 THEN
      EmitChar (f, ' ');
      f.col := f.col + 1;
    END;
    EmitWord (f, w);
    f.col := f.col + w.len;
    w := w.next;
  END;
  IF f.col > 0 THEN
    NewLine (f);
  END;
END Fill;

PROCEDURE CountLetter (f: Formatter; c: CHAR; VAR count: INTEGER) =
VAR i: INTEGER;
BEGIN
  count := 0;
  FOR i := 0 TO f.outLen - 1 DO
    IF f.out^[i] = c THEN
      INC (count);
    END;
  END;
END CountLetter;

VAR aCount: INTEGER;

BEGIN
  seed := 20240601;
  doc := NEW (Document, wordCount := 0);
  Synthesize (doc);
  SplitWords (doc);

  fmt := NEW (Formatter, width := LineWidth, col := 0, lines := 0, outLen := 0);
  fmt.out := NEW (Chars, DocChars + DocChars DIV 8);
  Fill (fmt, doc);

  WITH f = fmt DO
    PutText ("words=" & IntToText (doc.wordCount));
    PutText (" lines=" & IntToText (f.lines));
    PutText (" chars=" & IntToText (f.outLen));
  END;
  CountLetter (fmt, 'a', aCount);
  PutText (" a=" & IntToText (aCount));
  ASSERT (fmt.lines > 0);
  ASSERT (fmt.outLen <= NUMBER (fmt.out^));
END Format.
