(* pp — a pretty printer for a small structured language, after the
   paper's pp ("pretty printer for Modula-3 programs").  Builds a program
   tree of statements and expressions, then renders it with indentation
   and line breaking through method dispatch.

   Heap behaviour exercised: a wide object hierarchy rendered via
   methods, an output buffer object whose fields are hot loop-invariant
   loads, and WITH-bound printer state. *)

MODULE PP;

CONST
  Procs    = 14;
  StmtsPer = 8;
  Indent   = 2;

TYPE
  Chars = REF ARRAY OF CHAR;

  Printer = OBJECT
    buf: Chars;
    len: INTEGER;
    col: INTEGER;
    indent: INTEGER;
    width: INTEGER;
    lines: INTEGER;
  END;

  Expr = OBJECT
  METHODS
    pp (p: Printer) := ExprPP;
    size (): INTEGER := ExprSize;
  END;

  NameExpr = Expr OBJECT
    letter: CHAR;
    ordinal: INTEGER;
  OVERRIDES
    pp := NamePP;
    size := NameSize;
  END;

  NumExpr = Expr OBJECT
    value: INTEGER;
  OVERRIDES
    pp := NumPP;
    size := NumSize;
  END;

  BinExpr = Expr OBJECT
    op: CHAR;
    left, right: Expr;
  OVERRIDES
    pp := BinPP;
    size := BinSize;
  END;

  Stmt = OBJECT
    next: Stmt;
  METHODS
    pp (p: Printer) := StmtPP;
  END;

  AssignStmt = Stmt OBJECT
    lhs: NameExpr;
    rhs: Expr;
  OVERRIDES
    pp := AssignPP;
  END;

  IfStmt = Stmt OBJECT
    cond: Expr;
    thenBody: Stmt;
    elseBody: Stmt;
  OVERRIDES
    pp := IfPP;
  END;

  WhileStmt = Stmt OBJECT
    cond: Expr;
    body: Stmt;
  OVERRIDES
    pp := WhilePP;
  END;

  ProcNode = OBJECT
    ordinal: INTEGER;
    body: Stmt;
    next: ProcNode;
  END;

VAR
  seed: INTEGER;
  printer: Printer;
  program: ProcNode;

PROCEDURE Rand (range: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN (seed DIV 65536) MOD range;
END Rand;

(* ---------- printer primitives ---------- *)

PROCEDURE Emit (p: Printer; c: CHAR) =
BEGIN
  IF p.len < NUMBER (p.buf^) THEN
    p.buf^[p.len] := c;
    p.len := p.len + 1;
  END;
  p.col := p.col + 1;
END Emit;

PROCEDURE EmitText (p: Printer; t: TEXT) =
VAR i: INTEGER;
BEGIN
  FOR i := 0 TO TextLen (t) - 1 DO
    Emit (p, TextChar (t, i));
  END;
END EmitText;

PROCEDURE EmitInt (p: Printer; v: INTEGER) =
BEGIN
  EmitText (p, IntToText (v));
END EmitInt;

PROCEDURE Newline (p: Printer) =
VAR i: INTEGER;
BEGIN
  Emit (p, '\n');
  p.col := 0;
  p.lines := p.lines + 1;
  FOR i := 1 TO p.indent DO
    Emit (p, ' ');
  END;
  p.col := p.indent;
END Newline;

(* ---------- expression rendering ---------- *)

PROCEDURE ExprPP (self: Expr; p: Printer) =
BEGIN
  Emit (p, '?');
END ExprPP;

PROCEDURE ExprSize (self: Expr): INTEGER =
BEGIN
  RETURN 1;
END ExprSize;

PROCEDURE NamePP (self: NameExpr; p: Printer) =
BEGIN
  Emit (p, self.letter);
  EmitInt (p, self.ordinal);
END NamePP;

PROCEDURE NameSize (self: NameExpr): INTEGER =
BEGIN
  RETURN 2;
END NameSize;

PROCEDURE NumPP (self: NumExpr; p: Printer) =
BEGIN
  EmitInt (p, self.value);
END NumPP;

PROCEDURE NumSize (self: NumExpr): INTEGER =
BEGIN
  RETURN 1;
END NumSize;

PROCEDURE BinPP (self: BinExpr; p: Printer) =
BEGIN
  (* Break long expressions before the operator. *)
  IF p.col + self.size () > p.width THEN
    Newline (p);
  END;
  Emit (p, '(');
  self.left.pp (p);
  Emit (p, ' ');
  Emit (p, self.op);
  Emit (p, ' ');
  self.right.pp (p);
  Emit (p, ')');
END BinPP;

PROCEDURE BinSize (self: BinExpr): INTEGER =
BEGIN
  RETURN self.left.size () + self.right.size () + 4;
END BinSize;

(* ---------- statement rendering ---------- *)

PROCEDURE StmtPP (self: Stmt; p: Printer) =
BEGIN
  EmitText (p, "SKIP;");
  Newline (p);
END StmtPP;

PROCEDURE AssignPP (self: AssignStmt; p: Printer) =
BEGIN
  self.lhs.pp (p);
  EmitText (p, " := ");
  self.rhs.pp (p);
  Emit (p, ';');
  Newline (p);
END AssignPP;

PROCEDURE PPBody (p: Printer; body: Stmt) =
VAR s: Stmt;
BEGIN
  p.indent := p.indent + Indent;
  Newline (p);
  s := body;
  WHILE s # NIL DO
    s.pp (p);
    s := s.next;
  END;
  p.indent := p.indent - Indent;
END PPBody;

PROCEDURE IfPP (self: IfStmt; p: Printer) =
BEGIN
  EmitText (p, "IF ");
  self.cond.pp (p);
  EmitText (p, " THEN");
  PPBody (p, self.thenBody);
  IF self.elseBody # NIL THEN
    EmitText (p, "ELSE");
    PPBody (p, self.elseBody);
  END;
  EmitText (p, "END;");
  Newline (p);
END IfPP;

PROCEDURE WhilePP (self: WhileStmt; p: Printer) =
BEGIN
  EmitText (p, "WHILE ");
  self.cond.pp (p);
  EmitText (p, " DO");
  PPBody (p, self.body);
  EmitText (p, "END;");
  Newline (p);
END WhilePP;

(* ---------- tree construction ---------- *)

PROCEDURE RandomExpr (depth: INTEGER): Expr =
VAR ops: INTEGER;
BEGIN
  IF depth <= 0 OR Rand (3) = 0 THEN
    IF Rand (2) = 0 THEN
      RETURN NEW (NameExpr,
                  letter := VAL (ORD ('a') + Rand (4), CHAR),
                  ordinal := Rand (10));
    END;
    RETURN NEW (NumExpr, value := Rand (1000));
  END;
  ops := Rand (3);
  IF ops = 0 THEN
    RETURN NEW (BinExpr, op := '+',
                left := RandomExpr (depth - 1), right := RandomExpr (depth - 1));
  ELSIF ops = 1 THEN
    RETURN NEW (BinExpr, op := '*',
                left := RandomExpr (depth - 1), right := RandomExpr (depth - 2));
  END;
  RETURN NEW (BinExpr, op := '-',
              left := RandomExpr (depth - 2), right := RandomExpr (depth - 1));
END RandomExpr;

PROCEDURE RandomBody (n: INTEGER; depth: INTEGER): Stmt =
VAR first, s: Stmt; i, kind: INTEGER;
BEGIN
  first := NIL;
  FOR i := 1 TO n DO
    kind := Rand (4);
    IF kind < 2 OR depth <= 0 THEN
      s := NEW (AssignStmt,
                lhs := NEW (NameExpr,
                            letter := VAL (ORD ('a') + Rand (4), CHAR),
                            ordinal := Rand (10)),
                rhs := RandomExpr (3));
    ELSIF kind = 2 THEN
      s := NEW (IfStmt,
                cond := RandomExpr (2),
                thenBody := RandomBody (2, depth - 1),
                elseBody := RandomBody (1, depth - 1));
    ELSE
      s := NEW (WhileStmt,
                cond := RandomExpr (2),
                body := RandomBody (2, depth - 1));
    END;
    s.next := first;
    first := s;
  END;
  RETURN first;
END RandomBody;

PROCEDURE BuildProgram () =
VAR i: INTEGER; pn: ProcNode;
BEGIN
  program := NIL;
  FOR i := 1 TO Procs DO
    pn := NEW (ProcNode, ordinal := i,
               body := RandomBody (StmtsPer, 2), next := program);
    program := pn;
  END;
END BuildProgram;

PROCEDURE Render (p: Printer) =
VAR pn: ProcNode;
BEGIN
  pn := program;
  WHILE pn # NIL DO
    EmitText (p, "PROCEDURE P");
    EmitInt (p, pn.ordinal);
    EmitText (p, " =");
    PPBody (p, pn.body);
    EmitText (p, "END;");
    Newline (p);
    pn := pn.next;
  END;
END Render;

BEGIN
  seed := 1998;
  BuildProgram ();
  printer := NEW (Printer, len := 0, col := 0, indent := 0,
                  width := 64, lines := 0);
  printer.buf := NEW (Chars, 40000);
  WITH p = printer DO
    Render (p);
    PutText ("chars=" & IntToText (p.len));
    PutText (" lines=" & IntToText (p.lines));
  END;
  ASSERT (printer.len > 0);
  ASSERT (printer.len < NUMBER (printer.buf^));
END PP.
