(* postcard — a mail-reader skeleton, after the paper's postcard
   ("graphical mail reader").  Evaluated statically only in the paper;
   the module body just builds a few folders and refreshes the view tree
   once so the program remains runnable.

   Heap behaviour exercised (statically interesting): a widget hierarchy
   with many sibling subtypes (large Subtypes sets for TypeDecl, pruned
   hard by SMFieldTypeRefs because several widgets are never stored
   upcast), folders and messages as linked structures, and TEXT-heavy
   records. *)

MODULE Postcard;

TYPE
  Message = OBJECT
    subject: TEXT;
    sender: TEXT;
    size: INTEGER;
    unread: BOOLEAN;
    next: Message;
  END;

  Folder = OBJECT
    name: TEXT;
    messages: Message;
    count, unread: INTEGER;
    next: Folder;
  END;

  Mailbox = OBJECT
    folders: Folder;
    folderCount: INTEGER;
  END;

  (* Widget hierarchy: a classic GUI tree. *)
  Widget = OBJECT
    x, y, w, h: INTEGER;
    next: Widget;       (* sibling *)
  METHODS
    layout (x, y: INTEGER): INTEGER := WidgetLayout;
  END;

  Container = Widget OBJECT
    children: Widget;
  OVERRIDES
    layout := ContainerLayout;
  END;

  Label = Widget OBJECT
    caption: TEXT;
  OVERRIDES
    layout := LabelLayout;
  END;

  Button = Widget OBJECT
    caption: TEXT;
    pressed: INTEGER;
  OVERRIDES
    layout := LabelLayout0;
  END;

  ListView = Widget OBJECT
    folder: Folder;
    selected: INTEGER;
  OVERRIDES
    layout := ListLayout;
  END;

  (* Widgets that exist but are never stored into a Widget field:
     SMFieldTypeRefs can prove they do not alias generic widget paths
     unless the program actually inserts them. *)
  Gauge = Widget OBJECT
    fraction: INTEGER;
  END;

  IconBar = Container OBJECT
    icons: INTEGER;
  END;

VAR
  box: Mailbox;
  root: Container;

(* ---------- model ---------- *)

PROCEDURE AddFolder (name: TEXT): Folder =
VAR f: Folder;
BEGIN
  f := NEW (Folder, name := name, messages := NIL,
            count := 0, unread := 0, next := box.folders);
  box.folders := f;
  box.folderCount := box.folderCount + 1;
  RETURN f;
END AddFolder;

PROCEDURE Deliver (f: Folder; subject, sender: TEXT; size: INTEGER) =
VAR m: Message;
BEGIN
  m := NEW (Message, subject := subject, sender := sender,
            size := size, unread := TRUE, next := f.messages);
  f.messages := m;
  f.count := f.count + 1;
  f.unread := f.unread + 1;
END Deliver;

PROCEDURE MarkAllRead (f: Folder) =
VAR m: Message;
BEGIN
  m := f.messages;
  WHILE m # NIL DO
    IF m.unread THEN
      m.unread := FALSE;
      f.unread := f.unread - 1;
    END;
    m := m.next;
  END;
END MarkAllRead;

PROCEDURE TotalBytes (f: Folder): INTEGER =
VAR m: Message; total: INTEGER;
BEGIN
  total := 0;
  m := f.messages;
  WHILE m # NIL DO
    total := total + m.size;
    m := m.next;
  END;
  RETURN total;
END TotalBytes;

(* ---------- view ---------- *)

PROCEDURE WidgetLayout (self: Widget; x, y: INTEGER): INTEGER =
BEGIN
  self.x := x;
  self.y := y;
  RETURN self.h;
END WidgetLayout;

PROCEDURE ContainerLayout (self: Container; x, y: INTEGER): INTEGER =
VAR c: Widget; used: INTEGER;
BEGIN
  self.x := x;
  self.y := y;
  used := 0;
  c := self.children;
  WHILE c # NIL DO
    used := used + c.layout (x + 2, y + used);
    c := c.next;
  END;
  self.h := used + 2;
  RETURN self.h;
END ContainerLayout;

PROCEDURE LabelLayout (self: Label; x, y: INTEGER): INTEGER =
BEGIN
  self.x := x;
  self.y := y;
  self.w := TextLen (self.caption);
  self.h := 1;
  RETURN 1;
END LabelLayout;

PROCEDURE LabelLayout0 (self: Button; x, y: INTEGER): INTEGER =
BEGIN
  self.x := x;
  self.y := y;
  self.w := TextLen (self.caption) + 4;
  self.h := 1;
  RETURN 1;
END LabelLayout0;

PROCEDURE ListLayout (self: ListView; x, y: INTEGER): INTEGER =
BEGIN
  self.x := x;
  self.y := y;
  self.h := self.folder.count + 1;
  RETURN self.h;
END ListLayout;

(* The progress gauge is drawn standalone and never inserted into the
   widget tree: no assignment ever makes a Widget path refer to a Gauge,
   so SMFieldTypeRefs (unlike TypeDecl/FieldTypeDecl) can prove generic
   widget accesses never alias gauge accesses. *)
PROCEDURE UpdateGauge (g: Gauge; done, total: INTEGER) =
BEGIN
  g.x := 0;
  g.y := 0;
  g.w := 20;
  g.h := 1;
  IF total > 0 THEN
    g.fraction := (100 * done) DIV total;
  ELSE
    g.fraction := 0;
  END;
END UpdateGauge;

PROCEDURE BuildView (f: Folder): Container =
VAR
  c: Container;
  title: Label;
  list: ListView;
  readAll: Button;
BEGIN
  c := NEW (Container, children := NIL, w := 80, h := 0);
  title := NEW (Label, caption := "Folder: " & f.name);
  list := NEW (ListView, folder := f, selected := 0);
  readAll := NEW (Button, caption := "mark read", pressed := 0);
  readAll.next := NIL;
  list.next := readAll;
  title.next := list;
  c.children := title;
  RETURN c;
END BuildView;

VAR
  inbox, archive: Folder;
  f: Folder;
  height, i: INTEGER;
  pane: Container;
  gauge: Gauge;

BEGIN
  box := NEW (Mailbox, folders := NIL, folderCount := 0);
  inbox := AddFolder ("inbox");
  archive := AddFolder ("archive");

  FOR i := 1 TO 12 DO
    Deliver (inbox, "hello " & IntToText (i), "amer", 100 + 13 * i);
  END;
  FOR i := 1 TO 5 DO
    Deliver (archive, "old " & IntToText (i), "kathryn", 900 + i);
  END;

  root := NEW (Container, children := NIL, w := 100, h := 0);
  f := box.folders;
  WHILE f # NIL DO
    pane := BuildView (f);
    pane.next := root.children;
    root.children := pane;
    f := f.next;
  END;

  height := root.layout (0, 0);
  gauge := NEW (Gauge, fraction := 0);
  UpdateGauge (gauge, inbox.count, inbox.count + archive.count);
  MarkAllRead (inbox);

  PutText ("folders=" & IntToText (box.folderCount));
  PutText (" inbox=" & IntToText (inbox.count));
  PutText (" unread=" & IntToText (inbox.unread));
  PutText (" bytes=" & IntToText (TotalBytes (inbox)));
  PutText (" height=" & IntToText (height));
  ASSERT (inbox.unread = 0);
END Postcard.
