(* slisp — a small lisp interpreter, after the paper's slisp.  The paper
   notes slisp has the highest heap-load fraction (27%) and keeps the
   most dynamically redundant loads after RLE: car/cdr chains reload the
   same cells through different paths, which RLE's lexical APs miss.

   The interpreter supports numbers, interned symbols, pairs, closures
   and primitives, with QUOTE / IF / LAMBDA / DEFINE special forms.  The
   workload defines fib and a list-summing loop and runs both. *)

MODULE SLisp;

CONST
  (* interned symbol ids *)
  SymQuote  = 1;
  SymIf     = 2;
  SymLambda = 3;
  SymDefine = 4;
  SymFib    = 10;
  SymN      = 11;
  SymIota   = 12;
  SymSum    = 13;
  SymLst    = 14;
  SymK      = 15;

  (* primitive codes *)
  PrimAdd  = 1;
  PrimSub  = 2;
  PrimMul  = 3;
  PrimLess = 4;
  PrimCons = 5;
  PrimCar  = 6;
  PrimCdr  = 7;
  PrimNullP = 8;

TYPE
  Val = OBJECT END;

  Num = Val OBJECT
    n: INTEGER;
  END;

  Sym = Val OBJECT
    id: INTEGER;
  END;

  Pair = Val OBJECT
    car, cdr: Val;
  END;

  Prim = Val OBJECT
    code: INTEGER;
  END;

  Env = OBJECT
    names: Val;    (* list of Sym *)
    values: Val;   (* list of Val, parallel *)
    parent: Env;
  END;

  Closure = Val OBJECT
    params: Val;   (* list of Sym *)
    body: Val;
    env: Env;
  END;

VAR
  global: Env;
  trueVal: Val;
  steps: INTEGER;

(* ---------- constructors ---------- *)

PROCEDURE MkNum (n: INTEGER): Val =
BEGIN
  RETURN NEW (Num, n := n);
END MkNum;

PROCEDURE MkSym (id: INTEGER): Val =
BEGIN
  RETURN NEW (Sym, id := id);
END MkSym;

PROCEDURE Cons (a, d: Val): Val =
BEGIN
  RETURN NEW (Pair, car := a, cdr := d);
END Cons;

PROCEDURE L1 (a: Val): Val =
BEGIN
  RETURN Cons (a, NIL);
END L1;

PROCEDURE L2 (a, b: Val): Val =
BEGIN
  RETURN Cons (a, Cons (b, NIL));
END L2;

PROCEDURE L3 (a, b, c: Val): Val =
BEGIN
  RETURN Cons (a, Cons (b, Cons (c, NIL)));
END L3;

PROCEDURE L4 (a, b, c, d: Val): Val =
BEGIN
  RETURN Cons (a, Cons (b, Cons (c, Cons (d, NIL))));
END L4;

(* ---------- environments ---------- *)

PROCEDURE Define (e: Env; id: INTEGER; v: Val) =
BEGIN
  e.names := Cons (MkSym (id), e.names);
  e.values := Cons (v, e.values);
END Define;

PROCEDURE Lookup (e: Env; id: INTEGER): Val =
VAR names, values: Val;
BEGIN
  WHILE e # NIL DO
    names := e.names;
    values := e.values;
    WHILE names # NIL DO
      IF NARROW (NARROW (names, Pair).car, Sym).id = id THEN
        RETURN NARROW (values, Pair).car;
      END;
      names := NARROW (names, Pair).cdr;
      values := NARROW (values, Pair).cdr;
    END;
    e := e.parent;
  END;
  RETURN NIL;
END Lookup;

PROCEDURE Extend (parent: Env; params, args: Val): Env =
VAR e: Env;
BEGIN
  e := NEW (Env, names := params, values := args, parent := parent);
  RETURN e;
END Extend;

(* ---------- evaluator ---------- *)

PROCEDURE EvalList (e: Val; env: Env): Val =
VAR p: Pair;
BEGIN
  IF e = NIL THEN
    RETURN NIL;
  END;
  p := NARROW (e, Pair);
  RETURN Cons (Eval (p.car, env), EvalList (p.cdr, env));
END EvalList;

PROCEDURE Apply (f: Val; args: Val): Val =
VAR
  prim: Prim;
  clo: Closure;
  a, b: Val;
BEGIN
  IF ISTYPE (f, Prim) THEN
    prim := NARROW (f, Prim);
    a := NARROW (args, Pair).car;
    IF prim.code = PrimCar THEN
      RETURN NARROW (a, Pair).car;
    ELSIF prim.code = PrimCdr THEN
      RETURN NARROW (a, Pair).cdr;
    ELSIF prim.code = PrimNullP THEN
      IF a = NIL THEN
        RETURN trueVal;
      END;
      RETURN NIL;
    END;
    b := NARROW (NARROW (args, Pair).cdr, Pair).car;
    CASE prim.code OF
    | 1 => RETURN MkNum (NARROW (a, Num).n + NARROW (b, Num).n);
    | 2 => RETURN MkNum (NARROW (a, Num).n - NARROW (b, Num).n);
    | 3 => RETURN MkNum (NARROW (a, Num).n * NARROW (b, Num).n);
    | 4 =>
        IF NARROW (a, Num).n < NARROW (b, Num).n THEN
          RETURN trueVal;
        END;
        RETURN NIL;
    | 5 => RETURN Cons (a, b);
    ELSE
      RETURN NIL;
    END;
  END;
  clo := NARROW (f, Closure);
  RETURN Eval (clo.body, Extend (clo.env, clo.params, args));
END Apply;

PROCEDURE Eval (e: Val; env: Env): Val =
VAR
  p: Pair;
  head: Val;
  id: INTEGER;
  f: Val;
BEGIN
  steps := steps + 1;
  IF e = NIL THEN
    RETURN NIL;
  END;
  IF ISTYPE (e, Num) THEN
    RETURN e;
  END;
  IF ISTYPE (e, Sym) THEN
    RETURN Lookup (env, NARROW (e, Sym).id);
  END;
  p := NARROW (e, Pair);
  head := p.car;
  IF ISTYPE (head, Sym) THEN
    id := NARROW (head, Sym).id;
    IF id = SymQuote THEN
      RETURN NARROW (p.cdr, Pair).car;
    ELSIF id = SymIf THEN
      IF Eval (NARROW (p.cdr, Pair).car, env) # NIL THEN
        RETURN Eval (NARROW (NARROW (p.cdr, Pair).cdr, Pair).car, env);
      END;
      RETURN Eval (
        NARROW (NARROW (NARROW (p.cdr, Pair).cdr, Pair).cdr, Pair).car, env);
    ELSIF id = SymLambda THEN
      RETURN NEW (Closure,
                  params := NARROW (p.cdr, Pair).car,
                  body := NARROW (NARROW (p.cdr, Pair).cdr, Pair).car,
                  env := env);
    ELSIF id = SymDefine THEN
      Define (global,
              NARROW (NARROW (p.cdr, Pair).car, Sym).id,
              Eval (NARROW (NARROW (p.cdr, Pair).cdr, Pair).car, env));
      RETURN NIL;
    END;
  END;
  f := Eval (head, env);
  RETURN Apply (f, EvalList (p.cdr, env));
END Eval;

(* ---------- workload ---------- *)

PROCEDURE DefinePrim (id, code: INTEGER) =
BEGIN
  Define (global, id, NEW (Prim, code := code));
END DefinePrim;

CONST
  SymPlus = 20;
  SymMinus = 21;
  SymStar = 22;
  SymLt = 23;
  SymConsS = 24;
  SymCarS = 25;
  SymCdrS = 26;
  SymNullS = 27;

PROCEDURE Num0 (v: Val): INTEGER =
BEGIN
  IF v = NIL THEN
    RETURN 0 - 1;
  END;
  RETURN NARROW (v, Num).n;
END Num0;

VAR
  fibDef, sumDef, iotaDef, expr: Val;
  result: Val;

BEGIN
  steps := 0;
  global := NEW (Env, names := NIL, values := NIL, parent := NIL);
  trueVal := MkNum (1);
  DefinePrim (SymPlus, PrimAdd);
  DefinePrim (SymMinus, PrimSub);
  DefinePrim (SymStar, PrimMul);
  DefinePrim (SymLt, PrimLess);
  DefinePrim (SymConsS, PrimCons);
  DefinePrim (SymCarS, PrimCar);
  DefinePrim (SymCdrS, PrimCdr);
  DefinePrim (SymNullS, PrimNullP);

  (* (define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))) *)
  fibDef :=
    L3 (MkSym (SymDefine), MkSym (SymFib),
        L3 (MkSym (SymLambda), L1 (MkSym (SymN)),
            L4 (MkSym (SymIf),
                L3 (MkSym (SymLt), MkSym (SymN), MkNum (2)),
                MkSym (SymN),
                L3 (MkSym (SymPlus),
                    L2 (MkSym (SymFib),
                        L3 (MkSym (SymMinus), MkSym (SymN), MkNum (1))),
                    L2 (MkSym (SymFib),
                        L3 (MkSym (SymMinus), MkSym (SymN), MkNum (2)))))));
  EVAL Eval (fibDef, global);

  (* (define iota (lambda (k) (if (< k 1) (quote ()) (cons k (iota (- k 1)))))) *)
  iotaDef :=
    L3 (MkSym (SymDefine), MkSym (SymIota),
        L3 (MkSym (SymLambda), L1 (MkSym (SymK)),
            L4 (MkSym (SymIf),
                L3 (MkSym (SymLt), MkSym (SymK), MkNum (1)),
                L2 (MkSym (SymQuote), NIL),
                L3 (MkSym (SymConsS), MkSym (SymK),
                    L2 (MkSym (SymIota),
                        L3 (MkSym (SymMinus), MkSym (SymK), MkNum (1)))))));
  EVAL Eval (iotaDef, global);

  (* (define sum (lambda (lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))) *)
  sumDef :=
    L3 (MkSym (SymDefine), MkSym (SymSum),
        L3 (MkSym (SymLambda), L1 (MkSym (SymLst)),
            L4 (MkSym (SymIf),
                L2 (MkSym (SymNullS), MkSym (SymLst)),
                MkNum (0),
                L3 (MkSym (SymPlus),
                    L2 (MkSym (SymCarS), MkSym (SymLst)),
                    L2 (MkSym (SymSum),
                        L2 (MkSym (SymCdrS), MkSym (SymLst)))))));
  EVAL Eval (sumDef, global);

  expr := L2 (MkSym (SymFib), MkNum (11));
  result := Eval (expr, global);
  PutText ("fib11=" & IntToText (Num0 (result)));

  expr := L2 (MkSym (SymSum), L2 (MkSym (SymIota), MkNum (40)));
  result := Eval (expr, global);
  PutText (" sum40=" & IntToText (Num0 (result)));
  PutText (" steps=" & IntToText (steps));
  ASSERT (Num0 (result) = 820);
END SLisp.
