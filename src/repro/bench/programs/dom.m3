(* dom — a distributed-object system skeleton, after the paper's dom
   ("system for building distributed applications", Nayeri et al.).
   The paper evaluates dom statically only; so do we — the module body
   merely builds one broker and routes a handful of invocations so the
   program is still runnable.

   Heap behaviour exercised (statically interesting): a deep object
   hierarchy with brands (open-world experiments), dispatch tables built
   from arrays of objects, proxies wrapping remote objects, and marshal
   buffers behind REFs. *)

MODULE DOM;

CONST
  TableSize = 16;

TYPE
  Bytes = REF ARRAY OF INTEGER;

  (* Every distributed entity is an Obj with a numeric oid. *)
  Obj = BRANDED "dom.obj" OBJECT
    oid: INTEGER;
  METHODS
    invoke (selector: INTEGER; arg: INTEGER): INTEGER := ObjInvoke;
  END;

  (* A local servant: state plus behaviour. *)
  Servant = Obj OBJECT
    state: INTEGER;
    hits: INTEGER;
  OVERRIDES
    invoke := ServantInvoke;
  END;

  CounterServant = Servant OBJECT
    step: INTEGER;
  OVERRIDES
    invoke := CounterInvoke;
  END;

  (* A proxy forwards through a transport to another object. *)
  Transport = BRANDED "dom.transport" OBJECT
    sent, received: INTEGER;
    buf: Bytes;
  METHODS
    send (oid, selector, arg: INTEGER): INTEGER := TransportSend;
  END;

  Proxy = Obj OBJECT
    transport: Transport;
    remote: INTEGER;       (* remote oid *)
  OVERRIDES
    invoke := ProxyInvoke;
  END;

  Entry = OBJECT
    key: INTEGER;
    target: Obj;
    next: Entry;
  END;

  Table = REF ARRAY OF Entry;

  Broker = OBJECT
    table: Table;
    registered: INTEGER;
  END;

VAR
  broker: Broker;
  wire: Transport;

PROCEDURE ObjInvoke (self: Obj; selector: INTEGER; arg: INTEGER): INTEGER =
BEGIN
  RETURN 0 - 1;
END ObjInvoke;

PROCEDURE ServantInvoke (self: Servant; selector: INTEGER; arg: INTEGER): INTEGER =
BEGIN
  self.hits := self.hits + 1;
  CASE selector OF
  | 1 => RETURN self.state;
  | 2 =>
      self.state := arg;
      RETURN arg;
  ELSE
    RETURN 0;
  END;
END ServantInvoke;

PROCEDURE CounterInvoke (self: CounterServant; selector: INTEGER; arg: INTEGER): INTEGER =
BEGIN
  self.hits := self.hits + 1;
  IF selector = 3 THEN
    self.state := self.state + self.step;
    RETURN self.state;
  END;
  RETURN ServantInvoke (self, selector, arg);
END CounterInvoke;

(* ---------- broker ---------- *)

PROCEDURE NewBroker (): Broker =
VAR b: Broker; i: INTEGER;
BEGIN
  b := NEW (Broker, registered := 0);
  b.table := NEW (Table, TableSize);
  FOR i := 0 TO TableSize - 1 DO
    b.table^[i] := NIL;
  END;
  RETURN b;
END NewBroker;

PROCEDURE Register (b: Broker; o: Obj) =
VAR h: INTEGER; e: Entry;
BEGIN
  h := o.oid MOD TableSize;
  e := NEW (Entry, key := o.oid, target := o, next := b.table^[h]);
  b.table^[h] := e;
  b.registered := b.registered + 1;
END Register;

PROCEDURE Resolve (b: Broker; oid: INTEGER): Obj =
VAR e: Entry;
BEGIN
  e := b.table^[oid MOD TableSize];
  WHILE e # NIL DO
    IF e.key = oid THEN
      RETURN e.target;
    END;
    e := e.next;
  END;
  RETURN NIL;
END Resolve;

(* ---------- transport: marshal / unmarshal through a byte buffer ---------- *)

PROCEDURE TransportSend (self: Transport; oid, selector, arg: INTEGER): INTEGER =
VAR target: Obj; result: INTEGER;
BEGIN
  self.buf^[0] := oid;
  self.buf^[1] := selector;
  self.buf^[2] := arg;
  self.sent := self.sent + 1;
  (* "Deliver" locally: unmarshal and dispatch. *)
  target := Resolve (broker, self.buf^[0]);
  IF target = NIL THEN
    RETURN 0 - 1;
  END;
  result := target.invoke (self.buf^[1], self.buf^[2]);
  self.received := self.received + 1;
  RETURN result;
END TransportSend;

PROCEDURE ProxyInvoke (self: Proxy; selector: INTEGER; arg: INTEGER): INTEGER =
BEGIN
  RETURN self.transport.send (self.remote, selector, arg);
END ProxyInvoke;

(* ---------- minimal runnable body ---------- *)

VAR
  servant: Servant;
  counter: CounterServant;
  proxy: Proxy;
  i, total: INTEGER;

BEGIN
  broker := NewBroker ();
  wire := NEW (Transport, sent := 0, received := 0);
  wire.buf := NEW (Bytes, 8);

  servant := NEW (Servant, oid := 5, state := 100, hits := 0);
  counter := NEW (CounterServant, oid := 21, state := 0, hits := 0, step := 7);
  Register (broker, servant);
  Register (broker, counter);

  proxy := NEW (Proxy, oid := 99, transport := wire, remote := 21);

  total := 0;
  FOR i := 1 TO 25 DO
    total := total + proxy.invoke (3, 0);
  END;
  EVAL proxy.invoke (2, 55);
  total := total + servant.invoke (1, 0);

  PutText ("registered=" & IntToText (broker.registered));
  PutText (" sent=" & IntToText (wire.sent));
  PutText (" total=" & IntToText (total));
  ASSERT (wire.sent = wire.received);
END DOM.
