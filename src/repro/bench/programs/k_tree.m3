(* k_tree — manages a sequence with an order-k tree, after Rodney Bates'
   k-trees (the paper's k-tree benchmark "manages sequences using trees").

   Each interior node holds an open array of children; each leaf an open
   array of elements.  Indexing repeatedly walks dope vectors, making this
   the Encapsulation-heavy benchmark of Figure 10 (the paper found ktree
   kept many redundant loads after RLE, mostly dope-vector accesses). *)

MODULE KTree;

CONST
  K        = 4;     (* tree order: children / leaf slots per node *)
  Inserts  = 700;
  Lookups  = 900;

TYPE
  Ints = REF ARRAY OF INTEGER;

  Node = OBJECT
    count: INTEGER;       (* elements stored below this node *)
    height: INTEGER;      (* 0 = leaf *)
  END;

  Leaf = Node OBJECT
    items: Ints;
    used: INTEGER;
  END;

  Kids = REF ARRAY OF Node;

  Inner = Node OBJECT
    kids: Kids;
    nkids: INTEGER;
  END;

  Seq = OBJECT
    root: Node;
    length: INTEGER;
  END;

VAR
  seed: INTEGER;
  seq: Seq;

PROCEDURE Rand (range: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN (seed DIV 65536) MOD range;
END Rand;

PROCEDURE NewLeaf (): Leaf =
VAR l: Leaf;
BEGIN
  l := NEW (Leaf, count := 0, height := 0, used := 0);
  l.items := NEW (Ints, K);
  RETURN l;
END NewLeaf;

PROCEDURE NewInner (height: INTEGER): Inner =
VAR n: Inner;
BEGIN
  n := NEW (Inner, count := 0, height := height, nkids := 0);
  n.kids := NEW (Kids, K);
  RETURN n;
END NewInner;

(* Append v at the right edge; returns a new sibling when `n` is full. *)
PROCEDURE Append (n: Node; v: INTEGER): Node =
VAR
  leaf: Leaf;
  inner: Inner;
  last, sibling: Node;
  fresh: Inner;
BEGIN
  IF n.height = 0 THEN
    leaf := NARROW (n, Leaf);
    IF leaf.used < NUMBER (leaf.items^) THEN
      leaf.items^[leaf.used] := v;
      leaf.used := leaf.used + 1;
      leaf.count := leaf.count + 1;
      RETURN NIL;
    END;
    leaf := NewLeaf ();
    leaf.items^[0] := v;
    leaf.used := 1;
    leaf.count := 1;
    RETURN leaf;
  END;

  inner := NARROW (n, Inner);
  last := inner.kids^[inner.nkids - 1];
  sibling := Append (last, v);
  IF sibling = NIL THEN
    inner.count := inner.count + 1;
    RETURN NIL;
  END;
  IF inner.nkids < NUMBER (inner.kids^) THEN
    inner.kids^[inner.nkids] := sibling;
    inner.nkids := inner.nkids + 1;
    inner.count := inner.count + 1;
    RETURN NIL;
  END;
  fresh := NewInner (inner.height);
  fresh.kids^[0] := sibling;
  fresh.nkids := 1;
  fresh.count := sibling.count;
  RETURN fresh;
END Append;

PROCEDURE SeqAppend (s: Seq; v: INTEGER) =
VAR sibling: Node; newRoot: Inner;
BEGIN
  IF s.root = NIL THEN
    s.root := NewLeaf ();
  END;
  sibling := Append (s.root, v);
  IF sibling # NIL THEN
    newRoot := NewInner (s.root.height + 1);
    newRoot.kids^[0] := s.root;
    newRoot.kids^[1] := sibling;
    newRoot.nkids := 2;
    newRoot.count := s.root.count + sibling.count;
    s.root := newRoot;
  END;
  s.length := s.length + 1;
END SeqAppend;

(* Index the sequence: walk counts down the tree. *)
PROCEDURE Fetch (n: Node; index: INTEGER): INTEGER =
VAR
  inner: Inner;
  i: INTEGER;
  kid: Node;
BEGIN
  IF n.height = 0 THEN
    RETURN NARROW (n, Leaf).items^[index];
  END;
  inner := NARROW (n, Inner);
  i := 0;
  LOOP
    kid := inner.kids^[i];
    IF index < kid.count THEN
      RETURN Fetch (kid, index);
    END;
    index := index - kid.count;
    INC (i);
    IF i >= inner.nkids THEN
      EXIT;
    END;
  END;
  RETURN 0 - 1;
END Fetch;

PROCEDURE SeqFetch (s: Seq; index: INTEGER): INTEGER =
BEGIN
  IF index < 0 OR index >= s.length THEN
    RETURN 0 - 1;
  END;
  RETURN Fetch (s.root, index);
END SeqFetch;

(* Iterate the whole sequence, summing. *)
PROCEDURE SumAll (n: Node): INTEGER =
VAR
  total, i: INTEGER;
  leaf: Leaf;
  inner: Inner;
BEGIN
  total := 0;
  IF n.height = 0 THEN
    leaf := NARROW (n, Leaf);
    FOR i := 0 TO leaf.used - 1 DO
      total := total + leaf.items^[i];
    END;
    RETURN total;
  END;
  inner := NARROW (n, Inner);
  FOR i := 0 TO inner.nkids - 1 DO
    total := total + SumAll (inner.kids^[i]);
  END;
  RETURN total;
END SumAll;

PROCEDURE Depth (s: Seq): INTEGER =
BEGIN
  IF s.root = NIL THEN
    RETURN 0;
  END;
  RETURN s.root.height + 1;
END Depth;

VAR
  i, v, probes, hits, checksum: INTEGER;

BEGIN
  seed := 424243;
  seq := NEW (Seq, root := NIL, length := 0);

  FOR i := 1 TO Inserts DO
    SeqAppend (seq, i MOD 97);
  END;

  probes := 0;
  hits := 0;
  FOR i := 1 TO Lookups DO
    v := SeqFetch (seq, Rand (seq.length));
    INC (probes);
    IF v >= 48 THEN
      INC (hits);
    END;
  END;

  checksum := SumAll (seq.root);
  PutText ("len=" & IntToText (seq.length));
  PutText (" depth=" & IntToText (Depth (seq)));
  PutText (" sum=" & IntToText (checksum));
  PutText (" hits=" & IntToText (hits) & "/" & IntToText (probes));
  ASSERT (seq.length = Inserts);
  ASSERT (SumAll (seq.root) = checksum);
END KTree.
