(* write_pickle — builds a typed AST, writes it to a flat integer pickle,
   reads it back, and checks the two trees evaluate identically.  Mirrors
   the paper's write-pickle, which "reads and writes an AST".

   Heap behaviour exercised: a subtype hierarchy traversed with ISTYPE /
   NARROW, recursive structure walks, a cursor record behind a REF, and
   an open INTEGER array as the pickle medium. *)

MODULE WritePickle;

CONST
  TreeDepth = 9;
  PickleMax = 4096;

  TagNum = 1;
  TagVar = 2;
  TagAdd = 3;
  TagMul = 4;
  TagNeg = 5;

TYPE
  Ints = REF ARRAY OF INTEGER;

  Expr = OBJECT END;

  NumExpr = Expr OBJECT
    value: INTEGER;
  END;

  VarExpr = Expr OBJECT
    slot: INTEGER;
  END;

  BinExpr = Expr OBJECT
    left, right: Expr;
  END;

  AddExpr = BinExpr OBJECT END;
  MulExpr = BinExpr OBJECT END;

  NegExpr = Expr OBJECT
    operand: Expr;
  END;

  (* The pickle cursor lives behind a REF RECORD: deref-qualify paths. *)
  Cursor = REF RECORD
    data: Ints;
    pos: INTEGER;
  END;

VAR
  seed: INTEGER;
  env: Ints;

PROCEDURE Rand (range: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN (seed DIV 65536) MOD range;
END Rand;

(* Build a pseudo-random expression tree of the given depth. *)
PROCEDURE Build (depth: INTEGER): Expr =
VAR choice: INTEGER;
BEGIN
  IF depth <= 0 THEN
    IF Rand (2) = 0 THEN
      RETURN NEW (NumExpr, value := Rand (100));
    END;
    RETURN NEW (VarExpr, slot := Rand (8));
  END;
  choice := Rand (5);
  IF choice < 2 THEN
    RETURN NEW (AddExpr, left := Build (depth - 1), right := Build (depth - 2));
  ELSIF choice < 4 THEN
    RETURN NEW (MulExpr, left := Build (depth - 2), right := Build (depth - 1));
  ELSE
    RETURN NEW (NegExpr, operand := Build (depth - 1));
  END;
END Build;

PROCEDURE PutWord (c: Cursor; w: INTEGER) =
BEGIN
  ASSERT (c^.pos < NUMBER (c^.data^));
  c^.data^[c^.pos] := w;
  c^.pos := c^.pos + 1;
END PutWord;

PROCEDURE GetWord (c: Cursor): INTEGER =
VAR w: INTEGER;
BEGIN
  w := c^.data^[c^.pos];
  c^.pos := c^.pos + 1;
  RETURN w;
END GetWord;

(* Serialise pre-order with tags. *)
PROCEDURE Write (c: Cursor; e: Expr) =
BEGIN
  IF ISTYPE (e, NumExpr) THEN
    PutWord (c, TagNum);
    PutWord (c, NARROW (e, NumExpr).value);
  ELSIF ISTYPE (e, VarExpr) THEN
    PutWord (c, TagVar);
    PutWord (c, NARROW (e, VarExpr).slot);
  ELSIF ISTYPE (e, AddExpr) THEN
    PutWord (c, TagAdd);
    Write (c, NARROW (e, AddExpr).left);
    Write (c, NARROW (e, AddExpr).right);
  ELSIF ISTYPE (e, MulExpr) THEN
    PutWord (c, TagMul);
    Write (c, NARROW (e, MulExpr).left);
    Write (c, NARROW (e, MulExpr).right);
  ELSE
    PutWord (c, TagNeg);
    Write (c, NARROW (e, NegExpr).operand);
  END;
END Write;

PROCEDURE Read (c: Cursor): Expr =
VAR tag: INTEGER; l, r: Expr;
BEGIN
  tag := GetWord (c);
  CASE tag OF
  | 1 => RETURN NEW (NumExpr, value := GetWord (c));
  | 2 => RETURN NEW (VarExpr, slot := GetWord (c));
  | 3 =>
      l := Read (c);
      r := Read (c);
      RETURN NEW (AddExpr, left := l, right := r);
  | 4 =>
      l := Read (c);
      r := Read (c);
      RETURN NEW (MulExpr, left := l, right := r);
  ELSE
    RETURN NEW (NegExpr, operand := Read (c));
  END;
END Read;

PROCEDURE Eval (e: Expr): INTEGER =
BEGIN
  IF ISTYPE (e, NumExpr) THEN
    RETURN NARROW (e, NumExpr).value;
  ELSIF ISTYPE (e, VarExpr) THEN
    RETURN env^[NARROW (e, VarExpr).slot];
  ELSIF ISTYPE (e, AddExpr) THEN
    RETURN (Eval (NARROW (e, AddExpr).left)
            + Eval (NARROW (e, AddExpr).right)) MOD 1000003;
  ELSIF ISTYPE (e, MulExpr) THEN
    RETURN (Eval (NARROW (e, MulExpr).left)
            * Eval (NARROW (e, MulExpr).right)) MOD 1000003;
  ELSE
    RETURN (0 - Eval (NARROW (e, NegExpr).operand)) MOD 1000003;
  END;
END Eval;

PROCEDURE CountNodes (e: Expr): INTEGER =
BEGIN
  IF ISTYPE (e, BinExpr) THEN
    RETURN 1 + CountNodes (NARROW (e, BinExpr).left)
             + CountNodes (NARROW (e, BinExpr).right);
  ELSIF ISTYPE (e, NegExpr) THEN
    RETURN 1 + CountNodes (NARROW (e, NegExpr).operand);
  END;
  RETURN 1;
END CountNodes;

VAR
  tree, reread: Expr;
  cursor: Cursor;
  before, after, i: INTEGER;

BEGIN
  seed := 600673;
  env := NEW (Ints, 8);
  FOR i := 0 TO 7 DO
    env^[i] := 3 * i + 1;
  END;

  tree := Build (TreeDepth);
  before := Eval (tree);

  cursor := NEW (Cursor);
  cursor^.data := NEW (Ints, PickleMax);
  cursor^.pos := 0;
  Write (cursor, tree);
  PutText ("pickled=" & IntToText (cursor^.pos));

  cursor^.pos := 0;
  reread := Read (cursor);
  after := Eval (reread);

  PutText (" nodes=" & IntToText (CountNodes (reread)));
  PutText (" value=" & IntToText (after));
  ASSERT (before = after);
  ASSERT (CountNodes (tree) = CountNodes (reread));
END WritePickle.
