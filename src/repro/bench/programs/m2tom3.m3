(* m2tom3 — a source-to-source converter, after the paper's m2tom3
   ("converts Modula-2 code to Modula-3").  Tokenizes synthetic Modula-2
   text from a character buffer and rewrites it: keywords are mapped
   through a translation table, ``:=`` and comments pass through, and
   identifiers are copied.

   Heap behaviour exercised: two big char buffers, a keyword table of
   objects scanned linearly (field loads in inner loops), token objects,
   and VAR out-parameters in the scanner. *)

MODULE M2toM3;

CONST
  SourceChars = 2000;

  TokIdent = 1;
  TokKeyword = 2;
  TokPunct = 3;

TYPE
  Chars = REF ARRAY OF CHAR;

  Keyword = OBJECT
    m2: Chars;            (* Modula-2 spelling *)
    m3: Chars;            (* Modula-3 replacement *)
    m2len, m3len: INTEGER;
    uses: INTEGER;
    next: Keyword;
  END;

  Token = OBJECT
    kind: INTEGER;
    start, limit: INTEGER;
    keyword: Keyword;
  END;

  Writer = OBJECT
    buf: Chars;
    len: INTEGER;
  END;

VAR
  seed: INTEGER;
  source: Chars;
  sourceLen: INTEGER;
  keywords: Keyword;
  out: Writer;

PROCEDURE Rand (range: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN (seed DIV 65536) MOD range;
END Rand;

PROCEDURE MkChars (t: TEXT): Chars =
VAR c: Chars; i: INTEGER;
BEGIN
  c := NEW (Chars, TextLen (t));
  FOR i := 0 TO TextLen (t) - 1 DO
    c^[i] := TextChar (t, i);
  END;
  RETURN c;
END MkChars;

PROCEDURE AddKeyword (m2, m3: TEXT) =
VAR k: Keyword;
BEGIN
  k := NEW (Keyword, uses := 0, next := keywords);
  k.m2 := MkChars (m2);
  k.m3 := MkChars (m3);
  k.m2len := NUMBER (k.m2^);
  k.m3len := NUMBER (k.m3^);
  keywords := k;
END AddKeyword;

(* Synthesize Modula-2-ish source: keywords, identifiers, punctuation. *)
PROCEDURE Synthesize () =
VAR
  i, pick, n: INTEGER;
  k: Keyword;
BEGIN
  source := NEW (Chars, SourceChars);
  i := 0;
  WHILE i < NUMBER (source^) DO
    pick := Rand (10);
    IF pick < 4 THEN
      (* one keyword, chosen by walking the list *)
      k := keywords;
      n := Rand (8);
      WHILE n > 0 AND k.next # NIL DO
        k := k.next;
        DEC (n);
      END;
      n := 0;
      WHILE n < k.m2len AND i < NUMBER (source^) DO
        source^[i] := k.m2^[n];
        INC (i);
        INC (n);
      END;
    ELSIF pick < 8 THEN
      n := 1 + Rand (6);
      WHILE n > 0 AND i < NUMBER (source^) DO
        source^[i] := VAL (ORD ('a') + Rand (26), CHAR);
        INC (i);
        DEC (n);
      END;
    ELSE
      IF i < NUMBER (source^) THEN
        source^[i] := ';';
        INC (i);
      END;
    END;
    IF i < NUMBER (source^) THEN
      source^[i] := ' ';
      INC (i);
    END;
  END;
  sourceLen := NUMBER (source^);
END Synthesize;

PROCEDURE IsLetter (c: CHAR): BOOLEAN =
BEGIN
  RETURN (c >= 'a' AND c <= 'z') OR (c >= 'A' AND c <= 'Z');
END IsLetter;

(* Scan one token starting at pos; returns its limit via VAR. *)
PROCEDURE Scan (pos: INTEGER; VAR limit: INTEGER): INTEGER =
BEGIN
  IF IsLetter (source^[pos]) THEN
    limit := pos;
    WHILE limit < sourceLen AND IsLetter (source^[limit]) DO
      INC (limit);
    END;
    RETURN TokIdent;
  END;
  limit := pos + 1;
  RETURN TokPunct;
END Scan;

(* Does source[start..limit) spell this keyword? *)
PROCEDURE MatchKeyword (k: Keyword; start, limit: INTEGER): BOOLEAN =
VAR i: INTEGER;
BEGIN
  IF limit - start # k.m2len THEN
    RETURN FALSE;
  END;
  i := 0;
  WHILE i < k.m2len DO
    IF source^[start + i] # k.m2^[i] THEN
      RETURN FALSE;
    END;
    INC (i);
  END;
  RETURN TRUE;
END MatchKeyword;

PROCEDURE Classify (t: Token) =
VAR k: Keyword;
BEGIN
  t.keyword := NIL;
  IF t.kind # TokIdent THEN
    RETURN;
  END;
  k := keywords;
  WHILE k # NIL DO
    IF MatchKeyword (k, t.start, t.limit) THEN
      t.kind := TokKeyword;
      t.keyword := k;
      k.uses := k.uses + 1;
      RETURN;
    END;
    k := k.next;
  END;
END Classify;

PROCEDURE Put (w: Writer; c: CHAR) =
BEGIN
  IF w.len < NUMBER (w.buf^) THEN
    w.buf^[w.len] := c;
    w.len := w.len + 1;
  END;
END Put;

PROCEDURE WriteToken (w: Writer; t: Token) =
VAR i: INTEGER; k: Keyword;
BEGIN
  IF t.kind = TokKeyword THEN
    k := t.keyword;
    FOR i := 0 TO k.m3len - 1 DO
      Put (w, k.m3^[i]);
    END;
  ELSE
    i := t.start;
    WHILE i < t.limit DO
      Put (w, source^[i]);
      INC (i);
    END;
  END;
END WriteToken;

PROCEDURE Convert (): INTEGER =
VAR
  pos, limit, count: INTEGER;
  t: Token;
BEGIN
  pos := 0;
  count := 0;
  t := NEW (Token);
  WHILE pos < sourceLen DO
    IF source^[pos] = ' ' THEN
      Put (out, ' ');
      INC (pos);
    ELSE
      t.kind := Scan (pos, limit);
      t.start := pos;
      t.limit := limit;
      Classify (t);
      WriteToken (out, t);
      INC (count);
      pos := limit;
    END;
  END;
  RETURN count;
END Convert;

PROCEDURE KeywordHits (): INTEGER =
VAR k: Keyword; total: INTEGER;
BEGIN
  total := 0;
  k := keywords;
  WHILE k # NIL DO
    total := total + k.uses;
    k := k.next;
  END;
  RETURN total;
END KeywordHits;

VAR tokens: INTEGER;

BEGIN
  seed := 777001;
  keywords := NIL;
  AddKeyword ("ELSIF", "ELSIF");
  AddKeyword ("POINTER", "REF");
  AddKeyword ("CARDINAL", "INTEGER");
  AddKeyword ("DEFINITION", "INTERFACE");
  AddKeyword ("IMPLEMENTATION", "MODULE");
  AddKeyword ("QUALIFIED", "");
  AddKeyword ("RETURN", "RETURN");
  AddKeyword ("WHILE", "WHILE");

  Synthesize ();
  out := NEW (Writer, len := 0);
  out.buf := NEW (Chars, SourceChars * 2);

  tokens := Convert ();
  PutText ("tokens=" & IntToText (tokens));
  PutText (" keywords=" & IntToText (KeywordHits ()));
  PutText (" out=" & IntToText (out.len));
  ASSERT (tokens > 0);
  ASSERT (out.len <= NUMBER (out.buf^));
END M2toM3.
