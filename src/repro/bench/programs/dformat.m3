(* dformat — a device-based text formatter, after the paper's second
   Liskov & Guttag formatter.  Unlike `format`, output goes through a
   polymorphic Device hierarchy (method dispatch on every character) and
   the input carries simple markup (star = toggle emphasis, underscore =
   forced break).

   Heap behaviour exercised: deep method dispatch, subtype-polymorphic
   device objects, dope vectors, conditional (partially redundant) field
   loads in the markup scanner. *)

MODULE DFormat;

CONST
  DocChars = 1400;
  Width    = 52;

TYPE
  Chars = REF ARRAY OF CHAR;

  (* Output devices: an abstract device, a buffering text device and a
     counting device layered on top of another device. *)
  Device = OBJECT
    col: INTEGER;
    lines: INTEGER;
  METHODS
    put (c: CHAR) := DevPut;
    break () := DevBreak;
  END;

  TextDevice = Device OBJECT
    buf: Chars;
    len: INTEGER;
  OVERRIDES
    put := TextPut;
    break := TextBreak;
  END;

  CountDevice = Device OBJECT
    inner: Device;
    puts: INTEGER;
    breaks: INTEGER;
  OVERRIDES
    put := CountPut;
    break := CountBreak;
  END;

  Span = OBJECT
    start, limit: INTEGER;
    emphatic: BOOLEAN;
    next: Span;
  END;

VAR
  seed: INTEGER;
  source: Chars;
  spans: Span;
  device: Device;
  sink: TextDevice;

PROCEDURE Rand (range: INTEGER): INTEGER =
BEGIN
  seed := (seed * 1103515245 + 12345) MOD 2147483648;
  RETURN (seed DIV 65536) MOD range;
END Rand;

PROCEDURE DevPut (self: Device; c: CHAR) =
BEGIN
  self.col := self.col + 1;
END DevPut;

PROCEDURE DevBreak (self: Device) =
BEGIN
  self.col := 0;
  self.lines := self.lines + 1;
END DevBreak;

PROCEDURE TextPut (self: TextDevice; c: CHAR) =
BEGIN
  IF self.len < NUMBER (self.buf^) THEN
    self.buf^[self.len] := c;
    self.len := self.len + 1;
  END;
  self.col := self.col + 1;
END TextPut;

PROCEDURE TextBreak (self: TextDevice) =
BEGIN
  IF self.len < NUMBER (self.buf^) THEN
    self.buf^[self.len] := '\n';
    self.len := self.len + 1;
  END;
  self.col := 0;
  self.lines := self.lines + 1;
END TextBreak;

PROCEDURE CountPut (self: CountDevice; c: CHAR) =
BEGIN
  self.puts := self.puts + 1;
  self.inner.put (c);
  self.col := self.inner.col;
END CountPut;

PROCEDURE CountBreak (self: CountDevice) =
BEGIN
  self.breaks := self.breaks + 1;
  self.inner.break ();
  self.col := 0;
  self.lines := self.lines + 1;
END CountBreak;

(* Synthesize marked-up text: words with occasional '*' and '_' marks. *)
PROCEDURE Synthesize () =
VAR i, wordLen, mark: INTEGER;
BEGIN
  source := NEW (Chars, DocChars);
  i := 0;
  WHILE i < NUMBER (source^) DO
    mark := Rand (12);
    IF mark = 0 AND i < NUMBER (source^) THEN
      source^[i] := '*';
      INC (i);
    ELSIF mark = 1 AND i < NUMBER (source^) THEN
      source^[i] := '_';
      INC (i);
    END;
    wordLen := 1 + Rand (8);
    WHILE wordLen > 0 AND i < NUMBER (source^) DO
      source^[i] := VAL (ORD ('a') + Rand (26), CHAR);
      INC (i);
      DEC (wordLen);
    END;
    IF i < NUMBER (source^) THEN
      source^[i] := ' ';
      INC (i);
    END;
  END;
END Synthesize;

(* Scan the markup into a list of emphasised/plain spans. *)
PROCEDURE ScanSpans () =
VAR
  i, start: INTEGER;
  emphasis: BOOLEAN;
  tail, s: Span;
BEGIN
  i := 0;
  emphasis := FALSE;
  tail := NIL;
  WHILE i < NUMBER (source^) DO
    start := i;
    WHILE i < NUMBER (source^) AND source^[i] # '*' AND source^[i] # '_' DO
      INC (i);
    END;
    IF i > start THEN
      s := NEW (Span, start := start, limit := i,
                emphatic := emphasis, next := NIL);
      IF tail = NIL THEN
        spans := s;
      ELSE
        tail.next := s;
      END;
      tail := s;
    END;
    IF i < NUMBER (source^) THEN
      IF source^[i] = '*' THEN
        emphasis := NOT emphasis;
      ELSE
        IF tail # NIL THEN
          tail.emphatic := tail.emphatic OR emphasis;
        END;
      END;
      INC (i);
    END;
  END;
END ScanSpans;

PROCEDURE UpCase (c: CHAR): CHAR =
BEGIN
  IF c >= 'a' AND c <= 'z' THEN
    RETURN VAL (ORD (c) - ORD ('a') + ORD ('A'), CHAR);
  END;
  RETURN c;
END UpCase;

(* Emit a span through the device, filling to the width; emphasised
   spans are upper-cased. *)
PROCEDURE EmitSpan (d: Device; s: Span) =
VAR i: INTEGER; c: CHAR;
BEGIN
  i := s.start;
  WHILE i < s.limit DO
    c := source^[i];
    IF s.emphatic THEN
      c := UpCase (c);
    END;
    IF c = ' ' AND d.col >= Width THEN
      d.break ();
    ELSE
      d.put (c);
    END;
    INC (i);
  END;
END EmitSpan;

PROCEDURE EmitAll (d: Device) =
VAR s: Span;
BEGIN
  s := spans;
  WHILE s # NIL DO
    EmitSpan (d, s);
    s := s.next;
  END;
  d.break ();
END EmitAll;

VAR counter: CountDevice;

BEGIN
  seed := 971123;
  Synthesize ();
  ScanSpans ();

  sink := NEW (TextDevice, col := 0, lines := 0, len := 0);
  sink.buf := NEW (Chars, DocChars + DocChars DIV 4);
  counter := NEW (CountDevice, col := 0, lines := 0,
                  inner := sink, puts := 0, breaks := 0);
  device := counter;
  EmitAll (device);

  PutText ("puts=" & IntToText (counter.puts));
  PutText (" breaks=" & IntToText (counter.breaks));
  PutText (" chars=" & IntToText (sink.len));
  PutText (" lines=" & IntToText (sink.lines));
  ASSERT (counter.puts > 0);
  ASSERT (sink.len <= NUMBER (sink.buf^));
END DFormat.
