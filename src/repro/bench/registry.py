"""Benchmark registry: the reproduction of the paper's Table 4 suite.

Each paper benchmark has a MiniM3 re-implementation under ``programs/``.
``dom`` and ``postcard`` are *static-only*, as in the paper (Table 4
gives no dynamic numbers for them); they still run, but the dynamic
figures skip them.
"""

import os
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class BenchmarkInfo:
    """Metadata for one suite member."""

    name: str            #: paper benchmark name (e.g. "write-pickle")
    filename: str        #: source under programs/
    description: str     #: the paper's one-line description
    dynamic: bool        #: False for the paper's static-only programs


BENCHMARKS: List[BenchmarkInfo] = [
    BenchmarkInfo("format", "format.m3", "Text formatter", True),
    BenchmarkInfo("dformat", "dformat.m3", "Text formatter", True),
    BenchmarkInfo("write-pickle", "write_pickle.m3", "Reads and writes an AST", True),
    BenchmarkInfo("k-tree", "k_tree.m3", "Manages sequences using trees", True),
    BenchmarkInfo("slisp", "slisp.m3", "Small lisp interpreter", True),
    BenchmarkInfo("pp", "pp.m3", "Pretty printer for Modula-3 programs", True),
    BenchmarkInfo("dom", "dom.m3", "System for building distributed applications", False),
    BenchmarkInfo("postcard", "postcard.m3", "Graphical mail reader", False),
    BenchmarkInfo("m2tom3", "m2tom3.m3", "Converts Modula-2 code to Modula-3", True),
    BenchmarkInfo("m3cg", "m3cg.m3", "M3 code generator + extensions", True),
]

_BY_NAME: Dict[str, BenchmarkInfo] = {b.name: b for b in BENCHMARKS}

DYNAMIC_BENCHMARKS: List[BenchmarkInfo] = [b for b in BENCHMARKS if b.dynamic]

_PROGRAM_DIR = os.path.join(os.path.dirname(__file__), "programs")


def benchmark_names() -> List[str]:
    return [b.name for b in BENCHMARKS]


def dynamic_benchmark_names() -> List[str]:
    return [b.name for b in DYNAMIC_BENCHMARKS]


def info(name: str) -> BenchmarkInfo:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark {!r}; known: {}".format(name, benchmark_names())
        )


def source_path(name: str) -> str:
    return os.path.join(_PROGRAM_DIR, info(name).filename)


def load_source(name: str) -> str:
    """Read the MiniM3 source of benchmark *name*."""
    with open(source_path(name)) as f:
        return f.read()
