"""repro — a reproduction of "Type-Based Alias Analysis" (PLDI 1998).

Diwan, McKinley & Moss describe three fast alias analyses built on
programming-language types — TypeDecl, FieldTypeDecl and SMFieldTypeRefs
— and evaluate them statically (alias pairs), through an optimization
(redundant load elimination), dynamically (simulated run time) and
against an upper bound (a trace-based limit study).  This package
rebuilds the entire stack from scratch:

* :mod:`repro.lang` — a front end for MiniM3, a type-safe Modula-3 subset;
* :mod:`repro.ir` — a typed CFG IR whose memory instructions carry access
  paths;
* :mod:`repro.analysis` — the three TBAA algorithms, AddressTaken,
  mod-ref, alias-pair metrics, and the open-world variants;
* :mod:`repro.opt` — RLE (CSE of loads + loop-invariant load motion),
  method resolution and inlining;
* :mod:`repro.runtime` — interpreter, cache/cost model and the dynamic
  redundancy limit study;
* :mod:`repro.bench` — the benchmark suite and table/figure generators.

Quick start::

    from repro import compile_program, Program

    program = compile_program('''
        MODULE Hello;
        TYPE T = OBJECT f: T; END;
        VAR t: T;
        BEGIN
          t := NEW (T, f := NEW (T));
          IF t.f # NIL THEN PutText ("linked!"); END;
        END Hello.
    ''')
    result = program.optimize("SMFieldTypeRefs")
    print(program.run(result).output_text())
"""

from typing import Optional

from repro.lang import parse_module, check_module, CheckedModule, CompileError
from repro.ir import lower_module, lower_program, ProgramIR
from repro.analysis import make_analysis, ANALYSIS_NAMES, AliasPairCounter
from repro.opt import OptimizationPipeline, PipelineResult
from repro.runtime import (
    Interpreter,
    ExecutionStats,
    MachineModel,
    LimitStudy,
    RedundancyReport,
)

__version__ = "1.0.0"

__all__ = [
    "Program",
    "compile_program",
    "parse_module",
    "check_module",
    "CheckedModule",
    "CompileError",
    "lower_module",
    "lower_program",
    "ProgramIR",
    "make_analysis",
    "ANALYSIS_NAMES",
    "AliasPairCounter",
    "OptimizationPipeline",
    "PipelineResult",
    "Interpreter",
    "ExecutionStats",
    "MachineModel",
    "LimitStudy",
    "RedundancyReport",
    "__version__",
]


class Program:
    """High-level facade over one MiniM3 program.

    Wraps the checked module and exposes the operations the paper's
    evaluation performs: build alias analyses, optimize, run, and study
    dynamic redundancy.
    """

    def __init__(self, checked: CheckedModule, source: str = ""):
        self.checked = checked
        self.source = source
        self.pipeline = OptimizationPipeline(checked)

    @property
    def name(self) -> str:
        return self.checked.name

    # -- analyses --------------------------------------------------------

    def analysis(self, name: str, open_world: bool = False):
        """One of 'TypeDecl' | 'FieldTypeDecl' | 'SMFieldTypeRefs'."""
        return self.pipeline.context(open_world).build(name)

    def alias_pairs(self, name: str, open_world: bool = False,
                    engine: str = "fast"):
        """Table 5's static metric for one analysis level.

        ``engine`` is ``'fast'`` (partition-based counter, the default),
        ``'reference'`` (the O(e²) per-pair loop), ``'bulk'`` (bitset-matrix
        kernels, :mod:`repro.analysis.bulk`), or ``'differential'`` (runs
        all engines and asserts agreement).
        """
        program = self.pipeline.base().program
        counter = AliasPairCounter(
            program, self.analysis(name, open_world), engine=engine
        )
        return counter.count()

    # -- optimization ------------------------------------------------------

    def base(self) -> PipelineResult:
        return self.pipeline.base()

    def optimize(
        self,
        analysis: str = "SMFieldTypeRefs",
        minv_inline: bool = False,
        open_world: bool = False,
        **kwargs,
    ) -> PipelineResult:
        return self.pipeline.build(
            analysis=analysis,
            minv_inline=minv_inline,
            open_world=open_world,
            **kwargs,
        )

    # -- execution ----------------------------------------------------------

    def run(
        self,
        result: Optional[PipelineResult] = None,
        machine: Optional[MachineModel] = None,
    ) -> ExecutionStats:
        """Execute (optionally optimized) code; returns counters."""
        result = result or self.base()
        interp = Interpreter(result.program, machine=machine or MachineModel())
        return interp.run()

    def limit_study(self, result: Optional[PipelineResult] = None) -> RedundancyReport:
        """Figure 9/10's dynamic redundancy measurement."""
        result = result or self.base()
        study = LimitStudy(result.program, result.load_status)
        return study.run()


def compile_program(source: str, unit: str = "<input>") -> Program:
    """Parse and type-check MiniM3 source into a :class:`Program`."""
    from repro.obs import core as obs

    with obs.span("compile", unit=unit):
        return Program(check_module(parse_module(source, unit)), source)
