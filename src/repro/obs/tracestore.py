"""A bounded on-disk store for sampled trace records.

The continuous-tracing pipeline (DESIGN.md §6k) flushes one **trace
record** per sampled request/operation: the trace id, the producing
process token and origin, wall time, the collected span tree, and —
for work handed across a process boundary — the remote ``(proc, span)``
parent the subtree hangs under.  ``repro trace`` and ``GET /v1/traces``
read these records back and stitch the cross-process tree together
(:mod:`repro.obs.traceview`).

Layout: a directory of JSONL **segments** plus an ``index.json``
stamping the layout version.  Concurrency without locks comes from the
same trick as the fact store's content-hashed partitions — writers
never share a file: each process appends to its own
``seg-{proc}-{n}.jsonl`` (the proc token is fork-aware, so pool workers
get their own segments too).  Segments rotate at
:data:`SEGMENT_MAX_BYTES` and the store evicts oldest-first once the
directory exceeds ``max_bytes`` — continuous tracing must never grow
without bound.

Failure policy mirrors the serving stack's, in both directions:

* **writes never raise** — a trace record is telemetry, and telemetry
  must not take a request down.  Append failures are counted
  (``obs.trace.store_errors``) and dropped.
* **reads tolerate tearing** — a process dying mid-append leaves a
  truncated line; readers skip it with a warning and count it in
  ``obs.trace.torn_skipped``, exactly like the bench ledger's
  :func:`repro.obs.history.read_history`.  A line that decodes but
  fails validation is corruption of a different kind and is skipped
  under its own counter (``obs.trace.invalid_skipped``) — a bad record
  must not hide the good ones around it.
"""

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs import metrics
from repro.obs.reqlog import now as wall_now
from repro.obs.sampler import proc_id

__all__ = [
    "TRACE_SCHEMA_VERSION", "RECORD_KIND", "DEFAULT_TRACE_DIR",
    "DEFAULT_MAX_BYTES", "SEGMENT_MAX_BYTES", "TraceStore",
    "make_record", "validate_trace_record",
]

#: Bumped whenever the record shape changes incompatibly.
TRACE_SCHEMA_VERSION = 1

RECORD_KIND = "trace_record"

#: Where the CLI looks when ``--store`` is not given.
DEFAULT_TRACE_DIR = ".repro-traces"

#: Store size cap before oldest-first segment eviction.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

#: A writer rotates to a fresh segment past this many bytes.
SEGMENT_MAX_BYTES = 256 * 1024

#: ``index.json`` layout stamp; a future incompatible layout bumps it.
_LAYOUT_VERSION = 1

#: Keys every record must carry.
_REQUIRED_KEYS = ("kind", "schema", "trace", "proc", "origin", "op",
                  "ms", "ok", "ts", "parent", "spans")


def make_record(scope, origin: str, op: str, ms: float, ok: bool,
                unit: Optional[str] = None) -> dict:
    """One flushable record from a finished (collecting) trace scope."""
    parent = None
    if scope.remote_parent is not None:
        parent_proc, parent_span = scope.remote_parent
        parent = {"proc": parent_proc, "span": parent_span}
    return {
        "kind": RECORD_KIND,
        "schema": TRACE_SCHEMA_VERSION,
        "trace": scope.trace_id,
        "proc": proc_id(),
        "origin": origin,
        "op": op,
        "unit": unit,
        "ms": round(float(ms), 3),
        "ok": bool(ok),
        "ts": wall_now(),
        "parent": parent,
        "spans": scope.tree(),
        "notes": {k: _jsonable(v) for k, v in scope.notes.items()},
        "dropped": scope.dropped,
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def validate_trace_record(obj: object) -> None:
    """Raise ``ValueError`` unless *obj* is a well-formed trace record."""
    if not isinstance(obj, dict):
        raise ValueError("trace record is not an object: {!r}".format(obj))
    for key in _REQUIRED_KEYS:
        if key not in obj:
            raise ValueError("trace record missing key {!r}".format(key))
    if obj["kind"] != RECORD_KIND:
        raise ValueError("unknown record kind: {!r}".format(obj["kind"]))
    if obj["schema"] != TRACE_SCHEMA_VERSION:
        raise ValueError(
            "unknown trace schema version: {!r}".format(obj["schema"]))
    for key in ("trace", "proc", "origin", "op"):
        if not isinstance(obj[key], str) or not obj[key]:
            raise ValueError(
                "trace record {!r} must be a non-empty string".format(key))
    if not isinstance(obj["ms"], (int, float)):
        raise ValueError("trace record 'ms' must be a number")
    if not isinstance(obj["ok"], bool):
        raise ValueError("trace record 'ok' must be a boolean")
    parent = obj["parent"]
    if parent is not None:
        if (not isinstance(parent, dict)
                or not isinstance(parent.get("proc"), str)
                or not isinstance(parent.get("span"), (int, type(None)))):
            raise ValueError(
                "trace record 'parent' must be null or "
                "{{proc, span}}: {!r}".format(parent))
    if not isinstance(obj["spans"], list):
        raise ValueError("trace record 'spans' must be a list")
    for span in obj["spans"]:
        if not isinstance(span, dict) or "name" not in span \
                or "id" not in span:
            raise ValueError(
                "trace record span missing name/id: {!r}".format(span))


class TraceStore:
    """Append-only segmented JSONL store under one directory."""

    def __init__(self, root, max_bytes: int = DEFAULT_MAX_BYTES,
                 segment_bytes: int = SEGMENT_MAX_BYTES):
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.segment_bytes = segment_bytes
        self._segment: Optional[Path] = None
        self._segment_proc: Optional[str] = None

    # -- writing --------------------------------------------------------

    def append(self, record: dict) -> bool:
        """Durably append one record; returns False (and counts) on
        failure instead of raising — tracing must never fail a request.

        The ``tracestore.append`` chaos point simulates the writer
        dying mid-append: the line lands truncated (counted in
        ``obs.trace.torn_writes``) and readers must skip it.
        """
        from repro.qa import chaos  # lazy: qa pulls in heavier modules

        registry = metrics.registry()
        try:
            validate_trace_record(record)
            line = json.dumps(record, sort_keys=True)
            if chaos.fire("tracestore.append", trace=record["trace"]):
                line = line[: max(1, len(line) // 3)]
                registry.counter("obs.trace.torn_writes").inc()
            segment = self._current_segment(len(line) + 1)
            with open(segment, "a") as f:
                f.write(line + "\n")
        except (OSError, ValueError, TypeError) as err:
            from repro.obs import log

            registry.counter("obs.trace.store_errors").inc()
            log.warn("trace store append failed: {}".format(err))
            return False
        registry.counter("obs.trace.flushed").inc()
        self._evict()
        return True

    def _current_segment(self, incoming: int) -> Path:
        """This process's open segment, rotating past the size cap."""
        proc = proc_id()
        if self._segment is None or self._segment_proc != proc:
            # First write (or a fork changed our identity): start a
            # fresh segment rather than appending to an inherited one.
            self._segment = self._next_segment(proc)
            self._segment_proc = proc
        try:
            size = self._segment.stat().st_size
        except OSError:
            size = 0
        if size and size + incoming > self.segment_bytes:
            self._segment = self._next_segment(proc)
        self._ensure_layout()
        return self._segment

    def _next_segment(self, proc: str) -> Path:
        n = 0
        while True:
            candidate = self.root / "seg-{}-{:04d}.jsonl".format(proc, n)
            if not candidate.exists():
                return candidate
            n += 1

    def _ensure_layout(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        index = self.root / "index.json"
        if not index.exists():
            tmp = index.with_suffix(".tmp")
            tmp.write_text(json.dumps(
                {"kind": "trace_store", "layout": _LAYOUT_VERSION},
                sort_keys=True))
            os.replace(tmp, index)

    def _evict(self) -> None:
        """Drop oldest segments until the store fits ``max_bytes``."""
        if self.max_bytes is None:
            return
        segments = self._segments()
        total = 0
        sizes: Dict[Path, int] = {}
        for segment in segments:
            try:
                sizes[segment] = segment.stat().st_size
            except OSError:
                sizes[segment] = 0
            total += sizes[segment]
        # Oldest first by (mtime, name); never evict the open segment —
        # a writer must not saw off the branch it is appending to.
        for segment in segments:
            if total <= self.max_bytes:
                break
            if segment == self._segment:
                continue
            try:
                segment.unlink()
            except OSError:
                continue
            total -= sizes[segment]
            metrics.registry().counter("obs.trace.evicted").inc()

    # -- reading --------------------------------------------------------

    def _segments(self) -> List[Path]:
        """Every segment, oldest first (mtime, then name for stability)."""
        if not self.root.is_dir():
            return []
        segments = sorted(self.root.glob("seg-*.jsonl"))

        def age(path: Path):
            try:
                return (path.stat().st_mtime, path.name)
            except OSError:
                return (0.0, path.name)

        return sorted(segments, key=age)

    def records(self) -> List[dict]:
        """Every valid record, oldest segment first, append order within.

        Torn lines (not JSON) and invalid records are skipped with
        their own counters — see the module docstring.
        """
        from repro.obs import log

        registry = metrics.registry()
        out: List[dict] = []
        for segment in self._segments():
            try:
                text = segment.read_text()
            except OSError:
                continue  # evicted or torn away under us
            for lineno, raw in enumerate(text.splitlines(), 1):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    obj = json.loads(raw)
                except json.JSONDecodeError:
                    registry.counter("obs.trace.torn_skipped").inc()
                    log.warn("{}:{}: skipping torn trace line".format(
                        segment, lineno))
                    continue
                try:
                    validate_trace_record(obj)
                except ValueError as err:
                    registry.counter("obs.trace.invalid_skipped").inc()
                    log.warn("{}:{}: skipping invalid trace record: {}"
                             .format(segment, lineno, err))
                    continue
                out.append(obj)
        return out

    def traces(self) -> Dict[str, List[dict]]:
        """Records grouped by trace id, preserving append order."""
        grouped: Dict[str, List[dict]] = {}
        for record in self.records():
            grouped.setdefault(record["trace"], []).append(record)
        return grouped

    def trace(self, trace_id: str) -> List[dict]:
        """Every record of one trace (empty when unknown)."""
        return [r for r in self.records() if r["trace"] == trace_id]

    def stats(self) -> dict:
        """Store shape for dashboards: segments, bytes, record count."""
        segments = self._segments()
        total = 0
        for segment in segments:
            try:
                total += segment.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "segments": len(segments),
            "bytes": total,
            "max_bytes": self.max_bytes,
        }
