"""Windowed SLO burn rates over the request stream.

The lifetime ``serve.slo.ok``/``serve.slo.breach`` counters answer "how
has this daemon done since boot", which is useless for paging: a daemon
that breached heavily an hour ago and is healthy now looks identical to
one melting down right now.  :class:`BurnTracker` keeps a bounded ring
of timestamped request outcomes and reports, per sliding window, the
**burn rate** — the fraction of requests that breached the latency
objective inside that window (1.0 = the whole error budget burning, 0.0
= healthy) — plus exact within-window latency quantiles and the slowest
requests' trace ids as exemplars, so a hot window links directly to the
stored traces that explain it (``repro trace show``).

Windows default to 5 minutes and 1 hour (the classic fast/slow
burn-alert pair); each sets a ``serve.slo.burn_rate_{label}`` gauge in
the process registry so ``/v1/metrics`` and ``repro top`` read the same
numbers.  Everything is O(ring) and lock-protected — one tracker per
daemon, observed once per request.
"""

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics

__all__ = ["DEFAULT_WINDOWS", "BurnTracker"]

#: ``(label, seconds)`` sliding windows: the fast/slow burn pair.
DEFAULT_WINDOWS: Tuple[Tuple[str, float], ...] = (("5m", 300.0),
                                                  ("1h", 3600.0))

#: Ring capacity: events beyond this are dropped oldest-first even if
#: still inside the longest window (bounded memory beats exactness).
DEFAULT_MAX_EVENTS = 8192

#: Exemplars reported per window: the slowest requests' trace ids.
EXEMPLARS = 3

#: Quantiles reported per window (exact — the ring is small).
_QUANTILES = (0.5, 0.95, 0.99)


class BurnTracker:
    """Sliding-window SLO accounting with trace exemplars."""

    def __init__(self, slo_ms: float,
                 windows: Sequence[Tuple[str, float]] = DEFAULT_WINDOWS,
                 max_events: int = DEFAULT_MAX_EVENTS,
                 clock: Callable[[], float] = time.monotonic):
        self.slo_ms = slo_ms
        self.windows = tuple(windows)
        if not self.windows:
            raise ValueError("BurnTracker needs at least one window")
        self._horizon = max(seconds for _, seconds in self.windows)
        self._clock = clock
        self._lock = threading.Lock()
        #: ``(t, ms, breach, trace_id)`` in arrival order.
        self._events: deque = deque(maxlen=max_events)

    def observe(self, ms: float, ok: bool = True,
                trace_id: Optional[str] = None) -> None:
        """Record one finished request and refresh the burn gauges.

        ``ok=False`` (a typed error answer) counts as a breach
        regardless of latency — a fast wrong answer still burns budget.
        """
        now = self._clock()
        breach = (not ok) or ms > self.slo_ms
        with self._lock:
            self._events.append((now, float(ms), breach, trace_id))
            self._prune(now)
            rates = {label: self._rate(now, seconds)
                     for label, seconds in self.windows}
        registry = metrics.registry()
        for label, rate in rates.items():
            registry.gauge("serve.slo.burn_rate_" + label).set(
                round(rate, 4) if rate is not None else 0.0)

    def _prune(self, now: float) -> None:
        horizon = now - self._horizon
        while self._events and self._events[0][0] < horizon:
            self._events.popleft()

    def _rate(self, now: float, seconds: float) -> Optional[float]:
        """Breach fraction inside the window, or None when empty."""
        total = breaches = 0
        floor = now - seconds
        for t, _ms, breach, _trace in self._events:
            if t >= floor:
                total += 1
                breaches += breach
        if not total:
            return None
        return breaches / total

    def snapshot(self) -> Dict[str, dict]:
        """Per-window rollup: counts, burn rate, quantiles, exemplars."""
        now = self._clock()
        out: Dict[str, dict] = {}
        with self._lock:
            self._prune(now)
            events = list(self._events)
        for label, seconds in self.windows:
            floor = now - seconds
            window = [e for e in events if e[0] >= floor]
            latencies = sorted(ms for _t, ms, _b, _trace in window)
            breaches = sum(1 for e in window if e[2])
            slowest = sorted(window, key=lambda e: -e[1])[:EXEMPLARS]
            out[label] = {
                "seconds": seconds,
                "requests": len(window),
                "breaches": breaches,
                "burn_rate": (round(breaches / len(window), 4)
                              if window else None),
                "quantiles_ms": {
                    "p{}".format(int(q * 100)):
                        _quantile(latencies, q)
                    for q in _QUANTILES
                },
                "slowest": [
                    {"trace": trace, "ms": round(ms, 3)}
                    for _t, ms, _b, trace in slowest
                ],
            }
        return out


def _quantile(sorted_values: List[float], q: float) -> Optional[float]:
    """Linear-interpolated exact quantile of a sorted list."""
    if not sorted_values:
        return None
    if len(sorted_values) == 1:
        return round(sorted_values[0], 3)
    rank = q * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return round(sorted_values[lo] * (1.0 - frac)
                 + sorted_values[hi] * frac, 3)
