"""Streaming quantile estimation: the P² algorithm (Jain & Chlamtac).

``/v1/metrics`` needs p50/p95/p99 request latencies from a daemon that
may have served millions of requests; storing every observation is out.
The P² algorithm keeps exactly five markers per tracked quantile —
heights and positions — and nudges them toward the target quantile with
a piecewise-parabolic update on every observation.  O(1) time, O(1)
space, no allocation after construction, no dependencies; accuracy is
ample for dashboard latency quantiles (a few percent of the spread on
the usual long-tailed latency distributions).

Below five observations every estimate is exact (read straight from the
sorted buffer), so tests with tiny request counts see exact answers.

:class:`QuantileSet` bundles one estimator per requested quantile under
a lock, which is how the daemon tracks ``serve.request.ms`` — one set
per op, observed once per request.
"""

import threading
from typing import Dict, List, Optional, Sequence

__all__ = ["P2Quantile", "QuantileSet", "DEFAULT_QUANTILES"]

#: The quantiles the serving layer tracks by default.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


class P2Quantile:
    """One P² estimator for a single quantile ``q`` in (0, 1)."""

    __slots__ = ("q", "_n", "_heights", "_positions", "_desired",
                 "_increments", "count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1), got {}".format(q))
        self.q = q
        self.count = 0
        self._heights: List[float] = []        # marker heights
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q,
                         3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self._n = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if len(self._heights) < 5:
            # Initialisation phase: collect the first five sorted.
            self._heights.append(value)
            self._heights.sort()
            return
        h = self._heights
        pos = self._positions
        # 1. Find the cell k containing the observation; clamp extremes.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        # 2. Shift marker positions above the cell.
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # 3. Adjust the three middle markers toward their desired
        #    positions with the piecewise-parabolic (P²) formula,
        #    falling back to linear when the parabola would cross a
        #    neighbour.
        for i in range(1, 4):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or \
               (d <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                sign = 1.0 if d >= 0 else -1.0
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                pos[i] += sign

    def _parabolic(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + sign / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + sign) * (h[i + 1] - h[i]) /
            (pos[i + 1] - pos[i]) +
            (pos[i + 1] - pos[i] - sign) * (h[i] - h[i - 1]) /
            (pos[i] - pos[i - 1]))

    def _linear(self, i: int, sign: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(sign)
        return h[i] + sign * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> Optional[float]:
        """The current estimate, or None before any observation."""
        if not self._heights:
            return None
        if self.count < 5:
            # Exact from the sorted initial buffer.
            return _exact_quantile(self._heights, self.q)
        return self._heights[2]


def _exact_quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of a small sorted sequence."""
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = q * (len(sorted_values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = rank - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class QuantileSet:
    """Thread-safe bundle of P² estimators over one value stream."""

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self._lock = threading.Lock()
        self._estimators = [P2Quantile(q) for q in quantiles]

    def observe(self, value: float) -> None:
        with self._lock:
            for est in self._estimators:
                est.observe(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._estimators[0].count if self._estimators else 0

    def snapshot(self) -> Dict[float, Optional[float]]:
        """``{quantile: estimate}`` (None until the first observation)."""
        with self._lock:
            return {est.q: est.value() for est in self._estimators}
