"""Rendering for ``repro profile``: phase-time tree + counter table.

The tree is built from the recorder's parent/child span edges; each line
shows wall time, the share of the root span, and the span's attributes.
An ``(unaccounted)`` line is shown for any parent whose children leave a
visible gap, so the tree's times always explain the root within the gap
it prints — the profile-smoke check asserts that top-level phases sum to
the root within tolerance.
"""

from typing import Dict, List, Optional

from repro.obs import core, metrics
from repro.util.tables import render_table

#: Gaps below this share of the root are not worth a line of output.
_GAP_FRACTION = 0.02


def render_phase_tree(recorder: Optional[core.Recorder] = None) -> str:
    """The recorded spans as an indented phase-time tree."""
    recorder = recorder or core.recorder()
    children = recorder.children_of()
    roots = children.get(None, [])
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []
    total = sum(s.duration for s in roots) or 1e-12

    def attr_text(span: core.Span) -> str:
        if not span.attrs:
            return ""
        inner = ", ".join(
            "{}={}".format(k, v) for k, v in sorted(span.attrs.items()))
        return "  [{}]".format(inner)

    def walk(span: core.Span, prefix: str) -> None:
        lines.append("{}{:<{}} {:>9.3f} ms  {:>5.1f}%{}".format(
            prefix, span.name, max(1, 36 - len(prefix)),
            span.duration * 1000.0, 100.0 * span.duration / total,
            attr_text(span)))
        kids = children.get(span.span_id, [])
        for kid in kids:
            walk(kid, prefix + "  ")
        if kids:
            gap = span.duration - sum(k.duration for k in kids)
            if gap > _GAP_FRACTION * total:
                lines.append("{}{:<{}} {:>9.3f} ms  {:>5.1f}%".format(
                    prefix + "  ", "(unaccounted)",
                    max(1, 36 - len(prefix) - 2),
                    gap * 1000.0, 100.0 * gap / total))

    for root in roots:
        walk(root, "")
    return "\n".join(lines)


def tree_check(recorder: Optional[core.Recorder] = None,
               tolerance: float = 0.25) -> None:
    """Assert every parent's children sum to at most parent + tolerance.

    ``tolerance`` is a fraction of the parent span's duration plus a
    small absolute epsilon for sub-millisecond phases.  Used by the
    profile tests and ``make profile-smoke``.
    """
    recorder = recorder or core.recorder()
    children = recorder.children_of()
    for span in recorder.spans():
        kids = children.get(span.span_id, [])
        if not kids:
            continue
        kid_sum = sum(k.duration for k in kids)
        bound = span.duration * (1.0 + tolerance) + 1e-3
        if kid_sum > bound:
            raise AssertionError(
                "children of span {!r} sum to {:.6f}s > parent "
                "{:.6f}s (+{:.0%} tolerance)".format(
                    span.name, kid_sum, span.duration, tolerance))


def render_counter_table(registry: Optional[metrics.MetricsRegistry] = None,
                         top: int = 20) -> str:
    """The top-*top* counters/gauges by value, as an aligned table."""
    registry = registry if registry is not None else metrics.registry()
    rows = []
    for entry in registry.snapshot():
        if entry["kind"] == "histogram":
            value = entry["count"]
            detail = "n={} sum={}".format(entry["count"], round(entry["sum"], 3))
        else:
            value = entry["value"]
            detail = ""
        labels = ",".join(
            "{}={}".format(k, v) for k, v in sorted(entry["labels"].items()))
        rows.append((value, entry["name"], labels, entry["kind"], detail))
    rows.sort(key=lambda r: (-r[0], r[1], r[2]))
    shown = [[name, labels, kind, _fmt_value(value) or detail]
             for value, name, labels, kind, detail in rows[:top]]
    if not shown:
        return "(no metrics recorded)"
    return render_table(
        ["Metric", "Labels", "Kind", "Value"], shown,
        title="Top {} metrics".format(min(top, len(rows))))


def _fmt_value(value) -> str:
    if isinstance(value, float) and value != int(value):
        return "{:.3f}".format(value)
    return str(int(value))
