"""``repro top`` — a live terminal dashboard over a serving daemon.

Polls ``GET /v1/metrics`` (Prometheus text), ``GET /v1/requests`` (the
recent-request journal) and ``GET /v1/ping`` on an interval and renders
one frame per poll: daemon state (degraded / draining), request
throughput (total and the delta-rate between polls), per-op latency
quantiles from the daemon's streaming P² gauges, SLO ok/breach counts,
session/fact-cache hit rates, and the slowest recent traces.

``--once`` fetches and renders exactly one frame and exits 0 — the CI
mode ``make obs-smoke`` drives.  The live mode clears the screen with
ANSI escapes between frames and exits cleanly on Ctrl-C.

Everything here reads the *exposition text*, not in-process registries:
``repro top`` works against any daemon, including one in another
process or container, which is the point of pull-based metrics.
"""

import http.client
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from repro.obs.promlint import _parse_labels
from repro.util.tables import render_table

__all__ = ["parse_prom", "fetch_snapshot", "render_frame", "run_top"]

#: Seconds between polls in live mode.
DEFAULT_INTERVAL = 2.0

#: How many slow recent requests the frame lists.
SLOW_ROWS = 5

#: HTTP timeout per poll, seconds.
FETCH_TIMEOUT = 10.0

#: ``(metric name, sorted label items) -> value``.
PromSamples = Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]


class TopError(RuntimeError):
    """The daemon could not be polled or answered garbage."""


def parse_prom(text: str) -> PromSamples:
    """Sample lines of a Prometheus exposition body as a flat dict.

    Comments are skipped; histogram ``_bucket``/``_sum``/``_count``
    series parse like any other sample (the dashboard reads counters
    and gauges only, but keeps everything for tests).
    """
    samples: PromSamples = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        first = line.split(None, 1)[0]
        if "{" in first:
            brace = line.index("{")
            end = line.rindex("}")
            name = line[:brace]
            labels, problem = _parse_labels(line[brace + 1:end])
            if problem is not None:
                continue
            rest = line[end + 1:].strip()
        else:
            name = first
            labels = {}
            rest = line[len(first):].strip()
        value_text = rest.split()[0] if rest.split() else ""
        try:
            value = float(value_text)
        except ValueError:
            continue
        samples[(name, tuple(sorted((labels or {}).items())))] = value
    return samples


def _sum_family(samples: PromSamples, name: str) -> float:
    return sum(v for (n, _), v in samples.items() if n == name)


def _by_label(samples: PromSamples, name: str,
              label: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for (n, labels), value in samples.items():
        if n != name:
            continue
        labelled = dict(labels).get(label)
        if labelled is not None:
            out[labelled] = out.get(labelled, 0.0) + value
    return out


class Snapshot:
    """One poll of the daemon: metrics + journal + ping, timestamped."""

    def __init__(self, samples: PromSamples, journal: dict, ping: dict,
                 taken: float):
        self.samples = samples
        self.journal = journal
        self.ping = ping
        self.taken = taken

    @property
    def total_requests(self) -> float:
        return _sum_family(self.samples, "repro_serve_request_total")


def _get(base: str, path: str) -> str:
    try:
        with urllib.request.urlopen(base + path,
                                    timeout=FETCH_TIMEOUT) as resp:
            return resp.read().decode("utf-8")
    except (urllib.error.URLError, http.client.HTTPException,
            OSError) as err:
        # HTTPException covers a listener that is not speaking HTTP at
        # all (BadStatusLine etc.) — still "could not poll the daemon",
        # and it must surface as a one-line error, not a traceback.
        raise TopError("GET {} failed: {}".format(path, err))


def fetch_snapshot(port: int, host: str = "127.0.0.1") -> Snapshot:
    """Poll one frame's worth of state from a live daemon."""
    base = "http://{}:{}".format(host, port)
    metrics_text = _get(base, "/v1/metrics")
    try:
        journal = json.loads(_get(base, "/v1/requests"))
        ping = json.loads(_get(base, "/v1/ping"))
    except json.JSONDecodeError as err:
        raise TopError("daemon answered non-JSON: {}".format(err))
    if not isinstance(journal, dict) or not isinstance(ping, dict):
        raise TopError(
            "daemon answered JSON of the wrong shape (journal: {}, "
            "ping: {})".format(type(journal).__name__,
                               type(ping).__name__))
    return Snapshot(parse_prom(metrics_text), journal, ping,
                    time.monotonic())


def render_frame(snapshot: Snapshot,
                 previous: Optional[Snapshot] = None) -> str:
    """One dashboard frame as plain text."""
    samples = snapshot.samples
    ping = (snapshot.ping or {}).get("result", {})
    lines: List[str] = []

    total = snapshot.total_requests
    errors = _sum_family(samples, "repro_serve_request_errors")
    if previous is not None and snapshot.taken > previous.taken:
        rate = (total - previous.total_requests) / \
            (snapshot.taken - previous.taken)
    else:
        rate = None
    state = []
    if ping.get("degraded"):
        state.append("DEGRADED")
    if ping.get("draining"):
        state.append("DRAINING")
    lines.append("repro top — daemon v{} proto {}  [{}]".format(
        ping.get("version", "?"), ping.get("protocol", "?"),
        " ".join(state) or "healthy"))
    lines.append(
        "requests: {:.0f} total, {:.0f} errors   rate: {} req/s   "
        "slo: {:.0f} ms".format(
            total, errors,
            "{:.1f}".format(rate) if rate is not None else "n/a",
            ping.get("slo_ms") or 0.0))

    hits = _sum_family(samples, "repro_serve_session_hit")
    misses = _sum_family(samples, "repro_serve_session_miss")
    store_hits = _sum_family(samples, "repro_serve_factcache_hit")
    store_misses = _sum_family(samples, "repro_serve_factcache_miss")

    def ratio(hit: float, miss: float) -> str:
        seen = hit + miss
        return "{:.1f}%".format(100.0 * hit / seen) if seen else "n/a"

    lines.append("cache: session {} ({:.0f}/{:.0f})   fact store {} "
                 "({:.0f}/{:.0f})".format(
                     ratio(hits, misses), hits, hits + misses,
                     ratio(store_hits, store_misses), store_hits,
                     store_hits + store_misses))

    def burn(label: str) -> str:
        value = samples.get(
            ("repro_serve_slo_burn_rate_" + label, ()))
        return "{:.1f}%".format(100.0 * value) if value is not None \
            else "n/a"

    sampled = _sum_family(samples, "repro_obs_trace_sampled")
    flushed = _sum_family(samples, "repro_obs_trace_flushed")
    lines.append("slo burn: 5m {}   1h {}   traces: {:.0f} sampled, "
                 "{:.0f} stored".format(burn("5m"), burn("1h"),
                                        sampled, flushed))
    lines.append("")

    # Per-op latency + SLO table from the P² gauges.
    counts = _by_label(samples, "repro_serve_request_total", "op")
    p50 = _by_label(samples, "repro_serve_request_ms_p50", "op")
    p95 = _by_label(samples, "repro_serve_request_ms_p95", "op")
    p99 = _by_label(samples, "repro_serve_request_ms_p99", "op")
    slo_ok = _by_label(samples, "repro_serve_slo_ok", "op")
    slo_breach = _by_label(samples, "repro_serve_slo_breach", "op")
    op_errors = _by_label(samples, "repro_serve_request_errors", "op")
    rows = []
    for op in sorted(counts):
        rows.append([
            op, int(counts[op]), int(op_errors.get(op, 0)),
            _ms(p50.get(op)), _ms(p95.get(op)), _ms(p99.get(op)),
            int(slo_ok.get(op, 0)), int(slo_breach.get(op, 0)),
        ])
    if rows:
        lines.append(render_table(
            ["op", "reqs", "err", "p50 ms", "p95 ms", "p99 ms",
             "slo ok", "breach"], rows))
    else:
        lines.append("(no requests served yet)")
    lines.append("")

    # Slowest recent traces out of the journal ring.
    recent = (snapshot.journal or {}).get("requests", [])
    slow = sorted(recent, key=lambda r: -float(r.get("ms", 0.0)))[:SLOW_ROWS]
    if slow:
        lines.append(render_table(
            ["trace", "op", "ms", "cache", "status"],
            [[r.get("trace", "?"), r.get("op", "?"),
              "{:.2f}".format(float(r.get("ms", 0.0))),
              r.get("cache") or "-",
              "ok" if r.get("ok") else (r.get("error") or "error")]
             for r in slow],
            title="slowest recent requests", align_left=(0, 1, 3, 4)))
    else:
        lines.append("(request journal is empty)")
    return "\n".join(lines) + "\n"


def _ms(value: Optional[float]) -> str:
    return "{:.2f}".format(value) if value is not None else "-"


def run_top(port: int, host: str = "127.0.0.1",
            interval: float = DEFAULT_INTERVAL, once: bool = False,
            iterations: Optional[int] = None, out=None) -> int:
    """The ``repro top`` loop; returns a process exit code."""
    out = out if out is not None else sys.stdout
    previous: Optional[Snapshot] = None
    frame = 0
    try:
        while True:
            try:
                snapshot = fetch_snapshot(port, host)
            except TopError as err:
                print("repro top: {}".format(err), file=sys.stderr)
                return 1
            text = render_frame(snapshot, previous)
            if not once and frame > 0:
                out.write("\x1b[2J\x1b[H")
            out.write(text)
            out.flush()
            frame += 1
            previous = snapshot
            if once or (iterations is not None and frame >= iterations):
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
