"""Prometheus text-format export of the metrics registry.

Renders the registry snapshot in the Prometheus exposition format
(version 0.0.4): ``# TYPE`` headers, ``name{label="v"} value`` samples,
histogram ``_bucket``/``_sum``/``_count`` series with cumulative ``le``
buckets.  Metric names are prefixed ``repro_`` and sanitised to the
legal charset; gauges additionally export ``_min``/``_max`` where
observed.

``make bench-quick`` dumps a snapshot to ``BENCH_obs.prom`` next to
``BENCH_alias.json`` so perf PRs can diff analysis behaviour, not just
wall time.
"""

import re
from typing import List, Optional

from repro.obs import metrics

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str) -> str:
    """``alias.cache.hits`` -> ``repro_alias_cache_hits``."""
    sanitised = _NAME_RE.sub("_", name)
    if not sanitised.startswith("repro_"):
        sanitised = "repro_" + sanitised
    return sanitised


def _label_str(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for key in sorted(merged):
        name = _LABEL_RE.sub("_", str(key))
        value = str(merged[key]).replace("\\", "\\\\").replace('"', '\\"')
        parts.append('{}="{}"'.format(name, value))
    return "{" + ",".join(parts) + "}"


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def render(registry: Optional[metrics.MetricsRegistry] = None,
           help_texts: Optional[dict] = None) -> str:
    """The whole registry in Prometheus text exposition format.

    *help_texts* optionally maps raw metric names (``serve.request.ms``)
    or exported names (``repro_serve_request_ms``) to ``# HELP`` text;
    HELP lines are emitted directly before the family's ``# TYPE`` line
    and only for families that have one (the default output — no HELP —
    is schema-pinned by tests).
    """
    registry = registry if registry is not None else metrics.registry()
    helps = {}
    for key, text in (help_texts or {}).items():
        helps[metric_name(key)] = str(text).replace("\\", "\\\\") \
            .replace("\n", "\\n")
    lines: List[str] = []
    typed = set()
    for entry in registry.snapshot():
        name = metric_name(entry["name"])
        kind = entry["kind"]
        if name not in typed:
            if name in helps:
                lines.append("# HELP {} {}".format(name, helps[name]))
            lines.append("# TYPE {} {}".format(name, kind))
            typed.add(name)
        labels = entry["labels"]
        if kind in ("counter", "gauge"):
            lines.append("{}{} {}".format(
                name, _label_str(labels), _fmt(entry["value"])))
        else:
            cumulative = 0
            for bound, count in zip(entry["buckets"], entry["bucket_counts"]):
                cumulative += count
                lines.append("{}_bucket{} {}".format(
                    name, _label_str(labels, {"le": _fmt(bound)}), cumulative))
            cumulative += entry["bucket_counts"][-1]
            lines.append("{}_bucket{} {}".format(
                name, _label_str(labels, {"le": "+Inf"}), cumulative))
            lines.append("{}_sum{} {}".format(
                name, _label_str(labels), _fmt(entry["sum"])))
            lines.append("{}_count{} {}".format(
                name, _label_str(labels), _fmt(entry["count"])))
    return "\n".join(lines) + ("\n" if lines else "")


def write_prom(path: str,
               registry: Optional[metrics.MetricsRegistry] = None) -> int:
    """Write the snapshot to *path*; returns the number of lines."""
    text = render(registry)
    with open(path, "w") as f:
        f.write(text)
    return text.count("\n")
