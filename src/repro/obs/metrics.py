"""Thread-safe metric primitives and the process-wide registry.

The paper's evaluation is a counting exercise (Tables 5-6 and Figures
8-10 all count events inside the compiler); this module gives every
layer of the reproduction one place to put those counts.  Three metric
kinds, deliberately Prometheus-shaped so :mod:`repro.obs.promtext` can
export them verbatim:

* :class:`Counter` — monotone event count (alias queries, cache hits,
  union-find merges).  ``inc()`` is thread-safe; hot paths that are
  single-threaded by construction may mutate ``.value`` directly.
* :class:`Gauge` — last-written value (partition class counts, group
  counts).
* :class:`Histogram` — fixed-bucket distribution (Steensgaard group
  sizes, span durations).

Metrics live in a :class:`MetricsRegistry`.  Two registration styles:

* :meth:`MetricsRegistry.counter` (and ``gauge``/``histogram``) —
  get-or-create one shared instance per ``(name, labels)``, for
  process-wide totals;
* :meth:`MetricsRegistry.new_counter` (and friends) — always allocate a
  fresh *child* instance under the same ``(name, labels)`` series.
  Per-object state (each :class:`~repro.analysis.alias_base.AliasAnalysis`
  owns its query cache) keeps its own child; :meth:`snapshot` aggregates
  children per series (counters/histograms sum, gauges take the last
  write), so the per-instance numbers and the global export come from
  the same objects — one source of truth.

Everything here is dependency-free and importable from any layer.
"""

import threading
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotone counter.  ``inc`` locks; ``.value`` is for hot paths."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return "<Counter {}{} {}>".format(self.name, dict(self.labels), self.value)


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "labels", "value", "_lock")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, n: float = 1) -> None:
        with self._lock:
            self.value += n

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:
        return "<Gauge {}{} {}>".format(self.name, dict(self.labels), self.value)


#: Default histogram bucket upper bounds (events are small-integer sized
#: things like group sizes; durations are recorded in milliseconds).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max", "_lock")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (),
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.buckets) + 1)
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None

    def __repr__(self) -> str:
        return "<Histogram {}{} n={}>".format(
            self.name, dict(self.labels), self.count)


class MetricsRegistry:
    """Process-wide metric store, aggregating child metrics per series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> kind; name -> {labelkey -> [children]}
        self._kinds: Dict[str, str] = {}
        self._series: Dict[str, Dict[LabelKey, List[object]]] = {}

    # -- registration ---------------------------------------------------

    def _family(self, name: str, kind: str) -> Dict[LabelKey, List[object]]:
        known = self._kinds.get(name)
        if known is None:
            self._kinds[name] = kind
            self._series[name] = {}
        elif known != kind:
            raise ValueError(
                "metric {!r} already registered as {} (got {})".format(
                    name, known, kind))
        return self._series[name]

    def _get_or_create(self, name: str, kind: str, factory, labels):
        key = _label_key(labels)
        with self._lock:
            children = self._family(name, kind).setdefault(key, [])
            if not children:
                children.append(factory(name, key))
            return children[0]

    def _new_child(self, name: str, kind: str, factory, labels):
        key = _label_key(labels)
        with self._lock:
            children = self._family(name, kind).setdefault(key, [])
            child = factory(name, key)
            children.append(child)
            return child

    def counter(self, name: str, **labels) -> Counter:
        """Get-or-create the shared counter for ``(name, labels)``."""
        return self._get_or_create(name, "counter", Counter, labels)

    def new_counter(self, name: str, **labels) -> Counter:
        """A fresh per-owner child counter under ``(name, labels)``."""
        return self._new_child(name, "counter", Counter, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(name, "gauge", Gauge, labels)

    def new_gauge(self, name: str, **labels) -> Gauge:
        return self._new_child(name, "gauge", Gauge, labels)

    def histogram(self, name: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        key = _label_key(labels)
        with self._lock:
            children = self._family(name, "histogram").setdefault(key, [])
            if not children:
                children.append(Histogram(name, key, buckets))
            return children[0]  # type: ignore[return-value]

    def new_histogram(self, name: str,
                      buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                      **labels) -> Histogram:
        key = _label_key(labels)
        with self._lock:
            children = self._family(name, "histogram").setdefault(key, [])
            child = Histogram(name, key, buckets)
            children.append(child)
            return child

    # -- reading --------------------------------------------------------

    def snapshot(self) -> List[dict]:
        """Aggregate every series into one plain dict per series.

        Counters and histograms sum their children; gauges report the
        most recently allocated child's value (children are appended in
        creation order and shared gauges have exactly one).
        """
        out: List[dict] = []
        with self._lock:
            for name in sorted(self._series):
                kind = self._kinds[name]
                for key in sorted(self._series[name]):
                    children = self._series[name][key]
                    if not children:
                        continue
                    entry = {"kind": kind, "name": name, "labels": dict(key)}
                    if kind == "counter":
                        entry["value"] = sum(c.value for c in children)
                    elif kind == "gauge":
                        entry["value"] = children[-1].value
                    else:
                        entry.update(_merge_histograms(children))
                    out.append(entry)
        return out

    def reset(self) -> None:
        """Zero every metric in place (owners keep their references)."""
        with self._lock:
            for series in self._series.values():
                for children in series.values():
                    for child in children:
                        child.reset()

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)


def _merge_histograms(children: Iterable[Histogram]) -> dict:
    children = list(children)
    buckets = children[0].buckets
    counts = [0] * (len(buckets) + 1)
    total, acc = 0, 0.0
    lo: Optional[float] = None
    hi: Optional[float] = None
    for child in children:
        assert child.buckets == buckets, "histogram bucket mismatch"
        for i, n in enumerate(child.bucket_counts):
            counts[i] += n
        total += child.count
        acc += child.sum
        if child.min is not None and (lo is None or child.min < lo):
            lo = child.min
        if child.max is not None and (hi is None or child.max > hi):
            hi = child.max
    return {
        "buckets": list(buckets),
        "bucket_counts": counts,
        "count": total,
        "sum": acc,
        "min": lo,
        "max": hi,
    }


#: The process-wide registry every layer records into.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return REGISTRY
