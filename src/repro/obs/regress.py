"""Noise-banded regression detection over benchmark-history records.

``repro bench compare OLD NEW`` and ``repro bench gate`` feed two sets
of :mod:`repro.obs.history` records through :func:`compare_records`,
which builds one :class:`SeriesComparison` per ``(benchmark, phase)``
series.  Wall-clock noise is handled with two complementary statistics:

* **min-of-k** — the *best* observation of each side is the comparison
  point: the minimum over repeats is the least contaminated estimate of
  the true cost on a loaded host (scheduler preemption and cache
  pollution only ever add time);
* **median + MAD band** — a regression must also clear the old series'
  median plus ``mad_k`` median-absolute-deviations, so one lucky old
  observation cannot turn ordinary jitter into a report.

A series regresses only when the new best exceeds *both* bounds **and**
the absolute delta clears ``min_delta_seconds`` **and** the new best is
at least ``min_seconds`` — microsecond phases never gate.  Improvements
are reported symmetrically (best-vs-best only); counter drift is listed
as non-gating context.  The report renders as a terminal table and as
markdown, and :attr:`RegressionReport.has_regressions` drives the gate's
exit code.
"""

from typing import Dict, List, Optional, Tuple

from repro.util.tables import render_table

#: Relative slowdown of the new best over the old best that counts as a
#: regression (0.25 = 25 % slower).
DEFAULT_TOLERANCE = 0.25

#: How many MADs above the old median the new best must also be.
DEFAULT_MAD_K = 3.0

#: Phases whose new best is below this never gate (too small to time).
DEFAULT_MIN_SECONDS = 0.005

#: Absolute slowdown floor: deltas below this never gate.
DEFAULT_MIN_DELTA_SECONDS = 0.002

#: How many counter drifts the rendered report lists.
_COUNTER_DRIFT_LIMIT = 10


def median(values: List[float]) -> float:
    """The middle value (mean of the middle two for even lengths)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: List[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around *center* (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


class SeriesComparison:
    """One ``(benchmark, phase)`` series compared across two record sets."""

    __slots__ = ("benchmark", "phase", "old_values", "new_values", "status")

    def __init__(self, benchmark: str, phase: str,
                 old_values: List[float], new_values: List[float],
                 status: str):
        self.benchmark = benchmark
        self.phase = phase
        self.old_values = old_values
        self.new_values = new_values
        self.status = status  # ok | regression | improved | new | missing

    @property
    def old_best(self) -> Optional[float]:
        return min(self.old_values) if self.old_values else None

    @property
    def new_best(self) -> Optional[float]:
        return min(self.new_values) if self.new_values else None

    @property
    def ratio(self) -> Optional[float]:
        """new best / old best (>1 means slower)."""
        if not self.old_values or not self.new_values:
            return None
        old_best = self.old_best
        if old_best == 0:
            return None
        return self.new_best / old_best

    @property
    def delta_seconds(self) -> Optional[float]:
        if not self.old_values or not self.new_values:
            return None
        return self.new_best - self.old_best

    def describe(self) -> str:
        """One human sentence naming this series and its movement."""
        if self.ratio is None:
            return "{}/{}: {}".format(self.benchmark, self.phase, self.status)
        return "{}/{}: {} ({:.3f}s -> {:.3f}s, x{:.2f})".format(
            self.benchmark, self.phase, self.status,
            self.old_best, self.new_best, self.ratio)

    def __repr__(self) -> str:
        return "<SeriesComparison {}>".format(self.describe())


class RegressionReport:
    """Every series comparison plus the thresholds that produced it."""

    def __init__(self, comparisons: List[SeriesComparison],
                 tolerance: float, mad_k: float,
                 min_seconds: float, min_delta_seconds: float,
                 counter_drift: List[Tuple[str, float, float]],
                 old_n: int, new_n: int):
        self.comparisons = comparisons
        self.tolerance = tolerance
        self.mad_k = mad_k
        self.min_seconds = min_seconds
        self.min_delta_seconds = min_delta_seconds
        self.counter_drift = counter_drift
        self.old_n = old_n
        self.new_n = new_n

    @property
    def regressions(self) -> List[SeriesComparison]:
        return [c for c in self.comparisons if c.status == "regression"]

    @property
    def improvements(self) -> List[SeriesComparison]:
        return [c for c in self.comparisons if c.status == "improved"]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def summary(self) -> str:
        return ("{} series compared ({} old / {} new records): "
                "{} regressed, {} improved, tolerance {:.0%} + "
                "{:.1f} MAD".format(
                    len(self.comparisons), self.old_n, self.new_n,
                    len(self.regressions), len(self.improvements),
                    self.tolerance, self.mad_k))

    # -- rendering ------------------------------------------------------

    def _rows(self, include_ok: bool) -> List[List[object]]:
        def sort_key(c: SeriesComparison):
            order = {"regression": 0, "improved": 1, "new": 2,
                     "missing": 2, "ok": 3}
            return (order.get(c.status, 3), c.benchmark, c.phase)

        rows: List[List[object]] = []
        for c in sorted(self.comparisons, key=sort_key):
            if not include_ok and c.status == "ok":
                continue
            rows.append([
                c.benchmark,
                c.phase,
                _fmt_seconds(c.old_best),
                _fmt_seconds(c.new_best),
                _fmt_ratio(c.ratio),
                c.status.upper() if c.status == "regression" else c.status,
            ])
        return rows

    def render_text(self, include_ok: bool = True) -> str:
        rows = self._rows(include_ok)
        lines = []
        if rows:
            lines.append(render_table(
                ["Benchmark", "Phase", "Old best s", "New best s",
                 "Ratio", "Status"],
                rows,
                title="Benchmark comparison",
                align_left=(0, 1, 5),
            ))
        else:
            lines.append("(no comparable series)")
        lines.append("")
        lines.append(self.summary())
        for c in self.regressions:
            lines.append("REGRESSION: " + c.describe())
        if self.counter_drift:
            lines.append("counter drift (informational):")
            for name, old, new in self.counter_drift[:_COUNTER_DRIFT_LIMIT]:
                lines.append("  {}: {} -> {}".format(
                    name, _fmt_count(old), _fmt_count(new)))
        return "\n".join(lines)

    def render_markdown(self, include_ok: bool = True) -> str:
        lines = ["# Benchmark comparison", "", self.summary(), ""]
        rows = self._rows(include_ok)
        if rows:
            lines.append("| Benchmark | Phase | Old best s | New best s "
                         "| Ratio | Status |")
            lines.append("|---|---|---:|---:|---:|---|")
            for row in rows:
                status = row[5]
                if status == "REGRESSION":
                    status = "**REGRESSION**"
                lines.append("| {} | {} | {} | {} | {} | {} |".format(
                    row[0], row[1], row[2], row[3], row[4], status))
        else:
            lines.append("_No comparable series._")
        if self.counter_drift:
            lines.append("")
            lines.append("## Counter drift (informational)")
            lines.append("")
            for name, old, new in self.counter_drift[:_COUNTER_DRIFT_LIMIT]:
                lines.append("- `{}`: {} -> {}".format(
                    name, _fmt_count(old), _fmt_count(new)))
        lines.append("")
        return "\n".join(lines)


def _fmt_seconds(value: Optional[float]) -> str:
    return "-" if value is None else "{:.4f}".format(value)


def _fmt_ratio(value: Optional[float]) -> str:
    return "-" if value is None else "{:.2f}".format(value)


def _fmt_count(value: float) -> str:
    if float(value) == int(value):
        return str(int(value))
    return "{:.3f}".format(value)


# ----------------------------------------------------------------------
# Comparison


def _series(records: List[dict]) -> Dict[Tuple[str, str], List[float]]:
    """``(benchmark, phase) -> observed seconds`` over a record set."""
    out: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        for benchmark, phases in record.get("phases", {}).items():
            for phase, seconds in phases.items():
                out.setdefault((benchmark, phase), []).append(float(seconds))
    return out


def _counter_drift(old: List[dict], new: List[dict]
                   ) -> List[Tuple[str, float, float]]:
    """Counters whose per-record mean moved, largest relative move first.

    Means absorb differing repeat counts between the two sides; pure
    wall-time counters do not appear here (those are the phase series).
    """

    def means(records: List[dict]) -> Dict[str, float]:
        sums: Dict[str, float] = {}
        seen: Dict[str, int] = {}
        for record in records:
            for name, value in record.get("counters", {}).items():
                sums[name] = sums.get(name, 0.0) + float(value)
                seen[name] = seen.get(name, 0) + 1
        return {name: sums[name] / seen[name] for name in sums}

    old_means = means(old)
    new_means = means(new)
    drift: List[Tuple[str, float, float]] = []
    for name in sorted(set(old_means) & set(new_means)):
        a, b = old_means[name], new_means[name]
        if a != b:
            drift.append((name, a, b))
    drift.sort(key=lambda entry: -abs(entry[2] - entry[1])
               / max(abs(entry[1]), 1.0))
    return drift


def compare_records(old: List[dict], new: List[dict],
                    tolerance: float = DEFAULT_TOLERANCE,
                    mad_k: float = DEFAULT_MAD_K,
                    min_seconds: float = DEFAULT_MIN_SECONDS,
                    min_delta_seconds: float = DEFAULT_MIN_DELTA_SECONDS,
                    ) -> RegressionReport:
    """Compare two ledger record sets series-by-series."""
    old_series = _series(old)
    new_series = _series(new)
    comparisons: List[SeriesComparison] = []
    for key in sorted(set(old_series) | set(new_series)):
        benchmark, phase = key
        old_values = old_series.get(key, [])
        new_values = new_series.get(key, [])
        if not old_values:
            status = "new"
        elif not new_values:
            status = "missing"
        else:
            status = _judge(old_values, new_values, tolerance, mad_k,
                            min_seconds, min_delta_seconds)
        comparisons.append(SeriesComparison(
            benchmark, phase, old_values, new_values, status))
    return RegressionReport(
        comparisons, tolerance, mad_k, min_seconds, min_delta_seconds,
        _counter_drift(old, new), len(old), len(new))


def _judge(old_values: List[float], new_values: List[float],
           tolerance: float, mad_k: float,
           min_seconds: float, min_delta_seconds: float) -> str:
    old_best = min(old_values)
    new_best = min(new_values)
    delta = new_best - old_best
    old_median = median(old_values)
    noise_bound = old_median + mad_k * mad(old_values, old_median)
    if (new_best > old_best * (1.0 + tolerance)
            and new_best > noise_bound
            and delta > min_delta_seconds
            and new_best >= min_seconds):
        return "regression"
    if (new_best < old_best * (1.0 - tolerance)
            and -delta > min_delta_seconds
            and old_best >= min_seconds):
        return "improved"
    return "ok"
