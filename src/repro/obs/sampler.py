"""Deterministic head sampling and cross-process trace propagation.

Always-on tracing (DESIGN.md §6k) needs two decisions made *once* per
trace and honoured everywhere the trace goes:

* **Sample or not.**  :class:`HeadSampler` derives a per-trace coin
  from ``sha256(salt:trace_id)``, so the decision is a pure function of
  the trace id — every process that sees the same id reaches the same
  verdict without coordination, and a fixed corpus of ids yields the
  exact same sampled subset on every run (seeded determinism, the same
  property the chaos plans rely on).
* **Who is my parent.**  :class:`TraceContext` is the propagation
  token: trace id, the originating process's token, the parent span id
  inside that process, and the sampled flag.  It round-trips through a
  single ``traceparent``-style header string (and the
  :data:`TRACEPARENT_ENV` environment variable for forked workers), so
  a request crossing client → daemon → pool worker carries enough to
  reconstruct one parent-linked tree across all three processes.

Span ids are process-local (the recorder's ``itertools.count``), so a
cross-process span is globally identified by ``(proc, span_id)`` —
:func:`proc_id` mints the process token lazily and re-mints after a
``fork`` (pool workers inherit module state, and two workers sharing
the parent's token would collide in the trace store).
"""

import hashlib
import os
import uuid
from typing import Dict, Optional

from repro.obs import core as obs

__all__ = [
    "DEFAULT_SAMPLE_RATE", "TRACEPARENT_ENV", "TRACE_STORE_ENV",
    "HeadSampler", "TraceContext", "proc_id", "current_context",
    "export_context", "context_from_env", "clear_env_context",
]

#: Default always-on sampling rate: 1 in 100 requests record their span
#: tree without ``debug: true``.  Low enough that the bench gate's warm
#: floor is unaffected, high enough that a corpus-scale run lands
#: hundreds of traces in the store.
DEFAULT_SAMPLE_RATE = 0.01

#: Environment variable carrying a serialized context into forked or
#: spawned workers (the fork analogue of the wire ``traceparent``).
TRACEPARENT_ENV = "REPRO_TRACEPARENT"

#: Environment variable pointing workers at the trace store directory
#: they should flush their records into.
TRACE_STORE_ENV = "REPRO_TRACE_STORE"


_PROC_ID: Optional[str] = None
_PROC_PID: Optional[int] = None


def proc_id() -> str:
    """This process's trace token (8 hex chars), minted lazily.

    Fork-aware: a pool worker inherits the parent's module state over
    ``fork``, so the cached token is discarded whenever ``os.getpid()``
    changes — each worker gets its own token and its span ids stay
    globally unambiguous as ``(proc, span_id)`` pairs.
    """
    global _PROC_ID, _PROC_PID
    pid = os.getpid()
    if _PROC_ID is None or _PROC_PID != pid:
        _PROC_ID = uuid.uuid4().hex[:8]
        _PROC_PID = pid
    return _PROC_ID


class HeadSampler:
    """Deterministic per-trace head sampling.

    ``decide(trace_id)`` hashes ``"{salt}:{trace_id}"`` and compares the
    leading 8 bytes against ``rate`` — a keyed uniform draw, stable
    across processes and runs.  ``rate=0`` never samples, ``rate=1``
    always does; ``salt`` lets operators rotate which ids fall in the
    sampled set without changing the rate.
    """

    __slots__ = ("rate", "salt")

    _SCALE = float(1 << 64)

    def __init__(self, rate: float, salt: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(
                "sample rate must be in [0, 1], got {}".format(rate))
        self.rate = rate
        self.salt = salt

    def decide(self, trace_id: str) -> bool:
        """The stable sampling verdict for *trace_id*."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        digest = hashlib.sha256(
            "{}:{}".format(self.salt, trace_id).encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / self._SCALE
        return draw < self.rate


class TraceContext:
    """One propagated trace identity: where a child should attach.

    The header form is ``{trace_id}-{proc}-{span:x}-{flag}`` where
    ``proc`` is the parent process token, ``span`` is the parent span id
    in that process (``0`` = no open span: attach at the record root),
    and ``flag`` is ``01`` (sampled) or ``00``.  The trace id itself may
    contain dashes (client-chosen ids often do), so parsing splits the
    three fixed fields off the right.
    """

    __slots__ = ("trace_id", "proc", "span_id", "sampled")

    def __init__(self, trace_id: str, proc: str,
                 span_id: Optional[int], sampled: bool):
        if not trace_id:
            raise ValueError("trace_id must be non-empty")
        if not proc or "-" in proc:
            raise ValueError("proc token must be non-empty and dash-free")
        self.trace_id = trace_id
        self.proc = proc
        self.span_id = span_id
        self.sampled = bool(sampled)

    def header(self) -> str:
        return "{}-{}-{:x}-{}".format(
            self.trace_id, self.proc,
            self.span_id if self.span_id is not None else 0,
            "01" if self.sampled else "00")

    @classmethod
    def parse(cls, text: str) -> "TraceContext":
        """Parse a header string; raises ``ValueError`` when malformed."""
        if not isinstance(text, str):
            raise ValueError("traceparent must be a string")
        parts = text.rsplit("-", 3)
        if len(parts) != 4:
            raise ValueError(
                "traceparent needs 4 dash-separated fields: {!r}".format(text))
        trace_id, proc, span_hex, flag = parts
        if not trace_id or not proc:
            raise ValueError(
                "traceparent has an empty trace or proc field: {!r}"
                .format(text))
        try:
            span_id: Optional[int] = int(span_hex, 16)
        except ValueError:
            raise ValueError(
                "traceparent span id is not hex: {!r}".format(span_hex))
        if span_id == 0:
            span_id = None
        if flag not in ("00", "01"):
            raise ValueError(
                "traceparent flag must be 00 or 01: {!r}".format(flag))
        return cls(trace_id, proc, span_id, flag == "01")

    def __eq__(self, other) -> bool:
        return (isinstance(other, TraceContext)
                and self.header() == other.header())

    def __repr__(self) -> str:
        return "<TraceContext {}>".format(self.header())


def current_context() -> Optional[TraceContext]:
    """The propagation context for work started *right now*.

    None outside any trace scope.  Inside one, the parent span is the
    innermost open span on this thread (or none: children attach at the
    record root), and the sampled flag is the scope's ``collect`` —
    a collecting parent wants its children recorded too.
    """
    scope = obs.current_scope()
    if scope is None:
        return None
    return TraceContext(scope.trace_id, proc_id(),
                        obs.current_span_id(), scope.collect)


def export_context(ctx: TraceContext,
                   env: Optional[Dict[str, str]] = None,
                   store_dir: Optional[str] = None) -> Dict[str, str]:
    """Write *ctx* (and optionally the store path) into *env*.

    Mutates and returns *env* (``os.environ`` by default) so forked
    pool workers — which inherit the environment — pick the context up
    via :func:`context_from_env`.
    """
    target = os.environ if env is None else env
    target[TRACEPARENT_ENV] = ctx.header()
    if store_dir is not None:
        target[TRACE_STORE_ENV] = str(store_dir)
    return target


def context_from_env(
        env: Optional[Dict[str, str]] = None) -> Optional[TraceContext]:
    """The inherited context, or None (malformed values read as None —
    a corrupt header must never take a worker down)."""
    raw = (os.environ if env is None else env).get(TRACEPARENT_ENV)
    if not raw:
        return None
    try:
        return TraceContext.parse(raw)
    except ValueError:
        return None


def clear_env_context(env: Optional[Dict[str, str]] = None) -> None:
    """Scrub the propagation variables (driver cleanup after a run)."""
    target = os.environ if env is None else env
    target.pop(TRACEPARENT_ENV, None)
    target.pop(TRACE_STORE_ENV, None)
